"""Public-API surface tests: every exported name must resolve.

Guards against the classic packaging bug where ``__all__`` lists a name
that was renamed or dropped — import-time works but star-imports and
documentation links break.
"""

import importlib

import pytest

PACKAGES = (
    "repro",
    "repro.rf",
    "repro.sim",
    "repro.protocol",
    "repro.world",
    "repro.world.scenarios",
    "repro.reader",
    "repro.core",
    "repro.analysis",
    "repro.obs",
)


@pytest.mark.parametrize("package_name", PACKAGES)
def test_all_names_resolve(package_name):
    module = importlib.import_module(package_name)
    exported = getattr(module, "__all__", None)
    if exported is None:
        pytest.skip(f"{package_name} has no __all__")
    for name in exported:
        assert hasattr(module, name), f"{package_name}.{name} missing"


@pytest.mark.parametrize("package_name", PACKAGES)
def test_all_has_no_duplicates(package_name):
    module = importlib.import_module(package_name)
    exported = getattr(module, "__all__", [])
    assert len(set(exported)) == len(exported)


def test_version_string():
    import repro

    parts = repro.__version__.split(".")
    assert len(parts) == 3
    assert all(part.isdigit() for part in parts)


def test_headline_api_one_liner():
    """The README's core flow must work as advertised."""
    from repro import (
        PaperSetup,
        PortalPassSimulator,
        combined_reliability,
        single_antenna_portal,
    )

    setup = PaperSetup()
    simulator = PortalPassSimulator(
        portal=single_antenna_portal(), env=setup.env, params=setup.params
    )
    assert simulator.portal.antenna_count == 1
    assert combined_reliability([0.63, 0.63]) > 0.63
