"""Round-trip tests for typed records, JSONL files, and manifests."""

import json
import os

import pytest

from repro.obs.jsonl import (
    dump_records,
    parse_records,
    read_events_jsonl,
    write_events_jsonl,
)
from repro.obs.manifest import (
    EVENTS_FILENAME,
    MANIFEST_FILENAME,
    RunManifest,
    config_hash,
    events_path,
    manifest_path,
    read_manifest,
    write_manifest,
)
from repro.obs.records import (
    DwellLinkRecord,
    MaskedDwellRecord,
    MissCause,
    RngStreamRecord,
    SlotRecord,
    SupervisorRecord,
    TagOutcomeRecord,
    record_from_dict,
)


def _one_of_each():
    return [
        DwellLinkRecord(
            time=0.5, trial=3, reader_id="reader-0", antenna_id="ant-0",
            epc="E1", tx_power_dbm=30.0, cable_loss_db=1.0,
            reader_gain_dbi=6.0, path_gain_db=-35.5, shadowing_db=-2.25,
            tag_gain_dbi=1.0, polarization_loss_db=3.0, obstruction_db=0.0,
            detuning_db=0.5, coupling_db=0.0, fault_loss_db=0.0,
            fading_db=1.125, interference_dbm=None,
            forward_power_dbm=-3.125, forward_margin_db=8.875,
            reverse_power_dbm=-41.0, reverse_margin_db=34.0,
            energized=True, short_circuited=False,
        ),
        DwellLinkRecord(
            time=0.6, trial=3, reader_id="reader-0", antenna_id="ant-0",
            epc="E2", tx_power_dbm=30.0, cable_loss_db=1.0,
            reader_gain_dbi=6.0, path_gain_db=-80.0, shadowing_db=-5.0,
            tag_gain_dbi=1.0, polarization_loss_db=3.0, obstruction_db=10.0,
            detuning_db=0.5, coupling_db=0.0, fault_loss_db=0.0,
            fading_db=None, interference_dbm=None,
            forward_power_dbm=None, forward_margin_db=None,
            reverse_power_dbm=None, reverse_margin_db=None,
            energized=False, short_circuited=True,
        ),
        SlotRecord(
            time=0.7, trial=3, reader_id="reader-0", antenna_id="ant-0",
            slot_index=2, responders=("E1", "E2"), outcome="collision",
            winner=None,
        ),
        TagOutcomeRecord(
            trial=3, epc="E2", read=False, cause=MissCause.OUT_OF_ZONE,
            first_read_time=None, reads=0, dwells_evaluated=12,
            energized_dwells=0, collision_slots=0, solo_garbled_slots=0,
            best_no_fade_margin_db=-31.5, best_unfaulted_margin_db=-31.5,
        ),
        TagOutcomeRecord(
            trial=3, epc="E1", read=True, cause=None,
            first_read_time=0.75, reads=4, dwells_evaluated=12,
            energized_dwells=9, collision_slots=1, solo_garbled_slots=0,
            best_no_fade_margin_db=8.0, best_unfaulted_margin_db=8.0,
        ),
        MaskedDwellRecord(
            time=1.0, trial=3, reader_id="reader-0", antenna_id=None,
            reason="reader_down",
        ),
        SupervisorRecord(
            time=1.2, trial=3, reader_id="reader-0", kind="health",
            old="healthy", new="degraded", reason="missed poll",
        ),
        RngStreamRecord(trial=3, name="fading#trial=3", seed=12345),
    ]


class TestRecordRoundTrip:
    @pytest.mark.parametrize("record", _one_of_each(), ids=lambda r: type(r).__name__)
    def test_dict_round_trip_is_lossless(self, record):
        assert record_from_dict(record.to_dict()) == record

    def test_unknown_type_rejected(self):
        with pytest.raises(ValueError, match="unknown record type"):
            record_from_dict({"type": "nope"})

    def test_every_declared_cause_survives_round_trip(self):
        for cause in MissCause:
            record = TagOutcomeRecord(
                trial=0, epc="E", read=False, cause=cause,
                first_read_time=None, reads=0, dwells_evaluated=1,
                energized_dwells=0, collision_slots=0, solo_garbled_slots=0,
                best_no_fade_margin_db=None, best_unfaulted_margin_db=None,
            )
            assert record_from_dict(record.to_dict()).cause is cause


class TestJsonl:
    def test_lines_are_valid_json(self):
        for line in dump_records(_one_of_each()):
            assert json.loads(line)["type"]

    def test_parse_inverts_dump(self):
        records = _one_of_each()
        assert list(parse_records(dump_records(records))) == records

    def test_blank_lines_skipped(self):
        lines = list(dump_records(_one_of_each()[:2]))
        assert len(list(parse_records(["", lines[0], "  ", lines[1]]))) == 2

    def test_file_round_trip(self, tmp_path):
        records = _one_of_each()
        path = str(tmp_path / "sub" / "events.jsonl")
        assert write_events_jsonl(path, records) == len(records)
        assert read_events_jsonl(path) == records


class TestManifest:
    def test_config_hash_is_order_independent(self):
        assert config_hash({"a": 1, "b": 2}) == config_hash({"b": 2, "a": 1})
        assert config_hash({"a": 1}) != config_hash({"a": 2})

    def test_create_stamps_provenance(self):
        manifest = RunManifest.create(
            command="table1", seed=7, config={"reps": 3}, wall_time_s=1.5,
            workers=2,
        )
        from repro import __version__

        assert manifest.version == __version__
        assert manifest.config_sha256 == config_hash({"reps": 3})
        assert manifest.workers == 2

    def test_write_read_round_trip(self, tmp_path):
        directory = str(tmp_path / "run")
        manifest = RunManifest.create(
            command="faults", seed=11, config={"reps": 2}, wall_time_s=0.25,
        )
        path = write_manifest(directory, manifest)
        assert os.path.basename(path) == MANIFEST_FILENAME
        assert read_manifest(directory) == manifest
        assert read_manifest(path) == manifest

    def test_paths(self, tmp_path):
        directory = str(tmp_path)
        assert manifest_path(directory).endswith(MANIFEST_FILENAME)
        assert events_path(directory).endswith(EVENTS_FILENAME)
