"""One test per miss cause: each enum value has a reproducible recipe.

Every missed tag in a recorded pass carries *exactly one*
:class:`~repro.obs.records.MissCause`. These tests pin a deterministic
scenario for each value so the attribution precedence in
``PassRecording._attribute`` stays honest; the Hypothesis property
tests then randomize each recipe's regime (seeds, geometry, hardware
knobs) and assert the causes stay **mutually exclusive and
exhaustive** — every missed tag exactly one cause, every read tag
none — plus the consistency each cause promises (a COLLISION tag saw
collision slots, an UNDER_ENERGIZED margin sits inside the fading
head-room, ...).
"""

from dataclasses import replace

import pytest

hypothesis = pytest.importorskip("hypothesis")
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.calibration import PaperSetup
from repro.faults.plan import AntennaFault, FaultPlan
from repro.obs import MissCause, Recorder
from repro.protocol.epc import EpcFactory
from repro.rf.geometry import Vec3
from repro.sim.rng import SeedSequence
from repro.world.motion import StationaryPlacement
from repro.world.portal import single_antenna_portal
from repro.world.simulation import (
    MAX_FADING_HEADROOM_DB,
    CarrierGroup,
    PortalPassSimulator,
)
from repro.world.tags import Tag, TagOrientation

SETUP = PaperSetup()


def _tag(epc, y=1.0, z=0.0):
    return Tag(
        epc=epc,
        local_position=Vec3(0.0, y, z),
        orientation=TagOrientation.CASE_2_HORIZONTAL_FACING,
    )


def _stationary(tags, z, duration_s=0.5):
    return CarrierGroup(
        motion=StationaryPlacement(Vec3(0.0, 0.0, z), duration_s=duration_s),
        tags=tags,
    )


def _run(carrier, params=None, env=None, fault_plan=None, seed=11, trial=0):
    recorder = Recorder()
    sim = PortalPassSimulator(
        portal=single_antenna_portal(),
        env=env or SETUP.env,
        params=params or SETUP.params,
        recorder=recorder,
    )
    result = sim.run_pass(
        [carrier], SeedSequence(seed), trial, fault_plan=fault_plan
    )
    return result, result.obs


def _epcs(n):
    factory = EpcFactory()
    return [factory.next_epc().to_hex() for _ in range(n)]


def test_collision():
    """One-slot frames + no capture: two in-zone tags collide forever."""
    params = replace(
        SETUP.params, q_initial=0, q_max=0, capture_probability=0.0
    )
    a, b = _epcs(2)
    carrier = _stationary([_tag(a), _tag(b, z=0.1)], z=0.5)
    result, obs = _run(carrier, params=params)
    assert not result.read_epcs
    causes = obs.miss_causes()
    assert causes[a] is MissCause.COLLISION
    assert causes[b] is MissCause.COLLISION
    for outcome in obs.tag_outcomes:
        assert outcome.collision_slots > 0


def test_not_inventoried():
    """Deaf reader: the tag energizes and replies, nothing decodes."""
    env = replace(SETUP.env, reader_sensitivity_dbm=-10.0)
    (epc,) = _epcs(1)
    result, obs = _run(_stationary([_tag(epc)], z=0.5), env=env)
    assert not result.read_epcs
    assert obs.miss_causes()[epc] is MissCause.NOT_INVENTORIED
    outcome = obs.outcome_for(epc)
    assert outcome.energized_dwells > 0
    assert outcome.solo_garbled_slots > 0


def test_fault_masked():
    """A silent antenna port masks every dwell of a readable tag."""
    plan = FaultPlan(
        antenna_faults=(AntennaFault("reader-0", "ant-0", start_s=0.0),)
    )
    (epc,) = _epcs(1)
    result, obs = _run(_stationary([_tag(epc)], z=0.5), fault_plan=plan)
    assert not result.read_epcs
    assert obs.miss_causes()[epc] is MissCause.FAULT_MASKED
    assert obs.masked_dwells
    assert all(m.reason == "antenna_silent" for m in obs.masked_dwells)


def test_under_energized():
    """Negative margin, but within fading head-room: an unlucky draw."""
    (epc,) = _epcs(1)
    result, obs = _run(_stationary([_tag(epc)], z=30.0))
    assert not result.read_epcs
    assert obs.miss_causes()[epc] is MissCause.UNDER_ENERGIZED
    outcome = obs.outcome_for(epc)
    assert outcome.energized_dwells == 0
    assert outcome.best_no_fade_margin_db is not None
    assert outcome.best_no_fade_margin_db < 0.0


def test_out_of_zone():
    """Far beyond the head-room: no draw could ever close the link."""
    (epc,) = _epcs(1)
    result, obs = _run(_stationary([_tag(epc)], z=100.0))
    assert not result.read_epcs
    assert obs.miss_causes()[epc] is MissCause.OUT_OF_ZONE


def test_every_miss_has_exactly_one_cause():
    """Read tags carry no cause; missed tags carry exactly one."""
    params = replace(
        SETUP.params, q_initial=0, q_max=0, capture_probability=0.0
    )
    a, b, c = _epcs(3)
    near = _stationary([_tag(a), _tag(b, z=0.1)], z=0.5)
    far = _stationary([_tag(c)], z=100.0)
    recorder = Recorder()
    sim = PortalPassSimulator(
        portal=single_antenna_portal(), env=SETUP.env, params=params,
        recorder=recorder,
    )
    result = sim.run_pass([near, far], SeedSequence(11), 0)
    obs = result.obs
    assert len(obs.tag_outcomes) == 3
    for outcome in obs.tag_outcomes:
        if outcome.read:
            assert outcome.cause is None
        else:
            assert isinstance(outcome.cause, MissCause)


# --------------------------------------------------------------------
# Hypothesis properties: one per MissCause, randomizing each recipe's
# regime while asserting mutual exclusion + exhaustiveness every time.
# --------------------------------------------------------------------

_seeds = st.integers(min_value=0, max_value=2**31 - 1)
_few_examples = settings(max_examples=10, deadline=None)


def _assert_partition(obs):
    """Causes partition the misses: read tags carry no cause, missed
    tags exactly one, and ``miss_causes()`` agrees with the outcomes."""
    causes = obs.miss_causes()
    missed = set()
    for outcome in obs.tag_outcomes:
        if outcome.read:
            assert outcome.cause is None
            assert outcome.epc not in causes
        else:
            missed.add(outcome.epc)
            assert isinstance(outcome.cause, MissCause)
            assert causes[outcome.epc] is outcome.cause
    assert set(causes) == missed
    assert all(isinstance(c, MissCause) for c in causes.values())


class TestMissCauseProperties:
    @given(seed=_seeds, offset=st.floats(0.05, 0.3), z=st.floats(0.4, 0.9))
    @_few_examples
    def test_collision(self, seed, offset, z):
        """One-slot frames, no capture: any miss is a COLLISION, and a
        COLLISION tag always saw at least one colliding slot."""
        params = replace(
            SETUP.params, q_initial=0, q_max=0, capture_probability=0.0
        )
        a, b = _epcs(2)
        carrier = _stationary([_tag(a), _tag(b, z=offset)], z=z)
        _, obs = _run(carrier, params=params, seed=seed)
        _assert_partition(obs)
        for outcome in obs.tag_outcomes:
            if outcome.cause is MissCause.COLLISION:
                assert outcome.collision_slots > 0

    @given(
        seed=_seeds,
        sensitivity=st.floats(-20.0, -5.0),
        z=st.floats(0.3, 0.9),
    )
    @_few_examples
    def test_not_inventoried(self, seed, sensitivity, z):
        """A deaf reader never demotes the miss below NOT_INVENTORIED:
        the tag energized, so energization causes cannot apply."""
        env = replace(SETUP.env, reader_sensitivity_dbm=sensitivity)
        (epc,) = _epcs(1)
        _, obs = _run(_stationary([_tag(epc)], z=z), env=env, seed=seed)
        _assert_partition(obs)
        for outcome in obs.tag_outcomes:
            if outcome.cause is MissCause.NOT_INVENTORIED:
                assert outcome.energized_dwells > 0

    @given(seed=_seeds, z=st.floats(0.3, 1.5), n_tags=st.integers(1, 3))
    @_few_examples
    def test_fault_masked(self, seed, z, n_tags):
        """A whole-pass silent antenna masks every dwell: all tags are
        missed, and FAULT_MASKED wins over every energization cause."""
        plan = FaultPlan(
            antenna_faults=(AntennaFault("reader-0", "ant-0", start_s=0.0),)
        )
        tags = [_tag(epc, z=0.1 * i) for i, epc in enumerate(_epcs(n_tags))]
        result, obs = _run(
            _stationary(tags, z=z), fault_plan=plan, seed=seed
        )
        _assert_partition(obs)
        assert not result.read_epcs
        causes = obs.miss_causes()
        assert len(causes) == n_tags
        assert set(causes.values()) == {MissCause.FAULT_MASKED}

    @given(seed=_seeds, z=st.floats(26.0, 34.0))
    @_few_examples
    def test_under_energized(self, seed, z):
        """Near the energization cliff, a miss is UNDER_ENERGIZED
        exactly when the best no-fade margin sits inside the fading
        head-room — and OUT_OF_ZONE exactly when it does not."""
        (epc,) = _epcs(1)
        _, obs = _run(_stationary([_tag(epc)], z=z), seed=seed)
        _assert_partition(obs)
        outcome = obs.outcome_for(epc)
        if outcome.cause is None:
            return  # a lucky fading draw closed the link
        assert outcome.cause in (
            MissCause.UNDER_ENERGIZED,
            MissCause.OUT_OF_ZONE,
        )
        margin = outcome.best_no_fade_margin_db
        assert margin is not None and margin < 0.0
        within_headroom = margin + MAX_FADING_HEADROOM_DB >= 0.0
        if outcome.cause is MissCause.UNDER_ENERGIZED:
            assert within_headroom
            assert outcome.energized_dwells == 0
        else:
            assert not within_headroom

    @given(seed=_seeds, z=st.floats(100.0, 200.0))
    @_few_examples
    def test_out_of_zone(self, seed, z):
        """Far beyond the head-room no draw can close the link: the tag
        is always missed, always OUT_OF_ZONE."""
        (epc,) = _epcs(1)
        result, obs = _run(_stationary([_tag(epc)], z=z), seed=seed)
        _assert_partition(obs)
        assert not result.read_epcs
        assert obs.miss_causes()[epc] is MissCause.OUT_OF_ZONE
        assert obs.outcome_for(epc).energized_dwells == 0

    @given(seed=_seeds, near_z=st.floats(0.4, 0.8), far_z=st.floats(90.0, 150.0))
    @_few_examples
    def test_mixed_pass_is_exhaustive(self, seed, near_z, far_z):
        """A pass mixing colliding, readable, and unreachable tags still
        partitions cleanly: every tag either read or exactly one cause."""
        params = replace(
            SETUP.params, q_initial=0, q_max=0, capture_probability=0.0
        )
        a, b, c = _epcs(3)
        near = _stationary([_tag(a), _tag(b, z=0.1)], z=near_z)
        far = _stationary([_tag(c)], z=far_z)
        recorder = Recorder()
        sim = PortalPassSimulator(
            portal=single_antenna_portal(),
            env=SETUP.env,
            params=params,
            recorder=recorder,
        )
        result = sim.run_pass([near, far], SeedSequence(seed), 0)
        obs = result.obs
        _assert_partition(obs)
        assert len(obs.tag_outcomes) == 3
        assert obs.miss_causes()[c] is MissCause.OUT_OF_ZONE
