"""One test per miss cause: each enum value has a reproducible recipe.

Every missed tag in a recorded pass carries *exactly one*
:class:`~repro.obs.records.MissCause`. These tests pin a deterministic
scenario for each value so the attribution precedence in
``PassRecording._attribute`` stays honest.
"""

from dataclasses import replace

from repro.core.calibration import PaperSetup
from repro.faults.plan import AntennaFault, FaultPlan
from repro.obs import MissCause, Recorder
from repro.protocol.epc import EpcFactory
from repro.rf.geometry import Vec3
from repro.sim.rng import SeedSequence
from repro.world.motion import StationaryPlacement
from repro.world.portal import single_antenna_portal
from repro.world.simulation import CarrierGroup, PortalPassSimulator
from repro.world.tags import Tag, TagOrientation

SETUP = PaperSetup()


def _tag(epc, y=1.0, z=0.0):
    return Tag(
        epc=epc,
        local_position=Vec3(0.0, y, z),
        orientation=TagOrientation.CASE_2_HORIZONTAL_FACING,
    )


def _stationary(tags, z, duration_s=0.5):
    return CarrierGroup(
        motion=StationaryPlacement(Vec3(0.0, 0.0, z), duration_s=duration_s),
        tags=tags,
    )


def _run(carrier, params=None, env=None, fault_plan=None, seed=11, trial=0):
    recorder = Recorder()
    sim = PortalPassSimulator(
        portal=single_antenna_portal(),
        env=env or SETUP.env,
        params=params or SETUP.params,
        recorder=recorder,
    )
    result = sim.run_pass(
        [carrier], SeedSequence(seed), trial, fault_plan=fault_plan
    )
    return result, result.obs


def _epcs(n):
    factory = EpcFactory()
    return [factory.next_epc().to_hex() for _ in range(n)]


def test_collision():
    """One-slot frames + no capture: two in-zone tags collide forever."""
    params = replace(
        SETUP.params, q_initial=0, q_max=0, capture_probability=0.0
    )
    a, b = _epcs(2)
    carrier = _stationary([_tag(a), _tag(b, z=0.1)], z=0.5)
    result, obs = _run(carrier, params=params)
    assert not result.read_epcs
    causes = obs.miss_causes()
    assert causes[a] is MissCause.COLLISION
    assert causes[b] is MissCause.COLLISION
    for outcome in obs.tag_outcomes:
        assert outcome.collision_slots > 0


def test_not_inventoried():
    """Deaf reader: the tag energizes and replies, nothing decodes."""
    env = replace(SETUP.env, reader_sensitivity_dbm=-10.0)
    (epc,) = _epcs(1)
    result, obs = _run(_stationary([_tag(epc)], z=0.5), env=env)
    assert not result.read_epcs
    assert obs.miss_causes()[epc] is MissCause.NOT_INVENTORIED
    outcome = obs.outcome_for(epc)
    assert outcome.energized_dwells > 0
    assert outcome.solo_garbled_slots > 0


def test_fault_masked():
    """A silent antenna port masks every dwell of a readable tag."""
    plan = FaultPlan(
        antenna_faults=(AntennaFault("reader-0", "ant-0", start_s=0.0),)
    )
    (epc,) = _epcs(1)
    result, obs = _run(_stationary([_tag(epc)], z=0.5), fault_plan=plan)
    assert not result.read_epcs
    assert obs.miss_causes()[epc] is MissCause.FAULT_MASKED
    assert obs.masked_dwells
    assert all(m.reason == "antenna_silent" for m in obs.masked_dwells)


def test_under_energized():
    """Negative margin, but within fading head-room: an unlucky draw."""
    (epc,) = _epcs(1)
    result, obs = _run(_stationary([_tag(epc)], z=30.0))
    assert not result.read_epcs
    assert obs.miss_causes()[epc] is MissCause.UNDER_ENERGIZED
    outcome = obs.outcome_for(epc)
    assert outcome.energized_dwells == 0
    assert outcome.best_no_fade_margin_db is not None
    assert outcome.best_no_fade_margin_db < 0.0


def test_out_of_zone():
    """Far beyond the head-room: no draw could ever close the link."""
    (epc,) = _epcs(1)
    result, obs = _run(_stationary([_tag(epc)], z=100.0))
    assert not result.read_epcs
    assert obs.miss_causes()[epc] is MissCause.OUT_OF_ZONE


def test_every_miss_has_exactly_one_cause():
    """Read tags carry no cause; missed tags carry exactly one."""
    params = replace(
        SETUP.params, q_initial=0, q_max=0, capture_probability=0.0
    )
    a, b, c = _epcs(3)
    near = _stationary([_tag(a), _tag(b, z=0.1)], z=0.5)
    far = _stationary([_tag(c)], z=100.0)
    recorder = Recorder()
    sim = PortalPassSimulator(
        portal=single_antenna_portal(), env=SETUP.env, params=params,
        recorder=recorder,
    )
    result = sim.run_pass([near, far], SeedSequence(11), 0)
    obs = result.obs
    assert len(obs.tag_outcomes) == 3
    for outcome in obs.tag_outcomes:
        if outcome.read:
            assert outcome.cause is None
        else:
            assert isinstance(outcome.cause, MissCause)
