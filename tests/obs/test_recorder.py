"""Recorder behaviour: zero-cost off, non-perturbation, aggregation."""

import pickle

from repro.core.calibration import PaperSetup
from repro.core.experiment import run_trials
from repro.core.parallel import PassTrialTask
from repro.obs import Recorder, TracingSeedSequence
from repro.protocol.epc import EpcFactory
from repro.rf.geometry import Vec3
from repro.sim.rng import SeedSequence
from repro.world.motion import LinearPass, StationaryPlacement
from repro.world.portal import single_antenna_portal
from repro.world.simulation import CarrierGroup, PortalPassSimulator
from repro.world.tags import Tag, TagOrientation

SETUP = PaperSetup()


def _carrier(z=0.5, moving=False):
    tag = Tag(
        epc=EpcFactory().next_epc().to_hex(),
        local_position=Vec3(0.0, 1.0, 0.0),
        orientation=TagOrientation.CASE_2_HORIZONTAL_FACING,
    )
    if moving:
        motion = LinearPass.centered_lane_pass(
            lane_distance_m=1.0, speed_mps=1.0, half_span_m=1.5, height_m=0.0
        )
    else:
        motion = StationaryPlacement(Vec3(0.0, 0.0, z), duration_s=0.5)
    return CarrierGroup(motion=motion, tags=[tag])


def _sim(recorder=None):
    return PortalPassSimulator(
        portal=single_antenna_portal(),
        env=SETUP.env,
        params=SETUP.params,
        recorder=recorder,
    )


class TestZeroCostOff:
    def test_no_recorder_means_no_observation(self):
        result = _sim().run_pass([_carrier()], SeedSequence(3), 0)
        assert result.obs is None

    def test_disabled_recorder_means_no_observation(self):
        recorder = Recorder(enabled=False)
        result = _sim(recorder).run_pass([_carrier()], SeedSequence(3), 0)
        assert result.obs is None


class TestNonPerturbation:
    def test_recording_never_changes_outcomes(self):
        """Hooks consume no randomness: results are bit-identical with
        recording on (even at full capture) or off."""
        carrier = _carrier(moving=True)
        plain = _sim().run_pass([carrier], SeedSequence(9), 2)
        recorder = Recorder(
            capture_link_budget=True, capture_slots=True, capture_rng=True
        )
        recorded = _sim(recorder).run_pass([carrier], SeedSequence(9), 2)
        assert recorded.read_epcs == plain.read_epcs
        assert [e.time for e in recorded.trace] == [
            e.time for e in plain.trace
        ]
        assert recorded.rounds == plain.rounds

    def test_tracing_seeds_are_the_plain_seeds(self):
        recorder = Recorder(capture_rng=True)
        recording = recorder.begin_pass(0)
        traced = TracingSeedSequence(5, recording)
        plain = SeedSequence(5)
        assert traced.stream("x").seed == plain.stream("x").seed
        assert (
            traced.trial_stream("y", 3).seed == plain.trial_stream("y", 3).seed
        )

    def test_tracing_dedupes_rederivations(self):
        recorder = Recorder(capture_rng=True)
        recording = recorder.begin_pass(0)
        traced = TracingSeedSequence(5, recording)
        traced.stream("x")
        traced.stream("x")
        observation = recording.finalize(
            population=(), read_epcs=set(), first_read_times={},
            read_counts={}, headroom_db=20.0, had_fault_plan=False,
        )
        assert len(observation.rng_records) == 1


class TestObservation:
    def test_observation_pickles(self):
        recorder = Recorder(capture_link_budget=True, capture_slots=True)
        result = _sim(recorder).run_pass([_carrier()], SeedSequence(3), 0)
        clone = pickle.loads(pickle.dumps(result.obs))
        assert clone == result.obs

    def test_link_record_cap_truncates(self):
        recorder = Recorder(capture_link_budget=True, max_records_per_pass=5)
        far = CarrierGroup(
            motion=StationaryPlacement(Vec3(0.0, 0.0, 30.0), duration_s=2.0),
            tags=_carrier().tags,
        )
        result = _sim(recorder).run_pass([far], SeedSequence(3), 0)
        assert len(result.obs.link_records) == 5
        assert result.obs.truncated_link_records > 0

    def test_waterfall_reproduces_forward_power(self):
        """Summing a link record's waterfall terms reproduces the
        recorded forward power exactly — the explain-pipeline invariant."""
        from repro.obs.explain import record_waterfall

        recorder = Recorder(capture_link_budget=True)
        result = _sim(recorder).run_pass([_carrier()], SeedSequence(3), 0)
        checked = 0
        for record in result.obs.link_records:
            if record.short_circuited:
                continue
            total = sum(value for _, value in record_waterfall(record))
            assert abs(total - record.forward_power_dbm) < 1e-9
            checked += 1
        assert checked > 0


class TestAggregation:
    def test_absorb_trial_set_collects_everything(self):
        recorder = Recorder()
        sim = _sim(recorder)
        carrier = _carrier(moving=True)
        trial_set = run_trials(
            "obs-test",
            PassTrialTask(simulator=sim, carriers=(carrier,)),
            3,
            seed=17,
        )
        recorder.absorb_trial_set("obs-test", trial_set)
        assert len(recorder.observations) == 3
        assert recorder.metrics.timer("trial.wall_s").count == 3
        assert recorder.metrics.timer("trial.wall_s[obs-test]").count == 3
        assert recorder.metrics.counter("pass.rounds").value > 0
        assert recorder.events  # tag outcomes at minimum

    def test_miss_cause_counts_match_observations(self):
        recorder = Recorder()
        sim = _sim(recorder)
        far = _carrier(z=100.0)
        trial_set = run_trials(
            "obs-far",
            PassTrialTask(simulator=sim, carriers=(far,)),
            2,
            seed=17,
        )
        recorder.absorb_trial_set("obs-far", trial_set)
        counts = recorder.miss_cause_counts()
        assert sum(counts.values()) == 2
        assert counts.get("out_of_zone") == 2
