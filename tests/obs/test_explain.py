"""Tests for the explain pipeline and recorded-run stats."""

import pytest

from repro.obs.explain import (
    EXPLAIN_SCENARIOS,
    explain_tag,
    render_stats,
    run_instrumented_pass,
    stats_payload,
)


class TestScenarios:
    def test_registry_contains_the_paper_workloads(self):
        assert "cart" in EXPLAIN_SCENARIOS
        assert "walk" in EXPLAIN_SCENARIOS

    def test_unknown_scenario_rejected(self):
        with pytest.raises(ValueError, match="cart"):
            run_instrumented_pass("conveyor", seed=1)


class TestExplainTag:
    def test_deterministic(self):
        """Two explain runs of the same (scenario, seed, trial, tag)
        produce identical payloads — the acceptance invariant."""
        a = explain_tag("walk", seed=7, trial=1)
        b = explain_tag("walk", seed=7, trial=1)
        assert a.to_payload() == b.to_payload()
        assert a.render() == b.render()

    def test_waterfall_arithmetic(self):
        explanation = explain_tag("walk", seed=7, trial=1)
        total = sum(value for _, value in explanation.waterfall)
        assert explanation.power_at_tag_dbm == pytest.approx(total)
        assert explanation.forward_margin_db == pytest.approx(
            explanation.power_at_tag_dbm - explanation.tag_sensitivity_dbm
        )

    def test_select_by_index_and_epc(self):
        by_index = explain_tag("walk", seed=7, trial=1, tag="0")
        by_epc = explain_tag(
            "walk", seed=7, trial=1, tag=by_index.outcome.epc
        )
        assert by_index.to_payload() == by_epc.to_payload()

    def test_unknown_tag_rejected(self):
        with pytest.raises(ValueError):
            explain_tag("walk", seed=7, trial=1, tag="NOT-AN-EPC")

    def test_render_mentions_the_outcome(self):
        explanation = explain_tag("walk", seed=7, trial=1)
        text = explanation.render()
        assert explanation.outcome.epc in text
        assert "forward margin" in text


class TestStats:
    def _record_run(self, tmp_path):
        from repro.obs import (
            Recorder,
            RunManifest,
            events_path,
            write_events_jsonl,
            write_manifest,
        )

        _, _, observation = run_instrumented_pass("walk", seed=7, trial=0)
        recorder = Recorder()
        recorder.absorb_observation(observation)
        directory = str(tmp_path / "run")
        write_manifest(
            directory,
            RunManifest.create(
                command="walk", seed=7, config={}, wall_time_s=0.5
            ),
        )
        write_events_jsonl(events_path(directory), recorder.events)
        return directory

    def test_stats_payload_counts_events(self, tmp_path):
        directory = self._record_run(tmp_path)
        payload = stats_payload(directory)
        assert payload["manifest"]["command"] == "walk"
        assert payload["events"] > 0
        assert payload["events_by_type"].get("tag") == 1
        outcomes = payload["tag_outcomes"]
        assert outcomes["read"] + outcomes["missed"] == 1

    def test_render_stats(self, tmp_path):
        directory = self._record_run(tmp_path)
        text = render_stats(stats_payload(directory))
        assert "recorded run" in text
        assert "seed=7" in text

    def test_missing_directory_raises_oserror(self, tmp_path):
        with pytest.raises(OSError):
            stats_payload(str(tmp_path / "nope"))
