"""CLI-level observability tests: --json, --record, explain, stats."""

import io
import json
import os
from contextlib import redirect_stdout

from repro.cli import build_parser, main


def _run(argv):
    buffer = io.StringIO()
    with redirect_stdout(buffer):
        code = main(argv)
    return code, buffer.getvalue()


class TestJsonFlag:
    def test_every_subcommand_accepts_json(self):
        parser = build_parser()
        for argv in (
            ["table1", "--json"],
            ["read-range", "--json"],
            ["table2", "--json"],
            ["table3", "--json"],
            ["reader-redundancy", "--json"],
            ["faults", "--json"],
            ["plan", "--json"],
            ["report", "--json"],
            ["bench", "--json"],
            ["explain", "--json"],
            ["stats", "somewhere", "--json"],
        ):
            args = parser.parse_args(argv)
            assert args.json is True

    def test_plan_json_payload_parses(self):
        code, output = _run(["plan", "--target", "0.99", "--json"])
        assert code == 0
        payload = json.loads(output)
        assert payload["command"] == "plan"
        assert payload["tags_per_object"] >= 1

    def test_experiment_commands_accept_record(self):
        parser = build_parser()
        args = parser.parse_args(["table1", "--record", "/tmp/x"])
        assert args.record == "/tmp/x"


class TestExplainCommand:
    def test_exit_zero_and_waterfall_text(self):
        code, output = _run(
            ["explain", "--scenario", "walk", "--pass-seed", "7"]
        )
        assert code == 0
        assert "forward link waterfall" in output
        assert "tag sensitivity" in output

    def test_json_payload_parses(self):
        code, output = _run(
            ["explain", "--scenario", "walk", "--pass-seed", "7", "--json"]
        )
        assert code == 0
        payload = json.loads(output)
        assert payload["scenario"] == "walk"
        assert isinstance(payload["waterfall"], list)

    def test_unknown_scenario_exits_one(self):
        code, _ = _run(["explain", "--scenario", "conveyor"])
        assert code == 1


class TestRecordAndStats:
    def test_record_then_stats_round_trip(self, tmp_path):
        directory = str(tmp_path / "run")
        code, output = _run(
            ["faults", "--reps", "1", "--record", directory]
        )
        assert code == 0
        assert "recorded" in output
        assert os.path.exists(os.path.join(directory, "manifest.json"))
        assert os.path.exists(os.path.join(directory, "events.jsonl"))

        code, output = _run(["stats", directory])
        assert code == 0
        assert "recorded run" in output

        code, output = _run(["stats", directory, "--json"])
        assert code == 0
        payload = json.loads(output)
        assert payload["manifest"]["command"] == "faults"
        assert payload["events"] > 0

    def test_record_json_payload_reports_recording(self, tmp_path):
        directory = str(tmp_path / "run")
        code, output = _run(
            ["faults", "--reps", "1", "--record", directory, "--json"]
        )
        assert code == 0
        payload = json.loads(output)
        assert payload["recording"]["directory"] == directory
        assert payload["recording"]["events"] > 0

    def test_stats_on_missing_directory_exits_one(self, tmp_path):
        code, _ = _run(["stats", str(tmp_path / "nope")])
        assert code == 1
