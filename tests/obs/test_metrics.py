"""Tests for the metrics registry: counters, histograms, timers."""

import pytest

from repro.obs.metrics import (
    Counter,
    Histogram,
    MetricsError,
    MetricsRegistry,
    Timer,
    percentile,
    summarise_timer,
)


class TestPercentile:
    def test_median_of_odd_sample(self):
        assert percentile([3.0, 1.0, 2.0], 50.0) == 2.0

    def test_interpolates(self):
        assert percentile([0.0, 10.0], 50.0) == pytest.approx(5.0)

    def test_extremes(self):
        values = [5.0, 1.0, 9.0]
        assert percentile(values, 0.0) == 1.0
        assert percentile(values, 100.0) == 9.0

    def test_single_sample(self):
        assert percentile([7.0], 95.0) == 7.0

    def test_empty_rejected(self):
        with pytest.raises(MetricsError):
            percentile([], 50.0)

    def test_out_of_range_rejected(self):
        with pytest.raises(MetricsError):
            percentile([1.0], 101.0)


class TestCounter:
    def test_inc_and_merge(self):
        a, b = Counter(), Counter()
        a.inc()
        a.inc(4)
        b.inc(2)
        a.merge(b)
        assert a.value == 7

    def test_negative_rejected(self):
        with pytest.raises(MetricsError):
            Counter().inc(-1)


class TestHistogram:
    def test_bucket_assignment(self):
        hist = Histogram(edges=(0.0, 10.0))
        for value in (-5.0, 0.0, 5.0, 10.0, 15.0):
            hist.observe(value)
        # (-inf, 0], (0, 10], (10, inf)
        assert hist.counts == [2, 2, 1]
        assert hist.total == 5
        assert hist.min == -5.0
        assert hist.max == 15.0
        assert hist.mean == pytest.approx(5.0)

    def test_merge_adds_bucket_by_bucket(self):
        a = Histogram(edges=(0.0,))
        b = Histogram(edges=(0.0,))
        a.observe(-1.0)
        b.observe(1.0)
        b.observe(2.0)
        a.merge(b)
        assert a.counts == [1, 2]
        assert a.total == 3

    def test_merge_requires_matching_edges(self):
        with pytest.raises(MetricsError):
            Histogram(edges=(0.0,)).merge(Histogram(edges=(1.0,)))

    def test_unsorted_edges_rejected(self):
        with pytest.raises(MetricsError):
            Histogram(edges=(1.0, 0.0))


class TestTimer:
    def test_observe_and_quantiles(self):
        timer = Timer()
        for s in (0.1, 0.2, 0.3):
            timer.observe_s(s)
        assert timer.count == 3
        assert timer.total_s == pytest.approx(0.6)
        assert timer.quantile_s(50.0) == pytest.approx(0.2)

    def test_negative_rejected(self):
        with pytest.raises(MetricsError):
            Timer().observe_s(-0.1)

    def test_context_manager_records_one_sample(self):
        timer = Timer()
        with timer.time():
            pass
        assert timer.count == 1
        assert timer.samples[0] >= 0.0


class TestRegistry:
    def test_redeclare_returns_same_metric(self):
        reg = MetricsRegistry()
        assert reg.counter("a") is reg.counter("a")

    def test_kind_conflict_rejected(self):
        reg = MetricsRegistry()
        reg.counter("a")
        with pytest.raises(MetricsError):
            reg.timer("a")

    def test_histogram_edge_conflict_rejected(self):
        reg = MetricsRegistry()
        reg.histogram("h", (0.0,))
        with pytest.raises(MetricsError):
            reg.histogram("h", (1.0,))

    def test_merge_is_the_worker_to_parent_path(self):
        parent, worker = MetricsRegistry(), MetricsRegistry()
        parent.counter("passes").inc()
        worker.counter("passes").inc(2)
        worker.histogram("margin", (0.0,)).observe(1.0)
        worker.timer("wall").observe_s(0.5)
        parent.merge(worker)
        assert parent.counter("passes").value == 3
        assert parent.histogram("margin", (0.0,)).total == 1
        assert parent.timer("wall").count == 1

    def test_dict_round_trip(self):
        reg = MetricsRegistry()
        reg.counter("c").inc(5)
        reg.histogram("h", (0.0, 1.0)).observe(0.5)
        reg.timer("t").observe_s(0.25)
        rebuilt = MetricsRegistry.from_dict(reg.to_dict())
        assert rebuilt.to_dict() == reg.to_dict()

    def test_merge_counts(self):
        reg = MetricsRegistry()
        reg.merge_counts({"a": 2, "b": 1})
        reg.merge_counts({"a": 1})
        assert reg.counter("a").value == 3
        assert reg.counter("b").value == 1


class TestSummariseTimer:
    def test_empty(self):
        doc = summarise_timer([])
        assert doc["count"] == 0
        assert doc["p50_s"] is None

    def test_summary(self):
        doc = summarise_timer([0.1, 0.2, 0.3, 0.4])
        assert doc["count"] == 4
        assert doc["mean_s"] == pytest.approx(0.25)
        assert doc["p50_s"] == pytest.approx(0.25)
