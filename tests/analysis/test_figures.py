"""Tests for ASCII figure rendering."""

import pytest

from repro.analysis.figures import Series, line_plot, sparkline


class TestSeries:
    def test_valid(self):
        s = Series("x", (1.0, 2.0), (3.0, 4.0))
        assert s.name == "x"

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            Series("x", (1.0,), (1.0, 2.0))

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            Series("x", (), ())

    def test_multichar_marker_rejected(self):
        with pytest.raises(ValueError):
            Series("x", (1.0,), (1.0,), marker="**")


class TestLinePlot:
    def test_contains_title_and_legend(self):
        plot = line_plot(
            "Figure 2",
            [Series("measured", (1.0, 5.0, 9.0), (20.0, 13.0, 1.5))],
        )
        assert "Figure 2" in plot
        assert "* = measured" in plot

    def test_axis_labels(self):
        plot = line_plot(
            "t", [Series("s", (1.0, 9.0), (0.0, 20.0))]
        )
        assert "20" in plot
        assert "9" in plot

    def test_marker_positions_reflect_trend(self):
        plot = line_plot(
            "t",
            [Series("s", (0.0, 10.0), (0.0, 10.0))],
            width=20,
            height=10,
        )
        rows = [line for line in plot.splitlines() if "|" in line]
        # Rising series: the top row holds the right-most marker.
        top = rows[0]
        bottom = rows[-1]
        assert "*" in top and "*" in bottom
        assert top.rindex("*") > bottom.index("*")

    def test_two_series_two_markers(self):
        plot = line_plot(
            "t",
            [
                Series("a", (0.0, 1.0), (0.0, 1.0), marker="a"),
                Series("b", (0.0, 1.0), (1.0, 0.0), marker="b"),
            ],
        )
        assert "a = a" in plot and "b = b" in plot

    def test_degenerate_ranges_handled(self):
        plot = line_plot("t", [Series("s", (1.0, 1.0), (2.0, 2.0))])
        assert "*" in plot

    def test_empty_series_list_rejected(self):
        with pytest.raises(ValueError):
            line_plot("t", [])

    def test_tiny_grid_rejected(self):
        with pytest.raises(ValueError):
            line_plot("t", [Series("s", (0.0,), (0.0,))], width=5, height=2)

    def test_pinned_y_range(self):
        plot = line_plot(
            "t",
            [Series("s", (0.0, 1.0), (0.4, 0.6))],
            y_min=0.0,
            y_max=1.0,
        )
        assert plot.splitlines()[2].lstrip().startswith("1")


class TestSparkline:
    def test_length(self):
        assert len(sparkline([1.0, 2.0, 3.0])) == 3

    def test_monotone_shape(self):
        line = sparkline([0.0, 1.0, 2.0, 3.0])
        assert line == "".join(sorted(line))

    def test_constant_series(self):
        assert len(set(sparkline([2.0, 2.0, 2.0]))) == 1

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            sparkline([])
