"""Tests for ASCII table/figure rendering."""

import pytest

from repro.analysis.tables import (
    PaperComparison,
    Table,
    bar_chart,
    comparison_report,
    percent,
)


class TestTable:
    def test_render_contains_everything(self):
        table = Table("Table 1", headers=("Location", "Reliability"))
        table.add_row("Front", "87%")
        table.add_row("Top", "29%")
        text = table.render()
        assert "Table 1" in text
        assert "Front" in text
        assert "29%" in text
        assert "Location" in text

    def test_row_width_mismatch(self):
        table = Table("x", headers=("a", "b"))
        with pytest.raises(ValueError):
            table.add_row("only-one")

    def test_cells_stringified(self):
        table = Table("x", headers=("a",))
        table.add_row(0.5)
        assert "0.5" in table.render()

    def test_columns_aligned(self):
        table = Table("x", headers=("a", "b"))
        table.add_row("wide-cell-value", "y")
        lines = table.render().splitlines()
        header, rule, row = lines[2], lines[3], lines[4]
        assert header.index("|") == row.index("|")


class TestPercent:
    def test_formats_like_paper(self):
        assert percent(0.87) == "87%"

    def test_decimals(self):
        assert percent(0.999, decimals=1) == "99.9%"

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            percent(1.5)


class TestBarChart:
    def test_renders_all_labels_and_series(self):
        text = bar_chart(
            "Figure 5",
            labels=["1 ant, 1 tag", "2 ant, 2 tags"],
            series=[[0.8, 1.0], [0.8, 0.999]],
            series_names=["Measured", "Calculated"],
        )
        assert "Figure 5" in text
        assert "Measured" in text
        assert "100%" in text

    def test_mismatched_series_rejected(self):
        with pytest.raises(ValueError):
            bar_chart("x", ["a"], [[0.5]], ["s1", "s2"])

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            bar_chart("x", ["a", "b"], [[0.5]], ["s1"])

    def test_out_of_range_value_rejected(self):
        with pytest.raises(ValueError):
            bar_chart("x", ["a"], [[1.5]], ["s1"])

    def test_bar_length_scales(self):
        text = bar_chart("x", ["a"], [[0.5]], ["s"], width=10)
        assert "#####....." in text


class TestPaperComparison:
    def test_within_tolerance(self):
        comparison = PaperComparison("front", 0.87, 0.85, tolerance=0.10)
        assert comparison.within_tolerance
        assert "OK" in comparison.render()

    def test_outside_tolerance(self):
        comparison = PaperComparison("top", 0.29, 0.80, tolerance=0.10)
        assert not comparison.within_tolerance
        assert "OFF" in comparison.render()

    def test_report_counts(self):
        report = comparison_report(
            [
                PaperComparison("a", 0.5, 0.5, 0.1),
                PaperComparison("b", 0.5, 0.9, 0.1),
            ]
        )
        assert "1/2 within tolerance" in report
