"""Tests for trace analytics."""

import pytest

from repro.analysis.trace_stats import (
    PassProfile,
    RssiSummary,
    antenna_balance,
    antenna_utilization,
    inter_read_gaps,
    read_rate_over_time,
)
from repro.sim.events import TagReadEvent
from repro.sim.trace import ReadTrace


def _trace(spec):
    """spec: iterable of (time, epc_letter, antenna, rssi)."""
    trace = ReadTrace()
    for t, letter, antenna, rssi in spec:
        trace.record(
            TagReadEvent(t, letter * 24, "r0", antenna, rssi_dbm=rssi)
        )
    return trace


class TestRssiSummary:
    def test_summary(self):
        trace = _trace(
            [(0.0, "A", "a0", -70.0), (1.0, "A", "a0", -50.0),
             (2.0, "B", "a0", -60.0)]
        )
        summary = RssiSummary.from_trace(trace)
        assert summary.count == 3
        assert summary.min_dbm == -70.0
        assert summary.max_dbm == -50.0
        assert summary.median_dbm == -60.0

    def test_empty_trace(self):
        assert RssiSummary.from_trace(ReadTrace()) is None


class TestReadRate:
    def test_bucket_counts(self):
        trace = _trace(
            [(0.1, "A", "a0", -60.0), (0.2, "A", "a0", -60.0),
             (0.9, "B", "a0", -60.0)]
        )
        rate = read_rate_over_time(trace, duration_s=1.0, buckets=2)
        assert rate == [2, 1]

    def test_event_at_duration_lands_in_last(self):
        trace = _trace([(1.0, "A", "a0", -60.0)])
        rate = read_rate_over_time(trace, duration_s=1.0, buckets=4)
        assert rate[-1] == 1

    def test_validation(self):
        with pytest.raises(ValueError):
            read_rate_over_time(ReadTrace(), 1.0, buckets=0)
        with pytest.raises(ValueError):
            read_rate_over_time(ReadTrace(), 0.0)

    def test_total_preserved(self):
        trace = _trace([(i / 10, "A", "a0", -60.0) for i in range(10)])
        assert sum(read_rate_over_time(trace, 1.0, 7)) == 10


class TestAntennaStats:
    def test_utilization(self):
        trace = _trace(
            [(0.0, "A", "a0", -60.0), (0.5, "A", "a1", -60.0),
             (1.0, "B", "a1", -60.0)]
        )
        utilization = antenna_utilization(trace)
        assert utilization[("r0", "a0")] == 1
        assert utilization[("r0", "a1")] == 2

    def test_balance(self):
        trace = _trace(
            [(0.0, "A", "a0", -60.0), (0.5, "A", "a1", -60.0),
             (1.0, "B", "a1", -60.0)]
        )
        assert antenna_balance(trace) == pytest.approx(0.5)

    def test_balance_single_antenna(self):
        trace = _trace([(0.0, "A", "a0", -60.0)])
        assert antenna_balance(trace) == 1.0

    def test_balance_empty(self):
        assert antenna_balance(ReadTrace()) is None


class TestGaps:
    def test_gaps(self):
        trace = _trace(
            [(0.0, "A", "a0", -60.0), (0.4, "A", "a0", -60.0),
             (1.0, "A", "a0", -60.0), (0.0, "B", "a0", -60.0)][:3]
        )
        assert inter_read_gaps(trace, "A" * 24) == [
            pytest.approx(0.4),
            pytest.approx(0.6),
        ]

    def test_no_reads_no_gaps(self):
        assert inter_read_gaps(ReadTrace(), "A" * 24) == []


class TestPassProfile:
    def test_profile(self):
        trace = _trace(
            [(0.1, "A", "a0", -65.0), (0.15, "B", "a1", -55.0),
             (0.9, "A", "a0", -60.0)]
        )
        profile = PassProfile.from_trace(trace, duration_s=1.0, buckets=10)
        assert profile.total_reads == 3
        assert profile.unique_tags == 2
        # Reads at 0.1 and 0.15 share bucket [0.1, 0.2): the busiest.
        assert profile.busiest_bucket == 1
        assert profile.read_window_fraction == pytest.approx(0.2)
        assert profile.balance == pytest.approx(0.5)

    def test_render(self):
        trace = _trace([(0.1, "A", "a0", -65.0)])
        text = PassProfile.from_trace(trace, 1.0).render()
        assert "reads: 1" in text
        assert "rssi" in text

    def test_real_pass_profile(self):
        """End-to-end: profile an actual simulated pass."""
        from repro.core.calibration import PaperSetup
        from repro.protocol.epc import EpcFactory
        from repro.rf.geometry import Vec3
        from repro.sim.rng import SeedSequence
        from repro.world.motion import LinearPass
        from repro.world.portal import dual_antenna_portal
        from repro.world.simulation import CarrierGroup, PortalPassSimulator
        from repro.world.tags import Tag

        setup = PaperSetup()
        sim = PortalPassSimulator(
            portal=dual_antenna_portal(), env=setup.env, params=setup.params
        )
        factory = EpcFactory()
        carrier = CarrierGroup(
            motion=LinearPass.centered_lane_pass(height_m=0.0),
            tags=[
                Tag(
                    epc=factory.next_epc().to_hex(),
                    local_position=Vec3(i * 0.2 - 0.3, 1.0, 0.0),
                )
                for i in range(4)
            ],
        )
        result = sim.run_pass([carrier], SeedSequence(3), 0)
        profile = PassProfile.from_trace(result.trace, result.duration_s)
        assert profile.unique_tags >= 3
        assert profile.rssi is not None
        assert profile.rssi.median_dbm < -20.0
