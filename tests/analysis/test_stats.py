"""Tests for summary statistics."""

import pytest
from hypothesis import given, strategies as st

from repro.analysis.stats import (
    bootstrap_interval,
    mean,
    monotone_decreasing,
    quantile,
    quartiles,
    relative_error,
    stddev,
    variance,
)

float_lists = st.lists(
    st.floats(min_value=-1e6, max_value=1e6), min_size=1, max_size=50
)


class TestBasics:
    def test_mean(self):
        assert mean([1.0, 2.0, 3.0]) == pytest.approx(2.0)

    def test_mean_empty_rejected(self):
        with pytest.raises(ValueError):
            mean([])

    def test_variance(self):
        assert variance([2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]) == (
            pytest.approx(4.571, abs=1e-3)
        )

    def test_variance_needs_two(self):
        with pytest.raises(ValueError):
            variance([1.0])

    def test_stddev(self):
        assert stddev([1.0, 3.0]) == pytest.approx(2.0 ** 0.5)

    @given(float_lists)
    def test_mean_within_range(self, values):
        assert min(values) - 1e-6 <= mean(values) <= max(values) + 1e-6


class TestQuantiles:
    def test_median(self):
        assert quantile([1.0, 2.0, 3.0], 0.5) == 2.0

    def test_interpolation(self):
        assert quantile([0.0, 10.0], 0.25) == pytest.approx(2.5)

    def test_bounds(self):
        values = [5.0, 1.0, 3.0]
        assert quantile(values, 0.0) == 1.0
        assert quantile(values, 1.0) == 5.0

    def test_invalid_q(self):
        with pytest.raises(ValueError):
            quantile([1.0], 2.0)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            quantile([], 0.5)

    def test_quartiles_ordered(self):
        q1, q2, q3 = quartiles([5.0, 1.0, 9.0, 3.0, 7.0])
        assert q1 <= q2 <= q3

    @given(float_lists, st.floats(min_value=0.0, max_value=1.0))
    def test_quantile_within_range(self, values, q):
        result = quantile(values, q)
        assert min(values) - 1e-9 <= result <= max(values) + 1e-9


class TestBootstrap:
    def test_interval_contains_point(self):
        values = [1.0, 2.0, 3.0, 4.0, 5.0] * 4
        ci = bootstrap_interval(values, resamples=200)
        assert ci.low <= ci.point <= ci.high

    def test_deterministic_given_seed(self):
        values = [1.0, 5.0, 3.0, 2.0]
        a = bootstrap_interval(values, resamples=100, seed=7)
        b = bootstrap_interval(values, resamples=100, seed=7)
        assert (a.low, a.high) == (b.low, b.high)

    def test_width_shrinks_with_sample_size(self):
        import random

        rng = random.Random(1)
        small = [rng.gauss(0, 1) for _ in range(10)]
        large = [rng.gauss(0, 1) for _ in range(400)]
        assert (
            bootstrap_interval(large, resamples=200).width
            < bootstrap_interval(small, resamples=200).width
        )

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            bootstrap_interval([])
        with pytest.raises(ValueError):
            bootstrap_interval([1.0], resamples=5)
        with pytest.raises(ValueError):
            bootstrap_interval([1.0], confidence=1.0)


class TestRelativeError:
    def test_basic(self):
        assert relative_error(1.1, 1.0) == pytest.approx(0.1)

    def test_zero_reference_nonzero_measured(self):
        assert relative_error(1.0, 0.0) == float("inf")

    def test_zero_both(self):
        assert relative_error(0.0, 0.0) == 0.0


class TestMonotone:
    def test_strictly_decreasing(self):
        assert monotone_decreasing([5.0, 4.0, 3.0])

    def test_rising_fails(self):
        assert not monotone_decreasing([3.0, 4.0])

    def test_slack_allows_noise(self):
        assert monotone_decreasing([5.0, 4.0, 4.5, 3.0], slack=1.0)

    def test_negative_slack_rejected(self):
        with pytest.raises(ValueError):
            monotone_decreasing([1.0], slack=-0.1)
