"""``python -m repro validate`` end to end, through ``cli.main``.

The two acceptance pins: the full run exits zero on a pristine tree,
and it exits nonzero the moment the link physics in ``rf/link.py`` is
monkeypatched into a non-reciprocal channel.
"""

import dataclasses
import json

import pytest

import repro.rf.link as link_mod
import repro.validate.golden as golden_mod
from repro.cli import main
from repro.validate import run_validation


class TestFullRun:
    def test_pristine_tree_exits_zero(self, capsys):
        """The whole suite — all three pillars — passes on main."""
        assert main(["validate"]) == 0
        out = capsys.readouterr().out
        assert "validate: PASS" in out
        assert "invariants" in out and "metamorphic" in out
        assert "golden" in out

    def test_json_payload_shape(self, capsys):
        code = main(["validate", "--pillar", "golden", "--json"])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["ok"] is True
        assert payload["total"] == len(golden_mod.GOLDEN_SCENARIOS)
        assert {c["pillar"] for c in payload["checks"]} == {"golden"}


class TestReciprocityViolation:
    def test_broken_link_physics_exits_nonzero(self, capsys, monkeypatch):
        """Monkeypatch ``rf/link.py`` into a non-reciprocal channel:
        validate must fail and the report must name the check."""
        original = link_mod.compose_link

        def lopsided(*args, **kwargs):
            result = original(*args, **kwargs)
            return dataclasses.replace(
                result, reverse_power_dbm=result.reverse_power_dbm + 2.0
            )

        monkeypatch.setattr(link_mod, "compose_link", lopsided)
        code = main(["validate", "--check", "link_reciprocity"])
        assert code != 0
        out = capsys.readouterr().out
        assert "[FAIL] link_reciprocity" in out
        assert "validate: FAIL" in out


class TestSelection:
    def test_check_filter_runs_only_named_checks(self):
        report = run_validation(checks=["link_reciprocity"])
        assert [r.name for r in report.results] == ["link_reciprocity"]
        assert report.exit_code == 0

    def test_unknown_check_name_fails_loudly(self, capsys):
        assert main(["validate", "--check", "no_such_law"]) == 1
        assert "no_such_law" in capsys.readouterr().out

    def test_unknown_pillar_rejected_by_parser(self):
        with pytest.raises(SystemExit):
            main(["validate", "--pillar", "vibes"])

    def test_golden_check_selector(self, capsys):
        code = main(["validate", "--check", "golden:tag-plane-3m"])
        assert code == 0
        out = capsys.readouterr().out
        assert "golden:tag-plane-3m" in out
        # Only the named check ran.
        assert "(1/1 checks)" in out


class TestDeepProfile:
    def test_env_var_enables_deep(self, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_VALIDATE_DEEP", "1")
        code = main(
            ["validate", "--check", "codec_round_trips", "--json"]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["deep"] is True

    def test_flag_enables_deep(self, capsys, monkeypatch):
        monkeypatch.delenv("REPRO_VALIDATE_DEEP", raising=False)
        code = main(
            ["validate", "--deep", "--check", "codec_round_trips", "--json"]
        )
        assert code == 0
        assert json.loads(capsys.readouterr().out)["deep"] is True


class TestBlessFlow:
    def test_bless_writes_selected_document(
        self, tmp_path, capsys, monkeypatch
    ):
        monkeypatch.setattr(golden_mod, "GOLDEN_DIR", str(tmp_path))
        code = main(["validate", "--bless", "--golden", "tag-plane-3m"])
        assert code == 0
        out = capsys.readouterr().out
        assert "blessed" in out and "tag-plane-3m.json" in out
        assert (tmp_path / "tag-plane-3m.json").exists()

    def test_bless_then_validate_round_trips(self, tmp_path, monkeypatch):
        monkeypatch.setattr(golden_mod, "GOLDEN_DIR", str(tmp_path))
        assert main(["validate", "--bless", "--golden", "tag-plane-3m"]) == 0
        assert (
            main(["validate", "--check", "golden:tag-plane-3m"]) == 0
        )
