"""The invariant pillar: fast checks pass on the pristine tree, and the
reciprocity check actually *fails* when the link physics is broken.

The injection test is the acceptance contract of the whole pillar: a
checker that cannot detect a deliberately non-reciprocal channel is
decoration, not validation.
"""

import dataclasses
import math

import repro.rf.link as link_mod
from repro.validate.invariants import (
    INVARIANT_CHECKS,
    check_antenna_pattern_symmetry,
    check_link_reciprocity,
    check_monotone_tx_power,
    expected_frame_successes,
)

SEED = 20070625


class TestRegistry:
    def test_all_checks_registered(self):
        assert list(INVARIANT_CHECKS) == [
            "link_reciprocity",
            "antenna_pattern_symmetry",
            "monotone_tx_power",
            "monotone_distance",
            "monotone_tag_count",
            "independence_model",
            "aloha_efficiency",
        ]


class TestFastChecksPass:
    def test_link_reciprocity(self):
        result = check_link_reciprocity(SEED, deep=False)
        assert result.passed, result.detail
        assert result.pillar == "invariants"

    def test_antenna_pattern_symmetry(self):
        result = check_antenna_pattern_symmetry(SEED, deep=False)
        assert result.passed, result.detail

    def test_monotone_tx_power(self):
        result = check_monotone_tx_power(SEED, deep=False)
        assert result.passed, result.detail


class TestExpectedFrameSuccesses:
    def test_solo_tag_always_succeeds(self):
        assert expected_frame_successes(1, 16) == 1.0

    def test_matches_analytical_form(self):
        n, frame = 32, 32
        expected = n * (1.0 - 1.0 / frame) ** (n - 1)
        assert math.isclose(
            expected_frame_successes(n, frame), expected, rel_tol=1e-12
        )

    def test_throughput_peaks_at_frame_equals_population(self):
        n = 32
        efficiency = {
            frame: expected_frame_successes(n, frame) / frame
            for frame in (8, 16, 32, 64, 128)
        }
        assert max(efficiency, key=efficiency.get) == n


class TestReciprocityViolationDetected:
    def test_reverse_only_perturbation_fails_the_check(self, monkeypatch):
        """Inflate only the reverse link: the one-way gains diverge and
        the checker must report the asymmetry, not average it away."""
        original = link_mod.compose_link

        def lopsided(*args, **kwargs):
            result = original(*args, **kwargs)
            return dataclasses.replace(
                result,
                reverse_power_dbm=result.reverse_power_dbm + 3.0,
            )

        monkeypatch.setattr(link_mod, "compose_link", lopsided)
        result = check_link_reciprocity(SEED, deep=False)
        assert not result.passed
        assert "asymmetric" in result.detail
        # The counterexample carries both gains for debugging.
        assert result.metrics["g_forward_db"] != result.metrics["g_reverse_db"]

    def test_forward_only_perturbation_also_fails(self, monkeypatch):
        original = link_mod.compose_link

        def lopsided(*args, **kwargs):
            result = original(*args, **kwargs)
            return dataclasses.replace(
                result,
                forward_power_dbm=result.forward_power_dbm - 1.5,
            )

        monkeypatch.setattr(link_mod, "compose_link", lopsided)
        assert not check_link_reciprocity(SEED, deep=False).passed
