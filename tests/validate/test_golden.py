"""The golden-trace pillar: pinned documents match the tree, the digest
is sensitive to a *single flipped slot outcome*, and the bless flow
round-trips.

The single-flip test is the acceptance contract for the whole pillar:
a golden suite that cannot see one slot changing from "success" to
"collision" cannot see a protocol regression either.
"""

import json
import os

import pytest

import repro.validate.golden as golden_mod
from repro.obs.jsonl import dump_records
from repro.obs.recorder import Recorder
from repro.sim.rng import SeedSequence
from repro.validate.golden import (
    GOLDEN_SCENARIOS,
    bless_golden,
    check_golden,
    compute_golden_doc,
    diff_golden_docs,
    golden_path,
    records_digest,
)

#: The smallest pinned scenario — the cheapest one to recompute in tests.
SMALL = "tag-plane-3m"


def _scenario_record_lines(scenario):
    """The exact canonical JSONL lines ``compute_golden_doc`` digests."""
    recorder = Recorder(
        capture_link_budget=True, capture_slots=True, capture_rng=True
    )
    sim, carriers, fault_plan = scenario.build()
    sim.recorder = recorder
    lines = []
    for trial in range(scenario.trials):
        result = sim.run_pass(
            list(carriers),
            SeedSequence(scenario.seed),
            trial,
            fault_plan=fault_plan,
        )
        lines.extend(dump_records(result.obs.records()))
    return lines


class TestPinnedDocuments:
    def test_every_scenario_has_a_pinned_file(self):
        for name in GOLDEN_SCENARIOS:
            assert os.path.exists(golden_path(name)), name

    def test_no_orphan_documents(self):
        on_disk = {
            os.path.splitext(entry)[0]
            for entry in os.listdir(golden_mod.GOLDEN_DIR)
            if entry.endswith(".json")
        }
        assert on_disk == set(GOLDEN_SCENARIOS)

    def test_small_scenario_matches_its_pin(self):
        (result,) = check_golden(names=[SMALL])
        assert result.passed, result.detail
        with open(golden_path(SMALL), encoding="utf-8") as handle:
            pinned = json.load(handle)
        assert result.metrics["records_sha256"] == pinned["records_sha256"]


class TestRecordsDigest:
    def test_deterministic(self):
        lines = ['{"a": 1}', '{"b": 2}']
        assert records_digest(lines) == records_digest(list(lines))

    def test_order_sensitive(self):
        assert records_digest(["x", "y"]) != records_digest(["y", "x"])

    def test_single_character_sensitive(self):
        assert records_digest(['{"a": 1}']) != records_digest(['{"a": 2}'])


class TestSingleFlippedSlotOutcomeDetected:
    def test_one_flip_changes_digest_and_fails_the_diff(self):
        """Flip exactly one slot record's outcome in the canonical event
        stream: the digest must change and the diff must name it."""
        scenario = GOLDEN_SCENARIOS[SMALL]
        lines = _scenario_record_lines(scenario)
        with open(golden_path(SMALL), encoding="utf-8") as handle:
            pinned = json.load(handle)
        # The freshly computed stream still matches the pin...
        assert records_digest(lines) == pinned["records_sha256"]
        assert len(lines) == pinned["record_count"]

        flip_at = next(
            i
            for i, line in enumerate(lines)
            if json.loads(line).get("type") == "slot"
            and json.loads(line)["outcome"] == "success"
        )
        record = json.loads(lines[flip_at])
        record["outcome"] = "collision"
        tampered = list(lines)
        tampered[flip_at] = json.dumps(record, sort_keys=True)
        assert tampered[flip_at] != lines[flip_at]

        # ...but one flipped slot outcome drifts the digest,
        tampered_digest = records_digest(tampered)
        assert tampered_digest != pinned["records_sha256"]

        # and the document diff pinpoints the drifted field.
        drifted = dict(pinned)
        drifted["records_sha256"] = tampered_digest
        diffs = diff_golden_docs(pinned, drifted)
        assert any("records_sha256" in diff for diff in diffs)

    def test_summary_drift_is_also_named(self):
        with open(golden_path(SMALL), encoding="utf-8") as handle:
            pinned = json.load(handle)
        drifted = json.loads(json.dumps(pinned))
        drifted["summary"]["slot_outcomes"]["success"] += 1
        diffs = diff_golden_docs(pinned, drifted)
        assert len(diffs) == 1
        assert diffs[0].startswith("summary.slot_outcomes")

    def test_identical_documents_diff_clean(self):
        with open(golden_path(SMALL), encoding="utf-8") as handle:
            pinned = json.load(handle)
        assert diff_golden_docs(pinned, json.loads(json.dumps(pinned))) == []


class TestCheckGolden:
    def test_unknown_scenario_fails_not_raises(self):
        (result,) = check_golden(names=["no-such-trace"])
        assert not result.passed
        assert "unknown golden scenario" in result.detail

    def test_missing_document_points_at_bless(self, tmp_path, monkeypatch):
        monkeypatch.setattr(golden_mod, "GOLDEN_DIR", str(tmp_path))
        (result,) = check_golden(names=[SMALL])
        assert not result.passed
        assert "--bless" in result.detail

    def test_tampered_pin_fails_the_check(self, tmp_path, monkeypatch):
        with open(golden_path(SMALL), encoding="utf-8") as handle:
            pinned = json.load(handle)
        pinned["records_sha256"] = "0" * 64
        monkeypatch.setattr(golden_mod, "GOLDEN_DIR", str(tmp_path))
        with open(golden_path(SMALL), "w", encoding="utf-8") as handle:
            json.dump(pinned, handle)
        (result,) = check_golden(names=[SMALL])
        assert not result.passed
        assert "records_sha256" in result.detail


class TestBless:
    def test_bless_then_check_round_trips(self, tmp_path, monkeypatch):
        monkeypatch.setattr(golden_mod, "GOLDEN_DIR", str(tmp_path))
        (path,) = bless_golden(names=[SMALL])
        assert os.path.dirname(path) == str(tmp_path)
        (result,) = check_golden(names=[SMALL])
        assert result.passed, result.detail

    def test_bless_unknown_scenario_raises(self, tmp_path, monkeypatch):
        monkeypatch.setattr(golden_mod, "GOLDEN_DIR", str(tmp_path))
        with pytest.raises(ValueError):
            bless_golden(names=["no-such-trace"])

    def test_blessed_file_is_canonical_json(self):
        with open(golden_path(SMALL), encoding="utf-8") as handle:
            raw = handle.read()
        doc = json.loads(raw)
        assert raw == json.dumps(doc, indent=2, sort_keys=True) + "\n"

    def test_golden_seed_ignores_cli_seed(self):
        doc = compute_golden_doc(GOLDEN_SCENARIOS[SMALL])
        assert doc["seed"] == golden_mod.GOLDEN_SEED
