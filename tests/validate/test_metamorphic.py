"""The metamorphic pillar: the fast checks pass, and the relabeling
transform actually does what the equivalence claim needs it to do."""

from repro.obs.explain import run_instrumented_pass
from repro.validate.metamorphic import (
    METAMORPHIC_CHECKS,
    check_codec_round_trips,
    check_record_round_trips,
    check_redundancy_never_hurts,
    relabel_records,
)

SEED = 20070625


class TestRegistry:
    def test_all_checks_registered(self):
        assert list(METAMORPHIC_CHECKS) == [
            "redundancy_never_hurts",
            "epc_relabel_aggregates",
            "seed_split_merge",
            "codec_round_trips",
            "record_round_trips",
        ]


class TestFastChecksPass:
    def test_redundancy_never_hurts(self):
        result = check_redundancy_never_hurts(SEED, deep=False)
        assert result.passed, result.detail
        assert result.pillar == "metamorphic"

    def test_codec_round_trips(self):
        result = check_codec_round_trips(SEED, deep=False)
        assert result.passed, result.detail

    def test_record_round_trips(self):
        result = check_record_round_trips(SEED, deep=False)
        assert result.passed, result.detail


class TestRelabelRecords:
    def test_bijection_renames_without_losing_records(self):
        _, _, obs = run_instrumented_pass("walk", SEED)
        mapping = {
            out.epc: f"RENAMED-{i:04d}"
            for i, out in enumerate(obs.tag_outcomes)
        }
        tags, slots = relabel_records(
            obs.tag_outcomes, obs.slot_records, mapping
        )
        assert len(tags) == len(obs.tag_outcomes)
        assert len(slots) == len(obs.slot_records)
        assert {t.epc for t in tags} == set(mapping.values())
        # Read/miss verdicts ride along unchanged.
        assert [t.read for t in tags] == [
            t.read for t in obs.tag_outcomes
        ]
        # Slot responders are renamed consistently with the tags.
        for before, after in zip(obs.slot_records, slots):
            assert after.outcome == before.outcome
            assert after.responders == tuple(
                mapping[epc] for epc in before.responders
            )
