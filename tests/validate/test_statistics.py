"""Unit tests for the statistical-equivalence helpers.

Interval arithmetic bugs silently turn every stochastic invariant into
a tautology (or a flake), so these pins are deliberately exact.
"""

import math

import pytest

from repro.validate.statistics import (
    Agreement,
    Z_95,
    binomial_agreement,
    holm_all_within,
    mean_confidence_interval,
    wilson_interval,
)


class TestWilsonInterval:
    def test_contains_point_estimate(self):
        low, high = wilson_interval(30, 100)
        assert low < 0.3 < high

    def test_bounded_to_unit_interval(self):
        # At p=0 the algebra gives low == centre - half == 0 up to
        # float residue; the clamp guarantees it never goes negative.
        low, high = wilson_interval(0, 10)
        assert 0.0 <= low < 1e-12 and high < 1.0
        low, high = wilson_interval(10, 10)
        assert low > 0.0 and 1.0 - 1e-12 < high <= 1.0

    def test_symmetric_at_half(self):
        low, high = wilson_interval(50, 100)
        assert math.isclose(0.5 - low, high - 0.5, rel_tol=1e-12)

    def test_narrows_with_more_trials(self):
        narrow = wilson_interval(500, 1000)
        wide = wilson_interval(50, 100)
        assert narrow[1] - narrow[0] < wide[1] - wide[0]

    def test_rejects_bad_counts(self):
        with pytest.raises(ValueError):
            wilson_interval(1, 0)
        with pytest.raises(ValueError):
            wilson_interval(11, 10)
        with pytest.raises(ValueError):
            wilson_interval(-1, 10)

    def test_known_value_against_closed_form(self):
        # Hand-computed Wilson bounds for 8/10 at z = Z_95.
        n, p, z = 10.0, 0.8, Z_95
        denom = 1.0 + z * z / n
        centre = (p + z * z / (2 * n)) / denom
        half = (z / denom) * math.sqrt(p * (1 - p) / n + z * z / (4 * n * n))
        low, high = wilson_interval(8, 10)
        assert math.isclose(low, centre - half, rel_tol=1e-12)
        assert math.isclose(high, centre + half, rel_tol=1e-12)


class TestAgreement:
    def test_within(self):
        a = Agreement(measured=0.5, predicted=0.52, low=0.45, high=0.55)
        assert a.within and not a.below

    def test_below_means_measured_shortfall(self):
        a = Agreement(measured=0.5, predicted=0.60, low=0.45, high=0.55)
        assert a.below and not a.within

    def test_prediction_under_interval(self):
        a = Agreement(measured=0.5, predicted=0.40, low=0.45, high=0.55)
        assert not a.within and not a.below

    def test_binomial_agreement_wires_counts(self):
        a = binomial_agreement(30, 100, predicted=0.3)
        assert a.measured == 0.3
        assert a.predicted == 0.3
        assert a.within


class TestMeanConfidenceInterval:
    def test_single_value_degenerates(self):
        assert mean_confidence_interval([2.5]) == (2.5, 2.5, 2.5)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            mean_confidence_interval([])

    def test_known_sample(self):
        values = [1.0, 2.0, 3.0]
        mean, low, high = mean_confidence_interval(values)
        assert mean == 2.0
        # Sample variance 1.0, n=3 -> half-width z/sqrt(3).
        assert math.isclose(high - mean, Z_95 / math.sqrt(3), rel_tol=1e-12)
        assert math.isclose(mean - low, high - mean, rel_tol=1e-12)


class TestHolmAllWithin:
    def test_all_within_passes(self):
        hits = [Agreement(0.5, 0.5, 0.4, 0.6)] * 5
        assert holm_all_within(hits)

    def test_allowance_consumed_by_misses(self):
        hit = Agreement(0.5, 0.5, 0.4, 0.6)
        miss = Agreement(0.5, 0.9, 0.4, 0.6)
        assert holm_all_within([hit, miss], allow_misses=1)
        assert not holm_all_within([hit, miss, miss], allow_misses=1)
        assert not holm_all_within([miss], allow_misses=0)
