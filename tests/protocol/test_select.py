"""Tests for Select-based population filtering."""

import pytest

from repro.protocol.commands import SelectCommand
from repro.protocol.epc import EpcFactory
from repro.protocol.select import (
    EPC_BANK_OFFSET_BITS,
    SelectError,
    SelectionState,
    mask_for_prefix_hex,
    tag_matches,
)


def _populations():
    """Two product families with distinct company prefixes."""
    family_a = EpcFactory(company_prefix=614141).batch(5)
    family_b = EpcFactory(company_prefix=98765).batch(5)
    return (
        [e.to_hex() for e in family_a],
        [e.to_hex() for e in family_b],
    )


class TestTagMatches:
    def test_empty_mask_matches_all(self):
        epc = EpcFactory().next_epc().to_hex()
        assert tag_matches(SelectCommand(mask=()), epc)

    def test_prefix_mask_matches_family(self):
        family_a, family_b = _populations()
        select = mask_for_prefix_hex(family_a[0][:8])
        assert all(tag_matches(select, epc) for epc in family_a)
        assert not any(tag_matches(select, epc) for epc in family_b)

    def test_full_epc_mask_matches_one(self):
        family_a, _ = _populations()
        select = mask_for_prefix_hex(family_a[0])
        matching = [epc for epc in family_a if tag_matches(select, epc)]
        assert matching == [family_a[0]]

    def test_unsupported_bank(self):
        epc = EpcFactory().next_epc().to_hex()
        with pytest.raises(SelectError, match="bank"):
            tag_matches(SelectCommand(mem_bank=2, mask=(1,)), epc)

    def test_pointer_into_pc_words_rejected(self):
        epc = EpcFactory().next_epc().to_hex()
        with pytest.raises(SelectError, match="PC/CRC"):
            tag_matches(
                SelectCommand(pointer=0x10, mask=(1,)), epc
            )

    def test_mask_past_epc_never_matches(self):
        epc = EpcFactory().next_epc().to_hex()
        long_mask = tuple([0] * 97)
        select = SelectCommand(
            pointer=EPC_BANK_OFFSET_BITS, mask=long_mask
        )
        assert not tag_matches(select, epc)

    def test_invalid_epc_hex(self):
        with pytest.raises(SelectError):
            tag_matches(SelectCommand(mask=(1,)), "zz" * 12)


class TestMaskForPrefix:
    def test_mask_length(self):
        select = mask_for_prefix_hex("30AB")
        assert len(select.mask) == 16
        assert select.pointer == EPC_BANK_OFFSET_BITS

    def test_empty_prefix_rejected(self):
        with pytest.raises(SelectError):
            mask_for_prefix_hex("")

    def test_invalid_hex_rejected(self):
        with pytest.raises(SelectError):
            mask_for_prefix_hex("xy")


class TestSelectionState:
    def test_action0_asserts_matching(self):
        family_a, family_b = _populations()
        population = family_a + family_b
        state = SelectionState()
        state.apply(mask_for_prefix_hex(family_a[0][:10]), population)
        assert state.filter(population) == family_a

    def test_action4_inverts(self):
        family_a, family_b = _populations()
        population = family_a + family_b
        select = mask_for_prefix_hex(family_a[0][:10])
        inverted = SelectCommand(
            target=select.target,
            action=4,
            mem_bank=select.mem_bank,
            pointer=select.pointer,
            mask=select.mask,
        )
        state = SelectionState()
        state.apply(inverted, population)
        assert state.filter(population) == family_b

    def test_reapply_updates_flags(self):
        family_a, family_b = _populations()
        population = family_a + family_b
        state = SelectionState()
        state.apply(mask_for_prefix_hex(family_a[0][:10]), population)
        state.apply(mask_for_prefix_hex(family_b[0][:10]), population)
        assert state.filter(population) == family_b

    def test_unsupported_action(self):
        state = SelectionState()
        with pytest.raises(SelectError, match="action"):
            state.apply(SelectCommand(action=2), ["3" + "0" * 23])

    def test_reset(self):
        family_a, _ = _populations()
        state = SelectionState()
        state.apply(mask_for_prefix_hex(family_a[0][:10]), family_a)
        state.reset()
        assert state.filter(family_a) == []

    def test_airtime_saved_composes_with_inventory(self):
        """End-to-end: a Select keeps a Gen 2 round off ambient tags."""
        from repro.protocol.gen2 import (
            QAlgorithm,
            TagChannel,
            run_inventory_round,
        )
        from repro.sim.rng import RandomStream

        family_a, family_b = _populations()
        population = family_a + family_b
        state = SelectionState()
        state.apply(mask_for_prefix_hex(family_a[0][:10]), population)
        filtered = state.filter(population)

        def channel(epc):
            return TagChannel(energized=True, reply_decode_p=1.0)

        result = run_inventory_round(
            filtered, channel, RandomStream(1), QAlgorithm(q_initial=4)
        )
        assert set(result.read_epcs) <= set(family_a)
