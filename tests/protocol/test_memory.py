"""Tests for Gen 2 tag memory banks and locks."""

import pytest

from repro.protocol.crc import crc16_bytes
from repro.protocol.memory import (
    LockState,
    MemoryBank,
    MemoryError,
    TagMemory,
)

EPC = "30AA00000000000000000042"


def _memory(**kwargs):
    return TagMemory(epc_hex=EPC, **kwargs)


class TestLayout:
    def test_epc_bank_contains_epc(self):
        memory = _memory()
        assert memory.stored_epc_hex == EPC

    def test_stored_crc_consistent(self):
        memory = _memory()
        crc_word, pc_word = memory.read_words(MemoryBank.EPC, 0, 2)
        epc_bytes = bytes.fromhex(EPC)
        assert crc_word == crc16_bytes(pc_word.to_bytes(2, "big") + epc_bytes)

    def test_pc_encodes_epc_length(self):
        memory = _memory()
        pc_word = memory.read_words(MemoryBank.EPC, 1, 1)[0]
        assert (pc_word >> 11) & 0x1F == 6  # six words of EPC

    def test_reserved_bank_holds_passwords(self):
        memory = _memory(kill_password=0xDEADBEEF, access_password=0x12345678)
        words = memory.read_words(MemoryBank.RESERVED, 0, 4)
        assert words == [0xDEAD, 0xBEEF, 0x1234, 0x5678]

    def test_tid_bank(self):
        memory = _memory(tid=0xE2001234)
        assert memory.read_words(MemoryBank.TID, 0, 2) == [0xE200, 0x1234]

    def test_invalid_epc_rejected(self):
        with pytest.raises(MemoryError):
            TagMemory(epc_hex="1234")


class TestReadWrite:
    def test_read_bounds(self):
        memory = _memory()
        with pytest.raises(MemoryError):
            memory.read_words(MemoryBank.TID, 1, 2)
        with pytest.raises(MemoryError):
            memory.read_words(MemoryBank.EPC, 0, 0)

    def test_write_and_read_back(self):
        memory = _memory()
        memory.write_word(MemoryBank.USER, 3, 0xCAFE)
        assert memory.read_words(MemoryBank.USER, 3, 1) == [0xCAFE]

    def test_write_bounds(self):
        memory = _memory()
        with pytest.raises(MemoryError):
            memory.write_word(MemoryBank.USER, 99, 0)

    def test_write_value_range(self):
        memory = _memory()
        with pytest.raises(MemoryError):
            memory.write_word(MemoryBank.USER, 0, 0x10000)


class TestLocks:
    def test_lock_requires_secured(self):
        memory = _memory()
        with pytest.raises(MemoryError, match="Secured"):
            memory.lock(MemoryBank.USER, LockState.PWD_WRITE, secured=False)

    def test_pwd_write_blocks_insecure_writes(self):
        memory = _memory()
        memory.lock(MemoryBank.USER, LockState.PWD_WRITE, secured=True)
        with pytest.raises(MemoryError, match="pwd-write"):
            memory.write_word(MemoryBank.USER, 0, 1, secured=False)
        memory.write_word(MemoryBank.USER, 0, 1, secured=True)  # allowed

    def test_permalock_blocks_everything(self):
        memory = _memory()
        memory.lock(MemoryBank.USER, LockState.PERMALOCKED, secured=True)
        with pytest.raises(MemoryError, match="permalocked"):
            memory.write_word(MemoryBank.USER, 0, 1, secured=True)
        with pytest.raises(MemoryError, match="permalocked"):
            memory.lock(MemoryBank.USER, LockState.UNLOCKED, secured=True)

    def test_permaunlock_blocks_future_locks(self):
        memory = _memory()
        memory.lock(MemoryBank.USER, LockState.PERMAUNLOCKED, secured=True)
        with pytest.raises(MemoryError, match="permaunlocked"):
            memory.lock(MemoryBank.USER, LockState.PWD_WRITE, secured=True)

    def test_lock_state_query(self):
        memory = _memory()
        assert memory.lock_state(MemoryBank.EPC) is LockState.UNLOCKED


class TestReencodeAndUserData:
    def test_reencode_updates_epc_and_crc(self):
        memory = _memory()
        new_epc = "30BB00000000000000000099"
        memory.reencode(new_epc)
        assert memory.stored_epc_hex == new_epc
        crc_word, pc_word = memory.read_words(MemoryBank.EPC, 0, 2)
        assert crc_word == crc16_bytes(
            pc_word.to_bytes(2, "big") + bytes.fromhex(new_epc)
        )

    def test_reencode_respects_locks(self):
        memory = _memory()
        memory.lock(MemoryBank.EPC, LockState.PWD_WRITE, secured=True)
        with pytest.raises(MemoryError):
            memory.reencode("30BB00000000000000000099", secured=False)

    def test_reencode_validates_input(self):
        memory = _memory()
        with pytest.raises(MemoryError):
            memory.reencode("xyz")

    def test_user_data_round_trip(self):
        memory = _memory()
        memory.write_user_data(b"LOT-2007-06")
        assert memory.read_user_data().rstrip(b"\x00") == b"LOT-2007-06"

    def test_user_data_too_long(self):
        memory = _memory(user_words=2)
        with pytest.raises(MemoryError):
            memory.write_user_data(b"12345")  # 5 bytes > 4
