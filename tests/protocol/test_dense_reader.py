"""Tests for reader-to-reader interference and dense-reader mode."""

import pytest

from repro.protocol.dense_reader import (
    DRM_ISOLATION_DB,
    ReaderRadio,
    carrier_coupling_db,
    interference_at_receiver_dbm,
    tdma_schedule,
)
from repro.rf.geometry import Vec3


def _radio(reader_id, x, drm=False):
    return ReaderRadio(
        reader_id=reader_id,
        position=Vec3(x, 1.0, 0.0),
        tx_power_dbm=30.0,
        antenna_gain_dbi=6.0,
        dense_reader_mode=drm,
    )


class TestCoupling:
    def test_coupling_negative_at_distance(self):
        assert carrier_coupling_db(2.0, 6.0, 6.0) < 0.0

    def test_coupling_decreases_with_distance(self):
        near = carrier_coupling_db(1.0, 6.0, 6.0)
        far = carrier_coupling_db(4.0, 6.0, 6.0)
        assert far < near

    def test_zero_distance_rejected(self):
        with pytest.raises(ValueError):
            carrier_coupling_db(0.0, 6.0, 6.0)


class TestInterference:
    def test_no_aggressors_returns_none(self):
        assert interference_at_receiver_dbm(_radio("v", 0.0), []) is None

    def test_self_not_an_aggressor(self):
        victim = _radio("v", 0.0)
        assert interference_at_receiver_dbm(victim, [victim]) is None

    def test_interference_is_strong_without_drm(self):
        """Two non-DRM readers 2 m apart couple tens of dB above any
        backscatter signal — the paper's 'severely reduced' reliability."""
        victim = _radio("v", -1.0)
        aggressor = _radio("a", 1.0)
        level = interference_at_receiver_dbm(victim, [aggressor], co_channel=True)
        # Backscatter arrives around -50 to -70 dBm; carrier leakage at
        # 2 m is vastly stronger.
        assert level > -30.0

    def test_drm_suppresses_interference(self):
        victim = _radio("v", -1.0, drm=True)
        aggressor = _radio("a", 1.0, drm=True)
        with_drm = interference_at_receiver_dbm(victim, [aggressor], True)
        without = interference_at_receiver_dbm(
            _radio("v", -1.0), [_radio("a", 1.0)], True
        )
        assert with_drm == pytest.approx(without - DRM_ISOLATION_DB)

    def test_off_channel_weaker_than_co_channel(self):
        victim = _radio("v", -1.0)
        aggressor = _radio("a", 1.0)
        co = interference_at_receiver_dbm(victim, [aggressor], co_channel=True)
        off = interference_at_receiver_dbm(victim, [aggressor], co_channel=False)
        assert off < co

    def test_multiple_aggressors_add(self):
        victim = _radio("v", 0.0)
        one = interference_at_receiver_dbm(victim, [_radio("a", 2.0)], True)
        two = interference_at_receiver_dbm(
            victim, [_radio("a", 2.0), _radio("b", -2.0)], True
        )
        assert two > one

    def test_drm_only_helps_when_both_support_it(self):
        # The paper's readers lacked DRM; a DRM-capable aggressor alone
        # does not save a non-DRM victim.
        victim = _radio("v", -1.0, drm=False)
        aggressor = _radio("a", 1.0, drm=True)
        level = interference_at_receiver_dbm(victim, [aggressor], True)
        baseline = interference_at_receiver_dbm(
            _radio("v", -1.0), [_radio("a", 1.0)], True
        )
        assert level == pytest.approx(baseline)


class TestTdma:
    def test_schedule_covers_dwell(self):
        schedule = tdma_schedule(["a0", "a1"], dwell_s=1.0)
        assert len(schedule) == 2
        assert schedule[0] == ("a0", 0.0, 0.5)
        assert schedule[1] == ("a1", 0.5, 0.5)

    def test_single_antenna_gets_everything(self):
        schedule = tdma_schedule(["a0"], dwell_s=2.0)
        assert schedule == (("a0", 0.0, 2.0),)

    def test_per_antenna_dwell_shrinks(self):
        """The cost of antenna redundancy: each antenna's airtime share
        halves with two antennas — the paper's 'slight decrease in
        performance when blocking was not an issue'."""
        one = tdma_schedule(["a0"], 1.0)[0][2]
        two = tdma_schedule(["a0", "a1"], 1.0)[0][2]
        assert two == pytest.approx(one / 2.0)

    def test_empty_antennas_rejected(self):
        with pytest.raises(ValueError):
            tdma_schedule([], 1.0)

    def test_invalid_dwell_rejected(self):
        with pytest.raises(ValueError):
            tdma_schedule(["a0"], 0.0)
