"""Tests for Gen 2 command frame encoding/decoding."""

import pytest
from hypothesis import given, strategies as st

from repro.protocol.commands import (
    AckCommand,
    CommandError,
    DivideRatio,
    QueryAdjustCommand,
    QueryCommand,
    QueryRepCommand,
    SelectCommand,
    Session,
    TagEncoding,
    Target,
    decode_command,
)


class TestQuery:
    def test_frame_is_22_bits(self):
        assert len(QueryCommand().to_bits()) == 22

    def test_round_trip_defaults(self):
        query = QueryCommand()
        assert QueryCommand.from_bits(query.to_bits()) == query

    def test_round_trip_all_fields(self):
        query = QueryCommand(
            dr=DivideRatio.DR_64_3,
            m=TagEncoding.MILLER_8,
            trext=True,
            sel=3,
            session=Session.S3,
            target=Target.B,
            q=15,
        )
        assert QueryCommand.from_bits(query.to_bits()) == query

    def test_crc_flip_detected(self):
        bits = QueryCommand().to_bits()
        bits[5] ^= 1
        with pytest.raises(CommandError, match="CRC"):
            QueryCommand.from_bits(bits)

    def test_invalid_q(self):
        with pytest.raises(CommandError):
            QueryCommand(q=16)

    def test_invalid_sel(self):
        with pytest.raises(CommandError):
            QueryCommand(sel=4)

    def test_wrong_length(self):
        with pytest.raises(CommandError):
            QueryCommand.from_bits([0] * 21)

    @given(
        st.sampled_from(list(Session)),
        st.sampled_from(list(Target)),
        st.integers(min_value=0, max_value=15),
    )
    def test_round_trip_property(self, session, target, q):
        query = QueryCommand(session=session, target=target, q=q)
        assert QueryCommand.from_bits(query.to_bits()) == query


class TestQueryRep:
    def test_round_trip(self):
        for session in Session:
            cmd = QueryRepCommand(session=session)
            assert QueryRepCommand.from_bits(cmd.to_bits()) == cmd

    def test_frame_is_4_bits(self):
        assert len(QueryRepCommand().to_bits()) == 4

    def test_bad_frame(self):
        with pytest.raises(CommandError):
            QueryRepCommand.from_bits([1, 0, 0, 0])


class TestQueryAdjust:
    def test_round_trip_all_updn(self):
        for updn in (-1, 0, 1):
            cmd = QueryAdjustCommand(session=Session.S2, updn=updn)
            assert QueryAdjustCommand.from_bits(cmd.to_bits()) == cmd

    def test_invalid_updn(self):
        with pytest.raises(CommandError):
            QueryAdjustCommand(updn=2)

    def test_invalid_updn_bits(self):
        bits = QueryAdjustCommand(updn=0).to_bits()
        bits[6:9] = [1, 0, 1]
        with pytest.raises(CommandError):
            QueryAdjustCommand.from_bits(bits)


class TestAck:
    def test_round_trip(self):
        cmd = AckCommand(rn16=0xBEEF)
        assert AckCommand.from_bits(cmd.to_bits()) == cmd

    def test_frame_is_18_bits(self):
        assert len(AckCommand(rn16=0).to_bits()) == 18

    def test_rn16_out_of_range(self):
        with pytest.raises(CommandError):
            AckCommand(rn16=0x10000)

    @given(st.integers(min_value=0, max_value=0xFFFF))
    def test_round_trip_property(self, rn16):
        cmd = AckCommand(rn16=rn16)
        assert AckCommand.from_bits(cmd.to_bits()).rn16 == rn16


class TestSelect:
    def test_round_trip_empty_mask(self):
        cmd = SelectCommand()
        assert SelectCommand.from_bits(cmd.to_bits()) == cmd

    def test_round_trip_with_mask(self):
        cmd = SelectCommand(mask=(1, 0, 1, 1, 0, 0, 1, 0), truncate=True)
        assert SelectCommand.from_bits(cmd.to_bits()) == cmd

    def test_crc_protects_mask(self):
        bits = SelectCommand(mask=(1, 0, 1)).to_bits()
        bits[30] ^= 1
        with pytest.raises(CommandError, match="CRC"):
            SelectCommand.from_bits(bits)

    def test_invalid_mask_bits(self):
        with pytest.raises(CommandError):
            SelectCommand(mask=(0, 2))

    def test_invalid_bank(self):
        with pytest.raises(CommandError):
            SelectCommand(mem_bank=4)

    def test_length_mismatch(self):
        bits = SelectCommand(mask=(1, 1)).to_bits()
        with pytest.raises(CommandError):
            SelectCommand.from_bits(bits[:-1])

    @given(st.lists(st.integers(min_value=0, max_value=1), max_size=32))
    def test_round_trip_property(self, mask):
        cmd = SelectCommand(mask=tuple(mask))
        assert SelectCommand.from_bits(cmd.to_bits()) == cmd


class TestDispatch:
    def test_dispatch_each_kind(self):
        assert isinstance(
            decode_command(QueryCommand().to_bits()), QueryCommand
        )
        assert isinstance(
            decode_command(QueryRepCommand().to_bits()), QueryRepCommand
        )
        assert isinstance(
            decode_command(QueryAdjustCommand().to_bits()), QueryAdjustCommand
        )
        assert isinstance(decode_command(AckCommand(1).to_bits()), AckCommand)
        assert isinstance(
            decode_command(SelectCommand().to_bits()), SelectCommand
        )

    def test_nak(self):
        assert decode_command([1, 1, 0, 0, 0, 0, 0, 0]) == "NAK"

    def test_unknown_prefix(self):
        with pytest.raises(CommandError):
            decode_command([1, 1, 1, 1, 0, 0])
