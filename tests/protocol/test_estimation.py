"""Tests for tag-population estimators."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.protocol.epc import EpcFactory
from repro.protocol.estimation import (
    averaged_zero_slot_estimate,
    collision_fraction,
    vogt_estimate,
    vogt_lower_bound,
    zero_slot_estimate,
)
from repro.protocol.gen2 import TagChannel
from repro.protocol.aloha import run_aloha_frame
from repro.sim.rng import RandomStream


class TestLowerBound:
    def test_no_collisions(self):
        assert vogt_lower_bound(success=5, collision=0) == 5.0

    def test_collisions_hide_two(self):
        assert vogt_lower_bound(success=3, collision=4) == 11.0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            vogt_lower_bound(-1, 0)


class TestVogtEstimate:
    def test_empty_frame(self):
        assert vogt_estimate(0, 0, 0) == 0.0

    def test_no_collisions_returns_successes(self):
        assert vogt_estimate(10, 6, 0) == 6.0

    def test_estimate_at_least_lower_bound(self):
        estimate = vogt_estimate(4, 6, 6)
        assert estimate >= vogt_lower_bound(6, 6)

    def test_estimate_increases_with_collisions(self):
        low = vogt_estimate(10, 4, 2)
        high = vogt_estimate(4, 4, 8)
        assert high > low

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            vogt_estimate(-1, 0, 0)

    def test_reasonable_on_simulated_frames(self):
        """Estimate a real ALOHA frame's population within a factor of 2."""
        population = [e.to_hex() for e in EpcFactory().batch(24)]

        def channel(epc):
            return TagChannel(energized=True, reply_decode_p=1.0)

        frame = run_aloha_frame(
            population, channel, RandomStream(1), frame_size=32
        )
        empty = sum(1 for s in frame.slots if s.kind == "empty")
        success = sum(1 for s in frame.slots if s.kind == "success")
        collision = sum(1 for s in frame.slots if s.kind == "collision")
        estimate = vogt_estimate(empty, success, collision)
        assert 12 <= estimate <= 48


class TestZeroSlotEstimate:
    def test_all_empty_means_zero_tags(self):
        assert zero_slot_estimate(16, 16) == 0.0

    def test_none_empty_means_saturated(self):
        assert zero_slot_estimate(16, 0) == float("inf")

    def test_known_value(self):
        # n = ln(z)/ln(1 - 1/N); z = 0.5, N = 16 -> ~10.7 tags.
        estimate = zero_slot_estimate(16, 8)
        assert estimate == pytest.approx(10.74, abs=0.1)

    def test_invalid_frame(self):
        with pytest.raises(ValueError):
            zero_slot_estimate(1, 0)

    def test_invalid_count(self):
        with pytest.raises(ValueError):
            zero_slot_estimate(16, 17)

    @given(st.integers(min_value=1, max_value=31))
    def test_monotone_in_empties(self, empties):
        # More empty slots -> fewer tags estimated.
        fewer = zero_slot_estimate(32, empties)
        more = zero_slot_estimate(32, min(empties + 1, 31))
        assert more <= fewer + 1e-9


class TestAveragedEstimate:
    def test_average_of_probes(self):
        single = zero_slot_estimate(16, 8)
        averaged = averaged_zero_slot_estimate(16, [8, 8, 8])
        assert averaged == pytest.approx(single)

    def test_empty_probe_list_rejected(self):
        with pytest.raises(ValueError):
            averaged_zero_slot_estimate(16, [])

    def test_all_saturated_returns_inf(self):
        assert averaged_zero_slot_estimate(16, [0, 0]) == float("inf")

    def test_variance_reduction(self):
        """Averaging repeated probes tracks the true population better
        than typical single probes."""
        population = [e.to_hex() for e in EpcFactory().batch(20)]

        def channel(epc):
            return TagChannel(energized=True, reply_decode_p=1.0)

        empties = []
        for seed in range(12):
            frame = run_aloha_frame(
                population, channel, RandomStream(seed), frame_size=32
            )
            empties.append(sum(1 for s in frame.slots if s.kind == "empty"))
        estimate = averaged_zero_slot_estimate(32, empties)
        assert 15 <= estimate <= 26


class TestCollisionFraction:
    def test_zero_for_empty_frame(self):
        assert collision_fraction(0, 0, 0) == 0.0

    def test_fraction(self):
        assert collision_fraction(2, 2, 4) == pytest.approx(0.5)
