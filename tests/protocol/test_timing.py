"""Tests for Gen 2 air-interface timing."""

import pytest

from repro.protocol.timing import (
    DEFAULT_TIMING,
    PAPER_SECONDS_PER_TAG,
    Gen2Timing,
)


class TestValidation:
    def test_default_is_valid(self):
        assert DEFAULT_TIMING.tari_s == 25e-6
        assert DEFAULT_TIMING.tag_encoding_symbols_per_bit == 4

    def test_bad_tari(self):
        with pytest.raises(ValueError):
            Gen2Timing(tari_s=0.0)

    def test_bad_blf(self):
        with pytest.raises(ValueError):
            Gen2Timing(blf_hz=-1.0)

    def test_bad_encoding(self):
        with pytest.raises(ValueError):
            Gen2Timing(tag_encoding_symbols_per_bit=3)


class TestDurations:
    def test_slot_ordering(self):
        # Success costs the most airtime, empties the least.
        t = DEFAULT_TIMING
        assert t.empty_slot_s < t.collision_slot_s < t.success_slot_s

    def test_all_durations_positive(self):
        t = DEFAULT_TIMING
        for value in (
            t.query_s,
            t.query_rep_s,
            t.ack_s,
            t.rn16_s,
            t.epc_reply_s,
            t.t1_s,
            t.t2_s,
        ):
            assert value > 0.0

    def test_epc_reply_longer_than_rn16(self):
        assert DEFAULT_TIMING.epc_reply_s > DEFAULT_TIMING.rn16_s

    def test_miller_slows_tag_replies(self):
        fm0 = Gen2Timing(tag_encoding_symbols_per_bit=1)
        miller4 = Gen2Timing(tag_encoding_symbols_per_bit=4)
        assert miller4.rn16_s > fm0.rn16_s

    def test_negative_bits_rejected(self):
        with pytest.raises(ValueError):
            DEFAULT_TIMING.reader_command_s(-1)
        with pytest.raises(ValueError):
            DEFAULT_TIMING.tag_reply_s(-1)

    def test_success_slot_in_low_milliseconds(self):
        # A full Miller-4 singulation is on the order of 2-10 ms.
        assert 1e-3 < DEFAULT_TIMING.success_slot_s < 10e-3


class TestRoundDuration:
    def test_additive(self):
        t = DEFAULT_TIMING
        total = t.round_duration_s(empty=3, collisions=2, successes=1)
        expected = (
            t.query_s
            + 3 * t.empty_slot_s
            + 2 * t.collision_slot_s
            + 1 * t.success_slot_s
        )
        assert total == pytest.approx(expected)

    def test_negative_counts_rejected(self):
        with pytest.raises(ValueError):
            DEFAULT_TIMING.round_duration_s(-1, 0, 0)


class TestThroughput:
    def test_matches_paper_rule_of_thumb(self):
        """The paper budgets ~0.02 s per tag; the default timing profile
        must land in that neighbourhood (within 2x either way)."""
        rate = DEFAULT_TIMING.effective_read_rate_tags_per_s()
        seconds_per_tag = 1.0 / rate
        assert (
            PAPER_SECONDS_PER_TAG / 2.5
            <= seconds_per_tag
            <= PAPER_SECONDS_PER_TAG * 2.0
        )

    def test_invalid_efficiency(self):
        with pytest.raises(ValueError):
            DEFAULT_TIMING.effective_read_rate_tags_per_s(0.0)
        with pytest.raises(ValueError):
            DEFAULT_TIMING.effective_read_rate_tags_per_s(1.5)

    def test_higher_efficiency_higher_rate(self):
        low = DEFAULT_TIMING.effective_read_rate_tags_per_s(0.2)
        high = DEFAULT_TIMING.effective_read_rate_tags_per_s(0.4)
        assert high > low
