"""Tests for SGTIN-96 EPC encode/decode."""

import pytest
from hypothesis import given, strategies as st

from repro.protocol.epc import MAX_SERIAL, EpcError, EpcFactory, Sgtin96


def _epc(**overrides):
    defaults = dict(
        filter_value=1,
        partition=5,
        company_prefix=614141,
        item_reference=812345,
        serial=42,
    )
    defaults.update(overrides)
    return Sgtin96(**defaults)


class TestValidation:
    def test_valid_epc(self):
        epc = _epc()
        assert epc.serial == 42

    def test_filter_out_of_range(self):
        with pytest.raises(EpcError):
            _epc(filter_value=8)

    def test_partition_out_of_range(self):
        with pytest.raises(EpcError):
            _epc(partition=7)

    def test_company_prefix_too_wide(self):
        # Partition 6 gives the company prefix only 20 bits.
        with pytest.raises(EpcError):
            _epc(partition=6, company_prefix=1 << 20, item_reference=0)

    def test_item_reference_too_wide(self):
        # Partition 0 gives the item reference only 4 bits.
        with pytest.raises(EpcError):
            _epc(partition=0, company_prefix=0, item_reference=16)

    def test_serial_too_wide(self):
        with pytest.raises(EpcError):
            _epc(serial=MAX_SERIAL + 1)


class TestEncoding:
    def test_bits_length(self):
        assert len(_epc().to_bits()) == 96

    def test_hex_length_and_header(self):
        text = _epc().to_hex()
        assert len(text) == 24
        assert text.startswith("30")

    def test_uri_format(self):
        uri = _epc().to_uri()
        assert uri == "urn:epc:id:sgtin:0614141.812345.42"

    def test_bits_round_trip(self):
        epc = _epc()
        assert Sgtin96.from_bits(epc.to_bits()) == epc

    def test_hex_round_trip(self):
        epc = _epc(serial=123456789)
        assert Sgtin96.from_hex(epc.to_hex()) == epc

    def test_from_bits_wrong_length(self):
        with pytest.raises(EpcError):
            Sgtin96.from_bits([0] * 95)

    def test_from_bits_wrong_header(self):
        bits = _epc().to_bits()
        bits[0] ^= 1
        with pytest.raises(EpcError):
            Sgtin96.from_bits(bits)

    def test_from_hex_wrong_length(self):
        with pytest.raises(EpcError):
            Sgtin96.from_hex("30abc")

    def test_from_hex_invalid_digits(self):
        with pytest.raises(EpcError):
            Sgtin96.from_hex("zz" * 12)

    @given(
        st.integers(min_value=0, max_value=7),
        st.integers(min_value=0, max_value=6),
        st.integers(min_value=0, max_value=MAX_SERIAL),
    )
    def test_round_trip_property(self, filter_value, partition, serial):
        epc = Sgtin96(
            filter_value=filter_value,
            partition=partition,
            company_prefix=1,
            item_reference=1,
            serial=serial,
        )
        assert Sgtin96.from_hex(epc.to_hex()) == epc


class TestFactory:
    def test_sequential_serials(self):
        factory = EpcFactory()
        a = factory.next_epc()
        b = factory.next_epc()
        assert b.serial == a.serial + 1

    def test_uniqueness(self):
        factory = EpcFactory()
        batch = factory.batch(500)
        assert len({e.to_hex() for e in batch}) == 500

    def test_batch_negative(self):
        with pytest.raises(EpcError):
            EpcFactory().batch(-1)

    def test_hex_is_valid_tag_epc(self):
        # The world model requires 24-hex-digit EPCs.
        text = EpcFactory().next_epc().to_hex()
        int(text, 16)
        assert len(text) == 24
