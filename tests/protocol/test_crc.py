"""Tests for Gen 2 CRC-5/CRC-16 and bit helpers."""

import pytest
from hypothesis import given, strategies as st

from repro.protocol.crc import (
    bits_to_bytes,
    bits_to_int,
    bytes_to_bits,
    crc5,
    crc16,
    crc16_bytes,
    int_to_bits,
    verify_crc16,
)

bit_lists = st.lists(st.integers(min_value=0, max_value=1), max_size=200)


class TestBitHelpers:
    def test_bytes_to_bits(self):
        assert bytes_to_bits(b"\xa5") == [1, 0, 1, 0, 0, 1, 0, 1]

    def test_bits_to_bytes(self):
        assert bits_to_bytes([1, 0, 1, 0, 0, 1, 0, 1]) == b"\xa5"

    def test_bits_to_bytes_needs_multiple_of_8(self):
        with pytest.raises(ValueError):
            bits_to_bytes([1, 0, 1])

    def test_int_to_bits(self):
        assert int_to_bits(5, 4) == [0, 1, 0, 1]

    def test_int_to_bits_overflow(self):
        with pytest.raises(ValueError):
            int_to_bits(16, 4)

    def test_int_to_bits_negative(self):
        with pytest.raises(ValueError):
            int_to_bits(-1, 4)

    def test_bits_to_int(self):
        assert bits_to_int([1, 0, 1, 1]) == 11

    def test_invalid_bits_rejected(self):
        with pytest.raises(ValueError):
            bits_to_int([0, 2, 1])

    @given(st.binary(max_size=32))
    def test_bytes_round_trip(self, data):
        assert bits_to_bytes(bytes_to_bits(data)) == data

    @given(st.integers(min_value=0, max_value=2**32 - 1))
    def test_int_round_trip(self, value):
        assert bits_to_int(int_to_bits(value, 32)) == value


class TestCrc5:
    def test_deterministic(self):
        bits = [1, 0, 1, 1, 0, 0, 1, 0]
        assert crc5(bits) == crc5(bits)

    def test_five_bit_output(self):
        for pattern in ([0] * 16, [1] * 16, [1, 0] * 8):
            assert 0 <= crc5(pattern) < 32

    def test_detects_single_bit_flip(self):
        bits = [1, 0, 1, 1, 0, 0, 1, 0, 1, 1, 0, 1, 0, 0, 1, 0]
        original = crc5(bits)
        for i in range(len(bits)):
            flipped = list(bits)
            flipped[i] ^= 1
            assert crc5(flipped) != original, f"missed flip at {i}"

    def test_rejects_non_bits(self):
        with pytest.raises(ValueError):
            crc5([0, 1, 2])


class TestCrc16:
    def test_sixteen_bit_output(self):
        assert 0 <= crc16(bytes_to_bits(b"hello")) <= 0xFFFF

    def test_known_epc_check_value(self):
        # CRC-16/GENIBUS (a.k.a. CRC-16/EPC, the Gen 2 variant:
        # MSB-first, preset 0xFFFF, complemented): check("123456789")
        # is 0xD64E.
        assert crc16_bytes(b"123456789") == 0xD64E

    def test_detects_single_bit_flip(self):
        bits = bytes_to_bits(b"\x30\x39\x60\x1e\xc4\x01")
        original = crc16(bits)
        for i in range(len(bits)):
            flipped = list(bits)
            flipped[i] ^= 1
            assert crc16(flipped) != original, f"missed flip at {i}"

    def test_verify_round_trip(self):
        bits = bytes_to_bits(b"\xde\xad\xbe\xef")
        assert verify_crc16(bits, crc16(bits))
        assert not verify_crc16(bits, crc16(bits) ^ 1)

    @given(bit_lists)
    def test_crc16_in_range(self, bits):
        assert 0 <= crc16(bits) <= 0xFFFF

    @given(st.binary(min_size=1, max_size=64))
    def test_flip_detection_property(self, data):
        bits = bytes_to_bits(data)
        original = crc16(bits)
        flipped = list(bits)
        flipped[0] ^= 1
        assert crc16(flipped) != original
