"""Tests for the Gen 2 tag-side state machine."""

import pytest

from repro.protocol.commands import (
    AckCommand,
    QueryAdjustCommand,
    QueryCommand,
    QueryRepCommand,
    Session,
    Target,
)
from repro.protocol.tag_state import Gen2TagMachine, TagState, TagStateError
from repro.sim.rng import RandomStream


def _tag(**kwargs):
    return Gen2TagMachine(epc="3" + "0" * 23, **kwargs)


def _query(q=0, session=Session.S1, target=Target.A):
    return QueryCommand(q=q, session=session, target=target)


class TestInventoryFlow:
    def test_q0_tag_replies_immediately(self):
        tag = _tag()
        rn16 = tag.on_query(_query(q=0), RandomStream(1))
        assert rn16 is not None
        assert tag.state is TagState.REPLY

    def test_ack_with_right_handle_yields_epc(self):
        tag = _tag()
        rn16 = tag.on_query(_query(q=0), RandomStream(1))
        epc = tag.on_ack(AckCommand(rn16=rn16))
        assert epc == tag.epc
        assert tag.state is TagState.ACKNOWLEDGED

    def test_ack_with_wrong_handle_rejected(self):
        tag = _tag()
        rn16 = tag.on_query(_query(q=0), RandomStream(1))
        assert tag.on_ack(AckCommand(rn16=(rn16 + 1) & 0xFFFF)) is None
        assert tag.state is TagState.ARBITRATE

    def test_nonzero_slot_arbitrates(self):
        tag = _tag()
        # With q=8 a zero draw is unlikely; find a seed that arbitrates.
        for seed in range(20):
            result = tag.on_query(_query(q=8), RandomStream(seed))
            if result is None and tag.state is TagState.ARBITRATE:
                break
        else:
            pytest.fail("never arbitrated")

    def test_query_reps_count_down_to_reply(self):
        tag = _tag()
        rng = RandomStream(3)
        result = tag.on_query(_query(q=4), rng)
        reps = 0
        while result is None and reps < 16:
            result = tag.on_query_rep(QueryRepCommand(Session.S1), rng)
            reps += 1
        assert result is not None
        assert tag.state is TagState.REPLY

    def test_acknowledged_flips_flag_at_round_end(self):
        tag = _tag()
        rn16 = tag.on_query(_query(q=0), RandomStream(1))
        tag.on_ack(AckCommand(rn16=rn16))
        tag.end_of_round()
        assert tag.inventoried_b[Session.S1]
        assert tag.state is TagState.READY

    def test_inventoried_tag_ignores_target_a(self):
        tag = _tag()
        tag.inventoried_b[Session.S1] = True
        assert tag.on_query(_query(q=0, target=Target.A), RandomStream(1)) is None
        assert tag.state is TagState.READY

    def test_inventoried_tag_answers_target_b(self):
        tag = _tag()
        tag.inventoried_b[Session.S1] = True
        rn16 = tag.on_query(_query(q=0, target=Target.B), RandomStream(1))
        assert rn16 is not None

    def test_sessions_independent(self):
        tag = _tag()
        rn16 = tag.on_query(_query(q=0, session=Session.S1), RandomStream(1))
        tag.on_ack(AckCommand(rn16=rn16))
        tag.end_of_round()
        # S2 flag untouched: the tag still answers S2/A queries.
        assert tag.on_query(
            _query(q=0, session=Session.S2), RandomStream(2)
        ) is not None

    def test_query_rep_wrong_session_ignored(self):
        tag = _tag()
        tag.on_query(_query(q=8, session=Session.S1), RandomStream(4))
        assert tag.on_query_rep(QueryRepCommand(Session.S2), RandomStream(4)) is None

    def test_query_adjust_redraws(self):
        tag = _tag()
        tag.on_query(_query(q=8), RandomStream(5))
        result = tag.on_query_adjust(
            QueryAdjustCommand(session=Session.S1, updn=-1),
            RandomStream(6),
            new_q=0,
        )
        # Q=0 means the redraw must land on slot 0: immediate reply.
        assert result is not None

    def test_query_adjust_invalid_q(self):
        tag = _tag()
        tag.on_query(_query(q=4), RandomStream(7))
        with pytest.raises(TagStateError):
            tag.on_query_adjust(
                QueryAdjustCommand(updn=1), RandomStream(7), new_q=16
            )


class TestPower:
    def test_unpowered_tag_is_silent(self):
        tag = _tag()
        tag.power_down()
        assert tag.on_query(_query(q=0), RandomStream(1)) is None

    def test_power_loss_resets_s0_but_not_s1(self):
        tag = _tag()
        tag.inventoried_b[Session.S0] = True
        tag.inventoried_b[Session.S1] = True
        tag.power_down()
        assert not tag.inventoried_b[Session.S0]
        assert tag.inventoried_b[Session.S1]  # S1 persists briefly

    def test_power_up_restores_ready(self):
        tag = _tag()
        tag.power_down()
        tag.power_up()
        assert tag.state is TagState.READY
        assert tag.on_query(_query(q=0), RandomStream(1)) is not None


class TestAccessAndKill:
    def _acknowledged(self, **kwargs):
        tag = _tag(**kwargs)
        rn16 = tag.on_query(_query(q=0), RandomStream(1))
        tag.on_ack(AckCommand(rn16=rn16))
        return tag

    def test_access_zero_password_opens(self):
        tag = self._acknowledged()
        assert tag.req_access(0)
        assert tag.state is TagState.OPEN

    def test_access_with_password_secures(self):
        tag = self._acknowledged(access_password=0xDEAD)
        assert tag.req_access(0xDEAD)
        assert tag.state is TagState.SECURED

    def test_access_wrong_password(self):
        tag = self._acknowledged(access_password=0xDEAD)
        assert not tag.req_access(0xBEEF)

    def test_access_from_wrong_state(self):
        tag = _tag()
        with pytest.raises(TagStateError):
            tag.req_access(0)

    def test_kill_requires_nonzero_password(self):
        tag = self._acknowledged(kill_password=0)
        tag.req_access(0)
        assert not tag.kill(0)

    def test_kill_silences_forever(self):
        tag = self._acknowledged(kill_password=0x1234)
        tag.req_access(0)
        assert tag.kill(0x1234)
        assert tag.state is TagState.KILLED
        tag.power_down()
        tag.power_up()
        assert tag.on_query(_query(q=0), RandomStream(1)) is None

    def test_kill_from_wrong_state(self):
        tag = _tag()
        with pytest.raises(TagStateError):
            tag.kill(1)


class TestEquivalenceWithAbstractSimulator:
    def test_full_round_reads_every_tag_like_gen2_module(self):
        """Drive a reader loop over the state machines and check the
        observable outcome matches the abstract simulator's guarantee:
        a perfect channel eventually inventories every tag exactly once
        per target-A pass."""
        rng = RandomStream(42)
        tags = [
            Gen2TagMachine(epc=f"30{i:022X}") for i in range(8)
        ]
        read: list = []
        for round_index in range(40):
            query = _query(q=3)
            replies = {}
            for tag in tags:
                rn16 = tag.on_query(query, rng)
                if rn16 is not None:
                    replies[tag.epc] = rn16
            # Walk the remaining slots.
            for _ in range(1 << query.q):
                if len(replies) == 1:
                    (epc, rn16), = replies.items()
                    tag = next(t for t in tags if t.epc == epc)
                    got = tag.on_ack(AckCommand(rn16=rn16))
                    if got:
                        read.append(got)
                # Advance every tag; collect the next slot's repliers.
                replies = {}
                for tag in tags:
                    rn16 = tag.on_query_rep(QueryRepCommand(Session.S1), rng)
                    if rn16 is not None:
                        replies[tag.epc] = rn16
            for tag in tags:
                tag.end_of_round()
            if len(set(read)) == len(tags):
                break
        assert len(set(read)) == len(tags)
        # And nobody was inventoried twice against target A.
        assert len(read) == len(set(read))
