"""Property-based tests on protocol invariants (hypothesis)."""

from hypothesis import given, settings, strategies as st

from repro.protocol.epc import EpcFactory
from repro.protocol.gen2 import (
    InventorySession,
    QAlgorithm,
    TagChannel,
    inventory_until,
    run_inventory_round,
)
from repro.protocol.timing import DEFAULT_TIMING
from repro.sim.rng import RandomStream

fast = settings(max_examples=30, deadline=None)


def _population(n):
    return [e.to_hex() for e in EpcFactory().batch(n)]


class TestRoundInvariants:
    @given(
        st.integers(min_value=1, max_value=20),
        st.floats(min_value=0.0, max_value=1.0),
        st.integers(min_value=0, max_value=2**31 - 1),
    )
    @fast
    def test_each_tag_read_at_most_once_per_round(self, n, p, seed):
        population = _population(n)

        def channel(epc):
            return TagChannel(energized=True, reply_decode_p=p)

        result = run_inventory_round(
            population, channel, RandomStream(seed), QAlgorithm()
        )
        assert len(result.read_epcs) == len(set(result.read_epcs))

    @given(
        st.integers(min_value=1, max_value=20),
        st.integers(min_value=0, max_value=2**31 - 1),
    )
    @fast
    def test_slot_count_never_exceeds_frame(self, n, seed):
        population = _population(n)

        def channel(epc):
            return TagChannel(energized=True, reply_decode_p=1.0)

        q_algo = QAlgorithm(q_initial=4)
        result = run_inventory_round(
            population, channel, RandomStream(seed), q_algo
        )
        assert len(result.slots) <= 16

    @given(
        st.integers(min_value=1, max_value=15),
        st.integers(min_value=0, max_value=2**31 - 1),
    )
    @fast
    def test_duration_equals_slot_sum(self, n, seed):
        population = _population(n)

        def channel(epc):
            return TagChannel(energized=True, reply_decode_p=1.0)

        result = run_inventory_round(
            population, channel, RandomStream(seed), QAlgorithm()
        )
        t = DEFAULT_TIMING
        expected = t.round_duration_s(
            result.empties, result.collisions, result.successes
        )
        assert abs(result.duration_s - expected) < 1e-9

    @given(
        st.integers(min_value=0, max_value=10),
        st.integers(min_value=0, max_value=2**31 - 1),
    )
    @fast
    def test_session_marked_iff_read(self, n, seed):
        population = _population(max(n, 1))
        session = InventorySession()

        def channel(epc):
            return TagChannel(energized=True, reply_decode_p=0.8)

        result = run_inventory_round(
            population,
            channel,
            RandomStream(seed),
            QAlgorithm(),
            session=session,
        )
        for epc in result.read_epcs:
            assert session.is_inventoried(epc)
        assert session.inventoried_count == len(set(result.read_epcs))


class TestContinuousInvariants:
    @given(
        st.integers(min_value=1, max_value=25),
        st.floats(min_value=0.3, max_value=1.0),
        st.integers(min_value=0, max_value=2**31 - 1),
    )
    @fast
    def test_unique_reads_monotone_in_budget(self, n, p, seed):
        population = _population(n)

        def channel(epc):
            return TagChannel(energized=True, reply_decode_p=p)

        short = inventory_until(
            population, channel, RandomStream(seed), time_budget_s=0.05
        )
        long = inventory_until(
            population, channel, RandomStream(seed), time_budget_s=1.0
        )
        assert len(long.unique_reads) >= len(short.unique_reads)

    @given(
        st.integers(min_value=1, max_value=20),
        st.integers(min_value=0, max_value=2**31 - 1),
    )
    @fast
    def test_dead_fraction_never_read(self, n, seed):
        population = _population(n)
        dead = set(population[:: 2])

        def channel(epc):
            if epc in dead:
                return TagChannel(energized=False, reply_decode_p=0.0)
            return TagChannel(energized=True, reply_decode_p=1.0)

        result = inventory_until(
            population, channel, RandomStream(seed), time_budget_s=1.0
        )
        assert not (result.unique_reads & dead)
        assert result.unique_reads == set(population) - dead
