"""Tests for the framed-ALOHA and binary-tree anti-collision baselines."""

import pytest

from repro.protocol.aloha import (
    ALLOWED_FRAME_SIZES,
    choose_frame_size,
    inventory_until_aloha,
    run_aloha_frame,
)
from repro.protocol.epc import EpcFactory
from repro.protocol.gen2 import TagChannel, inventory_until
from repro.protocol.tree import TreeWalkStats, inventory_tree
from repro.sim.rng import RandomStream


def _population(n):
    return [e.to_hex() for e in EpcFactory().batch(n)]


def perfect_channel(epc):
    return TagChannel(energized=True, reply_decode_p=1.0)


class TestChooseFrameSize:
    def test_small_population(self):
        assert choose_frame_size(5) == 16

    def test_matches_population_scale(self):
        assert choose_frame_size(100) == 128

    def test_caps_at_largest(self):
        assert choose_frame_size(10000) == ALLOWED_FRAME_SIZES[-1]

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            choose_frame_size(-1)


class TestAlohaFrame:
    def test_reads_subset(self):
        population = _population(10)
        result = run_aloha_frame(
            population, perfect_channel, RandomStream(1), frame_size=16
        )
        assert set(result.read_epcs) <= set(population)

    def test_already_read_skipped(self):
        population = _population(5)
        read = set(population[:3])
        result = run_aloha_frame(
            population,
            perfect_channel,
            RandomStream(2),
            frame_size=16,
            already_read=read,
        )
        assert not set(result.read_epcs) & set(population[:3])

    def test_invalid_frame_size(self):
        with pytest.raises(ValueError):
            run_aloha_frame(
                _population(2), perfect_channel, RandomStream(3), frame_size=0
            )

    def test_slots_equal_frame_size(self):
        result = run_aloha_frame(
            _population(4), perfect_channel, RandomStream(4), frame_size=32
        )
        assert len(result.slots) == 32


class TestAlohaInventory:
    def test_reads_everything(self):
        population = _population(25)
        result = inventory_until_aloha(
            population, perfect_channel, RandomStream(5), time_budget_s=5.0
        )
        assert result.unique_reads == set(population)

    def test_budget_respected(self):
        result = inventory_until_aloha(
            _population(60), perfect_channel, RandomStream(6), time_budget_s=0.05
        )
        assert result.duration_s <= 0.05 + 1e-9

    def test_negative_budget_rejected(self):
        with pytest.raises(ValueError):
            inventory_until_aloha(
                _population(1), perfect_channel, RandomStream(7), -0.1
            )

    def test_comparable_to_gen2(self):
        """Both protocols should clear the same population; Gen 2's
        adaptive Q generally finishes at least as fast for unknown
        populations."""
        population = _population(30)
        aloha = inventory_until_aloha(
            population, perfect_channel, RandomStream(8), time_budget_s=10.0
        )
        gen2 = inventory_until(
            population, perfect_channel, RandomStream(8), time_budget_s=10.0
        )
        assert aloha.unique_reads == gen2.unique_reads == set(population)


class TestTreeWalk:
    def test_reads_everything(self):
        population = _population(15)
        result = inventory_tree(population, perfect_channel, RandomStream(9))
        assert result.unique_reads == set(population)

    def test_deterministic_protocol_is_exhaustive(self):
        # Unlike ALOHA, the tree walk cannot get unlucky: any energized,
        # perfectly decodable population is fully identified.
        for seed in (1, 2, 3):
            population = _population(20)
            result = inventory_tree(
                population, perfect_channel, RandomStream(seed)
            )
            assert result.unique_reads == set(population)

    def test_stats_recorded(self):
        stats = TreeWalkStats()
        inventory_tree(
            _population(8), perfect_channel, RandomStream(10), stats=stats
        )
        assert stats.queries > 0
        assert stats.collisions > 0
        assert stats.max_depth > 0

    def test_time_budget_truncates(self):
        population = _population(40)
        result = inventory_tree(
            population,
            perfect_channel,
            RandomStream(11),
            time_budget_s=0.005,
        )
        assert len(result.unique_reads) < 40

    def test_silent_tags_not_found(self):
        def silent(epc):
            return TagChannel(energized=False, reply_decode_p=0.0)

        result = inventory_tree(_population(5), silent, RandomStream(12))
        assert not result.read_epcs

    def test_queries_scale_with_population(self):
        small_stats = TreeWalkStats()
        inventory_tree(
            _population(4), perfect_channel, RandomStream(13), stats=small_stats
        )
        big_stats = TreeWalkStats()
        inventory_tree(
            _population(32), perfect_channel, RandomStream(13), stats=big_stats
        )
        assert big_stats.queries > small_stats.queries
