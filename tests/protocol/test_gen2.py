"""Tests for the Gen 2 inventory simulator."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.protocol.epc import EpcFactory
from repro.protocol.gen2 import (
    SILENT,
    InventorySession,
    QAlgorithm,
    TagChannel,
    inventory_until,
    run_inventory_round,
)
from repro.sim.rng import RandomStream


def _population(n):
    return [e.to_hex() for e in EpcFactory().batch(n)]


def perfect_channel(epc):
    return TagChannel(energized=True, reply_decode_p=1.0)


def silent_channel(epc):
    return SILENT


class TestTagChannel:
    def test_valid(self):
        assert TagChannel(True, 0.5).reply_decode_p == 0.5

    def test_invalid_probability(self):
        with pytest.raises(ValueError):
            TagChannel(True, 1.5)
        with pytest.raises(ValueError):
            TagChannel(True, -0.1)

    def test_silent_constant(self):
        assert not SILENT.energized


class TestQAlgorithm:
    def test_initial_q(self):
        assert QAlgorithm(q_initial=4).q == 4

    def test_collision_raises_q(self):
        q = QAlgorithm(q_initial=4, c=0.5)
        for _ in range(4):
            q.on_collision()
        assert q.q > 4

    def test_empty_lowers_q(self):
        q = QAlgorithm(q_initial=4, c=0.5)
        for _ in range(4):
            q.on_empty()
        assert q.q < 4

    def test_success_leaves_q(self):
        q = QAlgorithm(q_initial=4)
        q.on_success()
        assert q.q == 4

    def test_q_clamped(self):
        q = QAlgorithm(q_initial=0, q_min=0, q_max=2, c=0.5)
        for _ in range(20):
            q.on_empty()
        assert q.q == 0
        for _ in range(20):
            q.on_collision()
        assert q.q == 2

    def test_reset(self):
        q = QAlgorithm(q_initial=4, c=0.5)
        q.on_collision()
        q.reset()
        assert q.q == 4

    def test_invalid_bounds(self):
        with pytest.raises(ValueError):
            QAlgorithm(q_initial=20)

    def test_invalid_c(self):
        with pytest.raises(ValueError):
            QAlgorithm(c=0.05)


class TestSession:
    def test_mark_and_check(self):
        session = InventorySession()
        assert not session.is_inventoried("x")
        session.mark("x")
        assert session.is_inventoried("x")
        assert session.inventoried_count == 1

    def test_reset(self):
        session = InventorySession()
        session.mark("x")
        session.reset()
        assert not session.is_inventoried("x")


class TestSingleRound:
    def test_perfect_channel_reads_some_tags(self):
        population = _population(5)
        rng = RandomStream(1)
        result = run_inventory_round(
            population, perfect_channel, rng, QAlgorithm(q_initial=4)
        )
        assert 0 < len(result.unique_reads) <= 5

    def test_silent_population_reads_nothing(self):
        result = run_inventory_round(
            _population(5), silent_channel, RandomStream(1), QAlgorithm()
        )
        assert not result.read_epcs
        assert result.successes == 0

    def test_no_duplicate_reads_within_round(self):
        population = _population(10)
        result = run_inventory_round(
            population, perfect_channel, RandomStream(2), QAlgorithm(q_initial=5)
        )
        assert len(result.read_epcs) == len(set(result.read_epcs))

    def test_session_skips_inventoried(self):
        population = _population(4)
        session = InventorySession()
        for epc in population[:2]:
            session.mark(epc)
        result = run_inventory_round(
            population,
            perfect_channel,
            RandomStream(3),
            QAlgorithm(q_initial=4),
            session=session,
        )
        assert not set(result.read_epcs) & set(population[:2])

    def test_slot_accounting_consistent(self):
        result = run_inventory_round(
            _population(8), perfect_channel, RandomStream(4), QAlgorithm(q_initial=4)
        )
        assert (
            result.empties + result.collisions + result.successes
            == len(result.slots)
        )
        # Frame size 16: all slots examined.
        assert len(result.slots) == 16

    def test_duration_positive(self):
        result = run_inventory_round(
            _population(3), perfect_channel, RandomStream(5), QAlgorithm()
        )
        assert result.duration_s > 0.0

    def test_time_budget_truncates(self):
        result = run_inventory_round(
            _population(30),
            perfect_channel,
            RandomStream(6),
            QAlgorithm(q_initial=8),
            time_budget_s=0.002,
        )
        assert len(result.slots) < 256

    def test_zero_decode_probability_never_reads(self):
        def bad_channel(epc):
            return TagChannel(energized=True, reply_decode_p=0.0)

        result = run_inventory_round(
            _population(5), bad_channel, RandomStream(7), QAlgorithm()
        )
        assert not result.read_epcs

    def test_invalid_capture_probability(self):
        with pytest.raises(ValueError):
            run_inventory_round(
                _population(2),
                perfect_channel,
                RandomStream(8),
                QAlgorithm(),
                capture_probability=1.5,
            )

    def test_read_times_within_round(self):
        result = run_inventory_round(
            _population(5),
            perfect_channel,
            RandomStream(9),
            QAlgorithm(q_initial=4),
            start_time=10.0,
        )
        for epc, t in result.read_times.items():
            assert t >= 10.0

    @given(st.integers(min_value=0, max_value=2**31 - 1))
    @settings(max_examples=25, deadline=None)
    def test_reads_subset_of_population(self, seed):
        population = _population(6)
        result = run_inventory_round(
            population, perfect_channel, RandomStream(seed), QAlgorithm()
        )
        assert set(result.read_epcs) <= set(population)


class TestInventoryUntil:
    def test_reads_everything_given_time(self):
        population = _population(20)
        result = inventory_until(
            population, perfect_channel, RandomStream(10), time_budget_s=2.0
        )
        assert result.unique_reads == set(population)

    def test_respects_budget(self):
        result = inventory_until(
            _population(50), perfect_channel, RandomStream(11), time_budget_s=0.05
        )
        assert result.duration_s <= 0.05 + 1e-9

    def test_marginal_channel_partial_reads(self):
        def flaky(epc):
            return TagChannel(energized=True, reply_decode_p=0.3)

        population = _population(10)
        result = inventory_until(
            population, flaky, RandomStream(12), time_budget_s=0.3
        )
        # Some but likely not all in a short window.
        assert 0 < len(result.unique_reads) <= 10

    def test_session_persists_across_rounds(self):
        population = _population(8)
        session = InventorySession()
        result = inventory_until(
            population,
            perfect_channel,
            RandomStream(13),
            time_budget_s=2.0,
            session=session,
        )
        # Each tag read exactly once: the session keeps them quiet after.
        assert sorted(result.read_epcs) == sorted(set(result.read_epcs))

    def test_negative_budget_rejected(self):
        with pytest.raises(ValueError):
            inventory_until(
                _population(1), perfect_channel, RandomStream(14), -1.0
            )

    def test_deterministic_given_seed(self):
        population = _population(12)
        a = inventory_until(
            population, perfect_channel, RandomStream(15), time_budget_s=0.5
        )
        b = inventory_until(
            population, perfect_channel, RandomStream(15), time_budget_s=0.5
        )
        assert a.read_epcs == b.read_epcs
        assert a.duration_s == b.duration_s

    def test_more_tags_take_longer(self):
        small = inventory_until(
            _population(5), perfect_channel, RandomStream(16), time_budget_s=5.0
        )
        large = inventory_until(
            _population(40), perfect_channel, RandomStream(16), time_budget_s=5.0
        )
        assert large.duration_s > small.duration_s

    def test_paper_rate_of_20ms_per_tag(self):
        """Reading ~50 tags should cost on the order of a second — the
        paper's 0.02 s/tag budget (within a factor of ~2.5)."""
        population = _population(50)
        result = inventory_until(
            population, perfect_channel, RandomStream(17), time_budget_s=10.0
        )
        assert result.unique_reads == set(population)
        assert result.duration_s < 2.5
