"""CLI contract of ``python -m repro lint``: exit codes, --list-rules,
--rule validation, --json parity, and the --started-at manifest hook."""

import json
from pathlib import Path

from repro.cli import _resolve_started_at, build_parser, main
from repro.lint.registry import rule_ids
from repro.obs.manifest import RunManifest

FIXTURES = Path(__file__).parent / "fixtures"
BAD = str(FIXTURES / "det_wallclock_bad.py")
OK = str(FIXTURES / "det_wallclock_ok.py")


def test_exit_zero_on_clean_and_one_on_findings(capsys):
    assert main(["lint", OK]) == 0
    assert "clean" in capsys.readouterr().out
    assert main(["lint", BAD]) == 1
    out = capsys.readouterr().out
    assert "det-wallclock" in out
    assert "FAILED" in out


def test_list_rules_prints_every_id_with_rationale(capsys):
    assert main(["lint", "--list-rules"]) == 0
    out = capsys.readouterr().out
    for rule_id in rule_ids():
        assert rule_id in out


def test_list_rules_json(capsys):
    assert main(["lint", "--list-rules", "--json"]) == 0
    doc = json.loads(capsys.readouterr().out)
    assert [r["id"] for r in doc["rules"]] == rule_ids()
    assert all(r["rationale"] for r in doc["rules"])


def test_unknown_rule_exits_2_with_valid_ids(capsys):
    assert main(["lint", "--rule", "no-such-rule", OK]) == 2
    err = capsys.readouterr().err
    assert "no rule named 'no-such-rule'" in err
    for rule_id in rule_ids():
        assert rule_id in err


def test_rule_filter_restricts_run(capsys):
    assert main(["lint", "--rule", "det-uuid", BAD]) == 0
    assert main(["lint", "--rule", "det-wallclock", BAD]) == 1


def test_json_payload_matches_text_verdict(capsys):
    assert main(["lint", BAD, "--json"]) == 1
    doc = json.loads(capsys.readouterr().out)
    assert doc["command"] == "lint"
    assert doc["ok"] is False
    assert {f["rule"] for f in doc["findings"]} == {"det-wallclock"}
    assert all(f["path"] == BAD for f in doc["findings"])


def test_missing_path_exits_2(capsys):
    assert main(["lint", "definitely/not/here"]) == 2
    assert "error:" in capsys.readouterr().err


def test_started_at_is_injectable_from_the_cli():
    parser = build_parser()
    args = parser.parse_args(
        ["table1", "--started-at", "2026-01-02T03:04:05+00:00"]
    )
    assert _resolve_started_at(args) == "2026-01-02T03:04:05+00:00"
    manifest = RunManifest.create(
        command="table1",
        seed=1,
        config={},
        wall_time_s=0.0,
        started_at=_resolve_started_at(args),
    )
    assert manifest.started_at == "2026-01-02T03:04:05+00:00"


def test_started_at_defaults_to_a_clock_reading():
    parser = build_parser()
    args = parser.parse_args(["table1"])
    stamp = _resolve_started_at(args)
    # ISO-8601 with an explicit UTC offset.
    assert "T" in stamp and stamp.endswith("+00:00")
