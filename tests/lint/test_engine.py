"""Engine behaviour: suppressions, rule selection, scoping, parsing."""

import pytest

from repro.lint import DEFAULT_CONFIG, analyze_source, run_lint
from repro.lint.registry import select_rules

WALLCLOCK_TWICE = """import time


def stamp():
    return time.time()  # repro: allow[det-wallclock] test edge stamp


def stamp_again():
    return time.time()
"""


def test_suppression_silences_named_rule_on_named_line():
    report = analyze_source("clock.py", WALLCLOCK_TWICE)
    assert report.suppressed == 1
    assert [f.line for f in report.findings] == [9]
    assert [f.rule_id for f in report.findings] == ["det-wallclock"]


def test_suppression_for_a_different_rule_does_not_silence():
    source = (
        "import time\n"
        "\n"
        "\n"
        "def stamp():\n"
        "    return time.time()  # repro: allow[det-uuid] wrong id\n"
    )
    report = analyze_source("clock.py", source)
    assert report.suppressed == 0
    assert [f.rule_id for f in report.findings] == ["det-wallclock"]


def test_suppression_on_another_line_does_not_silence():
    source = (
        "import time\n"
        "\n"
        "# repro: allow[det-wallclock] comment on the wrong line\n"
        "\n"
        "def stamp():\n"
        "    return time.time()\n"
    )
    report = analyze_source("clock.py", source)
    assert report.suppressed == 0
    assert [f.rule_id for f in report.findings] == ["det-wallclock"]


def test_rule_selection_restricts_findings():
    source = (
        "import time\n"
        "import uuid\n"
        "\n"
        "\n"
        "def both():\n"
        "    return time.time(), uuid.uuid4()\n"
    )
    everything = analyze_source("both.py", source)
    assert {f.rule_id for f in everything.findings} == {
        "det-wallclock",
        "det-uuid",
    }
    only_uuid = analyze_source("both.py", source, rule_ids=["det-uuid"])
    assert {f.rule_id for f in only_uuid.findings} == {"det-uuid"}


def test_unknown_rule_id_raises_keyerror():
    with pytest.raises(KeyError) as excinfo:
        select_rules(["no-such-rule"])
    assert excinfo.value.args[0] == "no-such-rule"


def test_missing_path_raises():
    with pytest.raises(FileNotFoundError):
        run_lint(["definitely/not/a/path.py"])


def test_parse_error_is_a_finding_not_a_crash():
    report = analyze_source("broken.py", "def f(:\n")
    assert [f.rule_id for f in report.findings] == ["parse-error"]
    assert report.exit_code == 1


SWALLOW = """def poll(device):
    try:
        return device.read()
    except Exception:
        pass
"""


def test_exception_rules_scoped_to_supervision_paths():
    in_scope = analyze_source("src/repro/faults/snippet.py", SWALLOW)
    assert {f.rule_id for f in in_scope.findings} == {"except-swallow"}
    supervisor = analyze_source("src/repro/reader/supervisor.py", SWALLOW)
    assert {f.rule_id for f in supervisor.findings} == {"except-swallow"}
    out_of_scope = analyze_source("src/repro/analysis/snippet.py", SWALLOW)
    assert out_of_scope.findings == []


RAW_RNG = """import random


def make(seed):
    return random.Random(seed)
"""


def test_rng_rule_allowlists_sim_rng_module():
    elsewhere = analyze_source("src/repro/world/snippet.py", RAW_RNG)
    assert {f.rule_id for f in elsewhere.findings} == {"rng-raw-stream"}
    home = analyze_source("src/repro/sim/rng.py", RAW_RNG)
    assert home.findings == []


def test_units_conversion_allowlisted_in_units_module():
    source = (
        "def db_to_linear(db):\n"
        "    return 10.0 ** (db / 10.0)\n"
    )
    home = analyze_source("src/repro/rf/units.py", source)
    assert home.findings == []
    elsewhere = analyze_source("src/repro/rf/custom.py", source)
    assert {f.rule_id for f in elsewhere.findings} == {
        "units-bare-conversion"
    }


def test_report_payload_shape():
    report = analyze_source("clock.py", WALLCLOCK_TWICE)
    payload = report.to_payload()
    assert payload["command"] == "lint"
    assert payload["finding_count"] == 1
    assert payload["suppressed"] == 1
    assert payload["ok"] is False
    (finding,) = payload["findings"]
    assert finding["rule"] == "det-wallclock"
    assert finding["path"] == "clock.py"
    assert finding["line"] == 9
    assert "lint:" in report.render()


def test_default_config_exposes_policy():
    assert DEFAULT_CONFIG.rule_applies("det-wallclock", "src/repro/x.py")
    assert not DEFAULT_CONFIG.rule_applies(
        "rng-raw-stream", "src/repro/sim/rng.py"
    )
