"""Fixture: conversions routed through the rf/units.py helpers."""

from repro.rf.units import db_to_linear, linear_to_db


def to_linear(level_db: float) -> float:
    return db_to_linear(level_db)


def to_db(ratio: float) -> float:
    return linear_to_db(ratio)
