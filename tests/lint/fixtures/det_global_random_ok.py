"""Fixture: draws come from a named, seed-derived stream."""

from repro.sim.rng import RandomStream


def draw(stream: RandomStream) -> float:
    return stream.random()
