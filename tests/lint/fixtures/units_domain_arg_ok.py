"""Fixture: argument domains match parameter domains."""

from repro.rf.units import dbm_to_watts


def configure(radio, level_w: float) -> None:
    radio.set_power(power_w=level_w)


def convert(level_dbm: float) -> float:
    return dbm_to_watts(level_dbm)
