"""Fixture: streams derived by name from the experiment seed."""

from repro.sim.rng import SeedSequence


def make_stream(seed: int):
    return SeedSequence(seed).stream("fading")
