"""Fixture: uuid4 ids differ on every run."""

import uuid


def fresh_id() -> str:
    return str(uuid.uuid4())  # expect[det-uuid]
