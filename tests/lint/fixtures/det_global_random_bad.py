"""Fixture: module-level RNG calls share hidden global state."""

import random

import numpy as np


def draw() -> float:
    return random.random()  # expect[det-global-random]


def reseed() -> None:
    random.seed(0)  # expect[det-global-random]


def draw_np() -> float:
    return np.random.normal()  # expect[det-global-random]
