"""Fixture: hand-rolled dB conversions outside rf/units.py."""

import math


def to_linear(level_db: float) -> float:
    return 10.0 ** (level_db / 10.0)  # expect[units-bare-conversion]


def to_db(ratio: float) -> float:
    return 10.0 * math.log10(ratio)  # expect[units-bare-conversion]
