"""Fixture: convert to a common domain before summing."""

from repro.rf.units import watts_to_dbm


def budget(power_w: float, margin_db: float) -> float:
    return watts_to_dbm(power_w) + margin_db
