"""Fixture: ids derived deterministically from seeded content."""

import uuid


def derived_id(seed_text: str) -> str:
    return str(uuid.uuid5(uuid.NAMESPACE_URL, seed_text))
