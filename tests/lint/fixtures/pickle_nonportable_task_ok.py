"""Fixture: module-level trial tasks cross the process boundary."""

from repro.core.experiment import run_trials
from repro.core.parallel import PassTrialTask


def experiment(simulator, carriers, reps: int, seed: int):
    task = PassTrialTask(simulator=simulator, carriers=tuple(carriers))
    return run_trials("portable", task, reps, seed=seed)
