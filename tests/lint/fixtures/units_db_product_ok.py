"""Fixture: dB quantities compose by addition."""


def combine(gain_db: float, loss_db: float) -> float:
    return gain_db + loss_db
