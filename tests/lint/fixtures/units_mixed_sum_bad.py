"""Fixture: adding a dB margin to a watts power mixes domains."""


def budget(power_w: float, margin_db: float) -> float:
    return power_w + margin_db  # expect[units-mixed-sum]
