"""Fixture: multiplying two dB quantities is a domain error."""


def combine(gain_db: float, loss_db: float) -> float:
    return gain_db * loss_db  # expect[units-db-product]
