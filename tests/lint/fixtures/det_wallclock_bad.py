"""Fixture: wall-clock reads leak run time into output."""

import datetime
import time


def stamp() -> float:
    return time.time()  # expect[det-wallclock]


def stamp_iso() -> str:
    return datetime.datetime.now().isoformat()  # expect[det-wallclock]
