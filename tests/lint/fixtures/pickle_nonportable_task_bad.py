"""Fixture: closures handed to the parallel trial harness."""

from repro.core.experiment import run_trials


def experiment(simulator, reps: int, seed: int):
    def trial(seeds, i):
        return simulator.run_pass([], seeds, i)

    run_trials("closure", trial, reps, seed=seed)  # expect[pickle-nonportable-task]
    run_trials("lambda", lambda seeds, i: i, reps, seed=seed)  # expect[pickle-nonportable-task]


def fan_out(pool):
    return pool.submit(lambda: 1)  # expect[pickle-nonportable-task]
