"""Fixture: dB-named values flowing into linear-named parameters."""

from repro.rf.units import dbm_to_watts


def configure(radio, level_dbm: float) -> None:
    radio.set_power(power_w=level_dbm)  # expect[units-domain-arg]


def convert(power_w: float) -> float:
    return dbm_to_watts(power_w)  # expect[units-domain-arg]
