"""Fixture: monotonic duration clocks are fine; stamps are injected."""

import time


def timed(fn):
    began = time.perf_counter()
    result = fn()
    return result, time.perf_counter() - began


def stamp(started_at: str) -> str:
    return started_at
