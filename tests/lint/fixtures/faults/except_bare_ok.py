"""Fixture: the exception type is named and the failure surfaces."""


def poll(device):
    try:
        return device.read()
    except OSError as exc:
        raise RuntimeError(f"device read failed: {exc}") from exc
