"""Fixture: the broad handler records the failure before degrading."""


def poll(device, record):
    try:
        return device.read()
    except Exception as exc:
        record(exc)
        return None
