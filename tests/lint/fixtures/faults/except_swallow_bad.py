"""Fixture: a swallowed error becomes a phantom missed read."""


def poll(device):
    try:
        return device.read()
    except Exception:  # expect[except-swallow]
        pass
    return None
