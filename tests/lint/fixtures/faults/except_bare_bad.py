"""Fixture: bare except on a supervision path."""


def poll(device):
    try:
        return device.read()
    except:  # expect[except-bare]
        return None
