"""Fixture: raw RNG construction outside sim/rng.py."""

import random


def make_rng(seed: int) -> random.Random:
    return random.Random(seed)  # expect[rng-raw-stream]
