"""Self-hosting: the shipped source tree is lint-clean.

This is the merge gate the CI job enforces; keeping it in tier-1 means
a rule regression (or a new violation) fails fast locally too.
"""

from pathlib import Path

import repro
from repro.lint import run_lint

SRC = Path(repro.__file__).parent


def test_source_tree_is_lint_clean():
    report = run_lint([str(SRC)])
    assert report.findings == [], "\n" + report.render()
    assert report.exit_code == 0
    # The walk really covered the package, not an empty directory.
    assert report.files_checked > 80
    # The justified point-exemptions (CLI/manifest/bench stamps) are
    # suppressions, not silent holes: they are counted and visible.
    assert report.suppressed >= 3
