"""Fixture-corpus tests: every rule id has a triggering and a clean
snippet, and findings carry correct file/line/rule-id attribution.

Offending lines in the ``_bad`` fixtures are marked with an
``# expect[rule-id]`` comment; each test asserts the rule fires on
exactly that set of lines and nowhere else.
"""

import re
from pathlib import Path

import pytest

from repro.lint import run_lint
from repro.lint.registry import rule_ids

FIXTURES = Path(__file__).parent / "fixtures"

EXPECT_RE = re.compile(r"#\s*expect\[([a-z0-9-]+)\]")

#: rule id -> (triggering fixture, clean fixture), both under FIXTURES.
CASES = {
    "units-db-product": (
        "units_db_product_bad.py",
        "units_db_product_ok.py",
    ),
    "units-mixed-sum": (
        "units_mixed_sum_bad.py",
        "units_mixed_sum_ok.py",
    ),
    "units-bare-conversion": (
        "units_bare_conversion_bad.py",
        "units_bare_conversion_ok.py",
    ),
    "units-domain-arg": (
        "units_domain_arg_bad.py",
        "units_domain_arg_ok.py",
    ),
    "det-wallclock": ("det_wallclock_bad.py", "det_wallclock_ok.py"),
    "det-global-random": (
        "det_global_random_bad.py",
        "det_global_random_ok.py",
    ),
    "det-uuid": ("det_uuid_bad.py", "det_uuid_ok.py"),
    "rng-raw-stream": ("rng_raw_stream_bad.py", "rng_raw_stream_ok.py"),
    "pickle-nonportable-task": (
        "pickle_nonportable_task_bad.py",
        "pickle_nonportable_task_ok.py",
    ),
    "except-bare": (
        "faults/except_bare_bad.py",
        "faults/except_bare_ok.py",
    ),
    "except-swallow": (
        "faults/except_swallow_bad.py",
        "faults/except_swallow_ok.py",
    ),
}


def test_corpus_covers_every_registered_rule():
    assert sorted(CASES) == rule_ids()


def _expected_lines(source: str, rule_id: str):
    return {
        number
        for number, line in enumerate(source.splitlines(), start=1)
        for match in EXPECT_RE.findall(line)
        if match == rule_id
    }


@pytest.mark.parametrize("rule_id", sorted(CASES))
def test_rule_fires_with_correct_attribution(rule_id):
    fixture = FIXTURES / CASES[rule_id][0]
    source = fixture.read_text(encoding="utf-8")
    expected = _expected_lines(source, rule_id)
    assert expected, f"fixture {fixture.name} has no expect[] markers"

    report = run_lint([str(fixture)])
    assert report.exit_code == 1
    assert {f.rule_id for f in report.findings} == {rule_id}
    assert {f.line for f in report.findings} == expected
    for finding in report.findings:
        assert finding.path == str(fixture)


@pytest.mark.parametrize("rule_id", sorted(CASES))
def test_clean_fixture_produces_no_findings(rule_id):
    fixture = FIXTURES / CASES[rule_id][1]
    report = run_lint([str(fixture)])
    assert report.findings == []
    assert report.exit_code == 0
