"""The units rule against the real RF modules.

Two guarantees: the shipped ``rf/link.py`` and ``rf/propagation.py``
are clean under the units family, and a synthesized mutant that adds a
dBm quantity to a watts quantity in each file is caught with exact
file/line/rule-id attribution.
"""

from pathlib import Path

import pytest

import repro.rf.link
import repro.rf.propagation
from repro.lint import analyze_source

UNITS_RULES = (
    "units-db-product",
    "units-mixed-sum",
    "units-bare-conversion",
    "units-domain-arg",
)

MODULES = {
    "src/repro/rf/link.py": Path(repro.rf.link.__file__),
    "src/repro/rf/propagation.py": Path(repro.rf.propagation.__file__),
}

MUTANT = (
    "\n"
    "\n"
    "def _mutant_total_power(noise_w: float, tx_power_dbm: float) -> float:\n"
    "    return noise_w + tx_power_dbm\n"
)


@pytest.mark.parametrize("virtual_path", sorted(MODULES))
def test_shipped_module_is_units_clean(virtual_path):
    source = MODULES[virtual_path].read_text(encoding="utf-8")
    report = analyze_source(virtual_path, source, rule_ids=UNITS_RULES)
    assert report.findings == [], "\n" + report.render()


@pytest.mark.parametrize("virtual_path", sorted(MODULES))
def test_dbm_plus_watts_mutant_is_caught(virtual_path):
    source = MODULES[virtual_path].read_text(encoding="utf-8")
    mutated = source + MUTANT
    # The offending sum lands on the mutant's final line.
    expected_line = len(mutated.splitlines())

    report = analyze_source(virtual_path, mutated, rule_ids=UNITS_RULES)
    assert report.exit_code == 1
    (finding,) = report.findings
    assert finding.rule_id == "units-mixed-sum"
    assert finding.path == virtual_path
    assert finding.line == expected_line
    assert "noise_w + tx_power_dbm" in finding.message
