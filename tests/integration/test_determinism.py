"""Seed determinism: every scenario entry point is a pure function of
its seed.

The reliability numbers in the paper tables only mean something if a
run can be reproduced bit-for-bit, so each experiment harness is run
twice with the same seed and compared with ``==`` — any hidden global
state, wall-clock dependence, or dict-ordering leak fails here. The
complementary half pins that the seed actually *matters*: different
seeds must steer the slotted-ALOHA draws onto different slot outcomes,
otherwise "95% confidence interval over N trials" is theatre.
"""

import pytest

from repro.obs.explain import EXPLAIN_SCENARIOS, run_instrumented_pass
from repro.world.humans import HumanTagPlacement
from repro.world.objects import BoxFace
from repro.world.scenarios.fault_injection import (
    run_fault_injection_experiment,
    run_fault_rate_sweep,
)
from repro.world.scenarios.human_tracking import run_table2_experiment
from repro.world.scenarios.materials_study import run_materials_study
from repro.world.scenarios.object_tracking import (
    TABLE3_CASES,
    run_object_redundancy_experiment,
    run_table1_experiment,
)
from repro.world.scenarios.orientation_spacing import (
    run_orientation_spacing_experiment,
)
from repro.world.scenarios.read_range import run_read_range_experiment
from repro.world.scenarios.reader_redundancy import (
    run_reader_redundancy_experiment,
)
from repro.world.tags import TagOrientation

REPS = 2
SEED = 160493


def _entry_points():
    """Every scenario harness, with a small but non-trivial config."""
    return [
        (
            "table1",
            run_table1_experiment,
            dict(locations=[BoxFace.FRONT], repetitions=REPS),
        ),
        (
            "object_redundancy",
            run_object_redundancy_experiment,
            dict(cases=TABLE3_CASES[:1], repetitions=REPS),
        ),
        (
            "table2",
            run_table2_experiment,
            dict(placements=[HumanTagPlacement.FRONT], repetitions=REPS),
        ),
        (
            "read_range",
            run_read_range_experiment,
            dict(distances_m=[3.0], repetitions=REPS),
        ),
        (
            "materials",
            run_materials_study,
            dict(cases=["cardboard"], repetitions=REPS),
        ),
        (
            "orientation_spacing",
            run_orientation_spacing_experiment,
            dict(
                spacings_m=[0.1],
                orientations=[TagOrientation.CASE_2_HORIZONTAL_FACING],
                repetitions=REPS,
            ),
        ),
        (
            "reader_redundancy",
            run_reader_redundancy_experiment,
            dict(placement=HumanTagPlacement.FRONT, repetitions=REPS),
        ),
        (
            "fault_injection",
            run_fault_injection_experiment,
            dict(placement=HumanTagPlacement.FRONT, repetitions=REPS),
        ),
        (
            "fault_rate_sweep",
            run_fault_rate_sweep,
            dict(
                rates=[0.5],
                placement=HumanTagPlacement.FRONT,
                repetitions=REPS,
            ),
        ),
    ]


ENTRY_POINTS = _entry_points()
ENTRY_IDS = [name for name, _, _ in ENTRY_POINTS]


class TestSameSeedIsIdentical:
    @pytest.mark.parametrize(
        ("name", "runner", "kwargs"), ENTRY_POINTS, ids=ENTRY_IDS
    )
    def test_entry_point_repeats_bit_identically(self, name, runner, kwargs):
        first = runner(seed=SEED, **kwargs)
        second = runner(seed=SEED, **kwargs)
        assert first == second

    @pytest.mark.parametrize("scenario", sorted(EXPLAIN_SCENARIOS))
    def test_instrumented_pass_repeats_bit_identically(self, scenario):
        _, first, obs_a = run_instrumented_pass(scenario, SEED)
        _, second, obs_b = run_instrumented_pass(scenario, SEED)
        # The full PassResult — read set, rounds, duration — matches...
        assert first == second
        # ...and so does every captured record, down to the slot level.
        assert obs_a.tag_outcomes == obs_b.tag_outcomes
        assert obs_a.slot_records == obs_b.slot_records
        assert obs_a.link_records == obs_b.link_records


class TestDifferentSeedsDiverge:
    @pytest.mark.parametrize("scenario", sorted(EXPLAIN_SCENARIOS))
    def test_slot_outcomes_differ_across_seeds(self, scenario):
        """The seed must reach the ALOHA slot draws: two seeds may not
        replay the same slot-outcome tape."""
        _, _, obs_a = run_instrumented_pass(scenario, SEED)
        _, _, obs_b = run_instrumented_pass(scenario, SEED + 1)
        tape_a = [(r.slot_index, r.outcome, r.responders) for r in obs_a.slot_records]
        tape_b = [(r.slot_index, r.outcome, r.responders) for r in obs_b.slot_records]
        assert tape_a != tape_b

    def test_trial_index_reaches_slot_outcomes(self):
        """Within one seed, the trial index alone must also decorrelate
        the draws — trials are not replays of trial 0."""
        _, _, obs_a = run_instrumented_pass("cart", SEED, trial=0)
        _, _, obs_b = run_instrumented_pass("cart", SEED, trial=1)
        tape_a = [(r.slot_index, r.outcome) for r in obs_a.slot_records]
        tape_b = [(r.slot_index, r.outcome) for r in obs_b.slot_records]
        assert tape_a != tape_b
