"""Smoke tests for the example scripts.

Each example must import cleanly and expose ``main``; the fastest one
runs end to end to catch API drift between the library and examples.
"""

import importlib.util
import io
import os
import sys
from contextlib import redirect_stdout

import pytest

EXAMPLES_DIR = os.path.join(
    os.path.dirname(os.path.dirname(os.path.dirname(__file__))), "examples"
)

EXAMPLES = (
    "quickstart",
    "warehouse_portal",
    "access_gate",
    "conveyor_line",
    "distribution_center",
    "site_survey",
)

pytestmark = pytest.mark.slow


def _load(name):
    path = os.path.join(EXAMPLES_DIR, f"{name}.py")
    spec = importlib.util.spec_from_file_location(f"example_{name}", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


class TestExamples:
    @pytest.mark.parametrize("name", EXAMPLES)
    def test_imports_and_has_main(self, name):
        module = _load(name)
        assert callable(getattr(module, "main", None)), name

    def test_quickstart_runs(self):
        module = _load("quickstart")
        buffer = io.StringIO()
        with redirect_stdout(buffer):
            module.main()
        output = buffer.getvalue()
        assert "Front tag read reliability" in output
        assert "%" in output

    def test_distribution_center_runs(self):
        module = _load("distribution_center")
        buffer = io.StringIO()
        with redirect_stdout(buffer):
            module.main()
        output = buffer.getvalue()
        assert "Journey completeness" in output
