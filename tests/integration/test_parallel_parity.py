"""Determinism parity: parallel runs must equal serial runs, bit for bit.

Every scenario entry point is run twice with a small configuration —
once with ``workers=1`` and once with a process pool — and the results
compared with ``==``. Because trial streams are derived statelessly
from ``(root_seed, label, trial)``, fan-out must not perturb a single
outcome or aggregate. These tests are the acceptance contract for the
parallel engine.
"""

from repro.world.humans import HumanTagPlacement
from repro.world.objects import BoxFace
from repro.world.scenarios.fault_injection import (
    run_fault_injection_experiment,
    run_fault_rate_sweep,
)
from repro.world.scenarios.human_tracking import run_table2_experiment
from repro.world.scenarios.materials_study import run_materials_study
from repro.world.scenarios.object_tracking import (
    TABLE3_CASES,
    run_object_redundancy_experiment,
    run_table1_experiment,
)
from repro.world.scenarios.orientation_spacing import (
    run_orientation_spacing_experiment,
)
from repro.world.scenarios.read_range import run_read_range_experiment
from repro.world.scenarios.reader_redundancy import (
    run_reader_redundancy_experiment,
)

REPS = 3
SEED = 424207


class TestScenarioParity:
    def test_table1_object_tracking(self):
        kwargs = dict(
            locations=[BoxFace.FRONT], repetitions=REPS, seed=SEED
        )
        serial = run_table1_experiment(workers=1, **kwargs)
        parallel = run_table1_experiment(workers=2, **kwargs)
        assert parallel == serial

    def test_object_redundancy(self):
        kwargs = dict(
            cases=TABLE3_CASES[:1], repetitions=REPS, seed=SEED
        )
        serial = run_object_redundancy_experiment(workers=1, **kwargs)
        parallel = run_object_redundancy_experiment(workers=2, **kwargs)
        assert parallel == serial

    def test_table2_human_tracking(self):
        kwargs = dict(
            placements=[HumanTagPlacement.FRONT],
            repetitions=REPS,
            seed=SEED,
        )
        serial = run_table2_experiment(workers=1, **kwargs)
        parallel = run_table2_experiment(workers=2, **kwargs)
        assert parallel == serial

    def test_read_range(self):
        kwargs = dict(distances_m=[3.0], repetitions=REPS, seed=SEED)
        serial = run_read_range_experiment(workers=1, **kwargs)
        parallel = run_read_range_experiment(workers=2, **kwargs)
        assert parallel == serial

    def test_materials_study(self):
        kwargs = dict(cases=["cardboard"], repetitions=REPS, seed=SEED)
        serial = run_materials_study(workers=1, **kwargs)
        parallel = run_materials_study(workers=2, **kwargs)
        assert parallel == serial

    def test_orientation_spacing(self):
        from repro.world.tags import TagOrientation

        kwargs = dict(
            spacings_m=[0.1],
            orientations=[TagOrientation.CASE_2_HORIZONTAL_FACING],
            repetitions=REPS,
            seed=SEED,
        )
        serial = run_orientation_spacing_experiment(workers=1, **kwargs)
        parallel = run_orientation_spacing_experiment(workers=2, **kwargs)
        assert parallel == serial

    def test_reader_redundancy(self):
        kwargs = dict(
            placement=HumanTagPlacement.FRONT, repetitions=REPS, seed=SEED
        )
        serial = run_reader_redundancy_experiment(workers=1, **kwargs)
        parallel = run_reader_redundancy_experiment(workers=2, **kwargs)
        assert parallel == serial

    def test_fault_injection(self):
        kwargs = dict(
            placement=HumanTagPlacement.FRONT, repetitions=REPS, seed=SEED
        )
        serial = run_fault_injection_experiment(workers=1, **kwargs)
        parallel = run_fault_injection_experiment(workers=2, **kwargs)
        assert parallel == serial

    def test_fault_rate_sweep_three_workers(self):
        # One case at a higher worker count exercises uneven chunking.
        kwargs = dict(
            rates=[0.5],
            placement=HumanTagPlacement.FRONT,
            repetitions=4,
            seed=SEED,
        )
        serial = run_fault_rate_sweep(workers=1, **kwargs)
        parallel = run_fault_rate_sweep(workers=3, **kwargs)
        assert parallel == serial


class TestSweepTrialOrdering:
    """A parallel sweep must keep per-trial ``trial_seconds`` aligned
    with outcomes in (config key, trial index) order, exactly like the
    serial loop — ``TrialSet`` excludes timings from ``==``, so this is
    pinned explicitly."""

    @staticmethod
    def _sweep(workers):
        from repro.core.experiment import sweep
        from repro.core.parallel import PassTrialTask
        from repro.obs.explain import EXPLAIN_SCENARIOS

        sim, carriers = EXPLAIN_SCENARIOS["walk"].build()
        task = PassTrialTask(simulator=sim, carriers=tuple(carriers))
        return sweep(
            label_fn=lambda v: f"ordering@{v:g}",
            values=[1.0, 2.0, 3.0],
            trial_fn_factory=lambda v: task,
            repetitions=5,
            seed=SEED,
            workers=workers,
        )

    def test_parallel_sweep_preserves_trial_order(self):
        serial = self._sweep(workers=1)
        parallel = self._sweep(workers=2)
        assert parallel == serial
        assert list(parallel) == list(serial) == [1.0, 2.0, 3.0]
        for value, serial_set in serial.items():
            parallel_set = parallel[value]
            # One wall time per trial, aligned with the outcome at the
            # same index, for every sweep point.
            assert len(parallel_set.trial_seconds) == len(
                parallel_set.outcomes
            )
            assert parallel_set.outcomes == serial_set.outcomes
            assert all(s >= 0.0 for s in parallel_set.trial_seconds)

    def test_gather_restores_order_from_shuffled_futures(self):
        """gather_timed_trials must not depend on future iteration
        order: chunks handed over reversed still merge to trial order."""
        from concurrent.futures import ProcessPoolExecutor

        from repro.core.parallel import (
            PassTrialTask,
            gather_timed_trials,
            submit_timed_trials,
        )
        from repro.obs.explain import EXPLAIN_SCENARIOS
        from repro.sim.rng import SeedSequence

        sim, carriers = EXPLAIN_SCENARIOS["walk"].build()
        task = PassTrialTask(simulator=sim, carriers=tuple(carriers))
        reps = 5
        serial = [task(SeedSequence(SEED), t) for t in range(reps)]
        with ProcessPoolExecutor(max_workers=2) as pool:
            futures = submit_timed_trials(pool, task, reps, SEED, 3)
            outcomes, seconds = gather_timed_trials(list(reversed(futures)))
        assert outcomes == serial
        assert len(seconds) == reps
