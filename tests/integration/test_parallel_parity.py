"""Determinism parity: parallel runs must equal serial runs, bit for bit.

Every scenario entry point is run twice with a small configuration —
once with ``workers=1`` and once with a process pool — and the results
compared with ``==``. Because trial streams are derived statelessly
from ``(root_seed, label, trial)``, fan-out must not perturb a single
outcome or aggregate. These tests are the acceptance contract for the
parallel engine.
"""

from repro.world.humans import HumanTagPlacement
from repro.world.objects import BoxFace
from repro.world.scenarios.fault_injection import (
    run_fault_injection_experiment,
    run_fault_rate_sweep,
)
from repro.world.scenarios.human_tracking import run_table2_experiment
from repro.world.scenarios.materials_study import run_materials_study
from repro.world.scenarios.object_tracking import (
    TABLE3_CASES,
    run_object_redundancy_experiment,
    run_table1_experiment,
)
from repro.world.scenarios.orientation_spacing import (
    run_orientation_spacing_experiment,
)
from repro.world.scenarios.read_range import run_read_range_experiment
from repro.world.scenarios.reader_redundancy import (
    run_reader_redundancy_experiment,
)

REPS = 3
SEED = 424207


class TestScenarioParity:
    def test_table1_object_tracking(self):
        kwargs = dict(
            locations=[BoxFace.FRONT], repetitions=REPS, seed=SEED
        )
        serial = run_table1_experiment(workers=1, **kwargs)
        parallel = run_table1_experiment(workers=2, **kwargs)
        assert parallel == serial

    def test_object_redundancy(self):
        kwargs = dict(
            cases=TABLE3_CASES[:1], repetitions=REPS, seed=SEED
        )
        serial = run_object_redundancy_experiment(workers=1, **kwargs)
        parallel = run_object_redundancy_experiment(workers=2, **kwargs)
        assert parallel == serial

    def test_table2_human_tracking(self):
        kwargs = dict(
            placements=[HumanTagPlacement.FRONT],
            repetitions=REPS,
            seed=SEED,
        )
        serial = run_table2_experiment(workers=1, **kwargs)
        parallel = run_table2_experiment(workers=2, **kwargs)
        assert parallel == serial

    def test_read_range(self):
        kwargs = dict(distances_m=[3.0], repetitions=REPS, seed=SEED)
        serial = run_read_range_experiment(workers=1, **kwargs)
        parallel = run_read_range_experiment(workers=2, **kwargs)
        assert parallel == serial

    def test_materials_study(self):
        kwargs = dict(cases=["cardboard"], repetitions=REPS, seed=SEED)
        serial = run_materials_study(workers=1, **kwargs)
        parallel = run_materials_study(workers=2, **kwargs)
        assert parallel == serial

    def test_orientation_spacing(self):
        from repro.world.tags import TagOrientation

        kwargs = dict(
            spacings_m=[0.1],
            orientations=[TagOrientation.CASE_2_HORIZONTAL_FACING],
            repetitions=REPS,
            seed=SEED,
        )
        serial = run_orientation_spacing_experiment(workers=1, **kwargs)
        parallel = run_orientation_spacing_experiment(workers=2, **kwargs)
        assert parallel == serial

    def test_reader_redundancy(self):
        kwargs = dict(
            placement=HumanTagPlacement.FRONT, repetitions=REPS, seed=SEED
        )
        serial = run_reader_redundancy_experiment(workers=1, **kwargs)
        parallel = run_reader_redundancy_experiment(workers=2, **kwargs)
        assert parallel == serial

    def test_fault_injection(self):
        kwargs = dict(
            placement=HumanTagPlacement.FRONT, repetitions=REPS, seed=SEED
        )
        serial = run_fault_injection_experiment(workers=1, **kwargs)
        parallel = run_fault_injection_experiment(workers=2, **kwargs)
        assert parallel == serial

    def test_fault_rate_sweep_three_workers(self):
        # One case at a higher worker count exercises uneven chunking.
        kwargs = dict(
            rates=[0.5],
            placement=HumanTagPlacement.FRONT,
            repetitions=4,
            seed=SEED,
        )
        serial = run_fault_rate_sweep(workers=1, **kwargs)
        parallel = run_fault_rate_sweep(workers=3, **kwargs)
        assert parallel == serial
