"""Integration tests pinning the calibrated simulator to the paper's bands.

These run the real pass simulator with reduced repetition counts, so
they are slower than unit tests but still minutes-not-hours. Tolerances
are deliberately wide: they guard the *shape* of each result (ordering,
bands, direction of effects), which is what the reproduction claims.
"""

import pytest

from repro.core.calibration import PaperSetup
from repro.core.model import OBJECT_LOCATION_RELIABILITY
from repro.world.objects import BoxFace
from repro.world.scenarios.object_tracking import run_table1_experiment
from repro.world.scenarios.human_tracking import run_table2_experiment
from repro.world.scenarios.read_range import run_read_range_experiment

pytestmark = pytest.mark.slow


@pytest.fixture(scope="module")
def table1():
    return run_table1_experiment(repetitions=6)


@pytest.fixture(scope="module")
def table2():
    return run_table2_experiment(repetitions=12)


class TestFigure2Pins:
    def test_read_range_shape(self):
        results = run_read_range_experiment(
            distances_m=(1.0, 3.0, 5.0, 7.0, 9.0), repetitions=8
        )
        means = {d: p.mean_tags_read for d, p in results.items()}
        # 100% at 1 m.
        assert means[1.0] >= 19.0
        # Gradual decay: each sampled point clearly below the previous.
        assert means[3.0] > means[5.0] > means[7.0]
        # Nearly dead by 9 m.
        assert means[9.0] < 8.0


class TestTable1Pins:
    def test_ordering_matches_paper(self, table1):
        """Front/side-closer best, side-farther middling, top worst."""
        rates = {face: est.rate for face, est in table1.items()}
        assert rates[BoxFace.TOP] < rates[BoxFace.SIDE_FARTHER]
        assert rates[BoxFace.SIDE_FARTHER] < min(
            rates[BoxFace.FRONT], rates[BoxFace.SIDE_CLOSER]
        )

    def test_rates_in_paper_bands(self, table1):
        """Each placement within +-0.15 of the paper's Table 1."""
        for face, est in table1.items():
            paper = OBJECT_LOCATION_RELIABILITY[face.value]
            assert abs(est.rate - paper) <= 0.15, (
                f"{face.value}: measured {est.rate:.2f}, paper {paper:.2f}"
            )

    def test_top_is_dramatically_worse(self, table1):
        """'The location of a tag on an object has a dramatic impact.'"""
        rates = {face: est.rate for face, est in table1.items()}
        assert rates[BoxFace.TOP] <= rates[BoxFace.FRONT] - 0.3


class TestTable2Pins:
    def test_side_farther_is_nearly_dead(self, table2):
        assert table2["side_farther"].one_subject.rate <= 0.25

    def test_side_closer_is_excellent(self, table2):
        assert table2["side_closer"].one_subject.rate >= 0.8

    def test_one_subject_average_near_paper(self, table2):
        rates = [r.one_subject.rate for r in table2.values()]
        average = sum(rates) / len(rates)
        assert abs(average - 0.63) <= 0.15

    def test_blocking_hurts_farther_subject(self, table2):
        """The farther of two subjects reads no better than alone for
        side placements (body blocking)."""
        result = table2["side_closer"]
        assert (
            result.two_subject_farther.rate
            <= result.one_subject.rate + 0.05
        )

    def test_reflection_helps_closer_subject(self, table2):
        """The paper's counterintuitive finding: the closer subject of a
        pair reads at least as well as a lone subject (reflections off
        the farther body)."""
        improvements = 0
        for result in table2.values():
            if (
                result.two_subject_closer.rate
                >= result.one_subject.rate - 0.05
            ):
                improvements += 1
        assert improvements >= 2


class TestCalibrationConstants:
    def test_setup_constructs(self):
        setup = PaperSetup()
        assert setup.tx_power_dbm == 30.0
        assert setup.env.tag_sensitivity_dbm < -10.0

    def test_deterministic_free_space_range_plausible(self):
        from repro.rf.link import free_space_read_range_m

        setup = PaperSetup()
        rng = free_space_read_range_m(setup.env, 30.0, step_m=0.1)
        # UHF passive range "is generally a few meters".
        assert 3.0 <= rng <= 9.0
