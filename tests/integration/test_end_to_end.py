"""End-to-end integration: simulator -> wire format -> middleware -> back-end.

Exercises the full pipeline the paper's deployment would run: a cart
passes the portal, the reader buffers reads, the harness polls XML,
middleware cleans the stream, and the back-end decides which objects
were tracked.
"""

import pytest

from repro.core.calibration import PaperSetup
from repro.reader.backend import ObjectRegistry, TrackedObject, TrackingBackend
from repro.reader.middleware import (
    DuplicateEliminator,
    MiddlewarePipeline,
    SlidingWindowSmoother,
)
from repro.reader.wire import PolledInterface, parse_tag_list
from repro.sim.rng import SeedSequence
from repro.world.objects import BoxFace
from repro.world.portal import dual_antenna_portal
from repro.world.scenarios.object_tracking import build_box_cart
from repro.world.simulation import PortalPassSimulator

pytestmark = pytest.mark.slow


@pytest.fixture(scope="module")
def pass_result():
    setup = PaperSetup()
    sim = PortalPassSimulator(
        portal=dual_antenna_portal(), env=setup.env, params=setup.params
    )
    carrier, boxes = build_box_cart([BoxFace.FRONT, BoxFace.SIDE_CLOSER])
    result = sim.run_pass([carrier], SeedSequence(2024), 0)
    return result, boxes


class TestFullPipeline:
    def test_wire_round_trip_preserves_reads(self, pass_result):
        result, _ = pass_result
        interface = PolledInterface(list(result.trace))
        collected = []
        t = 0.0
        while t <= result.duration_s + 1.0:
            collected += parse_tag_list(interface.poll(now=t))
            t += 0.25
        assert len(collected) == len(result.trace)

    def test_middleware_dedups_but_keeps_presence(self, pass_result):
        result, _ = pass_result
        pipeline = MiddlewarePipeline(
            dedup=DuplicateEliminator(window_s=0.5),
            smoother=SlidingWindowSmoother(window_s=2.0),
        )
        clean, presences = pipeline.process(list(result.trace))
        assert len(clean) <= len(result.trace)
        # Every tag that was read still has a presence interval.
        assert {iv.epc for iv in presences} == result.read_epcs

    def test_backend_tracks_most_objects(self, pass_result):
        """Redundant tagging (front+side) on a 2-antenna portal tracked
        100% in the paper; allow one miss at our trial counts."""
        result, boxes = pass_result
        registry = ObjectRegistry()
        for box in boxes:
            registry.register(
                TrackedObject(
                    box.box_id,
                    frozenset(t.epc for t in box.all_tags()),
                    kind="box",
                )
            )
        backend = TrackingBackend(registry)
        backend.ingest(list(result.trace))
        decisions = backend.decide()
        detected = sum(1 for d in decisions.values() if d.detected)
        assert detected >= len(boxes) - 1

    def test_redundancy_attribution(self, pass_result):
        """The back-end can report when the second tag saved an object."""
        result, boxes = pass_result
        registry = ObjectRegistry()
        for box in boxes:
            registry.register(
                TrackedObject(
                    box.box_id, frozenset(t.epc for t in box.all_tags())
                )
            )
        backend = TrackingBackend(registry)
        backend.ingest(list(result.trace))
        decisions = backend.decide()
        for decision in decisions.values():
            if decision.detected:
                assert 1 <= len(decision.tags_seen) <= 2
