"""Tests for read traces and event types."""

import pytest

from repro.sim.events import SlotOutcome, TagReadEvent
from repro.sim.trace import ReadTrace


def _event(t, epc="E" * 24, reader="r0", antenna="a0", rssi=-60.0):
    return TagReadEvent(t, epc, reader, antenna, rssi)


class TestSlotOutcome:
    def test_empty(self):
        assert SlotOutcome(0.0, 0, 0).kind == "empty"

    def test_success(self):
        assert SlotOutcome(0.0, 0, 1, epc="x").kind == "success"

    def test_collision(self):
        assert SlotOutcome(0.0, 0, 3).kind == "collision"

    def test_garbled_single_counts_as_collision(self):
        # One responder but no decoded EPC: looks like a collision.
        assert SlotOutcome(0.0, 0, 1, epc=None).kind == "collision"


class TestTagReadEvent:
    def test_key(self):
        event = _event(1.0)
        assert event.key() == ("E" * 24, "r0", "a0")


class TestReadTrace:
    def test_record_and_len(self):
        trace = ReadTrace()
        trace.record(_event(1.0))
        trace.record(_event(2.0))
        assert len(trace) == 2
        assert not trace.is_empty

    def test_rejects_time_reversal(self):
        trace = ReadTrace()
        trace.record(_event(5.0))
        with pytest.raises(ValueError):
            trace.record(_event(1.0))

    def test_epcs_seen(self):
        trace = ReadTrace()
        trace.record(_event(1.0, epc="A" * 24))
        trace.record(_event(2.0, epc="B" * 24))
        trace.record(_event(3.0, epc="A" * 24))
        assert trace.epcs_seen() == frozenset({"A" * 24, "B" * 24})

    def test_was_read(self):
        trace = ReadTrace()
        trace.record(_event(1.0, epc="A" * 24))
        assert trace.was_read("A" * 24)
        assert not trace.was_read("B" * 24)

    def test_reads_of(self):
        trace = ReadTrace()
        trace.record(_event(1.0, epc="A" * 24))
        trace.record(_event(2.0, epc="B" * 24))
        trace.record(_event(3.0, epc="A" * 24))
        assert [e.time for e in trace.reads_of("A" * 24)] == [1.0, 3.0]

    def test_by_antenna(self):
        trace = ReadTrace()
        trace.record(_event(1.0, antenna="a0"))
        trace.record(_event(2.0, antenna="a1"))
        groups = trace.by_antenna()
        assert set(groups) == {("r0", "a0"), ("r0", "a1")}

    def test_read_counts(self):
        trace = ReadTrace()
        for t in (1.0, 2.0, 3.0):
            trace.record(_event(t, epc="A" * 24))
        assert trace.read_counts() == {"A" * 24: 3}

    def test_first_read_time(self):
        trace = ReadTrace()
        trace.record(_event(1.5, epc="A" * 24))
        trace.record(_event(2.5, epc="A" * 24))
        assert trace.first_read_time("A" * 24) == 1.5
        assert trace.first_read_time("B" * 24) is None

    def test_window(self):
        trace = ReadTrace()
        for t in (0.5, 1.5, 2.5, 3.5):
            trace.record(_event(t))
        sub = trace.window(1.0, 3.0)
        assert [e.time for e in sub] == [1.5, 2.5]

    def test_window_invalid(self):
        with pytest.raises(ValueError):
            ReadTrace().window(3.0, 1.0)

    def test_merged_with_sorts(self):
        a = ReadTrace()
        a.record(_event(1.0, reader="r0"))
        a.record(_event(3.0, reader="r0"))
        b = ReadTrace()
        b.record(_event(2.0, reader="r1"))
        merged = a.merged_with(b)
        assert [e.time for e in merged] == [1.0, 2.0, 3.0]

    def test_iteration(self):
        trace = ReadTrace()
        trace.record(_event(1.0))
        assert [e.time for e in trace] == [1.0]


class TestEpcIndex:
    def test_index_is_built_lazily_and_reused(self):
        trace = ReadTrace()
        trace.record(_event(1.0, epc="A" * 24))
        assert trace._epc_index is None
        assert trace.was_read("A" * 24)
        first = trace._epc_index
        assert first is not None
        trace.reads_of("A" * 24)
        assert trace._epc_index is first

    def test_record_invalidates_the_index(self):
        trace = ReadTrace()
        trace.record(_event(1.0, epc="A" * 24))
        assert trace.was_read("A" * 24)
        trace.record(_event(2.0, epc="B" * 24))
        assert trace._epc_index is None
        assert trace.was_read("B" * 24)
        assert trace.read_counts() == {"A" * 24: 1, "B" * 24: 1}

    def test_index_never_affects_equality(self):
        queried, fresh = ReadTrace(), ReadTrace()
        queried.record(_event(1.0))
        fresh.record(_event(1.0))
        queried.was_read("nope")
        assert queried == fresh
