"""Tests for seeded random streams."""

import pytest
from hypothesis import given, strategies as st

from repro.sim.rng import RandomStream, SeedSequence


class TestRandomStream:
    def test_same_seed_same_sequence(self):
        a = RandomStream(42)
        b = RandomStream(42)
        assert [a.random() for _ in range(10)] == [
            b.random() for _ in range(10)
        ]

    def test_different_seeds_differ(self):
        a = RandomStream(1)
        b = RandomStream(2)
        assert [a.random() for _ in range(5)] != [b.random() for _ in range(5)]

    def test_uniform_bounds(self):
        rng = RandomStream(3)
        for _ in range(100):
            x = rng.uniform(2.0, 5.0)
            assert 2.0 <= x < 5.0

    def test_gauss_zero_sigma_returns_mu(self):
        assert RandomStream(4).gauss(7.5, 0.0) == 7.5

    def test_gauss_negative_sigma_rejected(self):
        with pytest.raises(ValueError):
            RandomStream(4).gauss(0.0, -1.0)

    def test_expovariate_positive(self):
        rng = RandomStream(5)
        assert all(rng.expovariate(2.0) >= 0.0 for _ in range(100))

    def test_expovariate_invalid_rate(self):
        with pytest.raises(ValueError):
            RandomStream(5).expovariate(0.0)

    def test_randint_inclusive(self):
        rng = RandomStream(6)
        values = {rng.randint(0, 3) for _ in range(300)}
        assert values == {0, 1, 2, 3}

    def test_randint_empty_range(self):
        with pytest.raises(ValueError):
            RandomStream(6).randint(5, 4)

    def test_choice(self):
        rng = RandomStream(7)
        assert rng.choice(["a", "b", "c"]) in {"a", "b", "c"}

    def test_choice_empty_rejected(self):
        with pytest.raises(ValueError):
            RandomStream(7).choice([])

    def test_shuffle_preserves_elements(self):
        rng = RandomStream(8)
        items = list(range(20))
        rng.shuffle(items)
        assert sorted(items) == list(range(20))

    def test_bernoulli_extremes(self):
        rng = RandomStream(9)
        assert all(rng.bernoulli(1.0) for _ in range(50))
        assert not any(rng.bernoulli(0.0) for _ in range(50))

    def test_bernoulli_clamps_out_of_range(self):
        rng = RandomStream(10)
        assert rng.bernoulli(1.5)
        assert not rng.bernoulli(-0.5)

    def test_bernoulli_rate(self):
        rng = RandomStream(11)
        hits = sum(rng.bernoulli(0.3) for _ in range(10000))
        assert 2700 <= hits <= 3300

    def test_spawn_is_deterministic(self):
        a = RandomStream(12).spawn("child")
        b = RandomStream(12).spawn("child")
        assert a.random() == b.random()

    def test_spawn_differs_from_parent(self):
        parent = RandomStream(13)
        child = parent.spawn("x")
        assert parent.seed != child.seed


class TestSeedSequence:
    def test_named_streams_reproducible(self):
        s1 = SeedSequence(99).stream("fading")
        s2 = SeedSequence(99).stream("fading")
        assert s1.random() == s2.random()

    def test_named_streams_independent(self):
        seq = SeedSequence(99)
        assert seq.stream("a").seed != seq.stream("b").seed

    def test_trial_streams_differ_by_trial(self):
        seq = SeedSequence(99)
        assert (
            seq.trial_stream("x", 0).seed != seq.trial_stream("x", 1).seed
        )

    def test_trial_stream_reproducible(self):
        a = SeedSequence(5).trial_stream("shadow", 3)
        b = SeedSequence(5).trial_stream("shadow", 3)
        assert a.gauss(0, 1) == b.gauss(0, 1)

    def test_streams_iterator(self):
        seq = SeedSequence(1)
        streams = list(seq.streams(["a", "b", "c"]))
        assert len(streams) == 3
        assert streams[0].seed == seq.stream("a").seed

    def test_adding_new_names_keeps_old_sequences(self):
        """The stability property that justifies name-derived seeding."""
        old = SeedSequence(7).stream("protocol").random()
        seq = SeedSequence(7)
        seq.stream("brand-new-consumer")  # must not shift others
        assert seq.stream("protocol").random() == old

    @given(st.integers(min_value=0, max_value=2**31), st.text(max_size=20))
    def test_derivation_deterministic(self, seed, name):
        assert (
            SeedSequence(seed).stream(name).seed
            == SeedSequence(seed).stream(name).seed
        )
