"""Tests for the discrete-event engine."""

import pytest

from repro.sim.engine import Engine, SimulationError


class TestScheduling:
    def test_events_fire_in_time_order(self):
        engine = Engine()
        fired = []
        engine.schedule_at(2.0, lambda: fired.append("b"))
        engine.schedule_at(1.0, lambda: fired.append("a"))
        engine.schedule_at(3.0, lambda: fired.append("c"))
        engine.run()
        assert fired == ["a", "b", "c"]

    def test_simultaneous_events_fire_in_insertion_order(self):
        engine = Engine()
        fired = []
        for name in "abcde":
            engine.schedule_at(1.0, lambda n=name: fired.append(n))
        engine.run()
        assert fired == list("abcde")

    def test_clock_advances_to_event_time(self):
        engine = Engine()
        seen = []
        engine.schedule_at(5.0, lambda: seen.append(engine.now))
        engine.run()
        assert seen == [5.0]
        assert engine.now == 5.0

    def test_schedule_in_past_rejected(self):
        engine = Engine(start_time=10.0)
        with pytest.raises(SimulationError):
            engine.schedule_at(5.0, lambda: None)

    def test_schedule_after(self):
        engine = Engine(start_time=1.0)
        seen = []
        engine.schedule_after(2.5, lambda: seen.append(engine.now))
        engine.run()
        assert seen == [3.5]

    def test_negative_delay_rejected(self):
        with pytest.raises(SimulationError):
            Engine().schedule_after(-1.0, lambda: None)

    def test_events_can_schedule_events(self):
        engine = Engine()
        fired = []

        def chain(n):
            fired.append(n)
            if n < 3:
                engine.schedule_after(1.0, lambda: chain(n + 1))

        engine.schedule_at(0.0, lambda: chain(0))
        engine.run()
        assert fired == [0, 1, 2, 3]
        assert engine.now == 3.0


class TestCancellation:
    def test_cancelled_event_does_not_fire(self):
        engine = Engine()
        fired = []
        event = engine.schedule_at(1.0, lambda: fired.append("x"))
        event.cancel()
        engine.run()
        assert fired == []

    def test_cancelled_event_does_not_advance_clock(self):
        engine = Engine()
        event = engine.schedule_at(9.0, lambda: None)
        event.cancel()
        engine.run()
        assert engine.now == 0.0


class TestRunBounds:
    def test_run_until_stops_before_later_events(self):
        engine = Engine()
        fired = []
        engine.schedule_at(1.0, lambda: fired.append(1))
        engine.schedule_at(5.0, lambda: fired.append(5))
        engine.run(until=3.0)
        assert fired == [1]
        assert engine.now == 3.0
        engine.run()
        assert fired == [1, 5]

    def test_run_until_advances_idle_clock(self):
        engine = Engine()
        engine.run(until=7.0)
        assert engine.now == 7.0

    def test_max_events(self):
        engine = Engine()
        fired = []
        for i in range(10):
            engine.schedule_at(float(i), lambda i=i: fired.append(i))
        engine.run(max_events=4)
        assert fired == [0, 1, 2, 3]

    def test_step_returns_false_when_empty(self):
        assert not Engine().step()

    def test_step_fires_one(self):
        engine = Engine()
        fired = []
        engine.schedule_at(1.0, lambda: fired.append(1))
        engine.schedule_at(2.0, lambda: fired.append(2))
        assert engine.step()
        assert fired == [1]

    def test_processed_and_pending_counts(self):
        engine = Engine()
        engine.schedule_at(1.0, lambda: None)
        engine.schedule_at(2.0, lambda: None)
        assert engine.pending_events == 2
        engine.run()
        assert engine.processed_events == 2
        assert engine.pending_events == 0


class TestAdvance:
    def test_advance_to(self):
        engine = Engine()
        engine.advance_to(4.0)
        assert engine.now == 4.0

    def test_advance_backwards_rejected(self):
        engine = Engine(start_time=3.0)
        with pytest.raises(SimulationError):
            engine.advance_to(1.0)
