"""Tests for wire/transport fault injection."""

import pytest

from repro.faults.injectors import FaultyTransport, corrupt_document
from repro.faults.plan import (
    FaultPlan,
    PollFault,
    ReaderCrash,
    WireCorruption,
)
from repro.reader.wire import (
    PolledInterface,
    ReaderUnreachable,
    TransportTimeout,
    WireFormatError,
    parse_tag_list,
    render_tag_list,
)
from repro.sim.events import TagReadEvent
from repro.sim.rng import RandomStream


def _event(t, epc="A" * 24):
    return TagReadEvent(t, epc, "reader-0", "ant-0", rssi_dbm=-60.0)


def _interface(times):
    return PolledInterface([_event(t) for t in times])


class TestCorruptDocument:
    DOC = render_tag_list([_event(1.0), _event(2.0, epc="B" * 24)])

    def test_truncate_breaks_parsing(self):
        mangled = corrupt_document(self.DOC, "truncate", RandomStream(3))
        assert len(mangled) < len(self.DOC)
        with pytest.raises(WireFormatError):
            parse_tag_list(mangled)

    def test_garble_breaks_parsing(self):
        mangled = corrupt_document(self.DOC, "garble", RandomStream(3))
        assert len(mangled) == len(self.DOC)
        with pytest.raises(WireFormatError):
            parse_tag_list(mangled)

    def test_drop_field_removes_a_required_element(self):
        mangled = corrupt_document(self.DOC, "drop_field", RandomStream(3))
        with pytest.raises(WireFormatError):
            parse_tag_list(mangled)

    def test_deterministic_per_stream_seed(self):
        a = corrupt_document(self.DOC, "garble", RandomStream(11))
        b = corrupt_document(self.DOC, "garble", RandomStream(11))
        assert a == b

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError, match="mode"):
            corrupt_document(self.DOC, "teleport", RandomStream(1))


class TestFaultyTransport:
    def test_no_plan_passes_through(self):
        transport = FaultyTransport(_interface([0.5]), "reader-0")
        events = parse_tag_list(transport.poll(1.0))
        assert [e.time for e in events] == [0.5]

    def test_unreachable_while_down(self):
        plan = FaultPlan(
            crashes=(ReaderCrash("reader-0", 1.0, restart_at_s=3.0),)
        )
        transport = FaultyTransport(_interface([0.5]), "reader-0", plan)
        parse_tag_list(transport.poll(0.9))
        with pytest.raises(ReaderUnreachable):
            transport.poll(2.0)

    def test_crash_restart_wipes_unpolled_buffer(self):
        # Reads land at 0.5 and 0.9; the application never polls before
        # the crash at 1.0, so the restart at 3.0 destroys them. A read
        # after the restart survives.
        plan = FaultPlan(
            crashes=(ReaderCrash("reader-0", 1.0, restart_at_s=3.0),)
        )
        transport = FaultyTransport(
            _interface([0.5, 0.9, 3.5]), "reader-0", plan
        )
        events = parse_tag_list(transport.poll(4.0))
        assert [e.time for e in events] == [3.5]

    def test_polled_before_crash_survives(self):
        plan = FaultPlan(
            crashes=(ReaderCrash("reader-0", 1.0, restart_at_s=3.0),)
        )
        transport = FaultyTransport(_interface([0.5]), "reader-0", plan)
        events = parse_tag_list(transport.poll(0.9))
        assert [e.time for e in events] == [0.5]

    def test_dropped_poll_keeps_batch_for_retry(self):
        plan = FaultPlan(
            poll_faults=(PollFault("reader-0", drop_probability=1.0),)
        )
        # First rng draw drops the poll; then disable drops and re-poll.
        transport = FaultyTransport(
            _interface([0.5]), "reader-0", plan, rng=RandomStream(5)
        )
        with pytest.raises(TransportTimeout):
            transport.poll(1.0)
        transport._plan = FaultPlan()  # link heals
        events = parse_tag_list(transport.poll(1.1))
        assert [e.time for e in events] == [0.5]

    def test_duplicate_delivery(self):
        plan = FaultPlan(
            poll_faults=(PollFault("reader-0", duplicate_probability=1.0),)
        )
        transport = FaultyTransport(
            _interface([0.5]), "reader-0", plan, rng=RandomStream(5)
        )
        events = parse_tag_list(transport.poll(1.0))
        assert [e.time for e in events] == [0.5, 0.5]

    def test_delay_holds_recent_events_back(self):
        plan = FaultPlan(
            poll_faults=(
                PollFault(
                    "reader-0", delay_probability=1.0, delay_s=0.5
                ),
            )
        )
        transport = FaultyTransport(
            _interface([0.2, 0.9]), "reader-0", plan, rng=RandomStream(5)
        )
        first = parse_tag_list(transport.poll(1.0))
        assert [e.time for e in first] == [0.2]  # 0.9 is within delay_s
        second = parse_tag_list(transport.poll(2.0))
        assert [e.time for e in second] == [0.9]  # delivered late, not lost

    def test_corruption_keeps_batch_so_retry_recovers(self):
        plan = FaultPlan(
            wire_corruptions=(
                WireCorruption("reader-0", probability=1.0, mode="truncate"),
            )
        )
        transport = FaultyTransport(
            _interface([0.5]), "reader-0", plan, rng=RandomStream(5)
        )
        with pytest.raises(WireFormatError):
            parse_tag_list(transport.poll(1.0))
        transport._plan = FaultPlan()
        events = parse_tag_list(transport.poll(1.1))
        assert [e.time for e in events] == [0.5]

    def test_deterministic_given_stream_seed(self):
        plan = FaultPlan(
            poll_faults=(PollFault("reader-0", drop_probability=0.5),),
            wire_corruptions=(
                WireCorruption("reader-0", probability=0.5, mode="garble"),
            ),
        )

        def run():
            transport = FaultyTransport(
                _interface([0.1, 0.6, 1.1]),
                "reader-0",
                plan,
                rng=RandomStream(21),
            )
            out = []
            for t in (0.5, 1.0, 1.5, 2.0):
                try:
                    out.append(transport.poll(t))
                except (TransportTimeout, ReaderUnreachable) as exc:
                    out.append(type(exc).__name__)
            return out

        assert run() == run()
