"""Tests for deterministic fault plans."""

import math

import pytest

from repro.faults.plan import (
    AntennaFault,
    CoverageReport,
    FaultPlan,
    FaultPlanError,
    InterferenceBurst,
    PollFault,
    ReaderCrash,
    ReaderHang,
    WireCorruption,
)
from repro.sim.rng import RandomStream


class TestSpecValidation:
    def test_crash_restart_must_follow_crash(self):
        with pytest.raises(FaultPlanError, match="after the"):
            ReaderCrash("reader-0", at_s=2.0, restart_at_s=1.0)

    def test_crash_time_must_be_finite(self):
        with pytest.raises(FaultPlanError):
            ReaderCrash("reader-0", at_s=-1.0)
        with pytest.raises(FaultPlanError):
            ReaderCrash("reader-0", at_s=math.nan)

    def test_hang_needs_positive_duration(self):
        with pytest.raises(FaultPlanError, match="duration"):
            ReaderHang("reader-0", at_s=1.0, duration_s=0.0)

    def test_antenna_fault_window_must_be_nonempty(self):
        with pytest.raises(FaultPlanError, match="empty"):
            AntennaFault("reader-0", "ant-0", start_s=2.0, end_s=2.0)

    def test_antenna_gain_penalty_must_be_positive(self):
        with pytest.raises(FaultPlanError, match="penalty"):
            AntennaFault(
                "reader-0", "ant-0", start_s=0.0, gain_penalty_db=-3.0
            )

    def test_burst_power_plausibility(self):
        with pytest.raises(FaultPlanError, match="plausible"):
            InterferenceBurst(0.0, 1.0, power_dbm=60.0)

    def test_corruption_mode_checked(self):
        with pytest.raises(FaultPlanError, match="mode"):
            WireCorruption("reader-0", probability=0.5, mode="teleport")

    def test_poll_fault_probabilities_checked(self):
        with pytest.raises(FaultPlanError):
            PollFault("reader-0", drop_probability=1.5)

    def test_duplicate_wire_corruptions_rejected(self):
        with pytest.raises(FaultPlanError, match="merge"):
            FaultPlan(
                wire_corruptions=(
                    WireCorruption("reader-0", 0.1),
                    WireCorruption("reader-0", 0.2),
                )
            )

    def test_duplicate_poll_faults_rejected(self):
        with pytest.raises(FaultPlanError, match="merge"):
            FaultPlan(
                poll_faults=(
                    PollFault("reader-0", drop_probability=0.1),
                    PollFault("reader-0", drop_probability=0.2),
                )
            )


class TestPointQueries:
    def test_empty_plan(self):
        plan = FaultPlan()
        assert plan.is_empty
        assert not plan.reader_down("reader-0", 1.0)
        assert plan.reader_outages("reader-0") == []
        assert plan.interference_dbm_at(1.0) is None
        assert plan.antenna_state("reader-0", "ant-0", 1.0) == (False, 0.0)

    def test_crash_without_restart_is_down_forever(self):
        plan = FaultPlan(crashes=(ReaderCrash("reader-0", 1.0),))
        assert not plan.reader_down("reader-0", 0.999)
        assert plan.reader_down("reader-0", 1.0)
        assert plan.reader_down("reader-0", 1e9)
        assert not plan.reader_down("reader-1", 2.0)

    def test_restart_window_is_half_open(self):
        plan = FaultPlan(
            crashes=(ReaderCrash("reader-0", 1.0, restart_at_s=3.0),)
        )
        assert plan.reader_down("reader-0", 2.999)
        assert not plan.reader_down("reader-0", 3.0)

    def test_hang_and_crash_outages_merge(self):
        plan = FaultPlan(
            crashes=(ReaderCrash("reader-0", 1.0, restart_at_s=2.0),),
            hangs=(ReaderHang("reader-0", 1.5, duration_s=1.0),),
        )
        assert plan.reader_outages("reader-0") == [(1.0, 2.5)]

    def test_crash_restarts_sorted_and_filtered(self):
        plan = FaultPlan(
            crashes=(
                ReaderCrash("reader-0", 5.0, restart_at_s=6.0),
                ReaderCrash("reader-0", 1.0, restart_at_s=2.0),
                ReaderCrash("reader-0", 8.0),  # never restarts
                ReaderCrash("reader-1", 0.5, restart_at_s=0.6),
            )
        )
        restarts = plan.crash_restarts("reader-0")
        assert [c.at_s for c in restarts] == [1.0, 5.0]

    def test_silent_antenna_beats_penalties(self):
        plan = FaultPlan(
            antenna_faults=(
                AntennaFault(
                    "reader-0", "ant-0", 0.0, 10.0, gain_penalty_db=6.0
                ),
                AntennaFault("reader-0", "ant-0", 2.0, 4.0),
            )
        )
        assert plan.antenna_state("reader-0", "ant-0", 1.0) == (False, 6.0)
        assert plan.antenna_state("reader-0", "ant-0", 3.0) == (True, 0.0)

    def test_strongest_concurrent_burst_wins(self):
        plan = FaultPlan(
            interference_bursts=(
                InterferenceBurst(0.0, 2.0, -60.0),
                InterferenceBurst(1.0, 3.0, -45.0),
            )
        )
        assert plan.interference_dbm_at(0.5) == -60.0
        assert plan.interference_dbm_at(1.5) == -45.0
        assert plan.interference_dbm_at(2.5) == -45.0
        assert plan.interference_dbm_at(3.5) is None


class TestCoverageReport:
    ANTENNAS = (("reader-0", "ant-0"), ("reader-1", "ant-1"))

    def test_full_coverage_when_fault_free(self):
        report = FaultPlan().coverage_report(self.ANTENNAS, duration_s=4.0)
        assert report.live_fraction == 1.0
        assert not report.degraded

    def test_crash_blinds_only_its_readers_antennas(self):
        plan = FaultPlan(crashes=(ReaderCrash("reader-0", 1.0),))
        report = plan.coverage_report(self.ANTENNAS, duration_s=4.0)
        by_id = {a.antenna_id: a for a in report.antennas}
        assert by_id["ant-0"].live_fraction == pytest.approx(0.25)
        assert by_id["ant-1"].live_fraction == 1.0
        assert report.degraded
        assert report.live_fraction == pytest.approx(0.625)

    def test_impaired_fraction_tracked_separately(self):
        plan = FaultPlan(
            antenna_faults=(
                AntennaFault(
                    "reader-0", "ant-0", 0.0, 2.0, gain_penalty_db=6.0
                ),
            )
        )
        report = plan.coverage_report(self.ANTENNAS, duration_s=4.0)
        ant0 = report.for_reader("reader-0")[0]
        assert ant0.live_fraction == 1.0
        assert ant0.impaired_fraction == pytest.approx(0.5)
        assert ant0.degraded and report.degraded

    def test_interference_fraction_clipped_to_window(self):
        plan = FaultPlan(
            interference_bursts=(InterferenceBurst(3.0, 10.0, -50.0),)
        )
        report = plan.coverage_report(self.ANTENNAS, duration_s=4.0)
        assert report.interference_fraction == pytest.approx(0.25)

    def test_full_factory(self):
        report = CoverageReport.full(self.ANTENNAS, duration_s=4.0)
        assert report.live_fraction == 1.0
        assert not report.degraded

    def test_duration_must_be_positive(self):
        with pytest.raises(FaultPlanError, match="duration"):
            FaultPlan().coverage_report(self.ANTENNAS, duration_s=0.0)


class TestSampling:
    def test_same_stream_seed_reproduces_plan(self):
        kwargs = dict(
            reader_ids=["reader-0", "reader-1"],
            duration_s=4.0,
            crash_probability=0.7,
            restart_probability=0.5,
            hang_probability=0.4,
            antenna_silence_probability=0.3,
            antennas=[("reader-0", "ant-0")],
            burst_probability=0.9,
        )
        first = FaultPlan.sample(RandomStream(99), **kwargs)
        second = FaultPlan.sample(RandomStream(99), **kwargs)
        assert first == second
        third = FaultPlan.sample(RandomStream(100), **kwargs)
        assert third != first  # overwhelmingly likely at these rates

    def test_zero_probabilities_give_empty_plan(self):
        plan = FaultPlan.sample(
            RandomStream(1), reader_ids=["reader-0"], duration_s=4.0
        )
        assert plan.is_empty

    def test_sampled_times_inside_pass(self):
        plan = FaultPlan.sample(
            RandomStream(7),
            reader_ids=[f"reader-{i}" for i in range(20)],
            duration_s=4.0,
            crash_probability=1.0,
            restart_probability=1.0,
        )
        assert len(plan.crashes) == 20
        for crash in plan.crashes:
            assert 0.0 <= crash.at_s <= 4.0
            assert crash.restart_at_s is not None
            assert crash.restart_at_s > crash.at_s
