"""Tests for the active-tag extension."""

import pytest

from repro.core.calibration import PaperSetup
from repro.protocol.epc import EpcFactory
from repro.rf.geometry import Vec3
from repro.sim.rng import SeedSequence
from repro.world.active_tags import ActiveTagModel, ActiveTagSimulator
from repro.world.motion import StationaryPlacement
from repro.world.portal import single_antenna_portal
from repro.world.simulation import CarrierGroup, PortalPassSimulator
from repro.world.tags import Tag

SETUP = PaperSetup()


def _passive_sim():
    return PortalPassSimulator(
        portal=single_antenna_portal(), env=SETUP.env, params=SETUP.params
    )


def _carrier(distance, duration=2.0):
    return CarrierGroup(
        motion=StationaryPlacement(Vec3(0, 0, distance), duration_s=duration),
        tags=[
            Tag(
                epc=EpcFactory().next_epc().to_hex(),
                local_position=Vec3(0.0, 1.0, 0.0),
            )
        ],
    )


class TestActiveTagModel:
    def test_defaults_valid(self):
        model = ActiveTagModel()
        assert model.beacons_per_day > 0

    def test_invalid_interval(self):
        with pytest.raises(ValueError):
            ActiveTagModel(beacon_interval_s=0.0)

    def test_battery_life_positive(self):
        assert ActiveTagModel().battery_life_days() > 30.0

    def test_faster_beaconing_shorter_life(self):
        fast = ActiveTagModel(beacon_interval_s=0.1)
        slow = ActiveTagModel(beacon_interval_s=5.0)
        assert fast.battery_life_days() < slow.battery_life_days()

    def test_bigger_battery_longer_life(self):
        small = ActiveTagModel(battery_mah=100.0)
        big = ActiveTagModel(battery_mah=1000.0)
        assert big.battery_life_days() > small.battery_life_days()


class TestActiveSimulation:
    def test_reads_at_long_range(self):
        """Active tags reach distances where passive tags are dead —
        the core of the paper's future-work motivation."""
        sim = ActiveTagSimulator(_passive_sim())
        carrier = _carrier(distance=15.0)
        result = sim.run_pass([carrier], SeedSequence(1), 0)
        assert result.read_epcs  # a passive tag at 15 m reads nothing

    def test_passive_dead_at_same_range(self):
        carrier = _carrier(distance=15.0, duration=0.5)
        result = _passive_sim().run_pass([carrier], SeedSequence(1), 0)
        assert not result.read_epcs

    def test_beacon_cadence(self):
        model = ActiveTagModel(beacon_interval_s=0.5)
        sim = ActiveTagSimulator(_passive_sim(), model)
        carrier = _carrier(distance=2.0, duration=3.0)
        result = sim.run_pass([carrier], SeedSequence(2), 0)
        # ~6 beacons in 3 s; all should be heard at 2 m.
        assert 4 <= len(result.trace) <= 7
        times = [e.time for e in result.trace]
        gaps = [b - a for a, b in zip(times, times[1:])]
        assert all(abs(g - 0.5) < 1e-6 for g in gaps)

    def test_deterministic(self):
        sim = ActiveTagSimulator(_passive_sim())
        carrier = _carrier(distance=5.0)
        a = sim.run_pass([carrier], SeedSequence(3), 1)
        b = sim.run_pass([carrier], SeedSequence(3), 1)
        assert [e.time for e in a.trace] == [e.time for e in b.trace]

    def test_no_tags_rejected(self):
        sim = ActiveTagSimulator(_passive_sim())
        carrier = CarrierGroup(
            motion=StationaryPlacement(Vec3(0, 0, 1), duration_s=1.0)
        )
        with pytest.raises(ValueError):
            sim.run_pass([carrier], SeedSequence(1), 0)

    def test_rssi_reported(self):
        sim = ActiveTagSimulator(_passive_sim())
        carrier = _carrier(distance=2.0)
        result = sim.run_pass([carrier], SeedSequence(4), 0)
        for event in result.trace:
            assert -95.0 <= event.rssi_dbm <= 10.0

    def test_weaker_tx_reduces_range(self):
        # At 60 m the one-way budget sits near the -95 dBm sensitivity:
        # a -40 dBm whisper drops out while +10 dBm still carries.
        weak = ActiveTagSimulator(
            _passive_sim(), ActiveTagModel(tx_power_dbm=-40.0)
        )
        strong = ActiveTagSimulator(
            _passive_sim(), ActiveTagModel(tx_power_dbm=10.0)
        )
        carrier = _carrier(distance=60.0, duration=2.0)
        weak_reads = len(
            weak.run_pass([carrier], SeedSequence(5), 0).trace
        )
        strong_reads = len(
            strong.run_pass([carrier], SeedSequence(5), 0).trace
        )
        assert strong_reads > weak_reads
