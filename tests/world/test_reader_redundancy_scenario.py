"""Tests for the reader-redundancy scenario (reduced repetitions)."""

import pytest

from repro.world.scenarios.reader_redundancy import (
    ReaderRedundancyResult,
    run_reader_redundancy_experiment,
)

pytestmark = pytest.mark.slow


@pytest.fixture(scope="module")
def result() -> ReaderRedundancyResult:
    return run_reader_redundancy_experiment(repetitions=12)


class TestReaderRedundancy:
    def test_non_drm_pair_is_worse(self, result):
        """The paper's headline negative result."""
        assert result.dual_no_drm.rate < result.single_reader.rate

    def test_penalty_is_severe(self, result):
        assert result.interference_penalty >= 0.10

    def test_drm_recovers(self, result):
        assert result.drm_recovery > 0.0
        assert result.dual_with_drm.rate >= result.single_reader.rate - 0.15

    def test_estimates_carry_trial_counts(self, result):
        assert result.single_reader.trials == 12
        assert result.dual_no_drm.trials == 12
