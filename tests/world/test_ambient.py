"""Tests for ambient tag zones and false-positive classification."""

import pytest

from repro.core.calibration import PaperSetup
from repro.protocol.epc import EpcFactory
from repro.rf.geometry import Vec3
from repro.sim.events import TagReadEvent
from repro.sim.rng import SeedSequence
from repro.sim.trace import ReadTrace
from repro.world.ambient import (
    AmbientZone,
    FalsePositiveReport,
    build_ambient_carrier,
    classify_reads,
)
from repro.world.portal import single_antenna_portal
from repro.world.simulation import PortalPassSimulator


class TestAmbientZone:
    def test_valid(self):
        zone = AmbientZone("staging", Vec3(5, 0, 2), 2.0, 3.0, tag_count=9)
        assert zone.tag_count == 9

    def test_invalid_count(self):
        with pytest.raises(ValueError):
            AmbientZone("x", Vec3.zero(), 1.0, 1.0, tag_count=-1)

    def test_invalid_extent(self):
        with pytest.raises(ValueError):
            AmbientZone("x", Vec3.zero(), 0.0, 1.0, tag_count=1)


class TestBuildCarrier:
    def test_tag_count(self):
        zone = AmbientZone("staging", Vec3(4, 0, 0), 2.0, 2.0, tag_count=7)
        carrier, epcs = build_ambient_carrier(zone, EpcFactory(), 1.0)
        assert len(carrier.tags) == 7
        assert len(epcs) == 7

    def test_tags_within_zone(self):
        zone = AmbientZone("staging", Vec3(4, 0, 0), 2.0, 3.0, tag_count=16)
        carrier, _ = build_ambient_carrier(zone, EpcFactory(), 1.0)
        for tag in carrier.tags:
            assert abs(tag.local_position.x) <= 1.0 + 1e-9
            assert abs(tag.local_position.z) <= 1.5 + 1e-9

    def test_zero_tags(self):
        zone = AmbientZone("empty", Vec3(4, 0, 0), 1.0, 1.0, tag_count=0)
        carrier, epcs = build_ambient_carrier(zone, EpcFactory(), 1.0)
        assert carrier.tags == []
        assert epcs == []

    def test_stationary(self):
        zone = AmbientZone("staging", Vec3(4, 0, 2), 1.0, 1.0, tag_count=1)
        carrier, _ = build_ambient_carrier(zone, EpcFactory(), 2.0)
        assert carrier.motion.position_at(0.0).is_close(
            carrier.motion.position_at(1.5)
        )


class TestClassification:
    def _trace(self, epcs):
        trace = ReadTrace()
        for i, epc in enumerate(epcs):
            trace.record(
                TagReadEvent(float(i), epc, "r0", "a0", rssi_dbm=-60.0)
            )
        return trace

    def test_all_intended(self):
        epcs = [e.to_hex() for e in EpcFactory().batch(3)]
        report = classify_reads(self._trace(epcs), epcs)
        assert report.intended_reads == 3
        assert report.stray_reads == 0
        assert report.false_positive_rate == 0.0

    def test_strays_flagged(self):
        intended = [e.to_hex() for e in EpcFactory().batch(2)]
        strays = [e.to_hex() for e in EpcFactory(company_prefix=123).batch(2)]
        report = classify_reads(self._trace(intended + strays), intended)
        assert report.stray_reads == 2
        assert report.false_positive_rate == pytest.approx(0.5)
        assert set(report.stray_epcs) == set(strays)

    def test_empty_trace(self):
        report = classify_reads(self._trace([]), ["3" + "0" * 23])
        assert report.false_positive_rate == 0.0


class TestFalsePositivePhysics:
    def test_power_reduction_removes_strays(self):
        """The paper's remedy: 'decreasing the power output of the
        readers' eliminates reads from outside the intended zone."""
        setup = PaperSetup()
        zone = AmbientZone(
            "next-lane", Vec3(0.0, 0.0, 4.5), 1.0, 1.0, tag_count=4
        )
        carrier, stray_epcs = build_ambient_carrier(
            zone, EpcFactory(company_prefix=999), duration_s=0.5
        )

        def stray_hits(tx_power_dbm):
            sim = PortalPassSimulator(
                portal=single_antenna_portal(tx_power_dbm=tx_power_dbm),
                env=setup.env,
                params=setup.params,
            )
            hits = 0
            for trial in range(10):
                result = sim.run_pass([carrier], SeedSequence(31), trial)
                hits += len(result.read_epcs)
            return hits

        full_power = stray_hits(30.0)
        reduced = stray_hits(20.0)
        assert reduced < full_power
        assert reduced <= 2  # -10 dB conducted kills the 4.5 m strays
