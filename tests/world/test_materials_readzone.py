"""Tests for the materials study and the read-zone mapper."""

import pytest

from repro.analysis.figures import heatmap
from repro.world.portal import single_antenna_portal
from repro.world.read_zone import ReadZoneMap, map_read_zone
from repro.world.scenarios.materials_study import (
    MATERIAL_CASES,
    build_material_cart,
    run_materials_study,
)

pytestmark = pytest.mark.slow


class TestMaterialCart:
    def test_cases_defined(self):
        assert set(MATERIAL_CASES) == {"empty", "cardboard", "liquid", "metal"}

    def test_empty_has_no_occluders(self):
        carrier, epcs = build_material_cart("empty")
        assert carrier.occluders == []
        assert len(epcs) == 12

    def test_filled_has_occluders(self):
        carrier, _ = build_material_cart("metal")
        assert len(carrier.occluders) == 12
        assert carrier.occluders[0].material.name == "metal"

    def test_unknown_case(self):
        with pytest.raises(ValueError, match="liquid"):
            build_material_cart("plasma")


class TestMaterialsStudy:
    @pytest.fixture(scope="class")
    def study(self):
        return run_materials_study(repetitions=5)

    def test_all_cases_measured(self, study):
        assert set(study.rates) == set(MATERIAL_CASES)

    def test_physics_ordering(self, study):
        """Empty/cardboard read best; metal is the hardest content —
        the Section 2.1 material ranking."""
        rates = {name: est.rate for name, est in study.rates.items()}
        assert rates["empty"] >= rates["metal"]
        assert rates["cardboard"] >= rates["metal"] - 0.02
        assert rates["liquid"] >= rates["metal"] - 0.10

    def test_empty_is_easy(self, study):
        assert study.rates["empty"].rate >= 0.85

    def test_ordered_helper(self, study):
        ordered = study.ordered()
        values = [rate for _, rate in ordered]
        assert values == sorted(values, reverse=True)


class TestReadZone:
    @pytest.fixture(scope="class")
    def zone(self):
        return map_read_zone(
            single_antenna_portal(),
            x_range=(-2.0, 2.0),
            z_range=(0.5, 9.0),
            steps=6,
            trials=4,
        )

    def test_grid_shape(self, zone):
        assert len(zone.x_values) == 6
        assert len(zone.z_values) == 6
        assert len(zone.probabilities) == 6
        assert all(len(row) == 6 for row in zone.probabilities)

    def test_close_boresight_reliable(self, zone):
        # Nearest row, centre columns: the heart of the read zone.
        centre = zone.probabilities[0][2]
        assert centre >= 0.75

    def test_far_cells_unreliable(self, zone):
        far_row = zone.probabilities[-1]
        assert max(far_row) <= 0.75

    def test_reliable_range_matches_link_budget(self, zone):
        rng = zone.max_reliable_range_m(threshold=0.9)
        assert 0.5 <= rng <= 7.0

    def test_covered_cells_counts(self, zone):
        strict = zone.covered_cells(threshold=0.99)
        loose = zone.covered_cells(threshold=0.25)
        assert strict <= loose

    def test_validation(self):
        with pytest.raises(ValueError):
            map_read_zone(single_antenna_portal(), steps=1)
        with pytest.raises(ValueError):
            map_read_zone(single_antenna_portal(), trials=0)

    def test_heatmap_renders(self, zone):
        art = heatmap(
            "read zone",
            zone.probabilities,
            row_labels=[f"{z:.1f}m" for z in zone.z_values],
            col_labels=[f"{x:.0f}" for x in zone.x_values],
        )
        assert "read zone" in art
        assert "legend" in art


class TestHeatmapUnit:
    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            heatmap("x", [])

    def test_ragged_rejected(self):
        with pytest.raises(ValueError):
            heatmap("x", [[0.1, 0.2], [0.3]])

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            heatmap("x", [[1.5]])

    def test_label_mismatch_rejected(self):
        with pytest.raises(ValueError):
            heatmap("x", [[0.5]], row_labels=["a", "b"])

    def test_shading_scales(self):
        art = heatmap("x", [[0.0, 1.0]])
        assert "  " in art and "##" in art
