"""Property-based tests on simulator invariants (hypothesis)."""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core.calibration import PaperSetup
from repro.protocol.epc import EpcFactory
from repro.rf.geometry import Vec3
from repro.sim.rng import SeedSequence
from repro.world.motion import StationaryPlacement
from repro.world.portal import single_antenna_portal
from repro.world.simulation import CarrierGroup, PortalPassSimulator
from repro.world.tags import Tag

SETUP = PaperSetup()

slow_settings = settings(
    max_examples=10,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def _carrier(tag_count, distance, duration=0.2):
    factory = EpcFactory()
    tags = [
        Tag(
            epc=factory.next_epc().to_hex(),
            local_position=Vec3((i % 4) * 0.15, 1.0 + (i // 4) * 0.2, 0.0),
        )
        for i in range(tag_count)
    ]
    return CarrierGroup(
        motion=StationaryPlacement(Vec3(0, 0, distance), duration_s=duration),
        tags=tags,
    )


def _sim():
    return PortalPassSimulator(
        portal=single_antenna_portal(), env=SETUP.env, params=SETUP.params
    )


class TestInvariants:
    @given(
        st.integers(min_value=1, max_value=6),
        st.floats(min_value=0.5, max_value=12.0),
        st.integers(min_value=0, max_value=2**31 - 1),
    )
    @slow_settings
    def test_reads_subset_of_population(self, tag_count, distance, seed):
        carrier = _carrier(tag_count, distance)
        result = _sim().run_pass([carrier], SeedSequence(seed), 0)
        population = {t.epc for t in carrier.tags}
        assert result.read_epcs <= population

    @given(st.integers(min_value=0, max_value=2**31 - 1))
    @slow_settings
    def test_event_times_sorted_and_bounded(self, seed):
        carrier = _carrier(3, 2.0)
        result = _sim().run_pass([carrier], SeedSequence(seed), 0)
        times = [e.time for e in result.trace]
        assert times == sorted(times)
        assert all(0.0 <= t <= result.duration_s for t in times)

    @given(st.integers(min_value=0, max_value=2**31 - 1))
    @slow_settings
    def test_bitwise_determinism(self, seed):
        carrier = _carrier(4, 3.0)
        a = _sim().run_pass([carrier], SeedSequence(seed), 1)
        b = _sim().run_pass([carrier], SeedSequence(seed), 1)
        assert [(e.time, e.epc) for e in a.trace] == [
            (e.time, e.epc) for e in b.trace
        ]

    @given(
        st.floats(min_value=0.5, max_value=3.0),
        st.integers(min_value=0, max_value=2**31 - 1),
    )
    @slow_settings
    def test_more_power_never_hurts_on_average(self, distance, seed):
        """Across trials, a 30 dBm portal reads at least as many tags as
        a 24 dBm one (monotonicity of the physical layer)."""
        carrier = _carrier(4, distance, duration=0.2)

        def total_reads(power):
            sim = PortalPassSimulator(
                portal=single_antenna_portal(tx_power_dbm=power),
                env=SETUP.env,
                params=SETUP.params,
            )
            return sum(
                len(sim.run_pass([carrier], SeedSequence(seed), t).read_epcs)
                for t in range(6)
            )

        assert total_reads(30.0) >= total_reads(24.0) - 1

    @given(st.integers(min_value=0, max_value=2**31 - 1))
    @slow_settings
    def test_rssi_physically_plausible(self, seed):
        carrier = _carrier(3, 1.0)
        result = _sim().run_pass([carrier], SeedSequence(seed), 0)
        for event in result.trace:
            # Backscatter can never exceed the conducted power, and a
            # decodable read sits above the clean-channel sensitivity.
            assert -90.0 <= event.rssi_dbm <= 30.0
