"""Tests for motion profiles and portal construction."""

import pytest

from repro.rf.geometry import Vec3
from repro.world.motion import LinearPass, StationaryPlacement
from repro.world.portal import (
    AntennaInstallation,
    Portal,
    ReaderAssignment,
    dual_antenna_portal,
    dual_reader_portal,
    single_antenna_portal,
)


class TestLinearPass:
    def test_position_interpolates(self):
        walk = LinearPass(Vec3(0, 0, 1), Vec3(1, 0, 0), duration_s=4.0)
        assert walk.position_at(2.0).is_close(Vec3(2, 0, 1))

    def test_clamped_to_window(self):
        walk = LinearPass(Vec3(0, 0, 1), Vec3(1, 0, 0), duration_s=4.0)
        assert walk.position_at(-1.0).is_close(Vec3(0, 0, 1))
        assert walk.position_at(99.0).is_close(walk.end_position)

    def test_speed(self):
        walk = LinearPass(Vec3.zero(), Vec3(3, 0, 4), duration_s=1.0)
        assert walk.speed_mps == pytest.approx(5.0)

    def test_invalid_duration(self):
        with pytest.raises(ValueError):
            LinearPass(Vec3.zero(), Vec3.unit_x(), duration_s=0.0)

    def test_centered_lane_pass_geometry(self):
        walk = LinearPass.centered_lane_pass(
            lane_distance_m=1.0, speed_mps=1.0, half_span_m=2.0, height_m=0.0
        )
        assert walk.duration_s == pytest.approx(4.0)
        assert walk.position_at(0.0).x == pytest.approx(-2.0)
        # Midpoint of the pass is abeam of the antenna (x=0).
        assert walk.position_at(2.0).x == pytest.approx(0.0)
        assert walk.position_at(2.0).z == pytest.approx(1.0)

    def test_centered_lane_pass_validation(self):
        with pytest.raises(ValueError):
            LinearPass.centered_lane_pass(lane_distance_m=0.0)
        with pytest.raises(ValueError):
            LinearPass.centered_lane_pass(speed_mps=-1.0)
        with pytest.raises(ValueError):
            LinearPass.centered_lane_pass(half_span_m=0.0)

    def test_faster_pass_shorter_duration(self):
        slow = LinearPass.centered_lane_pass(speed_mps=0.5)
        fast = LinearPass.centered_lane_pass(speed_mps=2.0)
        assert fast.duration_s < slow.duration_s


class TestStationary:
    def test_position_constant(self):
        placement = StationaryPlacement(Vec3(1, 2, 3), duration_s=1.0)
        assert placement.position_at(0.0).is_close(Vec3(1, 2, 3))
        assert placement.position_at(100.0).is_close(Vec3(1, 2, 3))


class TestPortals:
    def test_single_antenna(self):
        portal = single_antenna_portal()
        assert portal.antenna_count == 1
        assert portal.reader_count == 1
        assert portal.all_antennas[0].boresight.is_close(Vec3.unit_z())

    def test_dual_antenna_same_reader(self):
        portal = dual_antenna_portal(spacing_m=2.0)
        assert portal.antenna_count == 2
        assert portal.reader_count == 1
        a0, a1 = portal.all_antennas
        assert a0.position.distance_to(a1.position) == pytest.approx(2.0)

    def test_dual_reader(self):
        portal = dual_reader_portal()
        assert portal.reader_count == 2
        assert portal.antenna_count == 2
        assert not portal.readers[0].dense_reader_mode

    def test_dual_reader_with_drm(self):
        portal = dual_reader_portal(dense_reader_mode=True)
        assert all(r.dense_reader_mode for r in portal.readers)

    def test_invalid_spacing(self):
        with pytest.raises(ValueError):
            dual_antenna_portal(spacing_m=0.0)
        with pytest.raises(ValueError):
            dual_reader_portal(spacing_m=-1.0)

    def test_duplicate_reader_ids_rejected(self):
        antenna_a = AntennaInstallation("x0", Vec3(0, 1, 0), Vec3.unit_z())
        antenna_b = AntennaInstallation("x1", Vec3(1, 1, 0), Vec3.unit_z())
        with pytest.raises(ValueError):
            Portal(
                readers=(
                    ReaderAssignment("r", (antenna_a,)),
                    ReaderAssignment("r", (antenna_b,)),
                )
            )

    def test_duplicate_antenna_ids_rejected(self):
        antenna_a = AntennaInstallation("x", Vec3(0, 1, 0), Vec3.unit_z())
        antenna_b = AntennaInstallation("x", Vec3(1, 1, 0), Vec3.unit_z())
        with pytest.raises(ValueError):
            Portal(
                readers=(
                    ReaderAssignment("r0", (antenna_a,)),
                    ReaderAssignment("r1", (antenna_b,)),
                )
            )

    def test_reader_needs_antennas(self):
        with pytest.raises(ValueError):
            ReaderAssignment("r0", ())

    def test_power_bounds(self):
        antenna = AntennaInstallation("a", Vec3(0, 1, 0), Vec3.unit_z())
        with pytest.raises(ValueError):
            ReaderAssignment("r0", (antenna,), tx_power_dbm=50.0)

    def test_zero_boresight_rejected(self):
        with pytest.raises(ValueError):
            AntennaInstallation("a", Vec3(0, 1, 0), Vec3.zero())

    def test_empty_portal_rejected(self):
        with pytest.raises(ValueError):
            Portal(readers=())
