"""Structural tests for the scenario builders (fast: no long sims)."""

import pytest

from repro.world.humans import HumanTagPlacement
from repro.world.objects import BoxFace
from repro.world.scenarios.human_tracking import (
    PLACEMENT_SETS,
    TABLE4_CASES,
    TABLE5_CASES,
    build_walk,
)
from repro.world.scenarios.object_tracking import (
    TABLE1_LOCATIONS,
    TABLE3_CASES,
    build_box_cart,
)
from repro.world.scenarios.orientation_spacing import (
    PAPER_SPACINGS_M,
    build_tag_row,
)
from repro.world.scenarios.read_range import (
    PAPER_DISTANCES_M,
    build_tag_plane,
)
from repro.world.tags import TagOrientation


class TestReadRangeScenario:
    def test_twenty_tags(self):
        carrier = build_tag_plane(3.0)
        assert len(carrier.tags) == 20

    def test_grid_pitch_matches_figure1(self):
        carrier = build_tag_plane(3.0)
        xs = sorted({round(t.local_position.x, 4) for t in carrier.tags})
        ys = sorted({round(t.local_position.y, 4) for t in carrier.tags})
        assert len(xs) == 5 and len(ys) == 4
        assert xs[1] - xs[0] == pytest.approx(0.125)
        assert ys[1] - ys[0] == pytest.approx(0.20)

    def test_grid_beyond_coupling_range(self):
        """The paper chose the pitch so tags do not interfere."""
        carrier = build_tag_plane(3.0)
        positions = [t.local_position for t in carrier.tags]
        for i, a in enumerate(positions):
            for b in positions[i + 1:]:
                assert a.distance_to(b) > 0.04

    def test_tags_face_antenna(self):
        carrier = build_tag_plane(3.0)
        assert all(
            t.orientation is TagOrientation.CASE_2_HORIZONTAL_FACING
            for t in carrier.tags
        )

    def test_stationary_at_distance(self):
        carrier = build_tag_plane(7.5)
        assert carrier.motion.position_at(0.0).z == pytest.approx(7.5)

    def test_invalid_distance(self):
        with pytest.raises(ValueError):
            build_tag_plane(0.0)

    def test_paper_distances(self):
        assert PAPER_DISTANCES_M[0] == 1.0
        assert PAPER_DISTANCES_M[-1] == 10.0


class TestOrientationSpacingScenario:
    def test_ten_tags(self):
        carrier = build_tag_row(0.01, TagOrientation.CASE_2_HORIZONTAL_FACING)
        assert len(carrier.tags) == 10

    def test_stacked_along_normal(self):
        orientation = TagOrientation.CASE_2_HORIZONTAL_FACING
        carrier = build_tag_row(0.02, orientation)
        positions = [t.local_position for t in carrier.tags]
        span = positions[0].distance_to(positions[-1])
        assert span == pytest.approx(9 * 0.02)
        # Stacking axis is the inlay normal (z for case 2).
        assert {round(p.x, 6) for p in positions} == {0.0}

    def test_paper_spacings(self):
        assert PAPER_SPACINGS_M == (0.0003, 0.004, 0.010, 0.020, 0.040)

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            build_tag_row(-0.01, TagOrientation.CASE_1_AXIAL_EDGE)
        with pytest.raises(ValueError):
            build_tag_row(0.01, TagOrientation.CASE_1_AXIAL_EDGE, tag_count=0)

    def test_moving_pass(self):
        carrier = build_tag_row(0.02, TagOrientation.CASE_4_HORIZONTAL_FLAT)
        assert carrier.motion.speed_mps == pytest.approx(1.0)


class TestObjectScenario:
    def test_twelve_boxes_with_tags(self):
        carrier, boxes = build_box_cart([BoxFace.FRONT])
        assert len(boxes) == 12
        assert len(carrier.tags) == 12

    def test_two_faces_two_tags_each(self):
        carrier, boxes = build_box_cart([BoxFace.FRONT, BoxFace.SIDE_CLOSER])
        assert len(carrier.tags) == 24
        assert all(len(b.all_tags()) == 2 for b in boxes)

    def test_occluders_one_per_box(self):
        carrier, boxes = build_box_cart([BoxFace.FRONT])
        assert len(carrier.occluders) == 12

    def test_lower_layer_top_tags_sandwiched(self):
        carrier, boxes = build_box_cart([BoxFace.TOP])
        gaps = sorted(t.mount_gap_m for t in carrier.tags)
        # Six sandwiched (tiny gap) + six open-top.
        assert sum(1 for g in gaps if g < 0.01) == 6

    def test_empty_faces_rejected(self):
        with pytest.raises(ValueError):
            build_box_cart([])

    def test_table_cases_cover_paper(self):
        assert len(TABLE1_LOCATIONS) == 4
        assert len(TABLE3_CASES) == 6
        antennas = {c.antennas for c in TABLE3_CASES}
        assert antennas == {1, 2}

    def test_cart_clutter_configured(self):
        carrier, _ = build_box_cart([BoxFace.FRONT])
        assert carrier.clutter_sigma_db > 0.0


class TestHumanScenario:
    def test_one_subject(self):
        carrier, humans = build_walk(1, [HumanTagPlacement.FRONT])
        assert len(humans) == 1
        assert len(carrier.tags) == 1
        assert len(carrier.occluders) == 1

    def test_two_subjects(self):
        carrier, humans = build_walk(2, PLACEMENT_SETS["sides"])
        assert len(humans) == 2
        assert len(carrier.tags) == 4

    def test_occluders_reflective(self):
        carrier, _ = build_walk(1, [HumanTagPlacement.FRONT])
        assert all(o.reflective for o in carrier.occluders)

    def test_three_subjects_rejected(self):
        with pytest.raises(ValueError):
            build_walk(3, [HumanTagPlacement.FRONT])

    def test_no_placements_rejected(self):
        with pytest.raises(ValueError):
            build_walk(1, [])

    def test_table_cases_cover_paper(self):
        assert len(TABLE4_CASES) == 6
        assert len(TABLE5_CASES) == 6
        assert all(c.antennas == 1 for c in TABLE4_CASES)
        assert all(c.antennas == 2 for c in TABLE5_CASES)

    def test_placement_sets(self):
        assert len(PLACEMENT_SETS["front_back"]) == 2
        assert len(PLACEMENT_SETS["all"]) == 4
