"""Tests for tagged boxes and human subjects."""

import pytest

from repro.rf.geometry import Vec3
from repro.rf.materials import CARDBOARD, METAL
from repro.world.humans import (
    Human,
    HumanTagPlacement,
    two_abreast,
)
from repro.world.objects import (
    BoxContent,
    BoxFace,
    TaggedBox,
    cart_of_boxes,
)
from repro.world.tags import TagOrientation


def _epc(i=0):
    return f"30{i:022X}"


class TestTaggedBox:
    def test_face_centres_on_surface(self):
        box = TaggedBox("b", size=Vec3(0.4, 0.3, 0.2))
        front = box.face_centre(BoxFace.FRONT)
        assert front.x == pytest.approx(0.2)
        top = box.face_centre(BoxFace.TOP)
        assert top.y == pytest.approx(0.15)

    def test_face_centre_offset_by_position(self):
        box = TaggedBox("b", local_position=Vec3(1, 2, 3))
        front = box.face_centre(BoxFace.FRONT)
        assert front.y == pytest.approx(2.0)
        assert front.z == pytest.approx(3.0)

    def test_gap_to_content(self):
        box = TaggedBox(
            "b",
            size=Vec3(0.4, 0.3, 0.4),
            content=BoxContent(radius_m=0.12),
        )
        # Top face is 0.15 from centre; sphere surface at 0.12.
        assert box.gap_to_content_m(BoxFace.TOP) == pytest.approx(0.03)
        # Front face is 0.20 away.
        assert box.gap_to_content_m(BoxFace.FRONT) == pytest.approx(0.08)

    def test_empty_box_infinite_gap(self):
        box = TaggedBox("b", content=None)
        assert box.gap_to_content_m(BoxFace.TOP) == float("inf")

    def test_attach_tag_derives_mount(self):
        box = TaggedBox("b")
        tag = box.attach_tag(_epc(), BoxFace.TOP)
        assert tag.mount_material is METAL
        assert tag.mount_gap_m < 0.05
        assert box.all_tags() == [tag]

    def test_attach_tag_empty_box_uses_shell(self):
        box = TaggedBox("b", content=None)
        tag = box.attach_tag(_epc(), BoxFace.FRONT)
        assert tag.mount_material is CARDBOARD

    def test_top_tag_detunes_more_than_front(self):
        """The physical root of Table 1's 'top is worst' finding."""
        box = TaggedBox("b")
        top = box.attach_tag(_epc(0), BoxFace.TOP)
        front = box.attach_tag(_epc(1), BoxFace.FRONT)
        assert top.detuning_db() > front.detuning_db()

    def test_orientation_override(self):
        box = TaggedBox("b")
        tag = box.attach_tag(
            _epc(), BoxFace.FRONT, orientation=TagOrientation.CASE_3_VERTICAL_FACING
        )
        assert tag.orientation is TagOrientation.CASE_3_VERTICAL_FACING

    def test_side_closer_faces_antenna(self):
        box = TaggedBox("b")
        normal = box.face_normal(BoxFace.SIDE_CLOSER)
        assert normal.z < 0  # antenna is at -z

    def test_invalid_content_radius(self):
        with pytest.raises(ValueError):
            BoxContent(radius_m=-0.1)


class TestCart:
    def test_twelve_boxes_default(self):
        boxes = cart_of_boxes()
        assert len(boxes) == 12
        assert len({b.box_id for b in boxes}) == 12

    def test_grid_shape(self):
        boxes = cart_of_boxes()
        xs = {round(b.local_position.x, 3) for b in boxes}
        ys = {round(b.local_position.y, 3) for b in boxes}
        zs = {round(b.local_position.z, 3) for b in boxes}
        assert len(xs) == 3  # rows along the movement axis
        assert len(ys) == 2  # two layers
        assert len(zs) == 2  # two columns across the lane

    def test_boxes_above_deck(self):
        for box in cart_of_boxes():
            assert box.local_position.y > 0.4

    def test_grid_too_small_rejected(self):
        with pytest.raises(ValueError):
            cart_of_boxes(box_count=20, rows=2, columns=2, layers=2)

    def test_invalid_count(self):
        with pytest.raises(ValueError):
            cart_of_boxes(box_count=0)

    def test_partial_cart(self):
        assert len(cart_of_boxes(box_count=5)) == 5


class TestHuman:
    def test_torso_at_waist(self):
        human = Human("p")
        assert human.torso_centre().y == pytest.approx(1.0)

    def test_attach_all_placements(self):
        human = Human("p")
        for i, placement in enumerate(HumanTagPlacement.ALL):
            human.attach_tag(_epc(i), placement)
        assert len(human.tags) == 4

    def test_unknown_placement(self):
        with pytest.raises(ValueError, match="side_farther"):
            Human("p").attach_tag(_epc(), "hat")

    def test_placement_lookup(self):
        human = Human("p")
        tag = human.attach_tag(_epc(), HumanTagPlacement.FRONT)
        assert human.placement_of(tag.epc) == "front"
        assert human.placement_of("unknown") is None

    def test_side_closer_toward_antenna(self):
        human = Human("p")
        tag = human.attach_tag(_epc(), HumanTagPlacement.SIDE_CLOSER)
        assert tag.local_position.z < 0

    def test_side_farther_behind_body(self):
        human = Human("p")
        tag = human.attach_tag(_epc(), HumanTagPlacement.SIDE_FARTHER)
        assert tag.local_position.z > human.torso_radius_m

    def test_tags_do_not_touch_body(self):
        # "tags should not touch the body" — mount gap is positive.
        human = Human("p")
        tag = human.attach_tag(_epc(), HumanTagPlacement.FRONT)
        assert tag.mount_gap_m > 0.0


class TestTwoAbreast:
    def test_closer_and_farther(self):
        closer, farther = two_abreast()
        assert closer.local_position.z < farther.local_position.z

    def test_shoulder_gap(self):
        closer, farther = two_abreast(shoulder_gap_m=0.6)
        gap = farther.local_position.z - closer.local_position.z
        assert gap == pytest.approx(0.6)

    def test_invalid_gap(self):
        with pytest.raises(ValueError):
            two_abreast(shoulder_gap_m=0.0)
