"""The per-pass link cache must be invisible: bit-identical results.

Every test runs the same seeded pass twice — cache on, cache off — and
asserts the full :class:`PassResult` (trace, timings, coverage) is
equal. The cache is a pure memo plus a provably-sound short-circuit,
so any observable difference is a bug.
"""

from repro.core.calibration import PaperSetup
from repro.faults import FaultPlan, ReaderCrash
from repro.sim.rng import SeedSequence
from repro.world.objects import BoxFace
from repro.world.portal import (
    dual_antenna_portal,
    dual_reader_portal,
    failover_portal,
    single_antenna_portal,
)
from repro.world.scenarios.human_tracking import build_walk
from repro.world.scenarios.object_tracking import build_box_cart
from repro.world.scenarios.read_range import build_tag_plane
from repro.world.simulation import PassLinkCache, PortalPassSimulator


def _sim(portal, use_link_cache):
    setup = PaperSetup()
    return PortalPassSimulator(
        portal=portal,
        env=setup.env,
        params=setup.params,
        use_link_cache=use_link_cache,
    )


def _assert_parity(portal, carriers, trials=2, fault_plan=None):
    cached = _sim(portal, True)
    uncached = _sim(portal, False)
    seeds = SeedSequence(20070625)
    for trial in range(trials):
        a = cached.run_pass(carriers, seeds, trial, fault_plan=fault_plan)
        b = uncached.run_pass(carriers, seeds, trial, fault_plan=fault_plan)
        assert a == b
    assert cached._last_cache_stats is not None
    assert uncached._last_cache_stats is None
    return cached._last_cache_stats


class TestCacheParity:
    def test_moving_box_cart(self):
        carrier, _ = build_box_cart([BoxFace.FRONT], box_count=4)
        _assert_parity(single_antenna_portal(), [carrier])

    def test_stationary_plane_hits_geometry_cache(self):
        carrier = build_tag_plane(3.0)
        stats = _assert_parity(single_antenna_portal(), [carrier], trials=1)
        # A stationary carrier revisits the same position every round:
        # after the first round every geometry lookup must hit.
        assert stats["geometry_hits"] > 0

    def test_occluded_walk(self):
        carrier, _ = build_walk(2, ["front", "back"])
        _assert_parity(single_antenna_portal(), [carrier])

    def test_dual_antenna_portal(self):
        carrier, _ = build_box_cart(
            [BoxFace.FRONT, BoxFace.SIDE_CLOSER], box_count=2
        )
        _assert_parity(dual_antenna_portal(), [carrier])

    def test_dual_reader_interference(self):
        carrier, _ = build_walk(1, ["front"])
        _assert_parity(dual_reader_portal(dense_reader_mode=False), [carrier])

    def test_faulted_pass_with_failover(self):
        carrier, _ = build_walk(1, ["front"])
        duration = carrier.motion.duration_s
        plan = FaultPlan(
            crashes=(ReaderCrash("reader-0", 0.05 * duration, None),)
        )
        _assert_parity(failover_portal(), [carrier], fault_plan=plan)

    def test_fading_cache_exercised(self):
        carrier, _ = build_box_cart([BoxFace.FRONT], box_count=4)
        stats = _assert_parity(single_antenna_portal(), [carrier], trials=1)
        assert stats["fading_misses"] > 0
        # Rounds are much shorter than the fading coherence distance at
        # cart speed, so repeated draws in the same cell must hit.
        assert stats["fading_hits"] > stats["fading_misses"]

    def test_short_circuit_fires_on_distant_tags(self):
        # 9 m with metal-content boxes: most dwells cannot possibly
        # energize the far tags, so the short-circuit must engage.
        carrier, _ = build_box_cart([BoxFace.SIDE_FARTHER], box_count=4)
        stats = _assert_parity(single_antenna_portal(), [carrier], trials=1)
        assert stats["short_circuits"] > 0


class TestCacheObject:
    def test_stats_shape(self):
        cache = PassLinkCache()
        stats = cache.stats()
        assert set(stats) == {
            "geometry_hits",
            "geometry_misses",
            "fading_hits",
            "fading_misses",
            "short_circuits",
        }
        assert all(v == 0 for v in stats.values())

    def test_default_simulator_uses_cache(self):
        sim = PortalPassSimulator(portal=single_antenna_portal())
        assert sim.use_link_cache is True
