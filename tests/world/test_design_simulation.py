"""Simulation-grade tests of alternative inlay designs.

The design catalog is not only a planning heuristic: `Tag.design`
plugs a design's pattern, detuning mitigation, and coupling factor
straight into the portal simulator. These tests verify the headline
engineering claims *in simulation*.
"""

import pytest

from repro.core.calibration import PaperSetup
from repro.core.experiment import run_trials
from repro.protocol.epc import EpcFactory
from repro.rf.geometry import Vec3
from repro.world.motion import LinearPass
from repro.world.objects import BoxFace
from repro.world.portal import single_antenna_portal
from repro.world.scenarios.object_tracking import build_box_cart
from repro.world.simulation import CarrierGroup, PortalPassSimulator
from repro.world.tag_designs import TagDesign
from repro.world.tags import Tag, TagOrientation

pytestmark = pytest.mark.slow

SETUP = PaperSetup()


def _sim():
    return PortalPassSimulator(
        portal=single_antenna_portal(), env=SETUP.env, params=SETUP.params
    )


def _rate(carrier, epcs, reps=8):
    sim = _sim()
    trials = run_trials(
        "design-sim",
        lambda seeds, i: sim.run_pass([carrier], seeds, i),
        reps,
    )
    return sum(o.tags_read(epcs) for o in trials.outcomes) / (
        len(epcs) * reps
    )


class TestDefaultUnchanged:
    def test_none_design_matches_stock_tag(self):
        """design=None must reproduce the calibrated behaviour exactly
        (guards the paper benchmarks against this feature)."""
        from repro.sim.rng import SeedSequence

        factory = EpcFactory()
        epc = factory.next_epc().to_hex()

        def carrier(design):
            return CarrierGroup(
                motion=LinearPass.centered_lane_pass(
                    lane_distance_m=1.0, speed_mps=1.0, half_span_m=1.5,
                    height_m=0.0,
                ),
                tags=[
                    Tag(
                        epc=epc,
                        local_position=Vec3(0, 1, 0),
                        design=design,
                    )
                ],
            )

        sim = _sim()
        a = sim.run_pass([carrier(None)], SeedSequence(5), 0)
        b = sim.run_pass([carrier(None)], SeedSequence(5), 0)
        assert [e.time for e in a.trace] == [e.time for e in b.trace]


class TestMetalMountInSimulation:
    def test_fixes_the_top_placement(self):
        """The paper's 29% 'top' placement becomes strong when the top
        tags are metal-mount designs — in the full simulator."""
        stock_carrier, _ = build_box_cart([BoxFace.TOP])
        stock_epcs = [t.epc for t in stock_carrier.tags]
        stock = _rate(stock_carrier, stock_epcs)

        hardened_carrier, _ = build_box_cart([BoxFace.TOP])
        for tag in hardened_carrier.tags:
            tag.design = TagDesign.METAL_MOUNT
        hardened_epcs = [t.epc for t in hardened_carrier.tags]
        hardened = _rate(hardened_carrier, hardened_epcs)

        assert stock <= 0.55
        assert hardened >= stock + 0.25
        assert hardened >= 0.70


class TestDualDipoleInSimulation:
    def test_rescues_perpendicular_orientation(self):
        """Orientation case 1 (dipole at the antenna) is the paper's
        worst; a dual-dipole inlay erases the null."""

        def carrier(design):
            factory = EpcFactory()
            tags = [
                Tag(
                    epc=factory.next_epc().to_hex(),
                    local_position=Vec3(i * 0.3 - 0.6, 1.0, 0.0),
                    orientation=TagOrientation.CASE_1_AXIAL_EDGE,
                    design=design,
                )
                for i in range(5)
            ]
            return CarrierGroup(
                motion=LinearPass.centered_lane_pass(
                    lane_distance_m=2.5, speed_mps=1.0, half_span_m=1.5,
                    height_m=0.0,
                ),
                tags=tags,
                clutter_sigma_db=4.0,
            )

        single_carrier = carrier(None)
        dual_carrier = carrier(TagDesign.DUAL_DIPOLE)
        single = _rate(single_carrier, [t.epc for t in single_carrier.tags])
        dual = _rate(dual_carrier, [t.epc for t in dual_carrier.tags])
        assert dual >= single

    def test_loop_design_dead_at_portal_range(self):
        factory = EpcFactory()
        tags = [
            Tag(
                epc=factory.next_epc().to_hex(),
                local_position=Vec3(0, 1, 0),
                design=TagDesign.NEAR_FIELD_LOOP,
            )
        ]
        carrier = CarrierGroup(
            motion=LinearPass.centered_lane_pass(
                lane_distance_m=1.0, speed_mps=1.0, half_span_m=1.5,
                height_m=0.0,
            ),
            tags=tags,
        )
        assert _rate(carrier, [tags[0].epc], reps=6) <= 0.2
