"""Tests for the alternative tag-design catalog."""

import pytest

from repro.rf.geometry import Vec3
from repro.rf.materials import AIR, METAL
from repro.world.tag_designs import (
    DESIGNS,
    TagDesign,
    characteristics,
    design_detuning_db,
    design_gain_dbi,
    expected_read_reliability,
    worst_case_pattern_loss_db,
)


class TestCatalog:
    def test_all_designs_present(self):
        assert set(DESIGNS) == set(TagDesign)

    def test_lookup(self):
        spec = characteristics(TagDesign.SINGLE_DIPOLE)
        assert spec.peak_gain_dbi == pytest.approx(2.15)

    def test_single_dipole_is_cheapest(self):
        costs = {d: s.unit_cost_usd for d, s in DESIGNS.items()}
        assert min(costs, key=costs.get) is TagDesign.SINGLE_DIPOLE

    def test_metal_mount_is_premium(self):
        assert (
            DESIGNS[TagDesign.METAL_MOUNT].unit_cost_usd
            > 5 * DESIGNS[TagDesign.SINGLE_DIPOLE].unit_cost_usd
        )


class TestPatterns:
    def test_single_dipole_has_null(self):
        axis = Vec3.unit_x()
        broadside = design_gain_dbi(TagDesign.SINGLE_DIPOLE, Vec3.unit_z(), axis)
        axial = design_gain_dbi(TagDesign.SINGLE_DIPOLE, Vec3.unit_x(), axis)
        assert axial < broadside - 20.0

    def test_dual_dipole_has_no_null(self):
        axis = Vec3.unit_x()
        gains = [
            design_gain_dbi(TagDesign.DUAL_DIPOLE, direction, axis)
            for direction in (Vec3.unit_x(), Vec3.unit_y(), Vec3.unit_z())
        ]
        assert max(gains) - min(gains) < 0.01

    def test_dual_dipole_trades_peak_gain(self):
        axis = Vec3.unit_x()
        single = design_gain_dbi(TagDesign.SINGLE_DIPOLE, Vec3.unit_z(), axis)
        dual = design_gain_dbi(TagDesign.DUAL_DIPOLE, Vec3.unit_z(), axis)
        assert dual == pytest.approx(single - 3.0, abs=0.1)

    def test_worst_case_pattern_loss(self):
        assert worst_case_pattern_loss_db(TagDesign.DUAL_DIPOLE) == 0.0
        assert worst_case_pattern_loss_db(TagDesign.SINGLE_DIPOLE) > 20.0


class TestDetuning:
    def test_metal_mount_shrugs_off_metal(self):
        plain = design_detuning_db(TagDesign.SINGLE_DIPOLE, METAL, 0.0)
        hardened = design_detuning_db(TagDesign.METAL_MOUNT, METAL, 0.0)
        assert hardened < 0.1 * plain

    def test_air_detunes_nothing(self):
        for design in TagDesign:
            assert design_detuning_db(design, AIR, 0.0) == 0.0


class TestPlanningHeuristic:
    def test_metal_mount_fixes_the_top_of_box(self):
        """The paper's worst placement (top over a router, 29%) becomes
        serviceable with an engineered metal-mount tag."""
        baseline = expected_read_reliability(
            TagDesign.SINGLE_DIPOLE, 0.29, on_metal=True
        )
        hardened = expected_read_reliability(
            TagDesign.METAL_MOUNT, 0.29, on_metal=True
        )
        assert baseline == pytest.approx(0.29, abs=0.02)
        assert hardened > 0.90

    def test_dual_dipole_helps_uncontrolled_orientation(self):
        careless_single = expected_read_reliability(
            TagDesign.SINGLE_DIPOLE, 0.85, orientation_controlled=False
        )
        careless_dual = expected_read_reliability(
            TagDesign.DUAL_DIPOLE, 0.85, orientation_controlled=False
        )
        assert careless_dual > careless_single

    def test_dual_dipole_costs_gain_when_controlled(self):
        controlled_single = expected_read_reliability(
            TagDesign.SINGLE_DIPOLE, 0.85
        )
        controlled_dual = expected_read_reliability(
            TagDesign.DUAL_DIPOLE, 0.85
        )
        assert controlled_dual < controlled_single

    def test_invalid_base_reliability(self):
        with pytest.raises(ValueError):
            expected_read_reliability(TagDesign.SINGLE_DIPOLE, 1.0)
        with pytest.raises(ValueError):
            expected_read_reliability(TagDesign.SINGLE_DIPOLE, 0.0)
