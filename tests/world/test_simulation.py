"""Tests for the end-to-end portal pass simulator."""

import pytest

from repro.core.calibration import PaperSetup
from repro.protocol.epc import EpcFactory
from repro.rf.geometry import Vec3
from repro.rf.materials import METAL
from repro.sim.rng import SeedSequence
from repro.world.motion import LinearPass, StationaryPlacement
from repro.world.portal import (
    dual_antenna_portal,
    dual_reader_portal,
    single_antenna_portal,
)
from repro.world.simulation import (
    CarrierGroup,
    Occluder,
    PortalPassSimulator,
    SimulationParameters,
)
from repro.world.tags import Tag, TagOrientation

SETUP = PaperSetup()


def _tag(epc=None, y=1.0, z=0.0, orientation=TagOrientation.CASE_2_HORIZONTAL_FACING):
    return Tag(
        epc=epc or EpcFactory().next_epc().to_hex(),
        local_position=Vec3(0.0, y, z),
        orientation=orientation,
    )


def _simple_carrier(**kwargs):
    return CarrierGroup(
        motion=LinearPass.centered_lane_pass(
            lane_distance_m=1.0, speed_mps=1.0, half_span_m=1.5, height_m=0.0
        ),
        tags=[_tag()],
        **kwargs,
    )


def _sim(portal=None):
    return PortalPassSimulator(
        portal=portal or single_antenna_portal(),
        env=SETUP.env,
        params=SETUP.params,
    )


class TestBasicPass:
    def test_close_facing_tag_is_read(self):
        result = _sim().run_pass([_simple_carrier()], SeedSequence(1), 0)
        assert len(result.read_epcs) == 1

    def test_deterministic_given_seed_and_trial(self):
        carrier = _simple_carrier()
        a = _sim().run_pass([carrier], SeedSequence(5), 3)
        b = _sim().run_pass([carrier], SeedSequence(5), 3)
        assert [e.time for e in a.trace] == [e.time for e in b.trace]
        assert a.read_epcs == b.read_epcs

    def test_different_trials_differ(self):
        carrier = _simple_carrier()
        sim = _sim()
        traces = [
            tuple(e.time for e in sim.run_pass([carrier], SeedSequence(5), t).trace)
            for t in range(4)
        ]
        assert len(set(traces)) > 1

    def test_events_well_formed(self):
        result = _sim().run_pass([_simple_carrier()], SeedSequence(2), 0)
        for event in result.trace:
            assert event.reader_id == "reader-0"
            assert event.antenna_id == "ant-0"
            assert event.rssi_dbm < 0.0
            assert 0.0 <= event.time <= result.duration_s

    def test_no_tags_rejected(self):
        carrier = CarrierGroup(
            motion=StationaryPlacement(Vec3(0, 1, 1), duration_s=0.1)
        )
        with pytest.raises(ValueError):
            _sim().run_pass([carrier], SeedSequence(1), 0)

    def test_duplicate_epcs_rejected(self):
        tag = _tag()
        carrier = CarrierGroup(
            motion=StationaryPlacement(Vec3(0, 1, 1), duration_s=0.1),
            tags=[tag, Tag(epc=tag.epc)],
        )
        with pytest.raises(ValueError, match="duplicate"):
            _sim().run_pass([carrier], SeedSequence(1), 0)

    def test_rounds_counted(self):
        result = _sim().run_pass([_simple_carrier()], SeedSequence(3), 0)
        assert result.rounds > 1

    def test_tags_read_counts(self):
        carrier = _simple_carrier()
        result = _sim().run_pass([carrier], SeedSequence(1), 0)
        assert result.tags_read([carrier.tags[0].epc]) in (0, 1)


class TestPhysicalEffects:
    def test_distant_tag_unreadable(self):
        carrier = CarrierGroup(
            motion=StationaryPlacement(Vec3(0, 0, 20.0), duration_s=0.5),
            tags=[_tag()],
        )
        result = _sim().run_pass([carrier], SeedSequence(1), 0)
        assert not result.read_epcs

    def test_metal_occluder_blocks(self):
        """A metal blob between antenna and tag suppresses reads over
        many trials relative to a clear path."""
        sim = _sim()

        def runs(occluders):
            carrier = CarrierGroup(
                motion=StationaryPlacement(Vec3(0, 0, 2.5), duration_s=0.3),
                tags=[_tag(y=1.0)],
                occluders=occluders,
            )
            return sum(
                1
                for t in range(30)
                if sim.run_pass([carrier], SeedSequence(9), t).read_epcs
            )

        clear = runs([])
        blocked = runs(
            [Occluder(Vec3(0.0, 1.0, -1.0), radius_m=0.3, material=METAL)]
        )
        assert blocked < clear

    def test_axial_orientation_reads_less(self):
        """Orientation cases 1/5 (dipole at the antenna) under-perform
        case 2 — the Figure 4 orientation effect."""
        sim = _sim()

        def hit_rate(orientation):
            carrier = CarrierGroup(
                motion=StationaryPlacement(Vec3(0, 0, 3.0), duration_s=0.3),
                tags=[
                    Tag(
                        epc=EpcFactory().next_epc().to_hex(),
                        local_position=Vec3(0, 1, 0),
                        orientation=orientation,
                    )
                ],
            )
            return sum(
                1
                for t in range(30)
                if sim.run_pass([carrier], SeedSequence(11), t).read_epcs
            )

        facing = hit_rate(TagOrientation.CASE_2_HORIZONTAL_FACING)
        axial = hit_rate(TagOrientation.CASE_1_AXIAL_EDGE)
        assert axial < facing

    def test_coupled_tags_read_less(self):
        """Tags stacked sub-centimetre apart suffer (Figure 4)."""
        sim = _sim()

        def mean_reads(spacing):
            factory = EpcFactory()
            tags = [
                Tag(
                    epc=factory.next_epc().to_hex(),
                    local_position=Vec3(0, 1, i * spacing),
                )
                for i in range(5)
            ]
            carrier = CarrierGroup(
                motion=StationaryPlacement(Vec3(0, 0, 1.5), duration_s=0.5),
                tags=tags,
            )
            total = 0
            for t in range(10):
                total += len(
                    sim.run_pass([carrier], SeedSequence(13), t).read_epcs
                )
            return total / 10

        tight = mean_reads(0.002)
        safe = mean_reads(0.05)
        assert tight < safe

    def test_clutter_shared_across_antennas(self):
        """With huge carrier clutter, both antennas of a portal see the
        same fade: a dead tag is dead for both (correlated failures)."""
        sim = _sim(dual_antenna_portal())
        carrier = CarrierGroup(
            motion=StationaryPlacement(Vec3(0, 0, 3.0), duration_s=0.5),
            tags=[_tag()],
            clutter_sigma_db=25.0,
        )
        per_antenna_disagreements = 0
        for trial in range(25):
            result = sim.run_pass([carrier], SeedSequence(17), trial)
            antennas_seen = {e.antenna_id for e in result.trace}
            if len(antennas_seen) == 1 and result.read_epcs:
                per_antenna_disagreements += 1
        # Shared clutter means reads mostly happen on both antennas or
        # neither; single-antenna-only trials should be a minority.
        assert per_antenna_disagreements < 20


class TestMultiReader:
    def test_dual_reader_interference_hurts(self):
        """The paper's reader-redundancy result: two non-DRM readers are
        WORSE than one."""
        carrier_factory = lambda: CarrierGroup(
            motion=LinearPass.centered_lane_pass(
                lane_distance_m=1.0, speed_mps=1.0, half_span_m=1.5, height_m=0.0
            ),
            tags=[_tag()],
            clutter_sigma_db=4.0,
        )
        single = _sim(single_antenna_portal())
        dual = _sim(dual_reader_portal(dense_reader_mode=False))

        def hits(sim):
            carrier = carrier_factory()
            return sum(
                1
                for t in range(25)
                if sim.run_pass([carrier], SeedSequence(21), t).read_epcs
            )

        assert hits(dual) < hits(single)

    def test_drm_restores_reader_redundancy(self):
        """With dense-reader mode the second reader stops hurting."""
        def carrier():
            return CarrierGroup(
                motion=LinearPass.centered_lane_pass(
                    lane_distance_m=1.0, speed_mps=1.0, half_span_m=1.5,
                    height_m=0.0,
                ),
                tags=[_tag()],
                clutter_sigma_db=4.0,
            )

        no_drm = _sim(dual_reader_portal(dense_reader_mode=False))
        with_drm = _sim(dual_reader_portal(dense_reader_mode=True))

        def hits(sim):
            c = carrier()
            return sum(
                1
                for t in range(25)
                if sim.run_pass([c], SeedSequence(23), t).read_epcs
            )

        assert hits(with_drm) > hits(no_drm)

    def test_dual_reader_trace_merged_in_order(self):
        carrier = CarrierGroup(
            motion=StationaryPlacement(Vec3(0, 0, 1.0), duration_s=0.3),
            tags=[_tag()],
        )
        sim = _sim(dual_reader_portal(dense_reader_mode=True))
        result = sim.run_pass([carrier], SeedSequence(29), 0)
        times = [e.time for e in result.trace]
        assert times == sorted(times)


class TestParameters:
    def test_invalid_occluder(self):
        with pytest.raises(ValueError):
            Occluder(Vec3.zero(), radius_m=0.0, material=METAL)

    def test_defaults_constructible(self):
        params = SimulationParameters()
        assert params.obstruction_cap_db > 0
        sim = PortalPassSimulator(single_antenna_portal())
        assert sim.params.decode_slope_db > 0
