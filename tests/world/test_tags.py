"""Tests for tag inlays and orientations."""

import pytest

from repro.rf.geometry import Vec3
from repro.rf.materials import AIR, BODY, METAL
from repro.world.tags import ALL_ORIENTATIONS, Tag, TagOrientation


def _epc():
    return "3" + "0" * 23


class TestOrientations:
    def test_six_cases(self):
        assert len(ALL_ORIENTATIONS) == 6
        assert {o.case_number for o in ALL_ORIENTATIONS} == {1, 2, 3, 4, 5, 6}

    def test_axes_are_unit(self):
        for orientation in ALL_ORIENTATIONS:
            assert orientation.dipole_axis.norm() == pytest.approx(1.0)
            assert orientation.normal.norm() == pytest.approx(1.0)

    def test_dipole_perpendicular_to_normal(self):
        for orientation in ALL_ORIENTATIONS:
            assert orientation.dipole_axis.dot(orientation.normal) == (
                pytest.approx(0.0)
            )

    def test_perpendicular_cases_are_1_and_5(self):
        perpendicular = {
            o.case_number
            for o in ALL_ORIENTATIONS
            if o.is_perpendicular_to_antenna
        }
        assert perpendicular == {1, 5}

    def test_facing_case_points_at_antenna(self):
        case2 = TagOrientation.CASE_2_HORIZONTAL_FACING
        # Antenna is at -z from the carrier; the face normal points there.
        assert case2.normal.z < 0


class TestTag:
    def test_valid_tag(self):
        tag = Tag(epc=_epc())
        assert tag.orientation is TagOrientation.CASE_2_HORIZONTAL_FACING

    def test_epc_length_enforced(self):
        with pytest.raises(ValueError):
            Tag(epc="1234")

    def test_epc_hex_enforced(self):
        with pytest.raises(ValueError):
            Tag(epc="z" * 24)

    def test_negative_gap_rejected(self):
        with pytest.raises(ValueError):
            Tag(epc=_epc(), mount_gap_m=-0.01)

    def test_detuning_from_mount(self):
        on_metal = Tag(epc=_epc(), mount_material=METAL, mount_gap_m=0.0)
        in_air = Tag(epc=_epc(), mount_material=AIR, mount_gap_m=0.0)
        assert on_metal.detuning_db() > 0.0
        assert in_air.detuning_db() == 0.0

    def test_detuning_decays_with_gap(self):
        near = Tag(epc=_epc(), mount_material=BODY, mount_gap_m=0.01)
        far = Tag(epc=_epc(), mount_material=BODY, mount_gap_m=0.04)
        assert near.detuning_db() > far.detuning_db()

    def test_world_position(self):
        tag = Tag(epc=_epc(), local_position=Vec3(0.1, 0.2, 0.3))
        world = tag.world_position(Vec3(1.0, 0.0, 0.0))
        assert world.is_close(Vec3(1.1, 0.2, 0.3))

    def test_world_dipole_axis(self):
        tag = Tag(epc=_epc(), orientation=TagOrientation.CASE_3_VERTICAL_FACING)
        assert tag.world_dipole_axis().is_close(Vec3.unit_y())
