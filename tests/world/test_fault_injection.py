"""Integration tests: fault plans driven through the pass simulator.

These pin the physical fault semantics end to end: a crashed reader
emits nothing and hands its antennas to the survivor via the portal RF
mux; a crash+restart resets the Gen 2 inventory session (tags become
re-readable) where a hang does not; and blind windows surface as
degraded coverage so a miss is "unobserved", never a confident
"absent".
"""

import pytest

from repro.core.calibration import PaperSetup
from repro.faults.plan import (
    AntennaFault,
    FaultPlan,
    ReaderCrash,
    ReaderHang,
)
from repro.reader.backend import ObjectRegistry, TrackedObject
from repro.sim.rng import SeedSequence
from repro.world.portal import (
    AntennaInstallation,
    Portal,
    ReaderAssignment,
    failover_portal,
    single_antenna_portal,
)
from repro.world.scenarios.fault_injection import (
    primary_crash_plan,
    run_supervised_pass,
)
from repro.world.scenarios.human_tracking import build_walk
from repro.world.simulation import PortalPassSimulator

from repro.rf.geometry import Vec3

SEED = 1234


@pytest.fixture(scope="module")
def setup():
    return PaperSetup()


@pytest.fixture(scope="module")
def walk():
    carrier, humans = build_walk(1, ["front"])
    return carrier, humans[0].tags[0].epc


def _simulator(setup, portal):
    return PortalPassSimulator(
        portal=portal, env=setup.env, params=setup.params
    )


class TestFailoverPortalWiring:
    def test_backups_cross_wired(self):
        portal = failover_portal()
        by_id = {r.reader_id: r for r in portal.readers}
        assert [a.antenna_id for a in by_id["reader-0"].backup_antennas] == [
            "ant-1"
        ]
        assert [a.antenna_id for a in by_id["reader-1"].backup_antennas] == [
            "ant-0"
        ]
        assert all(r.dense_reader_mode for r in portal.readers)

    def test_own_antenna_as_backup_rejected(self):
        ant = AntennaInstallation("ant-0", Vec3(0, 1, 0), Vec3.unit_z())
        with pytest.raises(ValueError, match="own antennas as"):
            ReaderAssignment("reader-0", (ant,), backup_antennas=(ant,))

    def test_unowned_backup_rejected(self):
        ant = AntennaInstallation("ant-0", Vec3(0, 1, 0), Vec3.unit_z())
        ghost = AntennaInstallation("ant-9", Vec3(1, 1, 0), Vec3.unit_z())
        with pytest.raises(ValueError, match="no reader owns"):
            Portal(
                readers=(
                    ReaderAssignment(
                        "reader-0", (ant,), backup_antennas=(ghost,)
                    ),
                )
            )


class TestMuxTakeover:
    def test_survivor_inherits_orphaned_antenna(self, setup, walk):
        carrier, _ = walk
        sim = _simulator(setup, failover_portal())
        plan = FaultPlan(crashes=(ReaderCrash("reader-0", 0.05),))
        result = sim.run_pass([carrier], SeedSequence(SEED), 0, fault_plan=plan)
        inherited = [
            e
            for e in result.trace
            if e.reader_id == "reader-1" and e.antenna_id == "ant-0"
        ]
        assert inherited, "survivor never read through the mux'd port"
        delay = sim.params.mux_takeover_delay_s
        assert min(e.time for e in inherited) >= 0.05 + delay
        # The dead reader contributes nothing after the crash.
        assert all(
            e.time < 0.05
            for e in result.trace
            if e.reader_id == "reader-0"
        )

    def test_no_takeover_while_owner_healthy(self, setup, walk):
        carrier, _ = walk
        sim = _simulator(setup, failover_portal())
        result = sim.run_pass([carrier], SeedSequence(SEED), 0, fault_plan=None)
        assert all(
            e.antenna_id == "ant-1"
            for e in result.trace
            if e.reader_id == "reader-1"
        )
        # Fault-free passes carry no coverage report: the back-end
        # treats that as full confidence.
        assert result.coverage is None


class TestSessionSemantics:
    def test_crash_restart_resets_inventory_session(self, setup, walk):
        # Reader-1 reads the tag before dying at 0.5; after the power
        # cycle at 1.0 its S0 flags have lapsed, so the same tag is
        # read again. (One read per tag per session otherwise.)
        carrier, _ = walk
        sim = _simulator(setup, failover_portal())
        plan = FaultPlan(
            crashes=(ReaderCrash("reader-1", 0.5, restart_at_s=1.0),)
        )
        result = sim.run_pass([carrier], SeedSequence(SEED), 0, fault_plan=plan)
        times = [e.time for e in result.trace if e.reader_id == "reader-1"]
        assert any(t < 0.5 for t in times)
        assert any(t >= 1.0 for t in times)

    def test_hang_preserves_inventory_session(self, setup, walk):
        # Same outage window as above, but a wedge, not a power cycle:
        # the session flags survive, so the pre-hang read is the only
        # one this reader ever produces.
        carrier, _ = walk
        sim = _simulator(setup, failover_portal())
        plan = FaultPlan(hangs=(ReaderHang("reader-1", 0.5, duration_s=0.5),))
        result = sim.run_pass([carrier], SeedSequence(SEED), 0, fault_plan=plan)
        times = [e.time for e in result.trace if e.reader_id == "reader-1"]
        assert times and all(t < 0.5 for t in times)


class TestCoverageAnnotations:
    def test_silent_antenna_blinds_port_and_degrades_pass(self, setup, walk):
        carrier, _ = walk
        sim = _simulator(setup, failover_portal())
        plan = FaultPlan(
            antenna_faults=(AntennaFault("reader-0", "ant-0", 0.0),)
        )
        result = sim.run_pass([carrier], SeedSequence(SEED), 0, fault_plan=plan)
        assert not [e for e in result.trace if e.reader_id == "reader-0"]
        assert result.coverage.degraded
        assert result.coverage.live_fraction == pytest.approx(0.5)

    def test_crash_outage_reflected_in_coverage(self, setup, walk):
        carrier, _ = walk
        sim = _simulator(setup, failover_portal())
        plan = FaultPlan(crashes=(ReaderCrash("reader-0", 0.05),))
        result = sim.run_pass([carrier], SeedSequence(SEED), 0, fault_plan=plan)
        duration = result.duration_s
        ant0 = [
            a for a in result.coverage.antennas if a.antenna_id == "ant-0"
        ][0]
        assert ant0.live_fraction == pytest.approx(0.05 / duration)


class TestBlindMissNeverConfidentAbsent:
    def test_supervised_single_reader_crash(self, setup, walk):
        # The acceptance contract: with the only reader dead before the
        # first poll, the stack must say "unobserved", never "absent,
        # full confidence" — and the failure must be observable.
        carrier, epc = walk
        portal = single_antenna_portal()
        sim = _simulator(setup, portal)
        registry = ObjectRegistry()
        registry.register(TrackedObject("subject-0", frozenset({epc})))
        plan = primary_crash_plan(
            carrier.motion.duration_s,
            crash_fraction=0.0125,
            restart_after_s=None,
        )
        outcome = run_supervised_pass(
            sim,
            portal,
            [carrier],
            registry,
            "subject-0",
            SeedSequence(SEED),
            0,
            plan,
        )
        assert not outcome.detected
        assert outcome.degraded
        assert outcome.verdict == "unobserved"
        assert outcome.coverage < 1.0
        assert any(
            t.new.value == "down" for t in outcome.transitions
        ), "the crash left no observable health trail"

    def test_fault_free_miss_is_plain_absent(self, setup, walk):
        # Control: with full coverage, a genuinely unseen object IS
        # reported absent — degraded-mode caution must not leak into
        # healthy passes.
        carrier, _ = walk
        portal = single_antenna_portal()
        sim = _simulator(setup, portal)
        registry = ObjectRegistry()
        registry.register(
            TrackedObject("phantom", frozenset({"F" * 24}))
        )
        outcome = run_supervised_pass(
            sim,
            portal,
            [carrier],
            registry,
            "phantom",
            SeedSequence(SEED),
            0,
            None,
        )
        assert not outcome.detected
        assert not outcome.degraded
        assert outcome.verdict == "absent"
        assert outcome.coverage == 1.0
