"""Shared pytest configuration.

Hypothesis profiles: property tests must be reproducible in CI, so the
``ci`` profile runs derandomized (examples derive from the test body,
not a random seed) with no deadline — simulator passes are slow and a
wall-clock deadline would flake. The ``deep`` profile widens the search
for scheduled runs; ``default`` just drops the deadline for local runs.
Select with ``HYPOTHESIS_PROFILE=ci|deep`` (default: ``default``).
"""

import os

import pytest

try:
    from hypothesis import HealthCheck, settings

    _SUPPRESSED = [HealthCheck.too_slow]
    settings.register_profile(
        "default", deadline=None, suppress_health_check=_SUPPRESSED
    )
    settings.register_profile(
        "ci",
        deadline=None,
        derandomize=True,
        max_examples=10,
        suppress_health_check=_SUPPRESSED,
    )
    settings.register_profile(
        "deep",
        deadline=None,
        max_examples=50,
        suppress_health_check=_SUPPRESSED,
    )
    settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "default"))
except ImportError:  # pragma: no cover - hypothesis is a test extra
    pass


def pytest_configure(config):
    config.addinivalue_line(
        "markers", "slow: integration tests that run the full pass simulator"
    )
