"""Tests for the SMURF-style adaptive cleaner."""

import pytest

from repro.reader.smurf import SmurfCleaner
from repro.sim.events import TagReadEvent


def _events(times, epc="A" * 24):
    return [
        TagReadEvent(t, epc, "r0", "a0", rssi_dbm=-60.0) for t in sorted(times)
    ]


class TestValidation:
    def test_bad_epoch(self):
        with pytest.raises(ValueError):
            SmurfCleaner(epoch_s=0.0)

    def test_bad_delta(self):
        with pytest.raises(ValueError):
            SmurfCleaner(delta=1.0)

    def test_bad_clamp(self):
        with pytest.raises(ValueError):
            SmurfCleaner(min_window_epochs=5, max_window_epochs=2)


class TestWindowSizing:
    def test_strong_tag_gets_narrow_window(self):
        cleaner = SmurfCleaner(delta=0.05)
        assert cleaner.required_window_epochs(0.95) <= 2

    def test_weak_tag_gets_wide_window(self):
        cleaner = SmurfCleaner(delta=0.05)
        strong = cleaner.required_window_epochs(0.9)
        weak = cleaner.required_window_epochs(0.2)
        assert weak > strong

    def test_zero_rate_clamps_to_max(self):
        cleaner = SmurfCleaner(max_window_epochs=25)
        assert cleaner.required_window_epochs(0.0) == 25

    def test_window_meets_completeness_target(self):
        cleaner = SmurfCleaner(delta=0.05)
        for rate in (0.2, 0.5, 0.8):
            w = cleaner.required_window_epochs(rate)
            if w < cleaner.max_window_epochs:
                assert (1.0 - rate) ** w <= cleaner.delta + 1e-9


class TestTransitionDetection:
    def test_empty_window_of_strong_tag_is_transition(self):
        cleaner = SmurfCleaner()
        assert cleaner.transition_detected(0.9, window_epochs=6, window_reads=0)

    def test_expected_count_is_not_transition(self):
        cleaner = SmurfCleaner()
        assert not cleaner.transition_detected(
            0.5, window_epochs=10, window_reads=5
        )

    def test_weak_tag_needs_longer_silence(self):
        cleaner = SmurfCleaner()
        assert not cleaner.transition_detected(
            0.2, window_epochs=3, window_reads=0
        )


class TestPresenceIntervals:
    def test_steady_tag_single_interval(self):
        cleaner = SmurfCleaner(epoch_s=0.2)
        events = _events([i * 0.2 + 0.01 for i in range(20)])
        intervals = cleaner.presence_intervals(events, duration_s=4.0)
        assert len(intervals["A" * 24]) == 1
        start, end = intervals["A" * 24][0]
        assert start == pytest.approx(0.0, abs=0.21)
        assert end == pytest.approx(4.0, abs=0.21)

    def test_flicker_bridged_for_weak_tag(self):
        """A tag reading every third epoch must not flap: its window
        adapts wide enough to bridge the silent epochs."""
        cleaner = SmurfCleaner(epoch_s=0.2)
        events = _events([i * 0.6 + 0.01 for i in range(7)])  # every 3rd epoch
        intervals = cleaner.presence_intervals(events, duration_s=4.2)
        assert len(intervals["A" * 24]) == 1

    def test_true_departure_splits(self):
        """A strong tag that vanishes for a long stretch yields two
        intervals — responsiveness is retained."""
        cleaner = SmurfCleaner(epoch_s=0.2, max_window_epochs=6)
        first = [i * 0.2 + 0.01 for i in range(10)]          # 0.0 - 2.0
        second = [8.0 + i * 0.2 + 0.01 for i in range(10)]   # 8.0 - 10.0
        intervals = cleaner.presence_intervals(
            _events(first + second), duration_s=10.2
        )
        assert len(intervals["A" * 24]) == 2

    def test_multiple_tags_independent(self):
        cleaner = SmurfCleaner(epoch_s=0.2)
        events = _events([0.01, 0.21], epc="A" * 24) + _events(
            [1.01], epc="B" * 24
        )
        intervals = cleaner.presence_intervals(
            sorted(events, key=lambda e: e.time), duration_s=2.0
        )
        assert set(intervals) == {"A" * 24, "B" * 24}

    def test_invalid_duration(self):
        with pytest.raises(ValueError):
            SmurfCleaner().presence_intervals([], 0.0)

    def test_adaptive_beats_fixed_window_on_mixed_tags(self):
        """The SMURF pitch: one fixed window cannot serve both a strong
        and a weak tag — the adaptive cleaner keeps the weak tag whole
        AND notices the strong tag's true departure."""
        cleaner = SmurfCleaner(epoch_s=0.2, max_window_epochs=8)
        strong = [i * 0.2 + 0.01 for i in range(10)]           # dense, then gone
        weak = [i * 0.8 + 0.02 for i in range(12)]             # sparse all along
        events = sorted(
            _events(strong, epc="A" * 24) + _events(weak, epc="B" * 24),
            key=lambda e: e.time,
        )
        intervals = cleaner.presence_intervals(events, duration_s=9.8)
        # Weak-but-present tag: one continuous interval.
        assert len(intervals["B" * 24]) == 1
        # Strong tag: its interval ends well before the pass does.
        assert intervals["A" * 24][-1][1] < 6.0
