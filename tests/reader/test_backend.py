"""Tests for the object registry and tracking back-end."""

import pytest

from repro.reader.backend import (
    ObjectRegistry,
    RegistryError,
    TrackedObject,
    TrackingBackend,
)
from repro.sim.events import TagReadEvent


def _event(t, epc, antenna="a0"):
    return TagReadEvent(t, epc, "r0", antenna, rssi_dbm=-60.0)


def _registry():
    registry = ObjectRegistry()
    registry.register(TrackedObject("box-0", frozenset({"A" * 24, "B" * 24})))
    registry.register(TrackedObject("box-1", frozenset({"C" * 24})))
    return registry


class TestTrackedObject:
    def test_requires_tags(self):
        with pytest.raises(RegistryError):
            TrackedObject("x", frozenset())


class TestRegistry:
    def test_register_and_lookup(self):
        registry = _registry()
        assert registry.object_for_epc("A" * 24).object_id == "box-0"
        assert registry.object_for_epc("C" * 24).object_id == "box-1"
        assert len(registry) == 2

    def test_unknown_epc(self):
        assert _registry().object_for_epc("F" * 24) is None

    def test_duplicate_object_rejected(self):
        registry = _registry()
        with pytest.raises(RegistryError):
            registry.register(TrackedObject("box-0", frozenset({"D" * 24})))

    def test_shared_epc_rejected(self):
        registry = _registry()
        with pytest.raises(RegistryError):
            registry.register(TrackedObject("box-2", frozenset({"A" * 24})))

    def test_get_unknown(self):
        with pytest.raises(RegistryError):
            _registry().get("nope")

    def test_all_objects(self):
        assert len(_registry().all_objects()) == 2


class TestTrackingBackend:
    def test_detection_via_any_tag(self):
        backend = TrackingBackend(_registry())
        backend.ingest([_event(1.0, "B" * 24)])
        decisions = backend.decide()
        assert decisions["box-0"].detected
        assert not decisions["box-1"].detected

    def test_redundancy_used_flag(self):
        backend = TrackingBackend(_registry())
        backend.ingest([_event(1.0, "B" * 24)])  # one of two tags seen
        decision = backend.decide()["box-0"]
        assert decision.redundancy_used

    def test_all_tags_seen_not_flagged(self):
        backend = TrackingBackend(_registry())
        backend.ingest([_event(1.0, "A" * 24), _event(2.0, "B" * 24)])
        assert not backend.decide()["box-0"].redundancy_used

    def test_first_seen_time(self):
        backend = TrackingBackend(_registry())
        backend.ingest([_event(5.0, "A" * 24), _event(7.0, "B" * 24)])
        assert backend.decide()["box-0"].first_seen == 5.0

    def test_missed_objects(self):
        backend = TrackingBackend(_registry())
        backend.ingest([_event(1.0, "C" * 24)])
        assert backend.missed_objects() == ["box-0"]

    def test_unknown_epcs_ignored(self):
        backend = TrackingBackend(_registry())
        backend.ingest([_event(1.0, "9" * 24)])
        assert set(backend.missed_objects()) == {"box-0", "box-1"}

    def test_action_hook_fires_on_detection(self):
        detected = []
        backend = TrackingBackend(
            _registry(), on_detect=lambda d: detected.append(d.object_id)
        )
        backend.ingest([_event(1.0, "A" * 24)])
        backend.decide()
        assert detected == ["box-0"]

    def test_reset(self):
        backend = TrackingBackend(_registry())
        backend.ingest([_event(1.0, "A" * 24)])
        backend.reset()
        assert backend.event_count == 0
        assert len(backend.missed_objects()) == 2

    def test_event_count(self):
        backend = TrackingBackend(_registry())
        backend.ingest([_event(1.0, "A" * 24), _event(2.0, "C" * 24)])
        assert backend.event_count == 2
