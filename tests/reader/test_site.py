"""Tests for the multi-portal site tracker."""

import pytest

from repro.reader.backend import ObjectRegistry, TrackedObject
from repro.reader.site import Checkpoint, SiteError, SiteTracker
from repro.sim.events import TagReadEvent


def _event(t, epc, reader="r0", antenna="a0"):
    return TagReadEvent(t, epc, reader, antenna, rssi_dbm=-60.0)


def _registry(count=3, tags_per_object=1):
    registry = ObjectRegistry()
    for i in range(count):
        epcs = frozenset(
            f"30{i:020X}{j:02X}" for j in range(tags_per_object)
        )
        registry.register(TrackedObject(f"obj-{i}", epcs))
    return registry


def _site(registry=None, groups=None):
    return SiteTracker(
        checkpoints=[
            Checkpoint("dock", (("r0", "a0"),)),
            Checkpoint("belt", (("r1", "a0"),)),
            Checkpoint("gate", (("r2", "a0"), ("r2", "a1"))),
        ],
        registry=registry or _registry(),
        groups=groups,
    )


def _epc(i, j=0):
    return f"30{i:020X}{j:02X}"


class TestConfiguration:
    def test_route_order(self):
        assert _site().route == ["dock", "belt", "gate"]

    def test_empty_checkpoints_rejected(self):
        with pytest.raises(SiteError):
            SiteTracker([], _registry())

    def test_duplicate_names_rejected(self):
        with pytest.raises(SiteError):
            SiteTracker(
                [
                    Checkpoint("dock", (("r0", "a0"),)),
                    Checkpoint("dock", (("r1", "a0"),)),
                ],
                _registry(),
            )

    def test_shared_antenna_rejected(self):
        with pytest.raises(SiteError):
            SiteTracker(
                [
                    Checkpoint("dock", (("r0", "a0"),)),
                    Checkpoint("gate", (("r0", "a0"),)),
                ],
                _registry(),
            )

    def test_checkpoint_needs_antennas(self):
        with pytest.raises(SiteError):
            Checkpoint("dock", ())


class TestIngest:
    def test_mapped_events_land(self):
        site = _site()
        added = site.ingest([_event(1.0, _epc(0), reader="r0")])
        assert added == 1

    def test_unknown_antenna_dropped(self):
        site = _site()
        assert site.ingest([_event(1.0, _epc(0), reader="r9")]) == 0

    def test_unknown_epc_dropped(self):
        site = _site()
        assert site.ingest([_event(1.0, "DE" * 12, reader="r0")]) == 0


class TestJourneys:
    def test_full_coverage_is_complete(self):
        site = _site()
        for t, reader in ((0.0, "r0"), (10.0, "r1"), (20.0, "r2")):
            site.ingest([_event(t, _epc(0), reader=reader)])
        journey = site.journeys()["obj-0"]
        assert journey.complete(site.route)
        assert journey.inferred == []

    def test_route_constraint_fills_middle_miss(self):
        site = _site()
        site.ingest([_event(0.0, _epc(0), reader="r0")])
        site.ingest([_event(20.0, _epc(0), reader="r2")])
        journey = site.journeys()["obj-0"]
        assert journey.checkpoints_seen == {"dock", "gate"}
        assert journey.complete(site.route)  # belt inferred
        assert [o.checkpoint for o in journey.inferred] == ["belt"]

    def test_endpoint_miss_not_recoverable_by_route(self):
        site = _site()
        site.ingest([_event(0.0, _epc(0), reader="r0")])
        site.ingest([_event(10.0, _epc(0), reader="r1")])
        journey = site.journeys()["obj-0"]
        assert not journey.complete(site.route)

    def test_accompany_group_recovers_member(self):
        registry = _registry(count=4)
        site = _site(
            registry=registry,
            groups={"pallet": ["obj-0", "obj-1", "obj-2", "obj-3"]},
        )
        # Everyone seen at dock; obj-3 missed at gate.
        for i in range(4):
            site.ingest([_event(float(i), _epc(i), reader="r0")])
        for i in range(3):
            site.ingest([_event(20.0 + i, _epc(i), reader="r2")])
        journey = site.journeys()["obj-3"]
        assert "gate" in journey.checkpoints_known

    def test_completion_report(self):
        site = _site()
        # obj-0 fully seen; obj-1 missed the belt (recoverable);
        # obj-2 never seen anywhere.
        for t, reader in ((0.0, "r0"), (10.0, "r1"), (20.0, "r2")):
            site.ingest([_event(t, _epc(0), reader=reader)])
        site.ingest([_event(1.0, _epc(1), reader="r0")])
        site.ingest([_event(21.0, _epc(1), reader="r2")])
        raw, corrected, total = site.completion_report()
        assert raw == 1
        assert corrected == 2
        assert total == 3

    def test_multiple_tags_per_object_fused(self):
        registry = _registry(count=1, tags_per_object=2)
        site = _site(registry=registry)
        site.ingest([_event(0.0, _epc(0, 0), reader="r0")])
        site.ingest([_event(10.0, _epc(0, 1), reader="r1")])
        site.ingest([_event(20.0, _epc(0, 0), reader="r2")])
        journey = site.journeys()["obj-0"]
        assert journey.complete(site.route)

    def test_reset(self):
        site = _site()
        site.ingest([_event(0.0, _epc(0), reader="r0")])
        site.reset()
        raw, corrected, total = site.completion_report()
        assert raw == 0 and corrected == 0 and total == 3
