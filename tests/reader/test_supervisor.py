"""Tests for supervised reader operations: retry, health, failover."""

import pytest

from repro.reader.supervisor import (
    ReaderFailoverGroup,
    ReaderHealth,
    RetryPolicy,
    SupervisedReader,
    SupervisorError,
)
from repro.reader.wire import (
    PolledInterface,
    ReaderUnreachable,
    TransportTimeout,
    render_tag_list,
)
from repro.sim.events import TagReadEvent


def _event(t, epc="A" * 24, reader="reader-0"):
    return TagReadEvent(t, epc, reader, "ant-0", rssi_dbm=-60.0)


class FlakyTransport:
    """Fails the first ``failures`` polls, then answers from a buffer."""

    def __init__(self, events, failures, error=TransportTimeout):
        self._interface = PolledInterface(events)
        self._failures = failures
        self._error = error
        self.polls = []

    def poll(self, now):
        self.polls.append(now)
        if self._failures > 0:
            self._failures -= 1
            raise self._error("injected")
        return self._interface.poll(now)


class DeadTransport:
    def poll(self, now):
        raise ReaderUnreachable("dead")


class TestRetryPolicy:
    def test_validation(self):
        with pytest.raises(SupervisorError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(SupervisorError):
            RetryPolicy(backoff_multiplier=0.5)
        with pytest.raises(SupervisorError):
            RetryPolicy(degraded_after=3, down_after=2)

    def test_backoff_schedule_doubles(self):
        policy = RetryPolicy(base_backoff_s=0.05, backoff_multiplier=2.0)
        delays = [policy.backoff_before_attempt(a) for a in range(4)]
        assert delays == [0.0, 0.05, 0.1, 0.2]


class TestSupervisedReader:
    def test_retry_recovers_transient_failure(self):
        transport = FlakyTransport([_event(0.5)], failures=2)
        reader = SupervisedReader("reader-0", transport)
        events = reader.poll(1.0)
        assert len(events) == 1
        assert reader.health is ReaderHealth.HEALTHY
        assert reader.stats.retries == 2
        assert reader.stats.failed_polls == 0
        # Retries happen at now + backoff: simulated time advances.
        assert transport.polls == pytest.approx([1.0, 1.05, 1.15])

    def test_exhausted_attempts_return_empty_not_raise(self):
        reader = SupervisedReader("reader-0", DeadTransport())
        assert reader.poll(1.0) == []
        assert reader.stats.failed_polls == 1

    def test_health_walks_degraded_then_down_then_recovers(self):
        transport = FlakyTransport(
            [_event(0.5)], failures=9, error=ReaderUnreachable
        )
        policy = RetryPolicy(degraded_after=1, down_after=3)
        reader = SupervisedReader("reader-0", transport, policy)
        healths = []
        for step in range(4):
            reader.poll(1.0 + step)
            healths.append(reader.health)
        assert healths == [
            ReaderHealth.DEGRADED,
            ReaderHealth.DEGRADED,
            ReaderHealth.DOWN,
            ReaderHealth.HEALTHY,
        ]
        moves = [(t.old, t.new) for t in reader.transitions]
        assert moves == [
            (ReaderHealth.HEALTHY, ReaderHealth.DEGRADED),
            (ReaderHealth.DEGRADED, ReaderHealth.DOWN),
            (ReaderHealth.DOWN, ReaderHealth.HEALTHY),
        ]
        # Transition reasons carry the underlying error, observably.
        assert "ReaderUnreachable" in reader.transitions[0].reason

    def test_malformed_document_counts_as_failure(self):
        class GarbageTransport:
            def poll(self, now):
                return "<TagList><Tag>"

        reader = SupervisedReader(
            "reader-0",
            GarbageTransport(),
            RetryPolicy(max_attempts=1, degraded_after=1, down_after=1),
        )
        assert reader.poll(1.0) == []
        assert reader.stats.malformed_documents == 1
        assert reader.health is ReaderHealth.DOWN

    def test_clock_never_runs_backwards_through_retries(self):
        # A retry at now+backoff must not poll earlier than a previous
        # attempt — otherwise the drained buffer would raise.
        transport = FlakyTransport([], failures=2)
        reader = SupervisedReader(
            "reader-0", transport, RetryPolicy(base_backoff_s=0.5)
        )
        reader.poll(1.0)  # retries reach t=2.5
        events = reader.poll(1.1)  # would rewind without the clamp
        assert events == []
        assert transport.polls == sorted(transport.polls)


class TestReaderFailoverGroup:
    def _group(self, primary_transport, standby_events=()):
        primary = SupervisedReader("reader-0", primary_transport)
        standby = SupervisedReader(
            "reader-1",
            PolledInterface(
                [_event(t, reader="reader-1") for t in standby_events]
            ),
        )
        return ReaderFailoverGroup([primary, standby])

    def test_needs_unique_nonempty_members(self):
        with pytest.raises(SupervisorError):
            ReaderFailoverGroup([])
        reader = SupervisedReader("reader-0", DeadTransport())
        twin = SupervisedReader("reader-0", DeadTransport())
        with pytest.raises(SupervisorError, match="duplicate"):
            ReaderFailoverGroup([reader, twin])

    def test_union_of_member_events(self):
        group = self._group(
            PolledInterface([_event(0.4)]), standby_events=[0.6]
        )
        events = group.poll(1.0)
        assert [(e.time, e.reader_id) for e in events] == [
            (0.4, "reader-0"),
            (0.6, "reader-1"),
        ]

    def test_promotion_away_from_down_primary(self):
        group = self._group(DeadTransport(), standby_events=[0.5])
        assert group.active_reader_id == "reader-0"
        for step in range(3):  # down_after=3 consecutive failed polls
            group.poll(1.0 + step)
        assert group.active_reader_id == "reader-1"
        [promotion] = group.promotions
        assert promotion.from_reader == "reader-0"
        assert promotion.to_reader == "reader-1"
        assert group.degraded
        assert group.live_fraction == pytest.approx(0.5)

    def test_recovered_primary_stays_standby(self):
        transport = FlakyTransport([], failures=9, error=ReaderUnreachable)
        group = self._group(transport)
        for step in range(5):  # 3 polls x 3 attempts kill the primary...
            group.poll(1.0 + step)
        assert group.active_reader_id == "reader-1"
        # ...and its later recovery must not flap the active role back.
        assert group.health()["reader-0"] is ReaderHealth.HEALTHY
        assert len(group.promotions) == 1
        assert group.active_reader_id == "reader-1"

    def test_all_down_keeps_stale_active(self):
        primary = SupervisedReader("reader-0", DeadTransport())
        standby = SupervisedReader("reader-1", DeadTransport())
        group = ReaderFailoverGroup([primary, standby])
        for step in range(4):
            group.poll(1.0 + step)
        assert group.active_reader_id == "reader-0"
        assert group.promotions == []
        assert group.live_fraction == 0.0

    def test_transitions_merged_in_time_order(self):
        group = self._group(DeadTransport())
        for step in range(3):
            group.poll(1.0 + step)
        times = [t.time for t in group.transitions()]
        assert times == sorted(times)
