"""Tests for the AR400-style XML wire format."""

import pytest

from hypothesis import given, settings, strategies as st

from repro.reader.wire import (
    PolledInterface,
    PollOrderError,
    WireFormatError,
    parse_tag_list,
    render_tag_list,
)
from repro.sim.events import TagReadEvent


def _event(t=1.0, epc="3" + "0" * 23, reader="reader-0", antenna="ant-0"):
    return TagReadEvent(t, epc, reader, antenna, rssi_dbm=-61.5)


class TestRoundTrip:
    def test_empty_list(self):
        assert parse_tag_list(render_tag_list([])) == []

    def test_single_event(self):
        [parsed] = parse_tag_list(render_tag_list([_event()]))
        assert parsed.epc == "3" + "0" * 23
        assert parsed.reader_id == "reader-0"
        assert parsed.antenna_id == "ant-0"
        assert parsed.time == pytest.approx(1.0)
        assert parsed.rssi_dbm == pytest.approx(-61.5)

    def test_many_events_preserve_order(self):
        events = [_event(t=float(i), antenna=f"ant-{i}") for i in range(5)]
        parsed = parse_tag_list(render_tag_list(events))
        assert [e.antenna_id for e in parsed] == [f"ant-{i}" for i in range(5)]

    def test_xml_structure(self):
        doc = render_tag_list([_event()])
        assert doc.startswith("<TagList>")
        assert "<EPC>" in doc
        assert "<RSSI>" in doc


class TestParseErrors:
    def test_malformed_xml(self):
        with pytest.raises(WireFormatError, match="malformed"):
            parse_tag_list("<TagList><Tag>")

    def test_wrong_root(self):
        with pytest.raises(WireFormatError, match="root"):
            parse_tag_list("<Wrong/>")

    def test_missing_field(self):
        with pytest.raises(WireFormatError, match="Timestamp"):
            parse_tag_list(
                "<TagList><Tag><EPC>x</EPC><ReaderID>r</ReaderID>"
                "<AntennaID>a</AntennaID><RSSI>-60</RSSI></Tag></TagList>"
            )

    def test_invalid_numeric(self):
        with pytest.raises(WireFormatError, match="numerics"):
            parse_tag_list(
                "<TagList><Tag><EPC>x</EPC><ReaderID>r</ReaderID>"
                "<AntennaID>a</AntennaID><Timestamp>soon</Timestamp>"
                "<RSSI>-60</RSSI></Tag></TagList>"
            )


class TestPolledInterface:
    def test_poll_drains_up_to_now(self):
        events = [_event(t=float(i)) for i in range(5)]
        interface = PolledInterface(events)
        first = parse_tag_list(interface.poll(now=2.0))
        assert [e.time for e in first] == [0.0, 1.0, 2.0]
        assert not interface.drained

    def test_second_poll_gets_remainder(self):
        events = [_event(t=float(i)) for i in range(4)]
        interface = PolledInterface(events)
        interface.poll(now=1.0)
        rest = parse_tag_list(interface.poll(now=10.0))
        assert [e.time for e in rest] == [2.0, 3.0]
        assert interface.drained

    def test_nothing_lost_regardless_of_poll_rate(self):
        """The paper: results were 'independent of the application level
        polling speed' because the buffer loses nothing."""
        events = [_event(t=float(i) / 10) for i in range(30)]
        fast = PolledInterface(list(events))
        slow = PolledInterface(list(events))
        fast_total = []
        for step in range(30):
            fast_total += parse_tag_list(fast.poll(now=step / 10))
        slow_total = parse_tag_list(slow.poll(now=100.0))
        assert len(fast_total) == len(slow_total) == 30

    def test_poll_empty_buffer(self):
        interface = PolledInterface([])
        assert parse_tag_list(interface.poll(1.0)) == []
        assert interface.drained

    def test_poll_going_backwards_raises_not_empty(self):
        # A rewound poll must fail loudly: an empty batch would read as
        # "nothing happened" when events were in fact already drained.
        interface = PolledInterface([_event(t=1.0)])
        interface.poll(now=2.0)
        with pytest.raises(PollOrderError, match="backwards"):
            interface.poll(now=1.0)

    def test_poll_at_same_time_is_allowed(self):
        interface = PolledInterface([_event(t=1.0)])
        interface.poll(now=2.0)
        assert parse_tag_list(interface.poll(now=2.0)) == []

    def test_reset_rewinds_buffer_and_clock(self):
        interface = PolledInterface([_event(t=1.0)])
        interface.poll(now=5.0)
        assert interface.drained
        interface.reset()
        assert not interface.drained
        # The clock is released too: early polls are legal again.
        batch = parse_tag_list(interface.poll(now=1.0))
        assert [e.time for e in batch] == [1.0]


# Field values that stress XML escaping and whitespace handling. EPCs
# are hex in practice, but the wire layer must not corrupt whatever
# middleware hands it.
_exotic_text = st.text(
    alphabet=st.sampled_from(
        list("ABCDEF0123456789") + ["&", "<", ">", '"', "'", ";", "#", "x"]
    ),
    min_size=1,
    max_size=32,
)


class TestRoundTripProperties:
    @given(
        epcs=st.lists(_exotic_text, min_size=0, max_size=8),
        times=st.lists(
            st.floats(min_value=0.0, max_value=1e6),
            min_size=8,
            max_size=8,
        ),
        rssi=st.floats(min_value=-90.0, max_value=-10.0),
    )
    @settings(max_examples=60, deadline=None)
    def test_exotic_fields_survive_round_trip(self, epcs, times, rssi):
        events = [
            TagReadEvent(
                round(t, 6), epc, "reader-&<0>", "ant-'0'", rssi_dbm=rssi
            )
            for epc, t in zip(epcs, times)
        ]
        parsed = parse_tag_list(render_tag_list(events))
        assert [e.epc for e in parsed] == [e.epc for e in events]
        assert [e.reader_id for e in parsed] == [e.reader_id for e in events]
        assert [e.antenna_id for e in parsed] == [
            e.antenna_id for e in events
        ]
        for got, want in zip(parsed, events):
            assert got.time == pytest.approx(want.time, abs=1e-6)
            assert got.rssi_dbm == pytest.approx(want.rssi_dbm, abs=0.05)

    @pytest.mark.parametrize(
        "missing", ["EPC", "ReaderID", "AntennaID", "Timestamp", "RSSI"]
    )
    def test_each_missing_field_is_its_own_error(self, missing):
        doc = render_tag_list([_event()])
        open_tag, close_tag = f"<{missing}>", f"</{missing}>"
        start = doc.find(open_tag)
        end = doc.find(close_tag) + len(close_tag)
        broken = doc[:start] + doc[end:]
        with pytest.raises(WireFormatError, match=missing):
            parse_tag_list(broken)

    @pytest.mark.parametrize("numeric", ["Timestamp", "RSSI"])
    def test_each_invalid_numeric_is_rejected(self, numeric):
        doc = render_tag_list([_event()])
        open_tag = f"<{numeric}>"
        start = doc.find(open_tag) + len(open_tag)
        end = doc.find(f"</{numeric}>")
        broken = doc[:start] + "not-a-number" + doc[end:]
        with pytest.raises(WireFormatError, match="numerics"):
            parse_tag_list(broken)
