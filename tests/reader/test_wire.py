"""Tests for the AR400-style XML wire format."""

import pytest

from repro.reader.wire import (
    PolledInterface,
    WireFormatError,
    parse_tag_list,
    render_tag_list,
)
from repro.sim.events import TagReadEvent


def _event(t=1.0, epc="3" + "0" * 23, reader="reader-0", antenna="ant-0"):
    return TagReadEvent(t, epc, reader, antenna, rssi_dbm=-61.5)


class TestRoundTrip:
    def test_empty_list(self):
        assert parse_tag_list(render_tag_list([])) == []

    def test_single_event(self):
        [parsed] = parse_tag_list(render_tag_list([_event()]))
        assert parsed.epc == "3" + "0" * 23
        assert parsed.reader_id == "reader-0"
        assert parsed.antenna_id == "ant-0"
        assert parsed.time == pytest.approx(1.0)
        assert parsed.rssi_dbm == pytest.approx(-61.5)

    def test_many_events_preserve_order(self):
        events = [_event(t=float(i), antenna=f"ant-{i}") for i in range(5)]
        parsed = parse_tag_list(render_tag_list(events))
        assert [e.antenna_id for e in parsed] == [f"ant-{i}" for i in range(5)]

    def test_xml_structure(self):
        doc = render_tag_list([_event()])
        assert doc.startswith("<TagList>")
        assert "<EPC>" in doc
        assert "<RSSI>" in doc


class TestParseErrors:
    def test_malformed_xml(self):
        with pytest.raises(WireFormatError, match="malformed"):
            parse_tag_list("<TagList><Tag>")

    def test_wrong_root(self):
        with pytest.raises(WireFormatError, match="root"):
            parse_tag_list("<Wrong/>")

    def test_missing_field(self):
        with pytest.raises(WireFormatError, match="Timestamp"):
            parse_tag_list(
                "<TagList><Tag><EPC>x</EPC><ReaderID>r</ReaderID>"
                "<AntennaID>a</AntennaID><RSSI>-60</RSSI></Tag></TagList>"
            )

    def test_invalid_numeric(self):
        with pytest.raises(WireFormatError, match="numerics"):
            parse_tag_list(
                "<TagList><Tag><EPC>x</EPC><ReaderID>r</ReaderID>"
                "<AntennaID>a</AntennaID><Timestamp>soon</Timestamp>"
                "<RSSI>-60</RSSI></Tag></TagList>"
            )


class TestPolledInterface:
    def test_poll_drains_up_to_now(self):
        events = [_event(t=float(i)) for i in range(5)]
        interface = PolledInterface(events)
        first = parse_tag_list(interface.poll(now=2.0))
        assert [e.time for e in first] == [0.0, 1.0, 2.0]
        assert not interface.drained

    def test_second_poll_gets_remainder(self):
        events = [_event(t=float(i)) for i in range(4)]
        interface = PolledInterface(events)
        interface.poll(now=1.0)
        rest = parse_tag_list(interface.poll(now=10.0))
        assert [e.time for e in rest] == [2.0, 3.0]
        assert interface.drained

    def test_nothing_lost_regardless_of_poll_rate(self):
        """The paper: results were 'independent of the application level
        polling speed' because the buffer loses nothing."""
        events = [_event(t=float(i) / 10) for i in range(30)]
        fast = PolledInterface(list(events))
        slow = PolledInterface(list(events))
        fast_total = []
        for step in range(30):
            fast_total += parse_tag_list(fast.poll(now=step / 10))
        slow_total = parse_tag_list(slow.poll(now=100.0))
        assert len(fast_total) == len(slow_total) == 30

    def test_poll_empty_buffer(self):
        interface = PolledInterface([])
        assert parse_tag_list(interface.poll(1.0)) == []
        assert interface.drained
