"""Tests for dedup, smoothing, and location filtering."""

import pytest

from repro.reader.middleware import (
    DuplicateEliminator,
    LocationFilter,
    MiddlewarePipeline,
    SlidingWindowSmoother,
)
from repro.sim.events import TagReadEvent


def _event(t, epc="E" * 24, reader="r0", antenna="a0"):
    return TagReadEvent(t, epc, reader, antenna, rssi_dbm=-60.0)


class TestDuplicateEliminator:
    def test_first_read_passes(self):
        dedup = DuplicateEliminator(window_s=1.0)
        assert len(dedup.filter([_event(0.0)])) == 1

    def test_repeat_within_window_dropped(self):
        dedup = DuplicateEliminator(window_s=1.0)
        out = dedup.filter([_event(0.0), _event(0.5), _event(0.9)])
        assert len(out) == 1

    def test_repeat_after_window_passes(self):
        dedup = DuplicateEliminator(window_s=1.0)
        out = dedup.filter([_event(0.0), _event(1.5)])
        assert len(out) == 2

    def test_different_antennas_independent(self):
        dedup = DuplicateEliminator(window_s=1.0)
        out = dedup.filter([_event(0.0, antenna="a0"), _event(0.1, antenna="a1")])
        assert len(out) == 2

    def test_different_tags_independent(self):
        dedup = DuplicateEliminator(window_s=1.0)
        out = dedup.filter([_event(0.0, epc="A" * 24), _event(0.1, epc="B" * 24)])
        assert len(out) == 2

    def test_state_persists_across_batches(self):
        dedup = DuplicateEliminator(window_s=1.0)
        dedup.filter([_event(0.0)])
        assert dedup.filter([_event(0.5)]) == []

    def test_reset(self):
        dedup = DuplicateEliminator(window_s=1.0)
        dedup.filter([_event(0.0)])
        dedup.reset()
        assert len(dedup.filter([_event(0.1)])) == 1

    def test_negative_window_rejected(self):
        with pytest.raises(ValueError):
            DuplicateEliminator(window_s=-1.0)

    def test_out_of_order_straggler_never_rearms_window(self):
        # Regression: a late event arriving after a newer one (delayed
        # poll, multi-reader merge) must be dropped as a duplicate and
        # must NOT rewind last_seen — otherwise the next on-time read
        # would sneak through the re-armed window.
        dedup = DuplicateEliminator(window_s=1.0)
        assert len(dedup.filter([_event(5.0)])) == 1
        assert dedup.filter([_event(4.2)]) == []  # straggler dropped...
        assert dedup.filter([_event(5.5)]) == []  # ...and window intact

    def test_straggler_drop_is_per_key(self):
        dedup = DuplicateEliminator(window_s=1.0)
        dedup.filter([_event(5.0, epc="A" * 24)])
        out = dedup.filter([_event(4.2, epc="B" * 24)])
        assert len(out) == 1  # other keys are unaffected


class TestSmoother:
    def test_single_read_makes_interval(self):
        smoother = SlidingWindowSmoother(window_s=2.0)
        [interval] = smoother.smooth([_event(1.0)])
        assert interval.start == 1.0
        assert interval.end == 3.0
        assert interval.duration == pytest.approx(2.0)

    def test_flicker_bridged_by_window(self):
        smoother = SlidingWindowSmoother(window_s=2.0)
        events = [_event(t) for t in (0.0, 1.5, 3.0)]
        intervals = smoother.smooth(events)
        assert len(intervals) == 1
        assert intervals[0].end == pytest.approx(5.0)

    def test_long_gap_splits_interval(self):
        smoother = SlidingWindowSmoother(window_s=1.0)
        events = [_event(t) for t in (0.0, 10.0)]
        intervals = smoother.smooth(events)
        assert len(intervals) == 2

    def test_multiple_tags_separate(self):
        smoother = SlidingWindowSmoother(window_s=1.0)
        events = [_event(0.0, epc="A" * 24), _event(0.2, epc="B" * 24)]
        intervals = smoother.smooth(events)
        assert {iv.epc for iv in intervals} == {"A" * 24, "B" * 24}

    def test_invalid_window(self):
        with pytest.raises(ValueError):
            SlidingWindowSmoother(window_s=0.0)

    def test_adaptive_window_from_rate(self):
        # 10 reads/s -> window ~ 0.3 s at 5% miss target.
        times = [i / 10 for i in range(50)]
        window = SlidingWindowSmoother.adaptive_window(times, 0.05)
        assert 0.2 <= window <= 0.4

    def test_adaptive_window_sparse_data_fallback(self):
        assert SlidingWindowSmoother.adaptive_window([1.0]) == 2.0

    def test_adaptive_window_invalid_target(self):
        with pytest.raises(ValueError):
            SlidingWindowSmoother.adaptive_window([1.0, 2.0], 0.0)

    def test_slower_rate_wider_window(self):
        fast = SlidingWindowSmoother.adaptive_window(
            [i / 10 for i in range(20)]
        )
        slow = SlidingWindowSmoother.adaptive_window(
            [i / 2 for i in range(20)]
        )
        assert slow > fast


class TestLocationFilter:
    def _filter(self, interest=None):
        return LocationFilter(
            zone_of={
                ("r0", "a0"): "dock",
                ("r0", "a1"): "gate",
            },
            zones_of_interest=interest,
        )

    def test_zone_lookup(self):
        assert self._filter().zone_for(_event(0.0)) == "dock"

    def test_unmapped_dropped(self):
        out = self._filter().filter([_event(0.0, reader="r9")])
        assert out == []

    def test_interest_filtering(self):
        events = [_event(0.0, antenna="a0"), _event(1.0, antenna="a1")]
        out = self._filter(interest={"gate"}).filter(events)
        assert len(out) == 1
        assert out[0].antenna_id == "a1"

    def test_no_interest_keeps_all_mapped(self):
        events = [_event(0.0, antenna="a0"), _event(1.0, antenna="a1")]
        assert len(self._filter().filter(events)) == 2

    def test_empty_mapping_rejected(self):
        with pytest.raises(ValueError):
            LocationFilter({})


class TestPipeline:
    def test_full_pipeline(self):
        pipeline = MiddlewarePipeline(
            location=LocationFilter({("r0", "a0"): "gate"}),
            dedup=DuplicateEliminator(window_s=0.5),
            smoother=SlidingWindowSmoother(window_s=2.0),
        )
        events = [
            _event(0.0),
            _event(0.1),  # duplicate
            _event(1.0),
            _event(2.0, reader="r9"),  # unmapped
        ]
        clean, presences = pipeline.process(events)
        assert len(clean) == 2
        assert len(presences) == 1

    def test_pipeline_without_location_filter(self):
        pipeline = MiddlewarePipeline()
        clean, presences = pipeline.process([_event(0.0, reader="anything")])
        assert len(clean) == 1
        assert len(presences) == 1
