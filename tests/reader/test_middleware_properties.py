"""Property-based tests on middleware invariants."""

from hypothesis import given, settings, strategies as st

from repro.reader.middleware import DuplicateEliminator, SlidingWindowSmoother
from repro.reader.wire import parse_tag_list, render_tag_list
from repro.sim.events import TagReadEvent

fast = settings(max_examples=40, deadline=None)

epcs = st.sampled_from(["A" * 24, "B" * 24, "C" * 24])
times = st.lists(
    st.floats(min_value=0.0, max_value=100.0), min_size=1, max_size=40
)


def _events(time_list, epc_list):
    pairs = sorted(zip(time_list, epc_list))
    return [
        TagReadEvent(t, epc, "r0", "a0", rssi_dbm=-60.0) for t, epc in pairs
    ]


class TestDedupProperties:
    @given(times, st.lists(epcs, min_size=1, max_size=40))
    @fast
    def test_output_subset_of_input(self, time_list, epc_list):
        n = min(len(time_list), len(epc_list))
        events = _events(time_list[:n], epc_list[:n])
        out = DuplicateEliminator(window_s=1.0).filter(events)
        assert len(out) <= len(events)
        assert all(e in events for e in out)

    @given(times, st.lists(epcs, min_size=1, max_size=40))
    @fast
    def test_every_tag_survives(self, time_list, epc_list):
        """Dedup never erases a tag entirely — only repeats."""
        n = min(len(time_list), len(epc_list))
        events = _events(time_list[:n], epc_list[:n])
        out = DuplicateEliminator(window_s=5.0).filter(events)
        assert {e.epc for e in out} == {e.epc for e in events}

    @given(times, st.lists(epcs, min_size=1, max_size=40))
    @fast
    def test_surviving_gaps_respect_window(self, time_list, epc_list):
        n = min(len(time_list), len(epc_list))
        events = _events(time_list[:n], epc_list[:n])
        window = 2.0
        out = DuplicateEliminator(window_s=window).filter(events)
        by_key = {}
        for event in out:
            previous = by_key.get(event.key())
            if previous is not None:
                assert event.time - previous >= window - 1e-9
            by_key[event.key()] = event.time


class TestSmootherProperties:
    @given(times)
    @fast
    def test_intervals_cover_every_read(self, time_list):
        events = _events(time_list, ["A" * 24] * len(time_list))
        intervals = SlidingWindowSmoother(window_s=1.5).smooth(events)
        for event in events:
            assert any(
                iv.start <= event.time < iv.end for iv in intervals
            ), event.time

    @given(times)
    @fast
    def test_intervals_disjoint_per_tag(self, time_list):
        events = _events(time_list, ["A" * 24] * len(time_list))
        intervals = SlidingWindowSmoother(window_s=1.0).smooth(events)
        ordered = sorted(intervals, key=lambda iv: iv.start)
        for a, b in zip(ordered, ordered[1:]):
            assert a.end <= b.start + 1e-9

    @given(times)
    @fast
    def test_wider_window_fewer_intervals(self, time_list):
        events = _events(time_list, ["A" * 24] * len(time_list))
        narrow = SlidingWindowSmoother(window_s=0.5).smooth(events)
        wide = SlidingWindowSmoother(window_s=10.0).smooth(events)
        assert len(wide) <= len(narrow)


class TestWireProperties:
    @given(
        times,
        st.lists(epcs, min_size=1, max_size=40),
        st.lists(
            st.floats(min_value=-90.0, max_value=-20.0),
            min_size=1,
            max_size=40,
        ),
    )
    @fast
    def test_render_parse_round_trip(self, time_list, epc_list, rssi_list):
        n = min(len(time_list), len(epc_list), len(rssi_list))
        events = [
            TagReadEvent(
                round(t, 6), epc, "reader-0", "ant-0", round(rssi, 1)
            )
            for t, epc, rssi in sorted(
                zip(time_list[:n], epc_list[:n], rssi_list[:n])
            )
        ]
        parsed = parse_tag_list(render_tag_list(events))
        assert len(parsed) == len(events)
        for original, round_tripped in zip(events, parsed):
            assert round_tripped.epc == original.epc
            assert abs(round_tripped.time - original.time) < 1e-6
            assert abs(round_tripped.rssi_dbm - original.rssi_dbm) < 0.05
