"""Tests for the AR400-style reader device facade."""

import pytest

from repro.protocol.epc import EpcFactory
from repro.reader.device import DeviceConfig, DeviceError, ReaderDevice
from repro.reader.wire import parse_tag_list
from repro.rf.geometry import Vec3
from repro.world.motion import LinearPass, StationaryPlacement
from repro.world.simulation import CarrierGroup
from repro.world.tags import Tag


def _carrier(moving=False, distance=1.0):
    tag = Tag(
        epc=EpcFactory().next_epc().to_hex(),
        local_position=Vec3(0.0, 1.0, 0.0),
    )
    if moving:
        motion = LinearPass.centered_lane_pass(
            lane_distance_m=distance, speed_mps=1.0, half_span_m=1.5,
            height_m=0.0,
        )
    else:
        motion = StationaryPlacement(Vec3(0.0, 0.0, distance), duration_s=0.5)
    return CarrierGroup(motion=motion, tags=[tag]), tag


class TestConfig:
    def test_defaults(self):
        config = DeviceConfig()
        assert config.tx_power_dbm == 30.0

    def test_power_bounds(self):
        with pytest.raises(DeviceError):
            DeviceConfig(tx_power_dbm=40.0)

    def test_window_positive(self):
        with pytest.raises(DeviceError):
            DeviceConfig(single_read_window_s=0.0)


class TestSingleRead:
    def test_close_tag_in_tag_list(self):
        device = ReaderDevice()
        carrier, tag = _carrier(distance=1.0)
        events = parse_tag_list(device.single_read([carrier]))
        assert any(e.epc == tag.epc for e in events)

    def test_far_tag_absent(self):
        device = ReaderDevice()
        carrier, _ = _carrier(distance=25.0)
        events = parse_tag_list(device.single_read([carrier]))
        assert events == []

    def test_consecutive_reads_are_fresh_trials(self):
        """Repeated single reads are independent repetitions, exactly
        like the paper's '40 reads per distance'."""
        device = ReaderDevice()
        carrier, tag = _carrier(distance=5.5)
        hits = sum(
            1
            for _ in range(12)
            if any(
                e.epc == tag.epc
                for e in parse_tag_list(device.single_read([carrier]))
            )
        )
        # At 5.5 m the tag is marginal: neither always nor never read.
        assert 0 < hits < 12

    def test_moving_carrier_frozen_for_single_read(self):
        device = ReaderDevice()
        carrier, tag = _carrier(moving=True)
        events = parse_tag_list(device.single_read([carrier]))
        # Frozen at t=0 the cart is 1.5 m up-lane: still identifiable.
        for event in events:
            assert event.time <= device.config.single_read_window_s + 1e-6


class TestContinuous:
    def test_start_poll_stop(self):
        device = ReaderDevice()
        carrier, tag = _carrier(moving=True)
        device.start_continuous([carrier])
        early = parse_tag_list(device.poll(now=device.pass_duration_s / 2))
        rest = parse_tag_list(device.stop())
        epcs = {e.epc for e in early} | {e.epc for e in rest}
        assert tag.epc in epcs

    def test_poll_before_start_rejected(self):
        with pytest.raises(DeviceError):
            ReaderDevice().poll(now=0.0)

    def test_stop_before_start_rejected(self):
        with pytest.raises(DeviceError):
            ReaderDevice().stop()

    def test_double_start_rejected(self):
        device = ReaderDevice()
        carrier, _ = _carrier(moving=True)
        device.start_continuous([carrier])
        with pytest.raises(DeviceError):
            device.start_continuous([carrier])

    def test_stop_allows_restart(self):
        device = ReaderDevice()
        carrier, _ = _carrier(moving=True)
        device.start_continuous([carrier])
        device.stop()
        device.start_continuous([carrier])
        device.stop()

    def test_polling_speed_independence(self):
        """The paper's property: buffered mode loses nothing regardless
        of poll cadence."""
        carrier, tag = _carrier(moving=True)
        fast = ReaderDevice(seed=5)
        fast.start_continuous([carrier])
        fast_events = []
        t = 0.0
        while t <= fast.pass_duration_s:
            fast_events += parse_tag_list(fast.poll(now=t))
            t += 0.05
        fast_events += parse_tag_list(fast.stop())

        slow = ReaderDevice(seed=5)
        slow.start_continuous([carrier])
        slow_events = parse_tag_list(slow.stop())

        assert len(fast_events) == len(slow_events)
