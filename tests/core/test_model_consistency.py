"""Cross-checks on the transcribed paper tables.

The paper computes its R_C columns from its own Section 3 single-
opportunity measurements. These tests re-derive those columns from the
transcribed inputs and check they match the transcribed outputs — a
consistency audit of both the paper's arithmetic and our transcription.
"""

import pytest

from repro.core.model import (
    HUMAN_1ANTENNA_REDUNDANCY,
    HUMAN_2ANTENNA_REDUNDANCY,
    HUMAN_ONE_SUBJECT_RELIABILITY,
    OBJECT_LOCATION_RELIABILITY,
    OBJECT_REDUNDANCY_MEASURED,
)
from repro.core.redundancy import combined_reliability

P_FB = HUMAN_ONE_SUBJECT_RELIABILITY["front_back"]      # 0.75
P_SC = HUMAN_ONE_SUBJECT_RELIABILITY["side_closer"]     # 0.90
P_SF = HUMAN_ONE_SUBJECT_RELIABILITY["side_farther"]    # 0.10


class TestTable4Consistency:
    def test_front_back_two_tags(self):
        # Paper's R_C 94%: 1 - (1 - .75)^2 = 93.75%.
        derived = combined_reliability([P_FB, P_FB])
        transcribed = HUMAN_1ANTENNA_REDUNDANCY[(2, "front_back")][1]
        assert derived == pytest.approx(transcribed, abs=0.01)

    def test_sides_two_tags(self):
        # Paper's R_C 91%: 1 - (1 - .9)(1 - .1) = 91%.
        derived = combined_reliability([P_SC, P_SF])
        transcribed = HUMAN_1ANTENNA_REDUNDANCY[(2, "sides")][1]
        assert derived == pytest.approx(transcribed, abs=0.01)

    def test_four_tags(self):
        # Paper's R_C 99.5%.
        derived = combined_reliability([P_FB, P_FB, P_SC, P_SF])
        transcribed = HUMAN_1ANTENNA_REDUNDANCY[(4, "all")][1]
        assert derived == pytest.approx(transcribed, abs=0.01)


class TestTable5Consistency:
    def test_one_tag_two_antennas_front(self):
        # Paper's R_C 94%: 1 - (1 - .75)^2.
        derived = combined_reliability([P_FB] * 2)
        transcribed = HUMAN_2ANTENNA_REDUNDANCY[(1, "front_back")][1]
        assert derived == pytest.approx(transcribed, abs=0.01)

    def test_two_tags_two_antennas_front(self):
        # Paper's R_C 99.6%: four front/back opportunities.
        derived = combined_reliability([P_FB] * 4)
        transcribed = HUMAN_2ANTENNA_REDUNDANCY[(2, "front_back")][1]
        assert derived == pytest.approx(transcribed, abs=0.01)

    def test_two_side_tags_two_antennas(self):
        # Paper's R_C 99.2%: (sc, sf) x 2 antennas.
        derived = combined_reliability([P_SC, P_SF] * 2)
        transcribed = HUMAN_2ANTENNA_REDUNDANCY[(2, "sides")][1]
        assert derived == pytest.approx(transcribed, abs=0.015)


class TestTable3Consistency:
    def test_two_antenna_front_row(self):
        # Paper: front 87% single -> 2-antenna R_C 98%.
        derived = combined_reliability(
            [OBJECT_LOCATION_RELIABILITY["front"]] * 2
        )
        transcribed = OBJECT_REDUNDANCY_MEASURED[(2, 1, "front")][1]
        assert derived == pytest.approx(transcribed, abs=0.01)

    def test_two_tags_good_row(self):
        # Paper: front + side-closer -> R_C 98%.
        derived = combined_reliability(
            [
                OBJECT_LOCATION_RELIABILITY["front"],
                OBJECT_LOCATION_RELIABILITY["side_closer"],
            ]
        )
        transcribed = OBJECT_REDUNDANCY_MEASURED[(1, 2, "front+side(good)")][1]
        assert derived == pytest.approx(transcribed, abs=0.01)

    def test_full_redundancy_row(self):
        # Paper: 2 antennas x 2 tags -> R_C 99.9%.
        derived = combined_reliability(
            [
                OBJECT_LOCATION_RELIABILITY["front"],
                OBJECT_LOCATION_RELIABILITY["side_closer"],
            ]
            * 2
        )
        transcribed = OBJECT_REDUNDANCY_MEASURED[(2, 2, "front+side")][1]
        assert derived == pytest.approx(transcribed, abs=0.002)

    def test_measured_never_exceeds_one(self):
        for rm, rc in OBJECT_REDUNDANCY_MEASURED.values():
            assert 0.0 <= rm <= 1.0
            assert 0.0 <= rc <= 1.0
