"""Tests for the embedded empirical model of the paper's measurements."""

import pytest

from repro.core.model import (
    EmpiricalReliabilityModel,
    HUMAN_ONE_SUBJECT_RELIABILITY,
    HUMAN_TRACKING_1TAG_AVG,
    HUMAN_TRACKING_2TAGS_AVG,
    OBJECT_AVERAGE_RELIABILITY,
    OBJECT_LOCATION_RELIABILITY,
    OBJECT_REDUNDANCY_SUMMARY,
    ORIENTATION_QUALITY,
    READ_RANGE_MEAN_TAGS,
)


class TestTranscribedTables:
    def test_table1_values(self):
        assert OBJECT_LOCATION_RELIABILITY["front"] == 0.87
        assert OBJECT_LOCATION_RELIABILITY["top"] == 0.29

    def test_table1_average_consistent(self):
        """The paper's 63% average assumes front=back and top=bottom."""
        t = OBJECT_LOCATION_RELIABILITY
        average = (
            2 * t["front"] + t["side_closer"] + t["side_farther"] + 2 * t["top"]
        ) / 6.0
        assert average == pytest.approx(OBJECT_AVERAGE_RELIABILITY, abs=0.01)

    def test_table2_average_consistent(self):
        t = HUMAN_ONE_SUBJECT_RELIABILITY
        # Paper: front/back 75 (two placements), side closer 90, side
        # farther 10 -> (75+75+90+10)/4 = 62.5 ~ 63%.
        average = (
            2 * t["front_back"] + t["side_closer"] + t["side_farther"]
        ) / 4.0
        assert average == pytest.approx(HUMAN_TRACKING_1TAG_AVG, abs=0.02)

    def test_read_range_perfect_at_1m(self):
        assert READ_RANGE_MEAN_TAGS[1.0] == 20.0

    def test_read_range_monotone_decreasing(self):
        values = [READ_RANGE_MEAN_TAGS[d] for d in sorted(READ_RANGE_MEAN_TAGS)]
        assert values == sorted(values, reverse=True)

    def test_orientation_quality_worst_cases(self):
        """Cases 1 and 5 (dipole at the antenna) are the paper's worst."""
        worst = sorted(ORIENTATION_QUALITY, key=ORIENTATION_QUALITY.get)[:2]
        assert set(worst) == {1, 5}

    def test_figure5_summary_monotone(self):
        order = [
            "1 antenna, 1 tag",
            "2 antennas, 1 tag",
            "1 antenna, 2 tags",
            "2 antennas, 2 tags",
        ]
        measured = [OBJECT_REDUNDANCY_SUMMARY[k][0] for k in order]
        assert measured == sorted(measured)


class TestEmpiricalModel:
    def test_object_lookup(self):
        model = EmpiricalReliabilityModel()
        assert model.object_tag_reliability("front") == 0.87

    def test_object_unknown_location(self):
        with pytest.raises(KeyError, match="side_closer"):
            EmpiricalReliabilityModel().object_tag_reliability("lid")

    def test_human_lookup(self):
        model = EmpiricalReliabilityModel()
        assert model.human_tag_reliability("side_farther") == 0.10

    def test_human_unknown_placement(self):
        with pytest.raises(KeyError):
            EmpiricalReliabilityModel().human_tag_reliability("hat")

    def test_expected_tracking_matches_paper_table3(self):
        """R_C for front+side with one antenna: paper computes ~97-98%."""
        model = EmpiricalReliabilityModel()
        rc = model.expected_tracking_reliability(
            ["front", "side_closer"], antennas=1, domain="object"
        )
        assert rc == pytest.approx(0.978, abs=0.005)

    def test_expected_tracking_two_antennas(self):
        """Front tag with two antennas: 1-(1-0.87)^2 = 98.3%."""
        model = EmpiricalReliabilityModel()
        rc = model.expected_tracking_reliability(
            ["front"], antennas=2, domain="object"
        )
        assert rc == pytest.approx(0.983, abs=0.001)

    def test_expected_tracking_human_four_tags(self):
        """Table 4's 4-tag row: ~99.5% calculated."""
        model = EmpiricalReliabilityModel()
        rc = model.expected_tracking_reliability(
            ["front_back", "front_back", "side_closer", "side_farther"],
            antennas=1,
            domain="human",
        )
        assert rc == pytest.approx(0.995, abs=0.003)

    def test_paper_headline_two_tags(self):
        """Using two tags instead of one raises human tracking from 63%
        to ~94-96% — the paper's headline improvement."""
        model = EmpiricalReliabilityModel()
        rc = model.expected_tracking_reliability(
            ["front_back", "side_closer"], antennas=1, domain="human"
        )
        assert rc == pytest.approx(HUMAN_TRACKING_2TAGS_AVG, abs=0.03)

    def test_invalid_antennas(self):
        with pytest.raises(ValueError):
            EmpiricalReliabilityModel().expected_tracking_reliability(
                ["front"], antennas=0
            )
