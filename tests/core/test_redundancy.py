"""Tests for the R_C redundancy model — the paper's analytical core."""

import pytest
from hypothesis import given, strategies as st

from repro.core.redundancy import (
    ReadOpportunity,
    RedundancyConfiguration,
    combined_reliability,
    combined_reliability_correlated,
    marginal_gain,
    opportunities_needed,
    uniform_opportunity_table,
)

probabilities = st.floats(min_value=0.0, max_value=1.0)
prob_lists = st.lists(probabilities, min_size=1, max_size=8)


class TestCombinedReliability:
    def test_single_opportunity_is_identity(self):
        assert combined_reliability([0.63]) == pytest.approx(0.63)

    def test_paper_table3_two_tags(self):
        # Front (87%) + side (83%): R_C = 1 - 0.13*0.17 = 97.8%.
        assert combined_reliability([0.87, 0.83]) == pytest.approx(
            0.9779, abs=1e-4
        )

    def test_paper_human_two_tags(self):
        # Front/back 75% twice: 1 - 0.25^2 = 93.75% (Table 4's 94%).
        assert combined_reliability([0.75, 0.75]) == pytest.approx(0.9375)

    def test_paper_human_four_tags(self):
        # 75, 75, 90, 10: 1 - .25*.25*.10*.90 ~ 99.4% (Table 4's ~99.5%).
        assert combined_reliability([0.75, 0.75, 0.90, 0.10]) == pytest.approx(
            0.9944, abs=1e-3
        )

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            combined_reliability([])

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            combined_reliability([0.5, 1.2])

    @given(prob_lists)
    def test_at_least_best_single(self, ps):
        assert combined_reliability(ps) >= max(ps) - 1e-12

    @given(prob_lists, probabilities)
    def test_monotone_in_additional_opportunity(self, ps, extra):
        assert combined_reliability(ps + [extra]) >= combined_reliability(ps) - 1e-12

    @given(prob_lists)
    def test_bounded(self, ps):
        assert 0.0 <= combined_reliability(ps) <= 1.0

    @given(prob_lists)
    def test_order_invariant(self, ps):
        assert combined_reliability(ps) == pytest.approx(
            combined_reliability(list(reversed(ps)))
        )


class TestCorrelatedModel:
    def test_zero_correlation_matches_independence(self):
        ps = [0.8, 0.7]
        assert combined_reliability_correlated(ps, 0.0) == pytest.approx(
            combined_reliability(ps)
        )

    def test_full_correlation_is_best_single(self):
        ps = [0.8, 0.7]
        assert combined_reliability_correlated(ps, 1.0) == pytest.approx(0.8)

    def test_partial_correlation_between(self):
        ps = [0.8, 0.7]
        mid = combined_reliability_correlated(ps, 0.5)
        assert 0.8 < mid < combined_reliability(ps)

    def test_invalid_correlation(self):
        with pytest.raises(ValueError):
            combined_reliability_correlated([0.5], 1.5)

    @given(prob_lists, st.floats(min_value=0.0, max_value=1.0))
    def test_correlation_never_helps(self, ps, rho):
        assert combined_reliability_correlated(ps, rho) <= combined_reliability(
            ps
        ) + 1e-12


class TestOpportunitiesNeeded:
    def test_paper_two_tags_for_96(self):
        # At 63% per tag, two tags reach 86%, three reach 95%...
        assert opportunities_needed(0.63, 0.86) == 2

    def test_high_single_needs_one(self):
        assert opportunities_needed(0.99, 0.95) == 1

    def test_weak_single_needs_many(self):
        assert opportunities_needed(0.10, 0.90) == 22

    def test_perfect_single(self):
        assert opportunities_needed(1.0, 0.999) == 1

    def test_zero_single_rejected(self):
        with pytest.raises(ValueError):
            opportunities_needed(0.0, 0.9)

    def test_target_one_rejected(self):
        with pytest.raises(ValueError):
            opportunities_needed(0.5, 1.0)

    @given(
        st.floats(min_value=0.05, max_value=0.99),
        st.floats(min_value=0.0, max_value=0.999),
    )
    def test_result_actually_reaches_target(self, p, target):
        n = opportunities_needed(p, target)
        assert combined_reliability([p] * n) >= target - 1e-9
        if n > 1:
            assert combined_reliability([p] * (n - 1)) < target


class TestConfiguration:
    def test_opportunity_count(self):
        config = RedundancyConfiguration("x", ("front", "side"), ("a0", "a1"))
        assert config.opportunity_count == 4

    def test_requires_tags_and_antennas(self):
        with pytest.raises(ValueError):
            RedundancyConfiguration("x", (), ("a0",))
        with pytest.raises(ValueError):
            RedundancyConfiguration("x", ("front",), ())

    def test_opportunities_enumerated(self):
        config = RedundancyConfiguration("x", ("front",), ("a0", "a1"))
        table = uniform_opportunity_table({"front": 0.8}, ["a0", "a1"])
        opportunities = config.opportunities(table)
        assert len(opportunities) == 2
        assert all(isinstance(o, ReadOpportunity) for o in opportunities)

    def test_missing_table_entry_raises(self):
        config = RedundancyConfiguration("x", ("front",), ("a0",))
        with pytest.raises(KeyError):
            config.opportunities({})

    def test_expected_reliability_matches_paper_methodology(self):
        # Table 3's 2-antenna front row: 1-(1-0.87)^2 = 98.3%.
        config = RedundancyConfiguration("2a1t", ("front",), ("a0", "a1"))
        table = uniform_opportunity_table({"front": 0.87}, ["a0", "a1"])
        assert config.expected_reliability(table) == pytest.approx(
            0.9831, abs=1e-4
        )

    def test_invalid_opportunity_probability(self):
        with pytest.raises(ValueError):
            ReadOpportunity("t", "a", 1.5)


class TestUniformTable:
    def test_contents(self):
        table = uniform_opportunity_table({"t1": 0.5, "t2": 0.7}, ["a0"])
        assert table == {("t1", "a0"): 0.5, ("t2", "a0"): 0.7}

    def test_empty_antennas_rejected(self):
        with pytest.raises(ValueError):
            uniform_opportunity_table({"t": 0.5}, [])


class TestMarginalGain:
    def test_first_opportunity_full_gain(self):
        assert marginal_gain([], 0.8) == pytest.approx(0.8)

    def test_diminishing_returns(self):
        first = marginal_gain([], 0.6)
        second = marginal_gain([0.6], 0.6)
        third = marginal_gain([0.6, 0.6], 0.6)
        assert first > second > third

    @given(prob_lists, probabilities)
    def test_gain_nonnegative(self, ps, extra):
        assert marginal_gain(ps, extra) >= -1e-12
