"""Tests for the command-line interface."""

import io
from contextlib import redirect_stdout

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_experiment_commands_registered(self):
        parser = build_parser()
        for command in (
            "read-range",
            "table1",
            "table2",
            "table3",
            "reader-redundancy",
            "plan",
            "report",
        ):
            args = parser.parse_args(
                [command] if command in ("plan", "report") else [command, "--reps", "1"]
            )
            assert callable(args.handler)

    def test_common_flags(self):
        args = build_parser().parse_args(["table1", "--reps", "3", "--seed", "7"])
        assert args.reps == 3
        assert args.seed == 7


class TestPlanCommand:
    def test_plan_prints_table(self):
        buffer = io.StringIO()
        with redirect_stdout(buffer):
            code = main(["plan", "--target", "0.99"])
        output = buffer.getvalue()
        assert code == 0
        assert "tags per object" in output
        assert "predicted reliability" in output

    def test_plan_human_domain(self):
        buffer = io.StringIO()
        with redirect_stdout(buffer):
            code = main(["plan", "--target", "0.95", "--domain", "human"])
        assert code == 0

    def test_unreachable_target_fails_cleanly(self):
        buffer = io.StringIO()
        with redirect_stdout(buffer):
            code = main(
                ["plan", "--target", "0.99999999", "--max-antennas", "1"]
            )
        assert code == 1


@pytest.mark.slow
class TestExperimentCommands:
    def test_table1_small(self):
        buffer = io.StringIO()
        with redirect_stdout(buffer):
            code = main(["table1", "--reps", "1"])
        output = buffer.getvalue()
        assert code == 0
        assert "front" in output
        assert "Paper" in output

    def test_reader_redundancy_small(self):
        buffer = io.StringIO()
        with redirect_stdout(buffer):
            code = main(["reader-redundancy", "--reps", "3"])
        output = buffer.getvalue()
        assert code == 0
        assert "no DRM" in output
