"""Tests for one-at-a-time sensitivity analysis."""

import pytest

from repro.core.sensitivity import (
    ParameterSpec,
    SensitivityResult,
    conclusion_robust,
    one_at_a_time,
    tornado_rows,
)


def _linear_metric(weights):
    def metric(params):
        return sum(weights[name] * value for name, value in params.items())

    return metric


class TestParameterSpec:
    def test_valid(self):
        spec = ParameterSpec("sigma", 3.0, 1.0, 5.0)
        assert spec.nominal == 3.0

    def test_nominal_outside_range(self):
        with pytest.raises(ValueError):
            ParameterSpec("sigma", 6.0, 1.0, 5.0)


class TestOneAtATime:
    def test_swings_rank_by_weight(self):
        specs = [
            ParameterSpec("big", 1.0, 0.0, 2.0),
            ParameterSpec("small", 1.0, 0.0, 2.0),
        ]
        metric = _linear_metric({"big": 10.0, "small": 1.0})
        results = one_at_a_time(specs, metric)
        assert results[0].parameter == "big"
        assert results[0].swing == pytest.approx(20.0)
        assert results[1].swing == pytest.approx(2.0)

    def test_nominal_metric_shared(self):
        specs = [
            ParameterSpec("a", 1.0, 0.5, 1.5),
            ParameterSpec("b", 2.0, 1.0, 3.0),
        ]
        results = one_at_a_time(specs, _linear_metric({"a": 1.0, "b": 1.0}))
        assert all(r.metric_nominal == pytest.approx(3.0) for r in results)

    def test_empty_specs_rejected(self):
        with pytest.raises(ValueError):
            one_at_a_time([], lambda p: 0.0)

    def test_duplicate_names_rejected(self):
        specs = [
            ParameterSpec("x", 1.0, 0.0, 2.0),
            ParameterSpec("x", 1.0, 0.0, 2.0),
        ]
        with pytest.raises(ValueError):
            one_at_a_time(specs, lambda p: 0.0)

    def test_insensitive_parameter_zero_swing(self):
        specs = [ParameterSpec("unused", 1.0, 0.0, 2.0)]
        results = one_at_a_time(specs, lambda params: 42.0)
        assert results[0].swing == 0.0
        assert results[0].elasticity == 0.0


class TestElasticity:
    def test_normalised(self):
        result = SensitivityResult("x", 2.0, 1.0, 3.0)
        assert result.elasticity == pytest.approx(1.0)

    def test_zero_nominal(self):
        assert SensitivityResult("x", 0.0, -1.0, 1.0).elasticity == float(
            "inf"
        )
        assert SensitivityResult("x", 0.0, 0.0, 0.0).elasticity == 0.0


class TestTornado:
    def test_rows(self):
        results = [SensitivityResult("x", 10.0, 8.0, 13.0)]
        assert tornado_rows(results) == [("x", -2.0, 3.0)]


class TestRobustness:
    def test_robust_conclusion(self):
        results = [SensitivityResult("x", 0.95, 0.91, 0.98)]
        assert conclusion_robust(results, lambda m: m >= 0.9)

    def test_fragile_conclusion(self):
        results = [SensitivityResult("x", 0.95, 0.80, 0.98)]
        assert not conclusion_robust(results, lambda m: m >= 0.9)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            conclusion_robust([], lambda m: True)

    def test_redundancy_conclusion_example(self):
        """End-to-end: the R_C two-tag conclusion survives +-20%
        perturbation of the single-tag reliabilities."""
        from repro.core.redundancy import combined_reliability

        specs = [
            ParameterSpec("p_front", 0.87, 0.70, 0.95),
            ParameterSpec("p_side", 0.83, 0.66, 0.95),
        ]

        def metric(params):
            return combined_reliability(
                [params["p_front"], params["p_side"]]
            )

        results = one_at_a_time(specs, metric)
        assert conclusion_robust(results, lambda m: m >= 0.90)
