"""Tests for the process-pool trial engine (`repro.core.parallel`)."""

import pickle

import pytest

from repro.core.experiment import run_trials, sweep
from repro.core.parallel import (
    REPRO_WORKERS_ENV,
    PassTrialTask,
    _chunk_bounds,
    execute_trials,
    resolve_workers,
    task_is_picklable,
)
from repro.sim.rng import SeedSequence


class SquareTask:
    """Minimal importable (hence picklable) trial callable."""

    def __call__(self, seeds: SeedSequence, trial: int) -> float:
        return seeds.trial_stream("sq", trial).random() + trial

    def __eq__(self, other):
        return isinstance(other, SquareTask)


class TestResolveWorkers:
    def test_none_without_env_is_serial(self, monkeypatch):
        monkeypatch.delenv(REPRO_WORKERS_ENV, raising=False)
        assert resolve_workers(None) == 1

    def test_none_reads_env(self, monkeypatch):
        monkeypatch.setenv(REPRO_WORKERS_ENV, "3")
        assert resolve_workers(None) == 3

    def test_empty_env_is_serial(self, monkeypatch):
        monkeypatch.setenv(REPRO_WORKERS_ENV, "  ")
        assert resolve_workers(None) == 1

    def test_explicit_beats_env(self, monkeypatch):
        monkeypatch.setenv(REPRO_WORKERS_ENV, "8")
        assert resolve_workers(2) == 2

    def test_zero_and_one_mean_serial(self):
        assert resolve_workers(0) == 1
        assert resolve_workers(1) == 1

    def test_garbage_env_rejected(self, monkeypatch):
        monkeypatch.setenv(REPRO_WORKERS_ENV, "many")
        with pytest.raises(ValueError):
            resolve_workers(None)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            resolve_workers(-1)


class TestPicklability:
    def test_closure_is_not_picklable(self):
        x = 3
        assert not task_is_picklable(lambda s, i: i + x)

    def test_importable_task_is_picklable(self):
        assert task_is_picklable(SquareTask())

    def test_pass_trial_task_round_trips(self):
        task = PassTrialTask(simulator=None, carriers=("a", "b"))
        clone = pickle.loads(pickle.dumps(task))
        assert clone == task


class TestChunking:
    def test_covers_all_indices_in_order(self):
        bounds = _chunk_bounds(10, 3)
        flat = [i for start, stop in bounds for i in range(start, stop)]
        assert flat == list(range(10))

    def test_never_more_chunks_than_trials(self):
        assert len(_chunk_bounds(2, 8)) == 2

    def test_single_chunk(self):
        assert _chunk_bounds(5, 1) == [(0, 5)]


class TestParallelExecution:
    def test_parallel_matches_serial_order_and_values(self):
        task = SquareTask()
        serial = run_trials("t", task, 9, seed=42, workers=1)
        parallel = run_trials("t", task, 9, seed=42, workers=3)
        assert parallel.outcomes == serial.outcomes

    def test_execute_trials_matches_inline_loop(self):
        task = SquareTask()
        seeds = SeedSequence(7)
        expected = [task(seeds, i) for i in range(5)]
        assert execute_trials(task, 5, 7, workers=2) == expected

    def test_closure_falls_back_to_serial(self):
        # A closure cannot cross the process boundary; run_trials must
        # quietly run it inline rather than fail.
        acc = []

        def trial(seeds, i):
            acc.append(i)
            return i

        result = run_trials("t", trial, 4, workers=4)
        assert result.outcomes == [0, 1, 2, 3]
        assert acc == [0, 1, 2, 3]

    def test_env_var_drives_run_trials(self, monkeypatch):
        monkeypatch.setenv(REPRO_WORKERS_ENV, "2")
        task = SquareTask()
        assert (
            run_trials("t", task, 6, seed=1).outcomes
            == run_trials("t", task, 6, seed=1, workers=1).outcomes
        )


class TestParallelSweep:
    def test_sweep_parallel_matches_serial(self):
        task_factory = lambda value: SquareTask()  # noqa: E731
        serial = sweep(lambda v: f"v={v}", [1.0, 2.0], task_factory, 5, seed=9)
        parallel = sweep(
            lambda v: f"v={v}", [1.0, 2.0], task_factory, 5, seed=9, workers=2
        )
        assert set(serial) == set(parallel)
        for value in serial:
            assert serial[value].outcomes == parallel[value].outcomes
            assert serial[value].label == parallel[value].label
