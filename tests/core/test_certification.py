"""Tests for sequential reliability certification (SPRT)."""

import pytest

from repro.core.certification import SequentialCertifier, Verdict
from repro.sim.rng import RandomStream


def _certifier(**kwargs):
    defaults = dict(p_good=0.99, p_bad=0.90, alpha=0.05, beta=0.05)
    defaults.update(kwargs)
    return SequentialCertifier(**defaults)


class TestValidation:
    def test_thresholds_ordered(self):
        with pytest.raises(ValueError):
            SequentialCertifier(p_good=0.9, p_bad=0.95)

    def test_error_rates_bounded(self):
        with pytest.raises(ValueError):
            _certifier(alpha=0.6)
        with pytest.raises(ValueError):
            _certifier(beta=0.0)

    def test_boundaries_ordered(self):
        certifier = _certifier()
        assert certifier.lower_boundary < 0.0 < certifier.upper_boundary


class TestDecisions:
    def test_perfect_portal_accepted(self):
        certifier = _certifier()
        verdict = certifier.observe_many([True] * 500)
        assert verdict is Verdict.ACCEPT

    def test_broken_portal_rejected(self):
        certifier = _certifier()
        verdict = certifier.observe_many([True, False] * 100)
        assert verdict is Verdict.REJECT

    def test_stops_early_on_decision(self):
        certifier = _certifier()
        certifier.observe_many([False] * 100)
        assert certifier.trials < 100

    def test_continue_before_evidence(self):
        certifier = _certifier()
        assert certifier.verdict() is Verdict.CONTINUE
        certifier.observe(True)
        assert certifier.verdict() is Verdict.CONTINUE

    def test_counters(self):
        certifier = _certifier()
        certifier.observe(True)
        certifier.observe(False)
        assert certifier.trials == 2
        assert certifier.successes == 1
        assert certifier.observed_rate == pytest.approx(0.5)

    def test_rate_none_before_trials(self):
        assert _certifier().observed_rate is None

    def test_reset(self):
        certifier = _certifier()
        certifier.observe_many([False] * 50)
        certifier.reset()
        assert certifier.trials == 0
        assert certifier.verdict() is Verdict.CONTINUE


class TestStatisticalBehaviour:
    def _simulate(self, true_p, seed):
        rng = RandomStream(seed)
        certifier = _certifier()
        while certifier.verdict() is Verdict.CONTINUE and certifier.trials < 5000:
            certifier.observe(rng.bernoulli(true_p))
        return certifier

    def test_good_portals_mostly_accepted(self):
        accepts = sum(
            1
            for seed in range(40)
            if self._simulate(0.995, seed).verdict() is Verdict.ACCEPT
        )
        assert accepts >= 36  # alpha = 5%

    def test_bad_portals_mostly_rejected(self):
        rejects = sum(
            1
            for seed in range(40)
            if self._simulate(0.85, seed).verdict() is Verdict.REJECT
        )
        assert rejects >= 36  # beta = 5%

    def test_sequential_beats_fixed_sample(self):
        """The selling point: clear-cut portals decide in far fewer
        trials than a fixed-sample design would need (~hundreds for
        distinguishing 99% from 90% at these error rates)."""
        trial_counts = [
            self._simulate(0.999, seed).trials for seed in range(20)
        ]
        assert sum(trial_counts) / len(trial_counts) < 100

    def test_expected_trials_formula_plausible(self):
        certifier = _certifier()
        expectation = certifier.expected_trials_if_good()
        observed = [self._simulate(0.99, seed).trials for seed in range(30)]
        mean = sum(observed) / len(observed)
        assert 0.3 * expectation <= mean <= 3.0 * expectation
