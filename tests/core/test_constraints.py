"""Tests for route/accompany constraint correction (Inoue baseline)."""

import pytest

from repro.core.constraints import (
    AccompanyConstraint,
    ConstraintPipeline,
    Observation,
    RouteConstraint,
)


class TestRouteConstraint:
    def test_requires_two_checkpoints(self):
        with pytest.raises(ValueError):
            RouteConstraint(["dock"])

    def test_rejects_duplicates(self):
        with pytest.raises(ValueError):
            RouteConstraint(["a", "b", "a"])

    def test_position_lookup(self):
        route = RouteConstraint(["dock", "belt", "gate"])
        assert route.position_of("belt") == 1

    def test_unknown_checkpoint(self):
        route = RouteConstraint(["dock", "belt"])
        with pytest.raises(KeyError):
            route.position_of("roof")

    def test_recovers_skipped_middle(self):
        route = RouteConstraint(["dock", "belt", "gate"])
        observations = [
            Observation("obj1", "dock", 0.0),
            Observation("obj1", "gate", 10.0),
        ]
        recovered = route.recover(observations)
        assert len(recovered) == 1
        assert recovered[0].checkpoint == "belt"
        assert recovered[0].time == pytest.approx(5.0)

    def test_no_recovery_for_adjacent(self):
        route = RouteConstraint(["dock", "belt", "gate"])
        observations = [
            Observation("obj1", "dock", 0.0),
            Observation("obj1", "belt", 5.0),
        ]
        assert route.recover(observations) == []

    def test_multiple_missing_interpolated(self):
        route = RouteConstraint(["a", "b", "c", "d"])
        observations = [
            Observation("x", "a", 0.0),
            Observation("x", "d", 9.0),
        ]
        recovered = sorted(route.recover(observations), key=lambda o: o.time)
        assert [o.checkpoint for o in recovered] == ["b", "c"]
        assert recovered[0].time == pytest.approx(3.0)
        assert recovered[1].time == pytest.approx(6.0)

    def test_already_seen_not_duplicated(self):
        route = RouteConstraint(["a", "b", "c"])
        observations = [
            Observation("x", "a", 0.0),
            Observation("x", "b", 4.0),
            Observation("x", "c", 8.0),
        ]
        assert route.recover(observations) == []

    def test_objects_independent(self):
        route = RouteConstraint(["a", "b", "c"])
        observations = [
            Observation("x", "a", 0.0),
            Observation("y", "c", 5.0),
        ]
        assert route.recover(observations) == []

    def test_off_route_checkpoints_ignored(self):
        route = RouteConstraint(["a", "b", "c"])
        observations = [
            Observation("x", "a", 0.0),
            Observation("x", "elsewhere", 1.0),
            Observation("x", "c", 2.0),
        ]
        recovered = route.recover(observations)
        assert [o.checkpoint for o in recovered] == ["b"]


class TestAccompanyConstraint:
    def test_requires_groups(self):
        with pytest.raises(ValueError):
            AccompanyConstraint({})

    def test_rejects_empty_group(self):
        with pytest.raises(ValueError):
            AccompanyConstraint({"g": []})

    def test_invalid_quorum(self):
        with pytest.raises(ValueError):
            AccompanyConstraint({"g": ["a"]}, quorum_fraction=0.0)

    def test_recovers_missing_member(self):
        constraint = AccompanyConstraint(
            {"pallet": ["a", "b", "c", "d"]}, quorum_fraction=0.5
        )
        observations = [
            Observation("a", "gate", 1.0),
            Observation("b", "gate", 1.5),
        ]
        recovered = constraint.recover(observations)
        assert {o.object_id for o in recovered} == {"c", "d"}
        assert all(o.checkpoint == "gate" for o in recovered)

    def test_below_quorum_no_recovery(self):
        constraint = AccompanyConstraint(
            {"pallet": ["a", "b", "c", "d"]}, quorum_fraction=0.75
        )
        observations = [Observation("a", "gate", 1.0)]
        assert constraint.recover(observations) == []

    def test_window_limits_grouping(self):
        constraint = AccompanyConstraint(
            {"pallet": ["a", "b"]}, quorum_fraction=1.0, window_s=2.0
        )
        # Sightings 10 s apart: never both in one window.
        observations = [
            Observation("a", "gate", 0.0),
            Observation("b", "gate", 10.0),
        ]
        assert constraint.recover(observations) == []

    def test_full_group_seen_nothing_recovered(self):
        constraint = AccompanyConstraint({"pallet": ["a", "b"]})
        observations = [
            Observation("a", "gate", 0.0),
            Observation("b", "gate", 0.5),
        ]
        assert constraint.recover(observations) == []


class TestPipeline:
    def test_combines_constraints_to_fixed_point(self):
        """Accompany recovery enables route recovery in a second pass."""
        route = RouteConstraint(["dock", "belt", "gate"])
        accompany = AccompanyConstraint(
            {"pallet": ["a", "b"]}, quorum_fraction=0.5
        )
        pipeline = ConstraintPipeline(routes=[route], accompany=[accompany])
        observations = [
            # 'a' seen at dock and gate (missed belt); 'b' only at dock.
            Observation("a", "dock", 0.0),
            Observation("b", "dock", 0.1),
            Observation("a", "gate", 10.0),
        ]
        all_obs, inferred = pipeline.correct(observations)
        keys = {(o.object_id, o.checkpoint) for o in all_obs}
        # Route fills a@belt; accompany fills b@gate (from a@gate) and
        # then route can fill b@belt.
        assert ("a", "belt") in keys
        assert ("b", "gate") in keys
        assert ("b", "belt") in keys
        assert len(inferred) == 3

    def test_no_constraints_changes_nothing(self):
        pipeline = ConstraintPipeline()
        observations = [Observation("a", "x", 0.0)]
        all_obs, inferred = pipeline.correct(observations)
        assert all_obs == observations
        assert inferred == []

    def test_idempotent(self):
        route = RouteConstraint(["a", "b", "c"])
        pipeline = ConstraintPipeline(routes=[route])
        observations = [
            Observation("x", "a", 0.0),
            Observation("x", "c", 4.0),
        ]
        once, inferred_once = pipeline.correct(observations)
        twice, inferred_twice = pipeline.correct(once)
        assert inferred_twice == []
        assert len(twice) == len(once)

    def test_tracking_reliability_improves(self):
        """The headline claim of the software baseline: corrected
        tracking reliability exceeds raw read reliability."""
        route = RouteConstraint(["dock", "belt", "gate"])
        pipeline = ConstraintPipeline(routes=[route])
        objects = [f"obj{i}" for i in range(20)]
        observations = []
        for i, obj in enumerate(objects):
            observations.append(Observation(obj, "dock", float(i)))
            # Every other object misses the belt read.
            if i % 2 == 0:
                observations.append(Observation(obj, "belt", i + 100.0))
            observations.append(Observation(obj, "gate", i + 200.0))
        raw_belt = sum(1 for o in observations if o.checkpoint == "belt")
        corrected, _ = pipeline.correct(observations)
        fixed_belt = sum(1 for o in corrected if o.checkpoint == "belt")
        assert raw_belt == 10
        assert fixed_belt == 20
