"""Tests for reliability estimators."""

import pytest
from hypothesis import given, strategies as st

from repro.core.reliability import (
    CountDistribution,
    ReliabilityEstimate,
    per_location_reliability,
    tracking_success,
)


class TestReliabilityEstimate:
    def test_rate_and_percent(self):
        est = ReliabilityEstimate(successes=87, trials=100)
        assert est.rate == pytest.approx(0.87)
        assert est.percent == pytest.approx(87.0)

    def test_invalid_trials(self):
        with pytest.raises(ValueError):
            ReliabilityEstimate(0, 0)

    def test_invalid_successes(self):
        with pytest.raises(ValueError):
            ReliabilityEstimate(11, 10)
        with pytest.raises(ValueError):
            ReliabilityEstimate(-1, 10)

    def test_wilson_contains_point_estimate(self):
        est = ReliabilityEstimate(15, 20)
        low, high = est.wilson_interval()
        assert low <= est.rate <= high

    def test_wilson_narrows_with_more_trials(self):
        small = ReliabilityEstimate(8, 10)
        large = ReliabilityEstimate(800, 1000)
        s_low, s_high = small.wilson_interval()
        l_low, l_high = large.wilson_interval()
        assert (l_high - l_low) < (s_high - s_low)

    def test_wilson_bounded(self):
        for successes in (0, 5, 10):
            low, high = ReliabilityEstimate(successes, 10).wilson_interval()
            assert 0.0 <= low <= high <= 1.0

    def test_combined(self):
        a = ReliabilityEstimate(3, 10)
        b = ReliabilityEstimate(7, 10)
        combined = a.combined_with(b)
        assert combined.successes == 10
        assert combined.trials == 20

    def test_from_outcomes(self):
        est = ReliabilityEstimate.from_outcomes([True, False, True, True])
        assert est.successes == 3
        assert est.trials == 4

    def test_from_outcomes_empty_rejected(self):
        with pytest.raises(ValueError):
            ReliabilityEstimate.from_outcomes([])

    def test_pooled(self):
        pooled = ReliabilityEstimate.pooled(
            [ReliabilityEstimate(1, 2), ReliabilityEstimate(3, 4)]
        )
        assert pooled.successes == 4
        assert pooled.trials == 6

    def test_pooled_empty_rejected(self):
        with pytest.raises(ValueError):
            ReliabilityEstimate.pooled([])

    @given(st.integers(min_value=1, max_value=500))
    def test_rate_in_unit_interval(self, trials):
        est = ReliabilityEstimate(trials // 2, trials)
        assert 0.0 <= est.rate <= 1.0


class TestCountDistribution:
    def test_mean(self):
        dist = CountDistribution(counts=(18, 20, 19), total_tags=20)
        assert dist.mean == pytest.approx(19.0)
        assert dist.mean_fraction == pytest.approx(0.95)

    def test_quartiles(self):
        dist = CountDistribution(counts=(10, 12, 14, 16, 18), total_tags=20)
        assert dist.lower_quartile == pytest.approx(12.0)
        assert dist.upper_quartile == pytest.approx(16.0)

    def test_single_trial(self):
        dist = CountDistribution(counts=(7,), total_tags=10)
        assert dist.quantile(0.5) == 7.0

    def test_invalid_quantile(self):
        dist = CountDistribution(counts=(5,), total_tags=10)
        with pytest.raises(ValueError):
            dist.quantile(1.5)

    def test_counts_out_of_range(self):
        with pytest.raises(ValueError):
            CountDistribution(counts=(21,), total_tags=20)
        with pytest.raises(ValueError):
            CountDistribution(counts=(-1,), total_tags=20)

    def test_empty_counts_rejected(self):
        with pytest.raises(ValueError):
            CountDistribution(counts=(), total_tags=20)

    def test_as_reliability(self):
        dist = CountDistribution(counts=(10, 20), total_tags=20)
        est = dist.as_reliability()
        assert est.successes == 30
        assert est.trials == 40


class TestTrackingSuccess:
    def test_any_tag_suffices(self):
        assert tracking_success({"a", "b"}, ["x", "b"])

    def test_no_tags_seen(self):
        assert not tracking_success({"a"}, ["x", "y"])

    def test_empty_object_rejected(self):
        with pytest.raises(ValueError):
            tracking_success({"a"}, [])


class TestPerLocation:
    def test_builds_rows(self):
        rows = per_location_reliability(
            {"front": [True, True, False], "top": [False, False, False]}
        )
        assert rows["front"].rate == pytest.approx(2 / 3)
        assert rows["top"].rate == 0.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            per_location_reliability({})
