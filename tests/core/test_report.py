"""Tests for EXPERIMENTS.md report assembly."""

import os

import pytest

from repro.core.report import (
    EXPERIMENT_INDEX,
    ExperimentArtifact,
    load_artifacts,
    render_experiments_md,
    write_experiments_md,
)


class TestIndex:
    def test_covers_every_table_and_figure(self):
        refs = {ref for _, ref, _ in EXPERIMENT_INDEX}
        for required in (
            "Figure 2",
            "Figure 4",
            "Table 1",
            "Table 2",
            "Table 3 / Figure 5",
            "Table 4",
            "Table 5",
            "Figure 6",
            "Figure 7",
        ):
            assert required in refs

    def test_stems_unique(self):
        stems = [stem for stem, _, _ in EXPERIMENT_INDEX]
        assert len(set(stems)) == len(stems)


class TestLoad:
    def test_missing_dir_gives_unavailable(self, tmp_path):
        artifacts = load_artifacts(str(tmp_path / "nope"))
        assert all(not a.available for a in artifacts)

    def test_present_files_loaded(self, tmp_path):
        (tmp_path / "fig2_read_range.txt").write_text("CONTENT-42\n")
        artifacts = load_artifacts(str(tmp_path))
        by_stem = {a.stem: a for a in artifacts}
        assert by_stem["fig2_read_range"].available
        assert "CONTENT-42" in by_stem["fig2_read_range"].content
        assert not by_stem["table1_object_location"].available


class TestRender:
    def test_sections_per_artifact(self):
        artifacts = [
            ExperimentArtifact("a", "Figure 2", "gloss", "numbers here"),
            ExperimentArtifact("b", "Table 1", "gloss2", None),
        ]
        text = render_experiments_md(artifacts)
        assert "## Figure 2 — gloss" in text
        assert "numbers here" in text
        assert "*(no result recorded yet)*" in text

    def test_missing_list_shown(self):
        artifacts = [ExperimentArtifact("a", "Figure 2", "g", None)]
        text = render_experiments_md(artifacts)
        assert "Missing artefacts" in text

    def test_preamble_included(self):
        text = render_experiments_md([], preamble="PREAMBLE-TEXT")
        assert "PREAMBLE-TEXT" in text


class TestWrite:
    def test_write_counts_available(self, tmp_path):
        results = tmp_path / "results"
        results.mkdir()
        (results / "fig2_read_range.txt").write_text("x\n")
        (results / "table1_object_location.txt").write_text("y\n")
        output = tmp_path / "EXPERIMENTS.md"
        count = write_experiments_md(str(results), str(output))
        assert count == 2
        body = output.read_text()
        assert body.startswith("# EXPERIMENTS")
        assert "x" in body and "y" in body
