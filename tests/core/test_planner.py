"""Tests for the deployment planner."""

import pytest

from repro.core.model import OBJECT_LOCATION_RELIABILITY
from repro.core.planner import CostModel, DeploymentPlanner


def _planner(**kwargs):
    return DeploymentPlanner(dict(OBJECT_LOCATION_RELIABILITY), **kwargs)


class TestCostModel:
    def test_total_cost(self):
        cm = CostModel(
            cost_per_tag=0.05,
            cost_per_antenna=300.0,
            cost_per_reader=1500.0,
            objects_per_deployment=1000,
        )
        assert cm.total_cost(2, 2) == pytest.approx(
            2 * 0.05 * 1000 + 600 + 1500
        )

    def test_invalid_counts(self):
        with pytest.raises(ValueError):
            CostModel().total_cost(0, 1)


class TestPlannerValidation:
    def test_empty_placements_rejected(self):
        with pytest.raises(ValueError):
            DeploymentPlanner({})

    def test_invalid_reliability_rejected(self):
        with pytest.raises(ValueError):
            DeploymentPlanner({"x": 1.3})

    def test_invalid_efficiency_rejected(self):
        with pytest.raises(ValueError):
            _planner(antenna_efficiency=0.0)


class TestPredict:
    def test_single_tag_single_antenna_is_best_placement(self):
        planner = _planner()
        # Best placement is front (87%).
        assert planner.predict(1, 1) == pytest.approx(0.87)

    def test_two_tags_match_paper_rc(self):
        planner = _planner()
        # Front + side_closer: 1 - 0.13*0.17.
        assert planner.predict(2, 1) == pytest.approx(0.9779, abs=1e-4)

    def test_full_efficiency_matches_independence(self):
        planner = _planner(antenna_efficiency=1.0)
        assert planner.predict(1, 2) == pytest.approx(
            1 - (1 - 0.87) ** 2, abs=1e-6
        )

    def test_discounted_antennas_below_independence(self):
        planner = _planner(antenna_efficiency=0.6)
        full = _planner(antenna_efficiency=1.0).predict(1, 2)
        assert planner.predict(1, 2) < full

    def test_more_redundancy_more_reliability(self):
        planner = _planner()
        assert planner.predict(2, 1) > planner.predict(1, 1)
        assert planner.predict(1, 2) > planner.predict(1, 1)

    def test_too_many_tags_rejected(self):
        with pytest.raises(ValueError):
            _planner().predict(10, 1)

    def test_invalid_counts_rejected(self):
        with pytest.raises(ValueError):
            _planner().predict(0, 1)


class TestPlan:
    def test_reaches_target(self):
        planner = _planner()
        option = planner.plan(0.95)
        assert option.predicted_reliability >= 0.95

    def test_prefers_tags_over_antennas(self):
        """With tags at cents and antennas at hundreds of dollars, the
        planner should reach high reliability by adding tags — the
        paper's recommendation made economic."""
        planner = _planner(
            cost_model=CostModel(objects_per_deployment=1000)
        )
        option = planner.plan(0.99)
        assert option.tags_per_object >= 2
        assert option.antennas == 1

    def test_expensive_tags_flip_the_choice(self):
        """If tagging were expensive (few objects, pricey tags), antennas
        win instead — the planner responds to unit economics."""
        planner = _planner(
            cost_model=CostModel(
                cost_per_tag=50.0, objects_per_deployment=100_000
            ),
            antenna_efficiency=1.0,
        )
        option = planner.plan(0.97)
        assert option.antennas >= 2
        assert option.tags_per_object == 1

    def test_unreachable_target_raises(self):
        planner = _planner()
        with pytest.raises(ValueError, match="no configuration"):
            planner.plan(0.99999, max_tags=1, max_antennas=1)

    def test_invalid_target(self):
        with pytest.raises(ValueError):
            _planner().plan(1.0)

    def test_best_placements_filled_first(self):
        option = _planner().plan(0.95)
        assert option.placements[0] == "front"


class TestEnumerate:
    def test_sorted_by_cost(self):
        options = _planner().enumerate_options(max_tags=2, max_antennas=2)
        costs = [o.cost for o in options]
        assert costs == sorted(costs)

    def test_limits_respected(self):
        options = _planner().enumerate_options(max_tags=2, max_antennas=3)
        assert all(o.tags_per_object <= 2 for o in options)
        assert all(o.antennas <= 3 for o in options)
