"""Tests for the cascaded macro-tag baseline."""

import pytest

from repro.core.cascade import (
    CascadeHierarchy,
    MacroTag,
    cascade_item_reliability,
    expected_items_lost_jointly,
)


def _macro(epc="M0", level="case", manifest=("i1", "i2")):
    return MacroTag(epc=epc, level=level, manifest=frozenset(manifest))


class TestMacroTag:
    def test_valid(self):
        macro = _macro()
        assert macro.level == "case"

    def test_empty_manifest_rejected(self):
        with pytest.raises(ValueError):
            MacroTag("M0", "case", frozenset())

    def test_self_reference_rejected(self):
        with pytest.raises(ValueError):
            MacroTag("M0", "case", frozenset({"M0", "i1"}))


class TestHierarchy:
    def test_plain_item_resolves_to_itself(self):
        hierarchy = CascadeHierarchy()
        assert hierarchy.resolve("i1") == frozenset({"i1"})

    def test_macro_resolves_manifest(self):
        hierarchy = CascadeHierarchy()
        hierarchy.add(_macro())
        assert hierarchy.resolve("M0") == frozenset({"i1", "i2"})

    def test_nested_macros_expand(self):
        hierarchy = CascadeHierarchy()
        hierarchy.add(MacroTag("case1", "case", frozenset({"i1", "i2"})))
        hierarchy.add(MacroTag("case2", "case", frozenset({"i3"})))
        hierarchy.add(MacroTag("pallet", "pallet", frozenset({"case1", "case2"})))
        assert hierarchy.resolve("pallet") == frozenset({"i1", "i2", "i3"})

    def test_duplicate_macro_rejected(self):
        hierarchy = CascadeHierarchy()
        hierarchy.add(_macro())
        with pytest.raises(ValueError):
            hierarchy.add(_macro())

    def test_cycle_detected(self):
        hierarchy = CascadeHierarchy()
        hierarchy.add(MacroTag("A", "case", frozenset({"B"})))
        hierarchy.add(MacroTag("B", "case", frozenset({"A"})))
        with pytest.raises(ValueError, match="cycle"):
            hierarchy.resolve("A")

    def test_identified_items_unions_reads(self):
        hierarchy = CascadeHierarchy()
        hierarchy.add(_macro("M0", manifest=("i1", "i2")))
        items = hierarchy.identified_items({"M0", "i9"})
        assert items == frozenset({"i1", "i2", "i9"})

    def test_macro_read_covers_unread_items(self):
        """The cascade's value: one good macro read identifies every
        item even when no item tag was read."""
        hierarchy = CascadeHierarchy()
        hierarchy.add(_macro("M0", manifest=("i1", "i2", "i3", "i4")))
        assert len(hierarchy.identified_items({"M0"})) == 4


class TestAnalyticalModel:
    def test_macro_boosts_item_reliability(self):
        base = 0.63
        boosted = cascade_item_reliability(base, macro_reliability=0.95)
        assert boosted > base
        assert boosted == pytest.approx(1 - (1 - 0.63) * (1 - 0.95))

    def test_zero_macros_is_item_only(self):
        assert cascade_item_reliability(0.7, 0.9, macros_covering_item=0) == (
            pytest.approx(0.7)
        )

    def test_invalid_macro_count(self):
        with pytest.raises(ValueError):
            cascade_item_reliability(0.5, 0.5, macros_covering_item=-1)

    def test_invalid_probability(self):
        with pytest.raises(ValueError):
            cascade_item_reliability(1.5, 0.5)

    def test_joint_loss_grows_with_case_size(self):
        small = expected_items_lost_jointly(4, 0.63, 0.95)
        large = expected_items_lost_jointly(40, 0.63, 0.95)
        assert large > small

    def test_joint_loss_zero_for_perfect_macro(self):
        assert expected_items_lost_jointly(10, 0.63, 1.0) == 0.0

    def test_joint_loss_invalid_inputs(self):
        with pytest.raises(ValueError):
            expected_items_lost_jointly(0, 0.5, 0.5)
        with pytest.raises(ValueError):
            expected_items_lost_jointly(5, -0.1, 0.5)

    def test_cascade_vs_identical_tags_tradeoff(self):
        """Cascade beats a second identical tag on marginal reliability
        when the macro is much better placed, but identical-tag
        redundancy has no joint-failure mode — the reason the paper
        studies identical tags."""
        item_p = 0.63
        macro_p = 0.95
        cascade = cascade_item_reliability(item_p, macro_p)
        from repro.core.redundancy import combined_reliability

        identical = combined_reliability([item_p, item_p])
        assert cascade > identical  # better marginal reliability...
        # ...but a correlated loss burst exists for the cascade:
        assert expected_items_lost_jointly(12, item_p, macro_p) > 0.0
