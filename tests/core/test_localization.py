"""Tests for LANDMARC-style localization."""

import math

import pytest

from repro.core.localization import (
    LandmarcLocator,
    LocalizationError,
    ReferenceTag,
    grid_references,
    signal_distance,
)
from repro.rf.geometry import Vec3
from repro.sim.rng import RandomStream

#: Reader positions for the synthetic room (4 corners, 8x8 m).
READERS = {
    "r0": Vec3(0.0, 2.0, 0.0),
    "r1": Vec3(8.0, 2.0, 0.0),
    "r2": Vec3(0.0, 2.0, 8.0),
    "r3": Vec3(8.0, 2.0, 8.0),
}


def _rssi_model(noise_rng=None, sigma=0.0):
    """Log-distance RSSI with optional noise — the surveying function."""

    def signal_fn(position):
        signals = {}
        for reader_id, reader_pos in READERS.items():
            d = max(position.distance_to(reader_pos), 0.3)
            rssi = -30.0 - 25.0 * math.log10(d)
            if noise_rng is not None and sigma > 0.0:
                rssi += noise_rng.gauss(0.0, sigma)
            signals[reader_id] = rssi
        return signals

    return signal_fn


def _grid(signal_fn=None, pitch=2.0):
    return grid_references(
        Vec3(0.0, 1.0, 0.0), columns=5, rows=5, pitch_m=pitch,
        signal_fn=signal_fn or _rssi_model(),
    )


class TestSignalDistance:
    def test_identical_vectors(self):
        assert signal_distance({"r0": -50.0}, {"r0": -50.0}) == 0.0

    def test_euclidean(self):
        assert signal_distance(
            {"r0": -50.0, "r1": -60.0}, {"r0": -53.0, "r1": -56.0}
        ) == pytest.approx(5.0)

    def test_partial_overlap_uses_shared(self):
        d = signal_distance({"r0": -50.0, "r9": -10.0}, {"r0": -53.0})
        assert d == pytest.approx(3.0)

    def test_no_overlap_rejected(self):
        with pytest.raises(LocalizationError):
            signal_distance({"r0": -50.0}, {"r1": -50.0})


class TestReferences:
    def test_grid_size(self):
        assert len(_grid()) == 25

    def test_grid_positions(self):
        refs = {r.tag_id: r for r in _grid()}
        assert refs["ref-0-0"].position.is_close(Vec3(0.0, 1.0, 0.0))
        assert refs["ref-2-3"].position.is_close(Vec3(6.0, 1.0, 4.0))

    def test_invalid_grid(self):
        with pytest.raises(LocalizationError):
            grid_references(Vec3.zero(), 0, 1, 1.0, _rssi_model())
        with pytest.raises(LocalizationError):
            grid_references(Vec3.zero(), 1, 1, 0.0, _rssi_model())

    def test_empty_signals_rejected(self):
        with pytest.raises(LocalizationError):
            ReferenceTag("x", Vec3.zero(), {})


class TestLocator:
    def test_exact_reference_position(self):
        refs = _grid()
        locator = LandmarcLocator(refs, k=4)
        target = refs[7]
        estimate = locator.locate(target.signals)
        assert estimate.error_to(target.position) < 1e-6

    def test_interpolates_between_references(self):
        locator = LandmarcLocator(_grid(), k=4)
        truth = Vec3(3.0, 1.0, 5.0)  # off-grid point
        estimate = locator.locate(_rssi_model()(truth))
        # Room-level accuracy: well within one grid pitch.
        assert estimate.error_to(truth) < 2.0

    def test_room_level_accuracy_under_noise(self):
        """LANDMARC's claim: a couple of metres of error with noisy
        RSSI — 'room-level accuracy'."""
        rng = RandomStream(99)
        noisy_model = _rssi_model(noise_rng=rng, sigma=2.0)
        locator = LandmarcLocator(_grid(), k=4)
        errors = []
        for i in range(30):
            truth = Vec3(
                1.0 + (i % 5) * 1.3, 1.0, 1.0 + (i // 5) * 1.1
            )
            estimate = locator.locate(noisy_model(truth))
            errors.append(estimate.error_to(truth))
        median = sorted(errors)[len(errors) // 2]
        assert median < 2.5

    def test_weights_sum_to_one(self):
        locator = LandmarcLocator(_grid(), k=4)
        estimate = locator.locate(_rssi_model()(Vec3(3.3, 1.0, 2.7)))
        assert sum(estimate.weights) == pytest.approx(1.0)
        assert len(estimate.neighbors) == 4

    def test_k_clamped_to_references(self):
        refs = _grid()[:2]
        locator = LandmarcLocator(refs, k=10)
        assert locator.k == 2

    def test_validation(self):
        with pytest.raises(LocalizationError):
            LandmarcLocator([], k=4)
        with pytest.raises(LocalizationError):
            LandmarcLocator(_grid(), k=0)
        duplicated = _grid()[:1] * 2
        with pytest.raises(LocalizationError):
            LandmarcLocator(duplicated, k=1)

    def test_denser_grid_is_more_accurate(self):
        """At equal coverage (8x8 m), a denser reference grid reduces
        the median error — LANDMARC's cost/accuracy dial."""
        model = _rssi_model()
        coarse = LandmarcLocator(
            grid_references(
                Vec3(0.0, 1.0, 0.0), columns=3, rows=3, pitch_m=4.0,
                signal_fn=model,
            ),
            k=4,
        )
        fine = LandmarcLocator(
            grid_references(
                Vec3(0.0, 1.0, 0.0), columns=9, rows=9, pitch_m=1.0,
                signal_fn=model,
            ),
            k=4,
        )
        truths = [
            Vec3(1.3 + i, 1.0, 0.9 + 0.7 * i) for i in range(7)
        ]

        def median_error(locator):
            errors = sorted(
                locator.locate(model(t)).error_to(t) for t in truths
            )
            return errors[len(errors) // 2]

        assert median_error(fine) < median_error(coarse)
