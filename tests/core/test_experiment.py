"""Tests for the repeated-trial experiment runner."""

import pytest

from repro.core.experiment import TrialSet, run_trials, sweep
from repro.sim.rng import SeedSequence


class TestRunTrials:
    def test_runs_requested_repetitions(self):
        trials = run_trials("t", lambda seeds, i: i, repetitions=7)
        assert len(trials) == 7
        assert trials.outcomes == list(range(7))

    def test_label_kept(self):
        assert run_trials("my-label", lambda s, i: i, 1).label == "my-label"

    def test_zero_repetitions_rejected(self):
        with pytest.raises(ValueError):
            run_trials("t", lambda s, i: i, 0)

    def test_reproducible_with_seed(self):
        def trial(seeds: SeedSequence, index: int) -> float:
            return seeds.trial_stream("x", index).random()

        a = run_trials("t", trial, 5, seed=123)
        b = run_trials("t", trial, 5, seed=123)
        assert a.outcomes == b.outcomes

    def test_different_seeds_differ(self):
        def trial(seeds: SeedSequence, index: int) -> float:
            return seeds.trial_stream("x", index).random()

        a = run_trials("t", trial, 5, seed=123)
        b = run_trials("t", trial, 5, seed=456)
        assert a.outcomes != b.outcomes

    def test_trials_statistically_independent(self):
        def trial(seeds: SeedSequence, index: int) -> float:
            return seeds.trial_stream("x", index).random()

        outcomes = run_trials("t", trial, 50, seed=1).outcomes
        assert len(set(outcomes)) == 50


class TestTrialSet:
    def test_map(self):
        trials = TrialSet("t", outcomes=[1, 2, 3])
        assert trials.map(lambda x: x * 2.0) == [2.0, 4.0, 6.0]

    def test_success_estimate(self):
        trials = TrialSet("t", outcomes=[1, 2, 3, 4])
        est = trials.success_estimate(lambda x: x % 2 == 0)
        assert est.successes == 2
        assert est.trials == 4

    def test_count_distribution(self):
        trials = TrialSet("t", outcomes=[3, 5, 4])
        dist = trials.count_distribution(lambda x: x, total=5)
        assert dist.mean == pytest.approx(4.0)


class TestSweep:
    def test_one_trial_set_per_value(self):
        results = sweep(
            lambda v: f"v={v}",
            [1.0, 2.0, 3.0],
            lambda v: (lambda seeds, i: v * i),
            repetitions=4,
        )
        assert set(results) == {1.0, 2.0, 3.0}
        assert results[2.0].outcomes == [0.0, 2.0, 4.0, 6.0]

    def test_sweep_points_reproducible(self):
        def factory(v):
            def trial(seeds, i):
                return seeds.trial_stream("x", i).random()

            return trial

        a = sweep(str, [1.0], factory, 3, seed=9)
        b = sweep(str, [1.0], factory, 3, seed=9)
        assert a[1.0].outcomes == b[1.0].outcomes

    def test_duplicate_values_rejected(self):
        with pytest.raises(ValueError, match="collide"):
            sweep(str, [1.0, 1.0], lambda v: (lambda s, i: i), 2)

    def test_values_colliding_after_rounding_rejected(self):
        # These differ in the 10th decimal: round(value, 9) folds them
        # onto the same sweep key, which used to silently overwrite the
        # first point's results.
        with pytest.raises(ValueError, match="collide"):
            sweep(
                str,
                [1.0000000001, 1.0000000002],
                lambda v: (lambda s, i: i),
                2,
            )

    def test_distinct_values_still_accepted(self):
        results = sweep(str, [1.0, 1.001], lambda v: (lambda s, i: v), 1)
        assert set(results) == {1.0, 1.001}


class TestTrialTiming:
    def test_serial_trials_record_wall_times(self):
        trial_set = run_trials(
            "timed", lambda seeds, i: i, 4, seed=3
        )
        assert len(trial_set.trial_seconds) == 4
        assert all(s >= 0.0 for s in trial_set.trial_seconds)

    def test_timing_summary_reports_quantiles(self):
        trial_set = TrialSet(
            label="t",
            outcomes=[0, 1, 2, 3],
            trial_seconds=[0.1, 0.2, 0.3, 0.4],
        )
        summary = trial_set.timing_summary()
        assert summary["count"] == 4
        assert summary["mean_s"] == pytest.approx(0.25)
        assert summary["p50_s"] == pytest.approx(0.25)
        assert summary["p95_s"] == pytest.approx(0.385)

    def test_timing_excluded_from_equality(self):
        a = TrialSet(label="t", outcomes=[1], trial_seconds=[0.1])
        b = TrialSet(label="t", outcomes=[1], trial_seconds=[9.9])
        assert a == b
