"""Tests for the receiver noise/sensitivity derivation."""

import pytest

from repro.rf.noise import (
    ReceiverModel,
    sensitivity_check,
    thermal_noise_dbm,
)


class TestThermalNoise:
    def test_1hz_reference(self):
        # kT at 290 K is -174 dBm/Hz.
        assert thermal_noise_dbm(1.0) == pytest.approx(-173.98, abs=0.05)

    def test_bandwidth_scales_logarithmically(self):
        narrow = thermal_noise_dbm(1e3)
        wide = thermal_noise_dbm(1e6)
        assert wide - narrow == pytest.approx(30.0, abs=0.01)

    def test_hotter_is_noisier(self):
        assert thermal_noise_dbm(1e6, 400.0) > thermal_noise_dbm(1e6, 290.0)

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            thermal_noise_dbm(0.0)
        with pytest.raises(ValueError):
            thermal_noise_dbm(1e6, 0.0)


class TestReceiverModel:
    def test_noise_floor_composition(self):
        model = ReceiverModel(bandwidth_hz=250e3, noise_figure_db=35.0)
        assert model.noise_floor_dbm == pytest.approx(
            thermal_noise_dbm(250e3) + 35.0
        )

    def test_sensitivity_adds_snr(self):
        model = ReceiverModel(required_snr_db=10.0)
        assert model.sensitivity_dbm == pytest.approx(
            model.noise_floor_dbm + 10.0
        )

    def test_default_near_calibrated_constant(self):
        """The -75 dBm used by the link budget must be derivable:
        kTB(-120) + effective NF(35, incl. TX-leakage desensitization)
        + SNR(10) = -75 dBm."""
        assert abs(sensitivity_check(-75.0)) <= 3.0

    def test_decodable_threshold(self):
        model = ReceiverModel()
        assert model.decodable(model.sensitivity_dbm + 1.0)
        assert not model.decodable(model.sensitivity_dbm - 1.0)

    def test_snr(self):
        model = ReceiverModel()
        assert model.snr_db(model.noise_floor_dbm) == pytest.approx(0.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            ReceiverModel(bandwidth_hz=0.0)
        with pytest.raises(ValueError):
            ReceiverModel(noise_figure_db=-1.0)
        with pytest.raises(ValueError):
            ReceiverModel(required_snr_db=-1.0)
