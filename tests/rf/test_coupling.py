"""Tests for inter-tag near-field coupling."""

import pytest
from hypothesis import given, strategies as st

from repro.rf.coupling import CouplingModel, grid_positions
from repro.rf.geometry import Vec3

spacings = st.floats(min_value=0.0, max_value=0.1)


class TestPairPenalty:
    def test_contact_parallel_full_penalty(self):
        model = CouplingModel(contact_penalty_db=30.0)
        penalty = model.pair_penalty_db(0.0, Vec3.unit_x(), Vec3.unit_x())
        assert penalty == pytest.approx(30.0)

    def test_beyond_safe_distance_zero(self):
        model = CouplingModel(safe_distance_m=0.04)
        assert model.pair_penalty_db(0.04, Vec3.unit_x(), Vec3.unit_x()) == 0.0
        assert model.pair_penalty_db(0.10, Vec3.unit_x(), Vec3.unit_x()) == 0.0

    def test_orthogonal_tags_do_not_couple(self):
        model = CouplingModel()
        assert model.pair_penalty_db(
            0.001, Vec3.unit_x(), Vec3.unit_y()
        ) == pytest.approx(0.0)

    def test_oblique_partial_coupling(self):
        model = CouplingModel(contact_penalty_db=30.0)
        parallel = model.pair_penalty_db(0.01, Vec3.unit_x(), Vec3.unit_x())
        oblique = model.pair_penalty_db(
            0.01, Vec3.unit_x(), Vec3(1, 1, 0).normalized()
        )
        assert 0.0 < oblique < parallel

    def test_negative_separation_rejected(self):
        with pytest.raises(ValueError):
            CouplingModel().pair_penalty_db(-0.01, Vec3.unit_x(), Vec3.unit_x())

    @given(spacings)
    def test_penalty_monotone_in_distance(self, sep):
        model = CouplingModel()
        near = model.pair_penalty_db(
            max(0.0, sep - 0.002), Vec3.unit_x(), Vec3.unit_x()
        )
        far = model.pair_penalty_db(sep, Vec3.unit_x(), Vec3.unit_x())
        assert near >= far

    @given(spacings)
    def test_penalty_bounded(self, sep):
        model = CouplingModel(contact_penalty_db=30.0)
        penalty = model.pair_penalty_db(sep, Vec3.unit_x(), Vec3.unit_x())
        assert 0.0 <= penalty <= 30.0


class TestTotalPenalty:
    def test_paper_spacings_show_knee(self):
        """Penalties at the paper's five tested spacings decline to ~zero
        by 40 mm — the measured minimum safe distance."""
        model = CouplingModel()
        axis = Vec3.unit_x()
        penalties = []
        for spacing in (0.0003, 0.004, 0.010, 0.020, 0.040):
            positions = grid_positions(10, spacing, direction=Vec3.unit_z())
            axes = [axis] * 10
            penalties.append(model.total_penalty_db(5, positions, axes))
        assert penalties[0] >= 30.0  # 0.3 mm: essentially dead
        assert penalties == sorted(penalties, reverse=True)
        assert penalties[-1] == pytest.approx(0.0, abs=1e-9)  # 40 mm: safe
        # Gradual knee rather than a cliff: the 10 mm point sits
        # strictly between dead and safe.
        assert 5.0 < penalties[2] < penalties[0]

    def test_middle_tag_suffers_most(self):
        model = CouplingModel()
        positions = grid_positions(5, 0.01, direction=Vec3.unit_z())
        axes = [Vec3.unit_x()] * 5
        middle = model.total_penalty_db(2, positions, axes)
        edge = model.total_penalty_db(0, positions, axes)
        assert middle > edge

    def test_mismatched_lengths_rejected(self):
        model = CouplingModel()
        with pytest.raises(ValueError):
            model.total_penalty_db(0, [Vec3.zero()], [])

    def test_index_out_of_range(self):
        model = CouplingModel()
        with pytest.raises(IndexError):
            model.total_penalty_db(5, [Vec3.zero()], [Vec3.unit_x()])

    def test_single_tag_no_penalty(self):
        model = CouplingModel()
        assert model.total_penalty_db(0, [Vec3.zero()], [Vec3.unit_x()]) == 0.0


class TestMinimumSafeSpacing:
    def test_parallel_tags_need_tens_of_mm(self):
        model = CouplingModel()
        spacing = model.minimum_safe_spacing_m(Vec3.unit_x(), Vec3.unit_x())
        assert 0.01 <= spacing <= 0.04

    def test_orthogonal_tags_need_nothing(self):
        model = CouplingModel()
        assert model.minimum_safe_spacing_m(Vec3.unit_x(), Vec3.unit_y()) == 0.0

    def test_tolerance_must_be_positive(self):
        with pytest.raises(ValueError):
            CouplingModel().minimum_safe_spacing_m(
                Vec3.unit_x(), Vec3.unit_x(), tolerable_penalty_db=0.0
            )

    def test_looser_tolerance_smaller_spacing(self):
        model = CouplingModel()
        tight = model.minimum_safe_spacing_m(
            Vec3.unit_x(), Vec3.unit_x(), tolerable_penalty_db=0.5
        )
        loose = model.minimum_safe_spacing_m(
            Vec3.unit_x(), Vec3.unit_x(), tolerable_penalty_db=5.0
        )
        assert loose <= tight


class TestGridPositions:
    def test_count_and_spacing(self):
        positions = grid_positions(4, 0.02)
        assert len(positions) == 4
        assert positions[1].distance_to(positions[0]) == pytest.approx(0.02)

    def test_zero_spacing_stacks(self):
        positions = grid_positions(3, 0.0)
        assert positions[0].is_close(positions[2])

    def test_invalid_count(self):
        with pytest.raises(ValueError):
            grid_positions(0, 0.01)

    def test_negative_spacing(self):
        with pytest.raises(ValueError):
            grid_positions(2, -0.01)

    def test_custom_direction_and_origin(self):
        positions = grid_positions(
            2, 0.1, direction=Vec3.unit_y(), origin=Vec3(1, 0, 0)
        )
        assert positions[0].is_close(Vec3(1, 0, 0))
        assert positions[1].is_close(Vec3(1, 0.1, 0))
