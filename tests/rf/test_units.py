"""Unit tests for dB/power conversions and RF constants."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.rf import units


class TestDbConversions:
    def test_db_to_linear_zero(self):
        assert units.db_to_linear(0.0) == pytest.approx(1.0)

    def test_db_to_linear_ten(self):
        assert units.db_to_linear(10.0) == pytest.approx(10.0)

    def test_db_to_linear_negative(self):
        assert units.db_to_linear(-3.0) == pytest.approx(0.5012, abs=1e-3)

    def test_linear_to_db_unity(self):
        assert units.linear_to_db(1.0) == pytest.approx(0.0)

    def test_linear_to_db_rejects_zero(self):
        with pytest.raises(ValueError):
            units.linear_to_db(0.0)

    def test_linear_to_db_rejects_negative(self):
        with pytest.raises(ValueError):
            units.linear_to_db(-1.0)

    @given(st.floats(min_value=-100.0, max_value=100.0))
    def test_round_trip_db(self, db):
        assert units.linear_to_db(units.db_to_linear(db)) == pytest.approx(
            db, abs=1e-9
        )


class TestPowerConversions:
    def test_dbm_to_watts_30dbm_is_1w(self):
        assert units.dbm_to_watts(30.0) == pytest.approx(1.0)

    def test_dbm_to_watts_0dbm_is_1mw(self):
        assert units.dbm_to_watts(0.0) == pytest.approx(1e-3)

    def test_watts_to_dbm_1w(self):
        assert units.watts_to_dbm(1.0) == pytest.approx(30.0)

    def test_watts_to_dbm_rejects_zero(self):
        with pytest.raises(ValueError):
            units.watts_to_dbm(0.0)

    def test_milliwatts_round_trip(self):
        assert units.dbm_to_milliwatts(
            units.milliwatts_to_dbm(250.0)
        ) == pytest.approx(250.0)

    def test_milliwatts_to_dbm_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            units.milliwatts_to_dbm(0.0)

    @given(st.floats(min_value=-80.0, max_value=50.0))
    def test_round_trip_dbm(self, dbm):
        assert units.watts_to_dbm(units.dbm_to_watts(dbm)) == pytest.approx(
            dbm, abs=1e-9
        )

    def test_paper_reader_power_is_one_watt(self):
        assert units.dbm_to_watts(units.PAPER_READER_POWER_DBM) == pytest.approx(
            1.0
        )


class TestWavelength:
    def test_uhf_wavelength(self):
        # 915 MHz -> ~32.8 cm
        assert units.wavelength(units.UHF_RFID_FREQ_HZ) == pytest.approx(
            0.3276, abs=1e-3
        )

    def test_rejects_nonpositive_frequency(self):
        with pytest.raises(ValueError):
            units.wavelength(0.0)


class TestFriis:
    def test_loss_increases_with_distance(self):
        g1 = units.friis_path_gain_db(1.0)
        g2 = units.friis_path_gain_db(2.0)
        assert g2 < g1

    def test_inverse_square_slope(self):
        # Doubling distance costs exactly 6.02 dB in free space.
        g1 = units.friis_path_gain_db(2.0)
        g2 = units.friis_path_gain_db(4.0)
        assert g1 - g2 == pytest.approx(6.0206, abs=1e-3)

    def test_known_value_at_1m_915mhz(self):
        # FSPL at 1 m, 915 MHz is ~31.7 dB.
        assert units.friis_path_gain_db(1.0) == pytest.approx(-31.67, abs=0.05)

    def test_clamps_tiny_distance(self):
        # Friis is far-field; the helper must not return +inf at d=0.
        assert math.isfinite(units.friis_path_gain_db(0.0))


class TestSumPowers:
    def test_equal_powers_add_3db(self):
        assert units.sum_powers_dbm(10.0, 10.0) == pytest.approx(13.01, abs=0.01)

    def test_single_power_is_identity(self):
        assert units.sum_powers_dbm(-40.0) == pytest.approx(-40.0)

    def test_dominant_power_wins(self):
        total = units.sum_powers_dbm(0.0, -40.0)
        assert total == pytest.approx(0.0, abs=0.01)

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            units.sum_powers_dbm()

    @given(
        st.lists(
            st.floats(min_value=-80.0, max_value=40.0), min_size=1, max_size=6
        )
    )
    def test_sum_at_least_max(self, levels):
        # Incoherent sum can never be below the strongest component.
        assert units.sum_powers_dbm(*levels) >= max(levels) - 1e-9
