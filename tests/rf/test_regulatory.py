"""Tests for channel plans and hop-collision statistics."""

import pytest

from repro.rf.regulatory import (
    ETSI_PLAN,
    FCC_PLAN,
    ChannelPlan,
    collision_probability,
    count_collisions,
    expected_interference_duty_cycle,
)
from repro.sim.rng import RandomStream


class TestChannelPlan:
    def test_fcc_shape(self):
        assert FCC_PLAN.channel_count == 50
        assert FCC_PLAN.frequency_hz(0) == pytest.approx(902.75e6)
        assert FCC_PLAN.frequency_hz(49) == pytest.approx(927.25e6)

    def test_etsi_shape(self):
        assert ETSI_PLAN.channel_count == 4
        assert 865e6 < ETSI_PLAN.frequency_hz(0) < 868e6

    def test_channel_out_of_range(self):
        with pytest.raises(ValueError):
            FCC_PLAN.frequency_hz(50)
        with pytest.raises(ValueError):
            FCC_PLAN.frequency_hz(-1)

    def test_invalid_plan(self):
        with pytest.raises(ValueError):
            ChannelPlan("x", 900e6, 0, 500e3, 0.4)
        with pytest.raises(ValueError):
            ChannelPlan("x", 900e6, 4, 500e3, 0.0)


class TestHopSequence:
    def test_length(self):
        seq = FCC_PLAN.hop_sequence(RandomStream(1), 120)
        assert len(seq) == 120

    def test_channels_in_range(self):
        seq = FCC_PLAN.hop_sequence(RandomStream(2), 200)
        assert all(0 <= c < 50 for c in seq)

    def test_each_cycle_uses_every_channel_once(self):
        seq = FCC_PLAN.hop_sequence(RandomStream(3), 100)
        assert sorted(seq[:50]) == list(range(50))
        assert sorted(seq[50:100]) == list(range(50))

    def test_deterministic_per_seed(self):
        a = FCC_PLAN.hop_sequence(RandomStream(7), 50)
        b = FCC_PLAN.hop_sequence(RandomStream(7), 50)
        assert a == b

    def test_zero_hops(self):
        assert FCC_PLAN.hop_sequence(RandomStream(1), 0) == []

    def test_negative_hops_rejected(self):
        with pytest.raises(ValueError):
            FCC_PLAN.hop_sequence(RandomStream(1), -1)


class TestCollisionProbability:
    def test_fcc_adjacent_window(self):
        # 3-channel window over 50 channels: 6%.
        assert collision_probability(FCC_PLAN, 1) == pytest.approx(0.06)

    def test_etsi_much_worse(self):
        # 4 channels only: collisions are near-certain with adjacency.
        assert collision_probability(ETSI_PLAN, 1) == pytest.approx(0.75)

    def test_co_channel_only(self):
        assert collision_probability(FCC_PLAN, 0) == pytest.approx(0.02)

    def test_capped_at_one(self):
        assert collision_probability(ETSI_PLAN, 10) == 1.0

    def test_negative_adjacent_rejected(self):
        with pytest.raises(ValueError):
            collision_probability(FCC_PLAN, -1)

    def test_monte_carlo_agrees(self):
        """Simulated independent hop sequences collide at ~ the
        analytical rate."""
        rng_a = RandomStream(11)
        rng_b = RandomStream(22)
        hops = 5000
        seq_a = FCC_PLAN.hop_sequence(rng_a, hops)
        seq_b = FCC_PLAN.hop_sequence(rng_b, hops)
        observed = count_collisions(seq_a, seq_b, adjacent_counts=1) / hops
        expected = collision_probability(FCC_PLAN, 1)
        assert abs(observed - expected) < 0.02

    def test_duty_cycle_matches_probability(self):
        assert expected_interference_duty_cycle(
            FCC_PLAN, 4.0
        ) == collision_probability(FCC_PLAN, 1)

    def test_duty_cycle_invalid_duration(self):
        with pytest.raises(ValueError):
            expected_interference_duty_cycle(FCC_PLAN, 0.0)

    def test_count_collisions_length_mismatch(self):
        with pytest.raises(ValueError):
            count_collisions([1, 2], [1])
