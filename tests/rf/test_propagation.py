"""Tests for path loss, shadowing, and Rician fading models."""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.rf.propagation import (
    RAYLEIGH,
    ChannelModel,
    PathLossModel,
    RicianFading,
    ShadowingModel,
)
from repro.sim.rng import RandomStream


class TestPathLossModel:
    def test_free_space_matches_friis(self):
        model = PathLossModel(use_two_ray=False)
        # At equal heights the direct distance equals the horizontal one.
        gain = model.path_gain_db(3.0, tx_height_m=1.0, rx_height_m=1.0)
        expected = 20.0 * math.log10(0.3276 / (4 * math.pi * 3.0))
        assert gain == pytest.approx(expected, abs=0.1)

    def test_two_ray_oscillates_around_friis(self):
        friis = PathLossModel(use_two_ray=False)
        two_ray = PathLossModel(use_two_ray=True, ground_reflection_coeff=-0.8)
        diffs = [
            two_ray.path_gain_db(d, 1.0, 1.0) - friis.path_gain_db(d, 1.0, 1.0)
            for d in [round(1.0 + 0.25 * i, 3) for i in range(30)]
        ]
        assert max(diffs) > 1.0  # constructive spots
        assert min(diffs) < -1.0  # destructive spots

    def test_negative_distance_rejected(self):
        with pytest.raises(ValueError):
            PathLossModel().path_gain_db(-1.0)

    def test_exponent_adds_excess_loss(self):
        base = PathLossModel(use_two_ray=False, path_loss_exponent=2.0)
        lossy = PathLossModel(use_two_ray=False, path_loss_exponent=2.5)
        d = 10.0
        diff = base.path_gain_db(d, 1.0, 1.0) - lossy.path_gain_db(d, 1.0, 1.0)
        assert diff == pytest.approx(5.0, abs=0.1)  # 10*(0.5)*log10(10)

    def test_exponent_no_excess_below_reference(self):
        base = PathLossModel(use_two_ray=False, path_loss_exponent=2.0)
        lossy = PathLossModel(use_two_ray=False, path_loss_exponent=2.8)
        assert base.path_gain_db(0.5, 1.0, 1.0) == pytest.approx(
            lossy.path_gain_db(0.5, 1.0, 1.0)
        )

    @given(st.floats(min_value=0.5, max_value=30.0))
    def test_gain_is_negative_beyond_half_metre(self, d):
        gain = PathLossModel().path_gain_db(d, 1.0, 1.0)
        assert gain < 0.0

    def test_height_difference_increases_path(self):
        model = PathLossModel(use_two_ray=False)
        level = model.path_gain_db(5.0, 1.0, 1.0)
        offset = model.path_gain_db(5.0, 1.0, 3.0)
        assert offset < level


class TestShadowing:
    def test_zero_sigma_returns_zero(self):
        rng = RandomStream(1)
        assert ShadowingModel(sigma_db=0.0).sample_db(rng) == 0.0

    def test_samples_have_requested_spread(self):
        rng = RandomStream(7)
        model = ShadowingModel(sigma_db=3.0)
        samples = [model.sample_db(rng) for _ in range(4000)]
        mean = sum(samples) / len(samples)
        var = sum((s - mean) ** 2 for s in samples) / len(samples)
        assert mean == pytest.approx(0.0, abs=0.2)
        assert math.sqrt(var) == pytest.approx(3.0, abs=0.2)


class TestRicianFading:
    def test_unit_mean_power(self):
        rng = RandomStream(11)
        fading = RicianFading(k_factor_db=7.0)
        samples = [fading.sample_power_gain(rng) for _ in range(8000)]
        assert sum(samples) / len(samples) == pytest.approx(1.0, abs=0.05)

    def test_high_k_concentrates_near_one(self):
        rng = RandomStream(13)
        fading = RicianFading(k_factor_db=25.0)
        samples = [fading.sample_power_gain(rng) for _ in range(1000)]
        assert all(0.5 < s < 2.0 for s in samples)

    def test_rayleigh_has_deep_fades(self):
        rng = RandomStream(17)
        samples = [RAYLEIGH.sample_power_gain(rng) for _ in range(2000)]
        deep = sum(1 for s in samples if s < 0.1)
        # Rayleigh: P(power < 0.1) = 1 - exp(-0.1) ~ 9.5%.
        assert deep > 100

    def test_degraded_lowers_k(self):
        fading = RicianFading(k_factor_db=7.0)
        assert fading.degraded(5.0).k_factor_db == pytest.approx(2.0)

    def test_samples_nonnegative(self):
        rng = RandomStream(19)
        fading = RicianFading(k_factor_db=0.0)
        assert all(
            fading.sample_power_gain(rng) >= 0.0 for _ in range(1000)
        )

    def test_lower_k_increases_variance(self):
        rng_hi = RandomStream(23)
        rng_lo = RandomStream(23)
        hi = [
            RicianFading(15.0).sample_power_gain(rng_hi) for _ in range(4000)
        ]
        lo = [
            RicianFading(0.0).sample_power_gain(rng_lo) for _ in range(4000)
        ]

        def var(xs):
            m = sum(xs) / len(xs)
            return sum((x - m) ** 2 for x in xs) / len(xs)

        assert var(lo) > 2.0 * var(hi)


class TestChannelModel:
    def test_large_scale_combines_shadowing(self):
        channel = ChannelModel(path_loss=PathLossModel(use_two_ray=False))
        base = channel.large_scale_gain_db(3.0, 1.0, 1.0, shadowing_db=0.0)
        shadowed = channel.large_scale_gain_db(3.0, 1.0, 1.0, shadowing_db=-4.0)
        assert shadowed == pytest.approx(base - 4.0)
