"""Tests for material attenuation and detuning."""

import pytest
from hypothesis import given, strategies as st

from repro.rf.materials import (
    AIR,
    BODY,
    CARDBOARD,
    LIQUID,
    METAL,
    Material,
    material_by_name,
)


class TestThroughLoss:
    def test_air_is_transparent(self):
        assert AIR.through_loss_db(1.0) == 0.0

    def test_metal_is_opaque(self):
        # A centimetre of metal kills any UHF budget.
        assert METAL.through_loss_db(0.01) >= 100.0

    def test_cardboard_barely_registers(self):
        assert CARDBOARD.through_loss_db(0.05) < 2.0

    def test_body_thickness_scales(self):
        assert BODY.through_loss_db(0.30) == pytest.approx(
            2.0 * BODY.through_loss_db(0.15)
        )

    def test_negative_thickness_rejected(self):
        with pytest.raises(ValueError):
            LIQUID.through_loss_db(-0.01)

    @given(st.floats(min_value=0.0, max_value=1.0))
    def test_loss_nonnegative(self, thickness):
        for material in (AIR, METAL, LIQUID, CARDBOARD, BODY):
            assert material.through_loss_db(thickness) >= 0.0


class TestDetuning:
    def test_contact_gives_full_penalty(self):
        assert METAL.detuning_loss_db(0.0) == pytest.approx(
            METAL.detuning_db_at_contact
        )

    def test_beyond_range_is_zero(self):
        assert METAL.detuning_loss_db(METAL.detuning_range_m) == 0.0
        assert METAL.detuning_loss_db(1.0) == 0.0

    def test_halfway_is_half(self):
        halfway = METAL.detuning_range_m / 2.0
        assert METAL.detuning_loss_db(halfway) == pytest.approx(
            METAL.detuning_db_at_contact / 2.0
        )

    def test_air_never_detunes(self):
        assert AIR.detuning_loss_db(0.0) == 0.0

    def test_negative_distance_rejected(self):
        with pytest.raises(ValueError):
            METAL.detuning_loss_db(-0.001)

    @given(st.floats(min_value=0.0, max_value=0.5))
    def test_detuning_monotone_decreasing(self, gap):
        closer = METAL.detuning_loss_db(max(0.0, gap - 0.01))
        here = METAL.detuning_loss_db(gap)
        assert closer >= here


class TestRegistry:
    def test_lookup_known(self):
        assert material_by_name("metal") is METAL
        assert material_by_name("body") is BODY

    def test_lookup_unknown_lists_names(self):
        with pytest.raises(KeyError, match="cardboard"):
            material_by_name("vibranium")

    def test_material_ordering_reflects_physics(self):
        # Metal blocks more than liquid, liquid more than body,
        # body more than cardboard.
        t = 0.05
        assert (
            METAL.through_loss_db(t)
            > LIQUID.through_loss_db(t)
            > BODY.through_loss_db(t)
            > CARDBOARD.through_loss_db(t)
            > AIR.through_loss_db(t)
        )

    def test_custom_material(self):
        glass = Material(name="glass", attenuation_db_per_cm=1.5)
        assert glass.through_loss_db(0.02) == pytest.approx(3.0)
        assert glass.detuning_loss_db(0.0) == 0.0
