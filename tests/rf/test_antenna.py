"""Tests for antenna patterns and polarization coupling."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.rf.antenna import (
    CIRCULAR_TO_LINEAR_LOSS_DB,
    NULL_FLOOR_DB,
    DipoleAntenna,
    PatchAntenna,
    polarization_loss_db,
)
from repro.rf.geometry import Rotation, Vec3

angles = st.floats(min_value=0.01, max_value=math.pi - 0.01)


class TestPatchAntenna:
    def test_boresight_gain(self):
        patch = PatchAntenna(boresight_gain_dbi=6.0)
        assert patch.gain_dbi(Vec3.unit_z(), Vec3.unit_z()) == pytest.approx(6.0)

    def test_gain_drops_off_boresight(self):
        patch = PatchAntenna()
        on = patch.gain_dbi(Vec3.unit_z(), Vec3.unit_z())
        off = patch.gain_dbi(Vec3(1, 0, 1).normalized(), Vec3.unit_z())
        assert off < on

    def test_45_degree_rolloff(self):
        patch = PatchAntenna(boresight_gain_dbi=6.0, rolloff_exponent=2.0)
        gain = patch.gain_dbi(Vec3(1, 0, 1).normalized(), Vec3.unit_z())
        # cos^2(45 deg) = 0.5 -> -3 dB.
        assert gain == pytest.approx(3.0, abs=0.05)

    def test_behind_antenna_gets_floor(self):
        patch = PatchAntenna(boresight_gain_dbi=6.0)
        gain = patch.gain_dbi(-Vec3.unit_z(), Vec3.unit_z())
        assert gain == pytest.approx(6.0 + NULL_FLOOR_DB)

    def test_90_degrees_gets_floor(self):
        patch = PatchAntenna(boresight_gain_dbi=6.0)
        gain = patch.gain_dbi(Vec3.unit_x(), Vec3.unit_z())
        assert gain == pytest.approx(6.0 + NULL_FLOOR_DB)

    @given(angles)
    def test_gain_monotone_in_angle(self, theta):
        patch = PatchAntenna()
        direction = Vec3(math.sin(theta), 0.0, math.cos(theta))
        closer = Vec3(math.sin(theta * 0.9), 0.0, math.cos(theta * 0.9))
        assert patch.gain_dbi(closer, Vec3.unit_z()) >= patch.gain_dbi(
            direction, Vec3.unit_z()
        ) - 1e-9


class TestDipoleAntenna:
    def test_broadside_gain(self):
        dipole = DipoleAntenna()
        # Broadside to an x-axis dipole: any direction in the yz plane.
        assert dipole.gain_dbi(Vec3.unit_z(), Vec3.unit_x()) == pytest.approx(
            2.15, abs=0.01
        )

    def test_axial_null(self):
        dipole = DipoleAntenna()
        gain = dipole.gain_dbi(Vec3.unit_x(), Vec3.unit_x())
        assert gain == pytest.approx(2.15 + NULL_FLOOR_DB)

    def test_pattern_symmetric(self):
        dipole = DipoleAntenna()
        forward = dipole.gain_dbi(Vec3.unit_z(), Vec3.unit_x())
        backward = dipole.gain_dbi(-Vec3.unit_z(), Vec3.unit_x())
        assert forward == pytest.approx(backward)

    def test_45_degrees_below_broadside(self):
        dipole = DipoleAntenna()
        broadside = dipole.gain_dbi(Vec3.unit_z(), Vec3.unit_x())
        oblique = dipole.gain_dbi(Vec3(1, 0, 1).normalized(), Vec3.unit_x())
        assert oblique < broadside
        assert oblique > broadside + NULL_FLOOR_DB

    @given(angles)
    def test_gain_bounded(self, theta):
        dipole = DipoleAntenna()
        direction = Vec3(math.cos(theta), math.sin(theta), 0.0)
        gain = dipole.gain_dbi(direction, Vec3.unit_x())
        assert 2.15 + NULL_FLOOR_DB - 1e-9 <= gain <= 2.15 + 1e-9


class TestPolarizationLoss:
    def test_circular_reader_fixed_3db(self):
        loss = polarization_loss_db(
            reader_circular=True,
            tag_axis=Vec3.unit_x(),
            propagation_dir=Vec3.unit_z(),
        )
        assert loss == pytest.approx(CIRCULAR_TO_LINEAR_LOSS_DB)

    def test_circular_insensitive_to_tag_roll(self):
        # Any transverse tag orientation sees the same 3 dB.
        for angle in (0.0, 0.5, 1.0, 1.4):
            axis = Rotation.about_axis(Vec3.unit_z(), angle).apply(Vec3.unit_x())
            loss = polarization_loss_db(True, axis, Vec3.unit_z())
            assert loss == pytest.approx(CIRCULAR_TO_LINEAR_LOSS_DB)

    def test_linear_matched(self):
        loss = polarization_loss_db(
            reader_circular=False,
            tag_axis=Vec3.unit_x(),
            propagation_dir=Vec3.unit_z(),
            reader_pol_axis=Vec3.unit_x(),
        )
        assert loss == pytest.approx(0.0, abs=1e-6)

    def test_linear_crossed(self):
        loss = polarization_loss_db(
            reader_circular=False,
            tag_axis=Vec3.unit_y(),
            propagation_dir=Vec3.unit_z(),
            reader_pol_axis=Vec3.unit_x(),
        )
        assert loss > 20.0  # cross-polarized: floor-limited

    def test_linear_45_degrees(self):
        axis = Vec3(1, 1, 0).normalized()
        loss = polarization_loss_db(
            reader_circular=False,
            tag_axis=axis,
            propagation_dir=Vec3.unit_z(),
            reader_pol_axis=Vec3.unit_x(),
        )
        assert loss == pytest.approx(3.01, abs=0.05)

    def test_axial_tag_floor(self):
        # Dipole pointing straight down the propagation path: no
        # transverse component at all.
        loss = polarization_loss_db(
            reader_circular=True,
            tag_axis=Vec3.unit_z(),
            propagation_dir=Vec3.unit_z(),
        )
        assert loss >= -NULL_FLOOR_DB - 1e-9
