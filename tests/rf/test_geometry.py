"""Unit and property tests for vectors, rotations, poses, occlusion."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.rf.geometry import (
    Pose,
    Rotation,
    Vec3,
    centroid,
    pairwise_distances,
    segment_intersects_sphere,
    segment_sphere_chord_length,
)

finite = st.floats(min_value=-100.0, max_value=100.0, allow_nan=False)
vectors = st.builds(Vec3, finite, finite, finite)
nonzero_vectors = vectors.filter(lambda v: v.norm() > 1e-3)
angles = st.floats(min_value=-math.pi, max_value=math.pi)


class TestVec3:
    def test_add_sub(self):
        a = Vec3(1, 2, 3)
        b = Vec3(4, 5, 6)
        assert (a + b).is_close(Vec3(5, 7, 9))
        assert (b - a).is_close(Vec3(3, 3, 3))

    def test_scalar_mul_div(self):
        v = Vec3(2, -4, 6)
        assert (v * 0.5).is_close(Vec3(1, -2, 3))
        assert (v / 2).is_close(Vec3(1, -2, 3))
        assert (0.5 * v).is_close(Vec3(1, -2, 3))

    def test_negation(self):
        assert (-Vec3(1, -2, 3)).is_close(Vec3(-1, 2, -3))

    def test_dot_orthogonal(self):
        assert Vec3.unit_x().dot(Vec3.unit_y()) == 0.0

    def test_cross_right_handed(self):
        assert Vec3.unit_x().cross(Vec3.unit_y()).is_close(Vec3.unit_z())

    def test_norm(self):
        assert Vec3(3, 4, 0).norm() == pytest.approx(5.0)

    def test_normalized(self):
        n = Vec3(0, 0, 7).normalized()
        assert n.is_close(Vec3.unit_z())

    def test_normalize_zero_raises(self):
        with pytest.raises(ValueError):
            Vec3.zero().normalized()

    def test_distance(self):
        assert Vec3(0, 0, 0).distance_to(Vec3(1, 2, 2)) == pytest.approx(3.0)

    def test_angle_to_perpendicular(self):
        assert Vec3.unit_x().angle_to(Vec3.unit_y()) == pytest.approx(
            math.pi / 2
        )

    def test_angle_to_parallel(self):
        assert Vec3.unit_x().angle_to(Vec3(5, 0, 0)) == pytest.approx(0.0)

    def test_angle_to_zero_raises(self):
        with pytest.raises(ValueError):
            Vec3.unit_x().angle_to(Vec3.zero())

    def test_iteration(self):
        assert list(Vec3(1, 2, 3)) == [1, 2, 3]

    @given(nonzero_vectors)
    def test_normalized_has_unit_norm(self, v):
        assert v.normalized().norm() == pytest.approx(1.0, abs=1e-9)

    @given(vectors, vectors)
    def test_triangle_inequality(self, a, b):
        assert (a + b).norm() <= a.norm() + b.norm() + 1e-9

    @given(nonzero_vectors, nonzero_vectors)
    def test_cross_orthogonal_to_inputs(self, a, b):
        c = a.cross(b)
        if c.norm() > 1e-6:
            assert abs(c.dot(a)) < 1e-6 * a.norm() * c.norm() + 1e-9
            assert abs(c.dot(b)) < 1e-6 * b.norm() * c.norm() + 1e-9


class TestRotation:
    def test_identity_fixes_vectors(self):
        v = Vec3(1, 2, 3)
        assert Rotation.identity().apply(v).is_close(v)

    def test_quarter_turn_about_y(self):
        r = Rotation.about_axis(Vec3.unit_y(), math.pi / 2)
        assert r.apply(Vec3.unit_x()).is_close(Vec3(0, 0, -1), tol=1e-9)

    def test_half_turn_about_z(self):
        r = Rotation.about_axis(Vec3.unit_z(), math.pi)
        assert r.apply(Vec3(1, 1, 0)).is_close(Vec3(-1, -1, 0), tol=1e-9)

    def test_inverse_undoes(self):
        r = Rotation.from_euler(0.3, -0.7, 1.1)
        v = Vec3(1, 2, 3)
        assert r.inverse().apply(r.apply(v)).is_close(v, tol=1e-9)

    def test_compose_order(self):
        # compose(other) applies other first.
        ry = Rotation.about_axis(Vec3.unit_y(), math.pi / 2)
        rz = Rotation.about_axis(Vec3.unit_z(), math.pi / 2)
        combined = ry.compose(rz)
        # rz sends x -> y; ry fixes y.
        assert combined.apply(Vec3.unit_x()).is_close(Vec3.unit_y(), tol=1e-9)

    @given(nonzero_vectors, angles, nonzero_vectors)
    def test_rotation_preserves_norm(self, axis, angle, v):
        r = Rotation.about_axis(axis, angle)
        assert r.apply(v).norm() == pytest.approx(v.norm(), rel=1e-6)

    @given(nonzero_vectors, angles)
    def test_rotation_fixes_axis(self, axis, angle):
        r = Rotation.about_axis(axis, angle)
        u = axis.normalized()
        assert r.apply(u).is_close(u, tol=1e-6)


class TestPose:
    def test_transform_point_translates(self):
        pose = Pose.at(Vec3(10, 0, 0))
        assert pose.transform_point(Vec3(1, 2, 3)).is_close(Vec3(11, 2, 3))

    def test_transform_direction_ignores_translation(self):
        pose = Pose.at(Vec3(10, 0, 0))
        assert pose.transform_direction(Vec3.unit_z()).is_close(Vec3.unit_z())

    def test_translated(self):
        pose = Pose.at(Vec3(1, 1, 1)).translated(Vec3(0, 0, 5))
        assert pose.position.is_close(Vec3(1, 1, 6))

    def test_rotated_pose_transforms(self):
        rot = Rotation.about_axis(Vec3.unit_y(), math.pi / 2)
        pose = Pose(Vec3(5, 0, 0), rot)
        # Local +x maps to world -z, then translate.
        assert pose.transform_point(Vec3.unit_x()).is_close(
            Vec3(5, 0, -1), tol=1e-9
        )


class TestOcclusion:
    def test_segment_through_centre_intersects(self):
        assert segment_intersects_sphere(
            Vec3(-2, 0, 0), Vec3(2, 0, 0), Vec3.zero(), 1.0
        )

    def test_segment_missing_sphere(self):
        assert not segment_intersects_sphere(
            Vec3(-2, 5, 0), Vec3(2, 5, 0), Vec3.zero(), 1.0
        )

    def test_segment_ending_before_sphere(self):
        assert not segment_intersects_sphere(
            Vec3(-5, 0, 0), Vec3(-3, 0, 0), Vec3.zero(), 1.0
        )

    def test_degenerate_segment_inside(self):
        assert segment_intersects_sphere(
            Vec3(0.1, 0, 0), Vec3(0.1, 0, 0), Vec3.zero(), 1.0
        )

    def test_chord_through_centre_is_diameter(self):
        chord = segment_sphere_chord_length(
            Vec3(-5, 0, 0), Vec3(5, 0, 0), Vec3.zero(), 1.5
        )
        assert chord == pytest.approx(3.0)

    def test_chord_zero_when_missing(self):
        chord = segment_sphere_chord_length(
            Vec3(-5, 3, 0), Vec3(5, 3, 0), Vec3.zero(), 1.0
        )
        assert chord == 0.0

    def test_chord_clipped_by_segment_end(self):
        # Segment stops at the sphere centre: half the diameter.
        chord = segment_sphere_chord_length(
            Vec3(-5, 0, 0), Vec3(0, 0, 0), Vec3.zero(), 1.0
        )
        assert chord == pytest.approx(1.0)

    def test_grazing_chord_small(self):
        chord = segment_sphere_chord_length(
            Vec3(-5, 0.99, 0), Vec3(5, 0.99, 0), Vec3.zero(), 1.0
        )
        assert 0.0 < chord < 0.6

    @given(
        st.floats(min_value=-3.0, max_value=3.0),
        st.floats(min_value=0.1, max_value=2.0),
    )
    def test_chord_never_exceeds_diameter(self, offset, radius):
        chord = segment_sphere_chord_length(
            Vec3(-10, offset, 0), Vec3(10, offset, 0), Vec3.zero(), radius
        )
        assert 0.0 <= chord <= 2.0 * radius + 1e-9

    @given(
        st.floats(min_value=-3.0, max_value=3.0),
        st.floats(min_value=0.1, max_value=2.0),
    )
    def test_chord_consistent_with_intersection(self, offset, radius):
        start, end = Vec3(-10, offset, 0), Vec3(10, offset, 0)
        chord = segment_sphere_chord_length(start, end, Vec3.zero(), radius)
        hits = segment_intersects_sphere(start, end, Vec3.zero(), radius)
        if chord > 1e-9:
            assert hits


class TestHelpers:
    def test_centroid(self):
        c = centroid([Vec3(0, 0, 0), Vec3(2, 0, 0), Vec3(1, 3, 0)])
        assert c.is_close(Vec3(1, 1, 0))

    def test_centroid_empty_raises(self):
        with pytest.raises(ValueError):
            centroid([])

    def test_pairwise_distances_count(self):
        pts = [Vec3(0, 0, 0), Vec3(1, 0, 0), Vec3(0, 1, 0), Vec3(0, 0, 1)]
        assert len(list(pairwise_distances(pts))) == 6

    def test_pairwise_distances_values(self):
        pts = [Vec3(0, 0, 0), Vec3(3, 4, 0)]
        assert list(pairwise_distances(pts)) == [pytest.approx(5.0)]
