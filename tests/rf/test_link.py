"""Tests for the forward/reverse backscatter link budget."""

import pytest
from hypothesis import given, strategies as st

from repro.rf.geometry import Vec3
from repro.rf.link import (
    LinkEnvironment,
    LinkGeometry,
    evaluate_link,
    free_space_read_range_m,
)
from repro.rf.propagation import ChannelModel, PathLossModel, ShadowingModel


def _clean_env(**overrides) -> LinkEnvironment:
    """Deterministic environment: free space, no shadowing ripple."""
    defaults = dict(
        channel=ChannelModel(
            path_loss=PathLossModel(use_two_ray=False),
            shadowing=ShadowingModel(sigma_db=0.0),
        ),
    )
    defaults.update(overrides)
    return LinkEnvironment(**defaults)


def _geometry(distance_m: float) -> LinkGeometry:
    return LinkGeometry(
        antenna_position=Vec3(0, 1, 0),
        antenna_boresight=Vec3.unit_z(),
        tag_position=Vec3(0, 1, distance_m),
        tag_axis=Vec3.unit_x(),
    )


class TestGeometry:
    def test_distance(self):
        assert _geometry(3.0).distance_m == pytest.approx(3.0)

    def test_direction_unit(self):
        assert _geometry(2.0).direction.is_close(Vec3.unit_z())


class TestForwardLink:
    def test_close_tag_activates(self):
        result = evaluate_link(_clean_env(), 30.0, _geometry(1.0))
        assert result.activated
        assert result.forward_margin_db > 5.0

    def test_distant_tag_does_not_activate(self):
        result = evaluate_link(_clean_env(), 30.0, _geometry(25.0))
        assert not result.activated

    def test_forward_power_decreases_with_distance(self):
        env = _clean_env()
        p1 = evaluate_link(env, 30.0, _geometry(1.0)).forward_power_dbm
        p2 = evaluate_link(env, 30.0, _geometry(2.0)).forward_power_dbm
        assert p2 == pytest.approx(p1 - 6.02, abs=0.1)

    def test_obstruction_reduces_power(self):
        env = _clean_env()
        clear = evaluate_link(env, 30.0, _geometry(2.0))
        blocked = evaluate_link(
            env, 30.0, _geometry(2.0), obstruction_loss_db=10.0
        )
        assert blocked.forward_power_dbm == pytest.approx(
            clear.forward_power_dbm - 10.0
        )

    def test_detuning_and_coupling_stack(self):
        env = _clean_env()
        clear = evaluate_link(env, 30.0, _geometry(2.0))
        hit = evaluate_link(
            env,
            30.0,
            _geometry(2.0),
            tag_detuning_db=5.0,
            coupling_penalty_db=7.0,
        )
        assert hit.forward_power_dbm == pytest.approx(
            clear.forward_power_dbm - 12.0
        )

    def test_shadowing_applies(self):
        env = _clean_env()
        clear = evaluate_link(env, 30.0, _geometry(2.0))
        shadowed = evaluate_link(env, 30.0, _geometry(2.0), shadowing_db=-6.0)
        assert shadowed.forward_power_dbm == pytest.approx(
            clear.forward_power_dbm - 6.0
        )

    def test_fading_gain_applies(self):
        env = _clean_env()
        base = evaluate_link(env, 30.0, _geometry(2.0), fading_power_gain=1.0)
        faded = evaluate_link(env, 30.0, _geometry(2.0), fading_power_gain=0.25)
        assert faded.forward_power_dbm == pytest.approx(
            base.forward_power_dbm - 6.02, abs=0.05
        )

    def test_negative_fading_rejected(self):
        with pytest.raises(ValueError):
            evaluate_link(
                _clean_env(), 30.0, _geometry(2.0), fading_power_gain=-0.1
            )

    def test_axial_tag_orientation_kills_link(self):
        # Dipole pointing at the antenna: pattern null (paper cases 1/5).
        env = _clean_env()
        geometry = LinkGeometry(
            antenna_position=Vec3(0, 1, 0),
            antenna_boresight=Vec3.unit_z(),
            tag_position=Vec3(0, 1, 1.0),
            tag_axis=Vec3.unit_z(),
        )
        facing = evaluate_link(env, 30.0, _geometry(1.0))
        axial = evaluate_link(env, 30.0, geometry)
        assert axial.forward_power_dbm < facing.forward_power_dbm - 20.0


class TestReverseLink:
    def test_reverse_below_forward(self):
        result = evaluate_link(_clean_env(), 30.0, _geometry(1.0))
        assert result.reverse_power_dbm < result.forward_power_dbm

    def test_readable_requires_both(self):
        result = evaluate_link(_clean_env(), 30.0, _geometry(1.0))
        assert result.readable == (result.activated and result.decodable)

    def test_interference_desensitizes(self):
        env = _clean_env()
        quiet = evaluate_link(env, 30.0, _geometry(2.0))
        jammed = evaluate_link(
            env, 30.0, _geometry(2.0), interference_dbm=-30.0
        )
        assert quiet.decodable
        assert not jammed.decodable
        assert jammed.reverse_margin_db < quiet.reverse_margin_db

    def test_weak_interference_harmless(self):
        env = _clean_env()
        quiet = evaluate_link(env, 30.0, _geometry(2.0))
        weak = evaluate_link(
            env, 30.0, _geometry(2.0), interference_dbm=-120.0
        )
        assert weak.reverse_margin_db == pytest.approx(quiet.reverse_margin_db)

    def test_forward_limited_for_passive_tags(self):
        """With 2006-era sensitivities the forward link dies first —
        the defining property of passive UHF range limits."""
        env = _clean_env()
        for d in (1.0, 3.0, 5.0, 8.0, 12.0):
            result = evaluate_link(env, 30.0, _geometry(d))
            if not result.activated:
                # By the time the tag cannot wake, the reverse link
                # margin test is moot; before that, reverse must hold.
                break
            assert result.decodable, f"reverse died before forward at {d} m"


class TestReadRange:
    def test_paper_era_range_is_a_few_metres(self):
        env = _clean_env()
        rng = free_space_read_range_m(env, 30.0, step_m=0.05)
        assert 3.0 <= rng <= 10.0

    def test_more_power_more_range(self):
        env = _clean_env()
        low = free_space_read_range_m(env, 24.0, step_m=0.1)
        high = free_space_read_range_m(env, 30.0, step_m=0.1)
        assert high > low

    def test_better_chip_more_range(self):
        base = free_space_read_range_m(_clean_env(), 30.0, step_m=0.1)
        modern = free_space_read_range_m(
            _clean_env(tag_sensitivity_dbm=-18.0), 30.0, step_m=0.1
        )
        assert modern > base

    def test_invalid_step_rejected(self):
        with pytest.raises(ValueError):
            free_space_read_range_m(_clean_env(), 30.0, step_m=0.0)

    @given(st.floats(min_value=20.0, max_value=33.0))
    def test_range_monotone_in_power(self, power):
        env = _clean_env()
        assert free_space_read_range_m(
            env, power, step_m=0.25
        ) <= free_space_read_range_m(env, power + 1.0, step_m=0.25)


class TestForwardWaterfall:
    def test_sums_to_compose_link_forward_power(self):
        """The waterfall is the itemised form of compose_link's forward
        budget: summing its contributions reproduces the power exactly."""
        from repro.rf.link import LinkTerms, compose_link, forward_waterfall

        env = _clean_env()
        terms = LinkTerms(
            reader_gain_dbi=6.0,
            tag_gain_dbi=1.5,
            polarization_loss_db=3.0,
            path_gain_db=-38.25,
        )
        result = compose_link(
            env, 30.0, terms,
            obstruction_loss_db=4.0, tag_detuning_db=0.5,
            coupling_penalty_db=1.25, shadowing_db=-2.0,
        )
        waterfall = forward_waterfall(
            tx_power_dbm=30.0,
            cable_loss_db=env.cable_loss_db,
            reader_gain_dbi=terms.reader_gain_dbi,
            path_gain_db=terms.path_gain_db,
            shadowing_db=-2.0,
            tag_gain_dbi=terms.tag_gain_dbi,
            polarization_loss_db=terms.polarization_loss_db,
            obstruction_db=4.0,
            detuning_db=0.5,
            coupling_db=1.25,
        )
        total = sum(value for _, value in waterfall)
        assert total == pytest.approx(result.forward_power_dbm, abs=1e-9)

    def test_losses_enter_negated(self):
        from repro.rf.link import forward_waterfall

        waterfall = dict(
            forward_waterfall(
                tx_power_dbm=30.0, cable_loss_db=1.0, reader_gain_dbi=6.0,
                path_gain_db=-40.0, shadowing_db=0.0, tag_gain_dbi=1.0,
                polarization_loss_db=3.0, obstruction_db=2.0,
                detuning_db=0.5, coupling_db=0.25, fault_loss_db=4.0,
                fading_db=1.5,
            )
        )
        assert waterfall["cable loss"] == -1.0
        assert waterfall["port fault loss"] == -4.0
        assert waterfall["obstruction loss"] == -2.0
        assert waterfall["small-scale fading"] == 1.5
        assert len(waterfall) == 12
