"""Regression tests: the fast read-range search vs the linear scan.

The envelope-bisect search must return *exactly* what the exhaustive
grid scan returns — same grid, same answer — across two-ray ripple,
clutter exponents, power levels and step sizes.
"""

import math

import pytest

from repro.rf.link import (
    LinkEnvironment,
    _linear_scan_read_range_m,
    free_space_read_range_m,
)
from repro.rf.propagation import ChannelModel, PathLossModel


def _env(use_two_ray: bool, exponent: float = 2.0) -> LinkEnvironment:
    return LinkEnvironment(
        channel=ChannelModel(
            path_loss=PathLossModel(
                use_two_ray=use_two_ray, path_loss_exponent=exponent
            )
        )
    )


class TestSearchEqualsLinearScan:
    @pytest.mark.parametrize("use_two_ray", [False, True])
    @pytest.mark.parametrize("exponent", [2.0, 2.4, 2.8])
    @pytest.mark.parametrize("tx_power_dbm", [20.0, 27.0, 30.0, 33.0])
    def test_same_answer_to_step_resolution(
        self, use_two_ray, exponent, tx_power_dbm
    ):
        env = _env(use_two_ray, exponent)
        fast = free_space_read_range_m(env, tx_power_dbm, step_m=0.05)
        slow = _linear_scan_read_range_m(env, tx_power_dbm, step_m=0.05)
        assert fast == slow

    @pytest.mark.parametrize("step_m", [0.01, 0.02, 0.1])
    def test_step_sizes(self, step_m):
        env = _env(True)
        assert free_space_read_range_m(
            env, 30.0, step_m=step_m
        ) == _linear_scan_read_range_m(env, 30.0, step_m=step_m)

    def test_fine_default_step_two_ray(self):
        # The exact configuration the calibration pins exercise.
        env = _env(True)
        fast = free_space_read_range_m(env, 30.0, step_m=0.01)
        slow = _linear_scan_read_range_m(env, 30.0, step_m=0.01)
        assert fast == slow
        assert 2.0 < fast < 15.0

    def test_unreachable_power_returns_zero(self):
        env = _env(True)
        assert free_space_read_range_m(env, -40.0) == 0.0
        assert _linear_scan_read_range_m(env, -40.0, step_m=0.1) == 0.0

    def test_range_capped_by_max_range(self):
        env = _env(False)
        fast = free_space_read_range_m(env, 36.0, step_m=0.5, max_range_m=3.0)
        slow = _linear_scan_read_range_m(env, 36.0, step_m=0.5, max_range_m=3.0)
        assert fast == slow
        assert fast <= 3.0

    def test_invalid_step_rejected(self):
        env = _env(False)
        with pytest.raises(ValueError):
            free_space_read_range_m(env, 30.0, step_m=0.0)
        with pytest.raises(ValueError):
            _linear_scan_read_range_m(env, 30.0, step_m=-0.1)


class TestEnvelopeBracketNeverCloses:
    """The envelope may admit a bracket the exact link never honours:
    the search must then return 0.0, never the stale bracket."""

    def test_zero_when_nothing_readable_inside_bracket(self, monkeypatch):
        import repro.rf.link as link_mod

        env = _env(True)
        # Force the regression shape directly: the envelope closes at
        # the minimum grid distance, but no exact link closes anywhere.
        monkeypatch.setattr(
            link_mod, "_forward_closes_upper_bound", lambda *a: True
        )
        monkeypatch.setattr(link_mod, "_readable_at", lambda *a: False)
        assert link_mod.free_space_read_range_m(env, 30.0, step_m=0.1) == 0.0

    def test_matches_oracle_across_threshold_powers(self):
        # Sweep conducted power through the regime where the envelope
        # still brackets but the exact link stops closing: the search
        # must track the oracle to exactly 0.0, with no stale bound.
        env = _env(True)
        saw_zero = False
        for decipower in range(-150, 20, 5):
            power = decipower / 10.0
            fast = free_space_read_range_m(env, power, step_m=0.1)
            slow = _linear_scan_read_range_m(env, power, step_m=0.1)
            assert fast == slow
            if fast == 0.0:
                saw_zero = True
        assert saw_zero

    def test_tiny_max_range_never_closing(self):
        env = _env(True)
        fast = free_space_read_range_m(
            env, -20.0, step_m=0.05, max_range_m=0.2
        )
        slow = _linear_scan_read_range_m(
            env, -20.0, step_m=0.05, max_range_m=0.2
        )
        assert fast == slow == 0.0


class TestEnvelopeBound:
    @pytest.mark.parametrize("exponent", [2.0, 2.6])
    def test_upper_bound_dominates_exact_gain(self, exponent):
        model = PathLossModel(use_two_ray=True, path_loss_exponent=exponent)
        for k in range(1, 300):
            d = 0.05 * k
            assert model.path_gain_upper_bound_db(d) >= model.path_gain_db(d)

    def test_upper_bound_monotone_decreasing(self):
        model = PathLossModel(use_two_ray=True)
        gains = [model.path_gain_upper_bound_db(0.2 + 0.05 * k) for k in range(200)]
        assert all(a >= b for a, b in zip(gains, gains[1:]))

    def test_bound_equals_exact_without_two_ray(self):
        model = PathLossModel(use_two_ray=False, path_loss_exponent=2.3)
        for d in (0.5, 1.0, 3.0, 7.5):
            assert math.isclose(
                model.path_gain_upper_bound_db(d),
                model.path_gain_db(d),
                rel_tol=0.0,
                abs_tol=0.0,
            )
