#!/usr/bin/env python3
"""Site survey: map a portal's read zone and certify a deployment.

Scenario: before going live, an integrator surveys the dock door —
where does the portal actually read? is the staging area safely outside
the footprint? — and then runs an acceptance test: pallets through the
gate until the portal statistically proves (or disproves) the 98% SLA,
using a sequential test that stops as early as the evidence allows.

Run:
    python examples/site_survey.py     (takes a minute or two)
"""

from repro.analysis.figures import heatmap
from repro.core.calibration import PaperSetup
from repro.core.certification import SequentialCertifier, Verdict
from repro.core.reliability import tracking_success
from repro.sim.rng import SeedSequence
from repro.world.objects import BoxFace
from repro.world.portal import dual_antenna_portal, single_antenna_portal
from repro.world.read_zone import map_read_zone
from repro.world.scenarios.object_tracking import build_box_cart
from repro.world.simulation import PortalPassSimulator

SLA = 0.98


def survey_read_zone() -> None:
    print("Step 1 — read-zone survey (single antenna):")
    zone = map_read_zone(
        single_antenna_portal(),
        x_range=(-3.0, 3.0),
        z_range=(0.5, 8.0),
        steps=8,
        trials=5,
    )
    print(
        heatmap(
            "P(read) at 1 m height",
            zone.probabilities,
            row_labels=[f"{z:.1f}m" for z in zone.z_values],
            col_labels=[f"{x:+.0f}m" for x in zone.x_values],
        )
    )
    print(
        f"  -> reliable to ~{zone.max_reliable_range_m():.1f} m; keep "
        "staging areas beyond that (or drop reader power).\n"
    )


def certify_portal() -> None:
    print(f"Step 2 — acceptance test against a {SLA:.0%} tracking SLA")
    print("  (two tags per box, two antennas — the paper's best scheme)")
    setup = PaperSetup()
    simulator = PortalPassSimulator(
        portal=dual_antenna_portal(), env=setup.env, params=setup.params
    )
    carrier, boxes = build_box_cart([BoxFace.FRONT, BoxFace.SIDE_CLOSER])
    box_epcs = [[t.epc for t in b.all_tags()] for b in boxes]
    certifier = SequentialCertifier(
        p_good=SLA, p_bad=0.90, alpha=0.05, beta=0.05
    )
    seeds = SeedSequence(20260707)
    passes = 0
    while certifier.verdict() is Verdict.CONTINUE and passes < 60:
        result = simulator.run_pass([carrier], seeds, passes)
        for epcs in box_epcs:
            verdict = certifier.observe(
                tracking_success(result.read_epcs, epcs)
            )
            if verdict is not Verdict.CONTINUE:
                break
        passes += 1
    print(f"  pallet passes run   : {passes}")
    print(f"  object observations : {certifier.trials}")
    print(f"  observed reliability: {certifier.observed_rate:.1%}")
    print(f"  verdict             : {certifier.verdict().value.upper()}")
    if certifier.verdict() is Verdict.ACCEPT:
        print(
            "  -> the portal is certified without a fixed 500-sample "
            "campaign;\n     the sequential test stopped as soon as the "
            "evidence sufficed."
        )


def main() -> None:
    survey_read_zone()
    certify_portal()


if __name__ == "__main__":
    main()
