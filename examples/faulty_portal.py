#!/usr/bin/env python3
"""A portal that survives its reader dying mid-pass.

Scenario: the dock-door reader crashes 50 ms after a subject walks in —
before the application's first poll, so the crash also wipes every read
the reader was buffering. An unsupervised single-reader portal silently
loses the pass. This example runs the same pass through the supervised
stack twice:

1. one supervised reader — the loss still happens, but it is now
   *observable* (health transitions to down, the tracking verdict is
   "unobserved" instead of a confident "absent");
2. a two-reader failover group on the hot-standby portal — the standby's
   independent Gen 2 session covers the outage, the RF mux hands it the
   dead reader's antenna, and tracking succeeds.

Run:
    python examples/faulty_portal.py          (a few seconds)
"""

from repro.analysis.tables import Table, percent
from repro.core.calibration import PaperSetup
from repro.reader.backend import ObjectRegistry, TrackedObject
from repro.sim.rng import SeedSequence
from repro.world.portal import failover_portal, single_antenna_portal
from repro.world.scenarios.fault_injection import (
    primary_crash_plan,
    run_fault_injection_experiment,
    run_supervised_pass,
)
from repro.world.scenarios.human_tracking import build_walk
from repro.world.simulation import PortalPassSimulator

SEED = 1234
REPETITIONS = 8


def one_pass(setup, portal, label):
    """Run a single crashed pass and narrate what the supervisor saw."""
    simulator = PortalPassSimulator(
        portal=portal, env=setup.env, params=setup.params
    )
    carrier, humans = build_walk(1, ["front"])
    registry = ObjectRegistry()
    registry.register(
        TrackedObject("subject-0", frozenset({humans[0].tags[0].epc}))
    )
    plan = primary_crash_plan(carrier.motion.duration_s)
    outcome = run_supervised_pass(
        simulator,
        portal,
        [carrier],
        registry,
        "subject-0",
        SeedSequence(SEED),
        0,
        plan,
    )
    print(f"\n{label}:")
    for tr in outcome.transitions:
        print(
            f"  t={tr.time:5.2f}s  {tr.reader_id}: "
            f"{tr.old.value} -> {tr.new.value}  ({tr.reason})"
        )
    for promo in outcome.promotions:
        print(
            f"  t={promo.time:5.2f}s  FAILOVER "
            f"{promo.from_reader} -> {promo.to_reader}"
        )
    print(
        f"  verdict: {outcome.verdict!r}  detected={outcome.detected}  "
        f"coverage={outcome.coverage:.2f}"
    )
    return outcome


def main() -> None:
    setup = PaperSetup()
    print(
        "The primary reader crashes 50 ms into the pass and reboots "
        "only after\nthe subject is gone. Watch the supervisor notice."
    )
    single = one_pass(setup, single_antenna_portal(), "1 supervised reader")
    pair = one_pass(setup, failover_portal(), "2-reader failover group")
    assert single.verdict == "unobserved"  # blind, and says so
    assert pair.detected  # the standby covered the outage

    print(f"\nStatistics over {REPETITIONS} passes per cell:")
    result = run_fault_injection_experiment(
        repetitions=REPETITIONS, seed=SEED
    )
    table = Table(
        "Tracking reliability, fault-free vs primary crash",
        headers=("Configuration", "Reliability", "Failovers"),
    )
    for cell in (
        result.single_fault_free,
        result.single_crash,
        result.failover_fault_free,
        result.failover_crash,
    ):
        table.add_row(
            cell.label,
            percent(cell.estimate.rate),
            f"{cell.promoted_trials}/{len(cell.outcomes)}",
        )
    print(table.render())
    print(
        "The failover pair holds its fault-free baseline "
        f"(gap {result.failover_recovery_gap:+.2f}); the lone reader "
        f"loses {result.single_collapse:.0%} of its reliability."
    )


if __name__ == "__main__":
    main()
