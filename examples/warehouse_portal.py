#!/usr/bin/env python3
"""Warehouse dock-door portal: plan and validate a redundancy scheme.

Scenario (the paper's Section 1 motivation): a distribution centre must
track cases of networking gear through a dock door with a contractual
tracking reliability of 99.5%. Tags cost cents; antennas cost hundreds
of dollars. How much redundancy does the door need, and does the plan
hold up in a physical simulation?

Pipeline:
1. measure single-opportunity reliabilities per tag placement with the
   calibrated simulator (a cheap stand-in for a site survey);
2. feed them to the deployment planner, which inverts the paper's
   R_C model under a cost model;
3. validate the chosen configuration end to end, including the back-end
   tracking decision.

Run:
    python examples/warehouse_portal.py       (takes a minute or two)
"""

from repro.core.calibration import PaperSetup
from repro.core.experiment import run_trials
from repro.core.planner import CostModel, DeploymentPlanner
from repro.core.reliability import tracking_success
from repro.world.objects import BoxFace
from repro.world.portal import dual_antenna_portal, single_antenna_portal
from repro.world.scenarios.object_tracking import build_box_cart
from repro.world.simulation import PortalPassSimulator

SURVEY_TRIALS = 6
VALIDATION_TRIALS = 10
TARGET = 0.995

#: Placements the site can physically apply (no bottom: boxes slide on
#: conveyors; avoid top per the paper's worst-case finding).
CANDIDATE_FACES = (
    BoxFace.FRONT,
    BoxFace.SIDE_CLOSER,
    BoxFace.SIDE_FARTHER,
)


def survey_single_opportunities(setup: PaperSetup) -> dict:
    """Measure per-placement read reliability with one antenna."""
    simulator = PortalPassSimulator(
        portal=single_antenna_portal(), env=setup.env, params=setup.params
    )
    rates = {}
    for face in CANDIDATE_FACES:
        carrier, _ = build_box_cart([face])
        epcs = [t.epc for t in carrier.tags]
        trials = run_trials(
            f"survey:{face.value}",
            lambda seeds, i: simulator.run_pass([carrier], seeds, i),
            SURVEY_TRIALS,
        )
        reads = sum(o.tags_read(epcs) for o in trials.outcomes)
        rates[face.value] = reads / (len(epcs) * SURVEY_TRIALS)
        print(f"  survey {face.value:13s}: {rates[face.value]:6.1%}")
    return rates


def main() -> None:
    setup = PaperSetup()
    print("Step 1 — site survey (single antenna, one tag per placement):")
    rates = survey_single_opportunities(setup)

    print(f"\nStep 2 — plan for {TARGET:.1%} tracking reliability:")
    planner = DeploymentPlanner(
        rates,
        cost_model=CostModel(
            cost_per_tag=0.05,
            cost_per_antenna=300.0,
            objects_per_deployment=500_000,
        ),
        antenna_efficiency=0.7,  # antennas share the cart's blocked view
    )
    plan = planner.plan(TARGET, max_antennas=2)
    print(f"  tags/object : {plan.tags_per_object} ({', '.join(plan.placements)})")
    print(f"  antennas    : {plan.antennas}")
    print(f"  predicted   : {plan.predicted_reliability:.2%}")
    print(f"  cost        : ${plan.cost:,.0f}")

    print("\nStep 3 — validate the plan in the physics simulator:")
    portal = (
        single_antenna_portal() if plan.antennas == 1 else dual_antenna_portal()
    )
    simulator = PortalPassSimulator(
        portal=portal, env=setup.env, params=setup.params
    )
    faces = [BoxFace(value) for value in plan.placements]
    carrier, boxes = build_box_cart(faces)
    box_epcs = [[t.epc for t in b.all_tags()] for b in boxes]
    trials = run_trials(
        "validation",
        lambda seeds, i: simulator.run_pass([carrier], seeds, i),
        VALIDATION_TRIALS,
    )
    tracked = 0
    total = 0
    for outcome in trials.outcomes:
        for epcs in box_epcs:
            total += 1
            tracked += tracking_success(outcome.read_epcs, epcs)
    measured = tracked / total
    print(f"  measured tracking reliability: {measured:.2%} "
          f"({tracked}/{total} object-passes)")
    verdict = "MEETS" if measured >= TARGET - 0.02 else "MISSES"
    print(f"  verdict: plan {verdict} the {TARGET:.1%} target "
          "(within simulation noise)")


if __name__ == "__main__":
    main()
