#!/usr/bin/env python3
"""Distribution centre: three portals, physical + software redundancy.

Scenario (the paper's supply-chain motivation): pallets of router boxes
move dock -> conveyor gate -> shipping door. Each checkpoint is an RFID
portal; every box carries a single front tag (so per-portal misses are
visible and the software layer has work to do); boxes on one pallet are
registered as an accompany group.

The pipeline stacks all three reliability layers this library models:

1. per-portal tracking (any tag read = box seen at that checkpoint);
2. site-level software correction (route + accompany constraints
   recover checkpoint misses);
3. and, by editing ``build_box_cart`` to two faces, physical tag-level
   redundancy on top.

Run:
    python examples/distribution_center.py   (takes ~a minute)
"""

from repro.core.calibration import PaperSetup
from repro.reader.backend import ObjectRegistry, TrackedObject
from repro.reader.site import Checkpoint, SiteTracker
from repro.sim.events import TagReadEvent
from repro.sim.rng import SeedSequence
from repro.world.objects import BoxFace
from repro.world.portal import single_antenna_portal
from repro.world.scenarios.object_tracking import build_box_cart
from repro.world.simulation import PortalPassSimulator

CHECKPOINTS = ("dock", "belt", "gate")


def simulate_checkpoint_pass(name, reader_id, carrier, trial):
    """One pallet pass at one checkpoint; reads re-labelled to its reader."""
    setup = PaperSetup()
    simulator = PortalPassSimulator(
        portal=single_antenna_portal(), env=setup.env, params=setup.params
    )
    result = simulator.run_pass(
        [carrier], SeedSequence(hash_free_seed(name)), trial
    )
    return [
        TagReadEvent(
            time=event.time + 1000.0 * CHECKPOINTS.index(name),
            epc=event.epc,
            reader_id=reader_id,
            antenna_id=event.antenna_id,
            rssi_dbm=event.rssi_dbm,
        )
        for event in result.trace
    ]


def hash_free_seed(name: str) -> int:
    """Stable per-checkpoint seed (no salted hash())."""
    return sum(ord(c) * (i + 1) for i, c in enumerate(name)) * 7919


def main() -> None:
    # One pallet: 12 boxes, one front tag each.
    carrier, boxes = build_box_cart([BoxFace.FRONT])
    registry = ObjectRegistry()
    for box in boxes:
        registry.register(
            TrackedObject(
                box.box_id, frozenset(t.epc for t in box.all_tags())
            )
        )
    site = SiteTracker(
        checkpoints=[
            Checkpoint("dock", (("reader-dock", "ant-0"),)),
            Checkpoint("belt", (("reader-belt", "ant-0"),)),
            Checkpoint("gate", (("reader-gate", "ant-0"),)),
        ],
        registry=registry,
        groups={"pallet-1": [box.box_id for box in boxes]},
    )

    print("Simulating the pallet through three portals...")
    for trial, name in enumerate(CHECKPOINTS):
        events = simulate_checkpoint_pass(
            name, f"reader-{name}", carrier, trial
        )
        landed = site.ingest(events)
        distinct = len({e.epc for e in events})
        print(
            f"  {name:5s}: {len(events):3d} reads, {distinct:2d}/12 tags, "
            f"{landed} sightings ingested"
        )

    raw, corrected, total = site.completion_report()
    print(f"\nJourney completeness over {total} boxes:")
    print(f"  raw (all 3 checkpoints read)     : {raw}/{total}")
    print(f"  after route+accompany correction : {corrected}/{total}")

    journeys = site.journeys()
    recovered = [
        j.object_id for j in journeys.values() if j.inferred
    ]
    if recovered:
        print(f"  software-recovered boxes         : {sorted(recovered)}")
    print(
        "\nThe stack in action: tag redundancy keeps per-portal misses "
        "rare,\nand the constraint layer absorbs the stragglers."
    )


if __name__ == "__main__":
    main()
