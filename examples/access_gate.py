#!/usr/bin/env python3
"""Badge-gate scenario: tracking people through a doorway.

Scenario (paper Section 3, "Human Tracking"): employees carry passive
RFID badges at waist level and walk through an instrumented doorway.
The facility wants room-level presence without badge-to-reader taps.

This example reproduces the paper's finding that a single hanging badge
is hopeless (~63%) and that two badges (front + back, as on a lanyard
with a second card) plus a second antenna make the gate dependable. It
then runs the full reader stack: buffered reads polled as XML,
middleware smoothing, and the back-end's person-level decisions.

Run:
    python examples/access_gate.py
"""

from repro.core.calibration import PaperSetup
from repro.core.experiment import run_trials
from repro.reader.backend import ObjectRegistry, TrackedObject, TrackingBackend
from repro.reader.middleware import MiddlewarePipeline
from repro.reader.wire import PolledInterface, parse_tag_list
from repro.world.humans import HumanTagPlacement
from repro.world.portal import dual_antenna_portal, single_antenna_portal
from repro.world.scenarios.human_tracking import build_walk
from repro.world.simulation import PortalPassSimulator

TRIALS = 15

CONFIGURATIONS = (
    ("1 badge, 1 antenna", 1, [HumanTagPlacement.FRONT]),
    (
        "2 badges, 1 antenna",
        1,
        [HumanTagPlacement.FRONT, HumanTagPlacement.BACK],
    ),
    (
        "2 badges, 2 antennas",
        2,
        [HumanTagPlacement.FRONT, HumanTagPlacement.BACK],
    ),
)


def measure(antennas: int, placements) -> float:
    """Person-tracking reliability for one gate configuration."""
    setup = PaperSetup()
    portal = single_antenna_portal() if antennas == 1 else dual_antenna_portal()
    simulator = PortalPassSimulator(
        portal=portal, env=setup.env, params=setup.params
    )
    carrier, humans = build_walk(1, placements)
    epcs = [t.epc for t in humans[0].tags]
    trials = run_trials(
        f"gate:{antennas}x{len(placements)}",
        lambda seeds, i: simulator.run_pass([carrier], seeds, i),
        TRIALS,
    )
    hits = sum(
        1 for r in trials.outcomes if set(epcs) & r.read_epcs
    )
    return hits / TRIALS


def demonstrate_full_stack() -> None:
    """One pass through the whole pipeline, reader to door decision."""
    setup = PaperSetup()
    simulator = PortalPassSimulator(
        portal=dual_antenna_portal(), env=setup.env, params=setup.params
    )
    carrier, humans = build_walk(
        1, [HumanTagPlacement.FRONT, HumanTagPlacement.BACK]
    )
    from repro.sim.rng import SeedSequence

    result = simulator.run_pass([carrier], SeedSequence(7), 0)

    # The reader buffers; the application polls XML (the paper's Java
    # harness over the AR400's HTTP interface).
    interface = PolledInterface(list(result.trace))
    raw_events = parse_tag_list(interface.poll(now=result.duration_s))

    # Middleware: dedup + presence smoothing.
    clean, presences = MiddlewarePipeline().process(raw_events)

    # Back-end: who walked through?
    registry = ObjectRegistry()
    registry.register(
        TrackedObject(
            humans[0].person_id,
            frozenset(t.epc for t in humans[0].tags),
            kind="person",
        )
    )
    opened = []
    backend = TrackingBackend(
        registry, on_detect=lambda d: opened.append(d.object_id)
    )
    backend.ingest(clean)
    decisions = backend.decide()

    print("\nFull-stack walkthrough (one pass):")
    print(f"  raw reads     : {len(raw_events)}")
    print(f"  after dedup   : {len(clean)}")
    print(f"  presences     : {len(presences)}")
    decision = decisions[humans[0].person_id]
    print(f"  detected      : {decision.detected}")
    if decision.detected:
        print(f"  first seen    : t = {decision.first_seen:.2f} s")
        print(f"  badges seen   : {len(decision.tags_seen)} of "
              f"{decision.total_tags}")
        print(f"  door action   : opened for {opened}")


def main() -> None:
    print("Badge gate reliability (one person, walking pass at 1 m/s):")
    for name, antennas, placements in CONFIGURATIONS:
        rate = measure(antennas, placements)
        print(f"  {name:22s}: {rate:6.1%}")
    demonstrate_full_stack()


if __name__ == "__main__":
    main()
