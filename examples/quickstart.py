#!/usr/bin/env python3
"""Quickstart: simulate a tagged box passing an RFID portal.

Builds the smallest end-to-end setup — one reader, one antenna, one
cardboard box with a metal router inside, one tag on the front face —
runs a few cart passes, and reports the measured read reliability next
to the paper's analytical redundancy model.

Run:
    python examples/quickstart.py
"""

from repro import PaperSetup, combined_reliability, single_antenna_portal
from repro.core.experiment import run_trials
from repro.protocol.epc import EpcFactory
from repro.world.motion import LinearPass
from repro.world.objects import BoxFace, TaggedBox
from repro.world.simulation import CarrierGroup, Occluder, PortalPassSimulator

TRIALS = 20


def main() -> None:
    # 1. The fixed infrastructure: one reader with one area antenna at
    #    waist height, looking into a 1 m lane (the paper's baseline).
    setup = PaperSetup()
    simulator = PortalPassSimulator(
        portal=single_antenna_portal(tx_power_dbm=setup.tx_power_dbm),
        env=setup.env,
        params=setup.params,
    )

    # 2. The moving world: a box with a metal router inside, one tag on
    #    the front face, riding a cart at 1 m/s.
    factory = EpcFactory()
    box = TaggedBox("router-box")
    front_tag = box.attach_tag(factory.next_epc().to_hex(), BoxFace.FRONT)
    side_tag = box.attach_tag(
        factory.next_epc().to_hex(), BoxFace.SIDE_CLOSER
    )
    carrier = CarrierGroup(
        motion=LinearPass.centered_lane_pass(
            lane_distance_m=1.0, speed_mps=1.0, half_span_m=2.0, height_m=0.0
        ),
        tags=box.all_tags(),
        occluders=[
            Occluder(
                centre=box.content_centre(),
                radius_m=box.content.radius_m,
                material=box.content.material,
            )
        ],
        clutter_sigma_db=5.0,
    )

    # 3. Repeat the pass, as the paper repeats each experiment.
    trials = run_trials(
        "quickstart",
        lambda seeds, index: simulator.run_pass([carrier], seeds, index),
        TRIALS,
    )
    front_reads = sum(
        1 for r in trials.outcomes if front_tag.epc in r.read_epcs
    )
    side_reads = sum(
        1 for r in trials.outcomes if side_tag.epc in r.read_epcs
    )
    either = sum(
        1
        for r in trials.outcomes
        if {front_tag.epc, side_tag.epc} & r.read_epcs
    )

    p_front = front_reads / TRIALS
    p_side = side_reads / TRIALS
    print(f"Front tag read reliability : {p_front:6.1%}")
    print(f"Side tag read reliability  : {p_side:6.1%}")
    print(f"Object tracking (either)   : {either / TRIALS:6.1%}")
    if 0 < p_front < 1 or 0 < p_side < 1:
        expected = combined_reliability([p_front, p_side])
        print(f"Paper's R_C prediction     : {expected:6.1%}")
    print()
    print(
        "Two cheap tags turn an unreliable portal into a dependable one —\n"
        "the central result of the DSN'07 paper this library reproduces."
    )


if __name__ == "__main__":
    main()
