#!/usr/bin/env python3
"""Conveyor-line scenario: spacing, speed, and software correction.

Scenario (paper Section 3, Figure 4 motivation): items ride a conveyor
belt through a read gate. Line engineers control three things — the
spacing between tagged items, the belt speed, and the software layer
behind the readers. This example quantifies all three:

1. **Spacing sweep** — how close can tagged items ride before
   near-field coupling kills reads (the paper's 20-40 mm rule)?
2. **Speed sweep** — how fast can the belt run before dwell starvation?
3. **Software correction** — a route constraint (checkpoints along the
   line) recovers misses that physics could not prevent.

Run:
    python examples/conveyor_line.py      (takes a minute or two)
"""

from repro.core.calibration import PaperSetup
from repro.core.constraints import Observation, RouteConstraint
from repro.core.experiment import run_trials
from repro.protocol.epc import EpcFactory
from repro.rf.geometry import Vec3
from repro.world.motion import LinearPass
from repro.world.portal import single_antenna_portal
from repro.world.scenarios.orientation_spacing import build_tag_row
from repro.world.simulation import CarrierGroup, PortalPassSimulator
from repro.world.tags import Tag, TagOrientation

TRIALS = 6


def spacing_sweep(simulator: PortalPassSimulator) -> None:
    print("1. Item spacing (10 parallel tags, facing orientation):")
    for spacing_mm in (0.3, 4, 10, 20, 40):
        carrier = build_tag_row(
            spacing_mm / 1000.0, TagOrientation.CASE_2_HORIZONTAL_FACING
        )
        epcs = [t.epc for t in carrier.tags]
        trials = run_trials(
            f"spacing-{spacing_mm}",
            lambda seeds, i: simulator.run_pass([carrier], seeds, i),
            TRIALS,
        )
        mean = sum(o.tags_read(epcs) for o in trials.outcomes) / TRIALS
        bar = "#" * int(round(mean))
        print(f"   {spacing_mm:5.1f} mm : {mean:4.1f}/10 {bar}")
    print("   -> match the paper: allow >= 20-40 mm between tagged items.\n")


def speed_sweep(simulator: PortalPassSimulator) -> None:
    print("2. Belt speed (10 well-spaced facing tags):")
    factory = EpcFactory()
    for speed in (0.5, 1.0, 2.0, 4.0):
        tags = [
            Tag(
                epc=factory.next_epc().to_hex(),
                local_position=Vec3((i - 5) * 0.1, 1.0, 0.0),
            )
            for i in range(10)
        ]
        carrier = CarrierGroup(
            motion=LinearPass.centered_lane_pass(
                lane_distance_m=1.0, speed_mps=speed, half_span_m=2.0,
                height_m=0.0,
            ),
            tags=tags,
            clutter_sigma_db=4.0,
        )
        epcs = [t.epc for t in tags]
        trials = run_trials(
            f"speed-{speed}",
            lambda seeds, i: simulator.run_pass([carrier], seeds, i),
            TRIALS,
        )
        mean = sum(o.tags_read(epcs) for o in trials.outcomes) / TRIALS
        print(f"   {speed:3.1f} m/s : {mean:4.1f}/10 read")
    print("   -> dwell time shrinks with speed; budget ~0.02 s per tag "
          "in the gate.\n")


def software_correction() -> None:
    print("3. Route-constraint correction (three gates along the line):")
    route = RouteConstraint(["infeed", "sorter", "outfeed"])
    # Simulated day: 200 items, the middle gate misses 30% of them.
    observations = []
    missed = 0
    for i in range(200):
        item = f"item-{i:03d}"
        observations.append(Observation(item, "infeed", float(i)))
        if i % 10 < 7:
            observations.append(Observation(item, "sorter", i + 100.0))
        else:
            missed += 1
        observations.append(Observation(item, "outfeed", i + 200.0))
    recovered = route.recover(observations)
    print(f"   sorter-gate misses          : {missed}")
    print(f"   recovered by route constraint: {len(recovered)}")
    print("   -> software correction complements, not replaces, physical "
          "redundancy:\n      it only works for items seen downstream.")


def main() -> None:
    setup = PaperSetup()
    simulator = PortalPassSimulator(
        portal=single_antenna_portal(), env=setup.env, params=setup.params
    )
    spacing_sweep(simulator)
    speed_sweep(simulator)
    software_correction()


if __name__ == "__main__":
    main()
