"""Setup shim for environments without wheel/build isolation."""

from setuptools import setup

setup()
