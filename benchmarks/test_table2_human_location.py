"""Table 2 benchmark: read reliability for tags on humans.

Regenerates the paper's waist-placement rows for one and two walking
subjects. Shape assertions: side-farther is nearly dead (body
blocking), side-closer excellent, the closer of two subjects reads at
least as well as a lone subject (reflections), and the farther subject
reads worse (blocking).
"""

import pytest

from repro.analysis.tables import Table, percent
from repro.core.model import (
    HUMAN_ONE_SUBJECT_RELIABILITY,
    HUMAN_TWO_SUBJECT_RELIABILITY,
)

from conftest import record_result

_PAPER_KEYS = {
    "front": "front_back",
    "side_closer": "side_closer",
    "side_farther": "side_farther",
}


@pytest.mark.benchmark(group="table2")
def test_table2_human_location(benchmark, table2_results):
    results = benchmark.pedantic(
        lambda: table2_results, rounds=1, iterations=1
    )

    table = Table(
        "Table 2 — read reliability for tags on humans",
        headers=(
            "Placement",
            "1 subj (meas)",
            "1 subj (paper)",
            "closer (meas)",
            "closer (paper)",
            "farther (meas)",
            "farther (paper)",
        ),
    )
    for placement, row in results.items():
        key = _PAPER_KEYS[placement]
        paper_one = HUMAN_ONE_SUBJECT_RELIABILITY[key]
        paper_closer, paper_farther = HUMAN_TWO_SUBJECT_RELIABILITY[key]
        table.add_row(
            placement,
            percent(row.one_subject.rate),
            percent(paper_one),
            percent(row.two_subject_closer.rate),
            percent(paper_closer),
            percent(row.two_subject_farther.rate),
            percent(paper_farther),
        )
    one_avg = sum(r.one_subject.rate for r in results.values()) / len(results)
    two_avg = sum(
        (r.two_subject_closer.rate + r.two_subject_farther.rate) / 2
        for r in results.values()
    ) / len(results)
    lines = [
        table.render(),
        "",
        f"One-subject average:  measured {percent(one_avg)}  paper 63%",
        f"Two-subject average:  measured {percent(two_avg)}  paper 56%",
    ]
    record_result("table2_human_location", "\n".join(lines))

    # Body blocking kills the far side.
    assert results["side_farther"].one_subject.rate <= 0.25
    # The near side is excellent.
    assert results["side_closer"].one_subject.rate >= 0.80
    # Reflection effect: closer-of-two at least matches a lone subject
    # for the well-performing placements.
    for placement in ("front", "side_closer"):
        row = results[placement]
        assert (
            row.two_subject_closer.rate >= row.one_subject.rate - 0.10
        )
    # Blocking: the farther subject reads no better than the closer one.
    for row in results.values():
        assert (
            row.two_subject_farther.rate
            <= row.two_subject_closer.rate + 0.05
        )
    # Headline averages near the paper's 63% / 56%.
    assert abs(one_avg - 0.63) <= 0.15
    assert abs(two_avg - 0.56) <= 0.17
