"""Table 3 / Figure 5 benchmark: redundancy for object tracking.

Regenerates the paper's redundancy comparison: one/two antennas per
portal crossed with one/two tags per box, measured (R_M) against the
independence model (R_C computed from the Table 1 single-opportunity
rates, exactly as the paper does).

Shape assertions — the paper's findings:

* every redundancy scheme beats the single-opportunity baseline;
* tag-level redundancy tracks its independence model closely;
* antenna-level redundancy falls **short** of its model (correlated
  views of the same blocked geometry);
* tags-per-object beats antennas-per-portal;
* tags + antennas together reach ~100%.
"""

import pytest

from repro.analysis.tables import Table, bar_chart, percent
from repro.world.objects import BoxFace
from repro.world.scenarios.object_tracking import (
    TABLE3_CASES,
    run_object_redundancy_experiment,
)

from conftest import BENCH_REPS_OBJECT, record_result


@pytest.mark.benchmark(group="table3")
def test_table3_fig5_object_redundancy(benchmark, table1_rates):
    outcomes = benchmark.pedantic(
        lambda: run_object_redundancy_experiment(
            repetitions=BENCH_REPS_OBJECT,
            single_opportunity=table1_rates,
        ),
        rounds=1,
        iterations=1,
    )
    by_name = {o.case.name: o for o in outcomes}

    table = Table(
        "Table 3 — redundancy for object tracking",
        headers=("Configuration", "R_M (measured)", "R_C (model)"),
    )
    for outcome in outcomes:
        table.add_row(
            outcome.case.name,
            percent(outcome.measured.rate),
            percent(outcome.calculated, decimals=1),
        )

    # Figure 5 summary bars (averaging front/side single-tag rows).
    def avg(*names):
        return sum(by_name[n].measured.rate for n in names) / len(names)

    summary_labels = [
        "1 antenna, 1 tag",
        "2 antennas, 1 tag",
        "1 antenna, 2 tags",
        "2 antennas, 2 tags",
    ]
    measured_bars = [
        avg("1 antenna, 1 tag (front)", "1 antenna, 1 tag (side)"),
        avg("2 antennas, 1 tag (front)", "2 antennas, 1 tag (side)"),
        by_name["1 antenna, 2 tags (front+side)"].measured.rate,
        by_name["2 antennas, 2 tags (front+side)"].measured.rate,
    ]
    calculated_bars = [
        (
            by_name["1 antenna, 1 tag (front)"].calculated
            + by_name["1 antenna, 1 tag (side)"].calculated
        )
        / 2,
        (
            by_name["2 antennas, 1 tag (front)"].calculated
            + by_name["2 antennas, 1 tag (side)"].calculated
        )
        / 2,
        by_name["1 antenna, 2 tags (front+side)"].calculated,
        by_name["2 antennas, 2 tags (front+side)"].calculated,
    ]
    chart = bar_chart(
        "Figure 5 — object tracking with redundancy",
        summary_labels,
        [measured_bars, calculated_bars],
        ["Measured", "Calculated"],
    )
    record_result(
        "table3_fig5_object_redundancy", table.render() + "\n\n" + chart
    )

    baseline, two_ant, two_tag, both = measured_bars
    # Redundancy always helps.
    assert two_ant >= baseline - 0.02
    assert two_tag > baseline
    assert both >= max(two_ant, two_tag) - 0.02
    # Tag redundancy matches its independence model (paper: 97 vs 97).
    tag_outcome = by_name["1 antenna, 2 tags (front+side)"]
    assert abs(tag_outcome.measured.rate - tag_outcome.calculated) <= 0.06
    # Antenna redundancy under-performs its model (paper: 86 vs 96).
    ant_gap = calculated_bars[1] - two_ant
    assert ant_gap >= 0.0
    # Tags beat antennas (the paper's headline ranking).
    assert two_tag >= two_ant - 0.02
    # Full redundancy approaches 100%.
    assert both >= 0.95
