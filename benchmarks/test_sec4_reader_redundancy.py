"""Section 4 benchmark: reader-level redundancy backfires without DRM.

Regenerates the paper's sharpest negative result: adding a second
*reader* to the portal severely reduced reliability because the
readers' carriers interfere and the Matrics AR400 lacked dense-reader
mode. With DRM enabled (the fix the paper's hardware did not have),
the second reader stops hurting.
"""

import pytest

from repro.analysis.tables import Table, percent
from repro.world.scenarios.reader_redundancy import (
    run_reader_redundancy_experiment,
)

from conftest import record_result

REPETITIONS = 20


@pytest.mark.benchmark(group="sec4-reader")
def test_sec4_reader_redundancy(benchmark):
    result = benchmark.pedantic(
        lambda: run_reader_redundancy_experiment(repetitions=REPETITIONS),
        rounds=1,
        iterations=1,
    )

    table = Table(
        "Section 4 — reader-level redundancy (front tag, one subject)",
        headers=("Configuration", "Read reliability"),
    )
    table.add_row("1 reader, 1 antenna", percent(result.single_reader.rate))
    table.add_row("2 readers, no DRM", percent(result.dual_no_drm.rate))
    table.add_row("2 readers, DRM", percent(result.dual_with_drm.rate))
    table.add_row(
        "paper finding",
        "2 readers w/o DRM: 'read reliability was severely reduced'",
    )
    record_result("sec4_reader_redundancy", table.render())

    # The paper's result: non-DRM reader redundancy is WORSE than one
    # reader, severely.
    assert result.dual_no_drm.rate < result.single_reader.rate
    assert result.interference_penalty >= 0.15
    # DRM removes the interference penalty.
    assert result.drm_recovery > 0.0
    assert result.dual_with_drm.rate >= result.single_reader.rate - 0.10
