"""Performance micro-benchmarks of the library's hot paths.

Unlike the experiment benchmarks (one pedantic round each), these use
pytest-benchmark's real timing loops: they exist to catch performance
regressions in the code the experiment harness calls millions of times.
"""

import pytest

from repro.core.calibration import PaperSetup
from repro.core.experiment import run_trials
from repro.core.parallel import PassTrialTask
from repro.core.redundancy import combined_reliability
from repro.protocol.crc import bytes_to_bits, crc16
from repro.protocol.epc import EpcFactory
from repro.protocol.gen2 import QAlgorithm, TagChannel, run_inventory_round
from repro.rf.geometry import Vec3
from repro.rf.link import (
    LinkGeometry,
    compose_link,
    compute_link_terms,
    evaluate_link,
    free_space_read_range_m,
)
from repro.sim.rng import RandomStream, SeedSequence
from repro.world.motion import LinearPass
from repro.world.portal import single_antenna_portal
from repro.world.simulation import CarrierGroup, PortalPassSimulator
from repro.world.tags import Tag

SETUP = PaperSetup()


@pytest.mark.benchmark(group="perf")
def test_perf_link_budget(benchmark):
    """One full link-budget evaluation (the innermost hot path)."""
    geometry = LinkGeometry(
        antenna_position=Vec3(0, 1, 0),
        antenna_boresight=Vec3.unit_z(),
        tag_position=Vec3(0.3, 1.1, 1.0),
        tag_axis=Vec3.unit_x(),
    )
    result = benchmark(
        evaluate_link,
        SETUP.env,
        30.0,
        geometry,
        5.0,   # obstruction
        3.0,   # detuning
        0.0,   # coupling
        -1.5,  # shadowing
        0.8,   # fading
    )
    assert result.forward_power_dbm < 30.0


@pytest.mark.benchmark(group="perf")
def test_perf_link_compose_cached_terms(benchmark):
    """Link composition when the geometry terms are already cached.

    This is the per-draw cost inside a pass once the per-pass cache
    has resolved the static (tag, antenna) terms — the difference from
    ``test_perf_link_budget`` is what the cache saves.
    """
    geometry = LinkGeometry(
        antenna_position=Vec3(0, 1, 0),
        antenna_boresight=Vec3.unit_z(),
        tag_position=Vec3(0.3, 1.1, 1.0),
        tag_axis=Vec3.unit_x(),
    )
    terms = compute_link_terms(SETUP.env, geometry)
    result = benchmark(
        compose_link,
        SETUP.env,
        30.0,
        terms,
        5.0,   # obstruction
        3.0,   # detuning
        0.0,   # coupling
        -1.5,  # shadowing
        0.8,   # fading
    )
    assert result.forward_power_dbm < 30.0


@pytest.mark.benchmark(group="perf")
def test_perf_read_range_search(benchmark):
    """The envelope-bisect read-range search at calibration resolution."""
    value = benchmark(free_space_read_range_m, SETUP.env, 30.0)
    assert 2.0 < value < 15.0


@pytest.mark.benchmark(group="perf")
def test_perf_inventory_round(benchmark):
    """One 16-slot Gen 2 round over 12 tags."""
    population = [e.to_hex() for e in EpcFactory().batch(12)]

    def channel(epc):
        return TagChannel(energized=True, reply_decode_p=0.9)

    def run():
        return run_inventory_round(
            population, channel, RandomStream(7), QAlgorithm(q_initial=4)
        )

    result = benchmark(run)
    assert result.rounds == 1


@pytest.mark.benchmark(group="perf")
def test_perf_crc16(benchmark):
    """CRC-16 over a PC+EPC payload (112 bits)."""
    bits = bytes_to_bits(b"\x30\x00" + b"\xab" * 12)
    value = benchmark(crc16, bits)
    assert 0 <= value <= 0xFFFF


@pytest.mark.benchmark(group="perf")
def test_perf_combined_reliability(benchmark):
    """The R_C fold over eight opportunities."""
    ps = [0.87, 0.83, 0.63, 0.29] * 2
    value = benchmark(combined_reliability, ps)
    assert 0.99 < value <= 1.0


@pytest.mark.benchmark(group="perf")
def test_perf_full_pass(benchmark):
    """A complete single-tag portal pass (the experiment unit of work).

    Kept to a handful of rounds via pedantic mode — this is the
    coarse-grained sanity number (~tens of ms), not a tight loop.
    """
    simulator = PortalPassSimulator(
        portal=single_antenna_portal(), env=SETUP.env, params=SETUP.params
    )
    carrier = CarrierGroup(
        motion=LinearPass.centered_lane_pass(
            lane_distance_m=1.0, speed_mps=1.0, half_span_m=1.5, height_m=0.0
        ),
        tags=[
            Tag(
                epc=EpcFactory().next_epc().to_hex(),
                local_position=Vec3(0, 1, 0),
            )
        ],
    )
    seeds = SeedSequence(1)
    result = benchmark.pedantic(
        lambda: simulator.run_pass([carrier], seeds, 0),
        rounds=5,
        iterations=1,
    )
    assert result.duration_s > 0


def _cart_pass_fixture(use_link_cache):
    """A 12-box cart pass — the workload the per-pass cache targets."""
    from repro.world.objects import BoxFace
    from repro.world.scenarios.object_tracking import build_box_cart

    simulator = PortalPassSimulator(
        portal=single_antenna_portal(),
        env=SETUP.env,
        params=SETUP.params,
        use_link_cache=use_link_cache,
    )
    carrier, _ = build_box_cart([BoxFace.FRONT])
    return simulator, carrier


@pytest.mark.benchmark(group="perf")
def test_perf_cart_pass_cached(benchmark):
    """The Table 1 cart pass with the per-pass link cache enabled."""
    simulator, carrier = _cart_pass_fixture(True)
    seeds = SeedSequence(1)
    result = benchmark.pedantic(
        lambda: simulator.run_pass([carrier], seeds, 0),
        rounds=3,
        iterations=1,
    )
    assert result.duration_s > 0


@pytest.mark.benchmark(group="perf")
def test_perf_cart_pass_uncached(benchmark):
    """The same cart pass with the cache disabled (legacy hot path)."""
    simulator, carrier = _cart_pass_fixture(False)
    seeds = SeedSequence(1)
    result = benchmark.pedantic(
        lambda: simulator.run_pass([carrier], seeds, 0),
        rounds=3,
        iterations=1,
    )
    assert result.duration_s > 0


@pytest.mark.benchmark(group="perf")
def test_perf_parallel_engine_dispatch(benchmark):
    """Process-pool dispatch overhead for a short trial batch.

    Uses the real :class:`PassTrialTask` over a single-tag pass so the
    number covers pickling, pool spawn, and result gathering — the
    fixed cost a parallel run must amortise.
    """
    simulator, carrier = _cart_pass_fixture(True)
    task = PassTrialTask(simulator=simulator, carriers=(carrier,))
    result = benchmark.pedantic(
        lambda: run_trials("bench:dispatch", task, 2, seed=1, workers=2),
        rounds=2,
        iterations=1,
    )
    assert len(result.outcomes) == 2
