"""Ablation: carrier speed vs reliability.

Section 2.1 lists object speed among the reliability factors: "higher
object speeds limit the time when tags are visible to an antenna". The
paper's experiments fix speed at 1 m/s; this ablation sweeps it and
shows the dwell-time mechanism: reliability degrades once the portal
transit no longer affords each tag its ~0.02 s read budget plus retry
headroom.
"""

import pytest

from repro.analysis.tables import Table, percent
from repro.core.calibration import PaperSetup
from repro.core.experiment import run_trials
from repro.protocol.epc import EpcFactory
from repro.rf.geometry import Vec3
from repro.sim.rng import SeedSequence
from repro.world.motion import LinearPass
from repro.world.portal import single_antenna_portal
from repro.world.simulation import CarrierGroup, PortalPassSimulator
from repro.world.tags import Tag, TagOrientation

from conftest import record_result

SPEEDS_MPS = (0.5, 1.0, 2.0, 4.0, 8.0, 16.0)
TAGS = 40
REPETITIONS = 6


def _carrier(speed):
    factory = EpcFactory()
    tags = [
        Tag(
            epc=factory.next_epc().to_hex(),
            local_position=Vec3((i - TAGS / 2) * 0.05, 1.0, 0.0),
            orientation=TagOrientation.CASE_2_HORIZONTAL_FACING,
        )
        for i in range(TAGS)
    ]
    return CarrierGroup(
        motion=LinearPass.centered_lane_pass(
            lane_distance_m=1.0, speed_mps=speed, half_span_m=2.0, height_m=0.0
        ),
        tags=tags,
        clutter_sigma_db=4.0,
    )


def _run():
    setup = PaperSetup()
    sim = PortalPassSimulator(
        portal=single_antenna_portal(), env=setup.env, params=setup.params
    )
    rows = []
    for speed in SPEEDS_MPS:
        carrier = _carrier(speed)
        epcs = [t.epc for t in carrier.tags]
        trials = run_trials(
            f"speed-{speed}",
            lambda seeds, i: sim.run_pass([carrier], seeds, i),
            REPETITIONS,
        )
        total = sum(o.tags_read(epcs) for o in trials.outcomes)
        rows.append((speed, total / (TAGS * REPETITIONS)))
    return rows


@pytest.mark.benchmark(group="ablation-speed")
def test_ablation_speed(benchmark):
    rows = benchmark.pedantic(_run, rounds=1, iterations=1)

    table = Table(
        "Ablation — pass speed vs read reliability (40 facing tags)",
        headers=("Speed (m/s)", "Read reliability"),
    )
    for speed, rate in rows:
        table.add_row(f"{speed:g}", percent(rate))
    record_result("ablation_speed", table.render())

    rates = dict(rows)
    # The paper's 1 m/s operating point is comfortable.
    assert rates[1.0] >= 0.90
    # Excessive speed collapses reliability (dwell starvation: 40 tags
    # need ~0.5 s of airtime; at 16 m/s the gate affords ~0.2 s).
    assert rates[16.0] <= rates[0.5] - 0.10
    # Monotone-ish decline across the sweep.
    assert rates[16.0] <= rates[4.0] + 0.05
