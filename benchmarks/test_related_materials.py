"""Related-work benchmark: tagged materials (paper reference [12]).

Ramakrishnan & Deavours' benchmark — cited by the paper — measured
"read reliability for different tagged materials on a conveyer belt".
This regenerates that study on our conveyor workload: the same cart,
same tag placement, contents swept over empty / cardboard / liquid /
metal.

Shape assertions: the Section 2.1 material ranking (air ~ cardboard >
liquid > metal-adjacent behaviour) and a material penalty large enough
to motivate the paper's placement guidance.
"""

import pytest

from repro.analysis.tables import Table, percent
from repro.world.scenarios.materials_study import run_materials_study

from conftest import record_result

REPETITIONS = 8


@pytest.mark.benchmark(group="related-materials")
def test_related_materials(benchmark):
    study = benchmark.pedantic(
        lambda: run_materials_study(repetitions=REPETITIONS),
        rounds=1,
        iterations=1,
    )

    table = Table(
        "Related work [12] — read reliability per tagged content "
        "(side tags, 12 boxes, conveyor pass)",
        headers=("Content", "Read reliability"),
    )
    for name, rate in study.ordered():
        table.add_row(name, percent(rate))
    record_result("related_materials", table.render())

    rates = {name: est.rate for name, est in study.rates.items()}
    # RF-friendly contents read nearly perfectly.
    assert rates["empty"] >= 0.85
    assert rates["cardboard"] >= 0.80
    # Hostile contents pay a real penalty.
    assert rates["metal"] <= rates["empty"]
    assert rates["liquid"] <= rates["empty"]
    # And the penalty is material, not noise: the spread is visible.
    assert rates["empty"] - min(rates.values()) >= 0.05
