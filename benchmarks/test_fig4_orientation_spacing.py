"""Figure 4 benchmark: inter-tag distance x orientation grid.

Regenerates the paper's 6-orientation x 5-spacing matrix (10 parallel
tags on a cart at 1 m/s). Shape assertions: reads collapse at
sub-centimetre spacing, recover by 20-40 mm, and the perpendicular
orientations (cases 1 and 5) stay far below the others at any spacing.
"""

import pytest

from repro.analysis.tables import Table
from repro.world.scenarios.orientation_spacing import (
    PAPER_SPACINGS_M,
    minimum_safe_spacing,
    run_orientation_spacing_experiment,
)
from repro.world.tags import ALL_ORIENTATIONS

from conftest import record_result

REPETITIONS = 5


def _run():
    return run_orientation_spacing_experiment(
        spacings_m=PAPER_SPACINGS_M, repetitions=REPETITIONS
    )


@pytest.mark.benchmark(group="fig4")
def test_fig4_orientation_spacing(benchmark):
    results = benchmark.pedantic(_run, rounds=1, iterations=1)

    table = Table(
        "Figure 4 — mean tags read (of 10) per orientation x spacing",
        headers=("Case",) + tuple(f"{s * 1000:g} mm" for s in PAPER_SPACINGS_M),
    )
    means = {}
    for orientation in ALL_ORIENTATIONS:
        case = orientation.case_number
        row = [f"case {case}"]
        for spacing in PAPER_SPACINGS_M:
            value = results[(case, spacing)].mean_tags_read
            means[(case, spacing)] = value
            row.append(f"{value:.1f}")
        table.add_row(*row)
    safe = {
        case: minimum_safe_spacing(results, case)
        for case in (1, 2, 3, 4, 5, 6)
    }
    lines = [table.render(), "", "Minimum safe spacing per case:"]
    for case, spacing in sorted(safe.items()):
        text = "> 40 mm" if spacing == float("inf") else f"{spacing * 1000:g} mm"
        lines.append(f"  case {case}: {text}")
    record_result("fig4_orientation_spacing", "\n".join(lines))

    wide = PAPER_SPACINGS_M[-1]
    mid = 0.020
    tight = PAPER_SPACINGS_M[0]
    good_cases = (2, 3, 4, 6)
    perpendicular_cases = (1, 5)
    # Coupling collapse: at 0.3 mm every good orientation loses most
    # of its tags relative to its own 40 mm plateau.
    for case in good_cases:
        assert means[(case, tight)] <= 0.5 * max(means[(case, wide)], 1.0)
    # Recovery: by 20-40 mm the good orientations read most of the row.
    for case in good_cases:
        assert means[(case, wide)] >= 6.0
    # The paper's minimum safe distance: "at least 20 to 40 mm spacing
    # ... depending on orientation" — good orientations settle by
    # 20 mm, the perpendicular ones need the full 40 mm.
    for case in good_cases:
        assert safe[case] <= 0.02 + 1e-9
    for case in perpendicular_cases:
        assert 0.02 < safe[case] <= 0.04 + 1e-9
    # "Tag reads are least reliable when the tags are perpendicular to
    # the antenna (cases 1 and 5)": visible at the 20 mm column, where
    # the good orientations already read everything.
    worst_two = sorted(
        (means[(case, mid)], case) for case in (1, 2, 3, 4, 5, 6)
    )[:2]
    assert {case for _, case in worst_two} == set(perpendicular_cases)
    for case in perpendicular_cases:
        assert means[(case, mid)] < min(
            means[(good, mid)] for good in good_cases
        )
