"""Extension benchmark: LANDMARC localization (paper reference [11]).

The paper positions passive portal tracking as an alternative to
active-tag location sensing ("Active tags have been employed for human
location sensing and tracking [11]"). This extension implements the
cited LANDMARC algorithm over our RSSI model and characterises its
accuracy against reference-grid density and RSSI noise — quantifying
what the portal approach trades away (continuous coordinates) and what
it avoids (reference-tag infrastructure).
"""

import math

import pytest

from repro.analysis.tables import Table
from repro.core.localization import LandmarcLocator, grid_references
from repro.rf.geometry import Vec3
from repro.sim.rng import RandomStream

from conftest import record_result

READERS = {
    "r0": Vec3(0.0, 2.0, 0.0),
    "r1": Vec3(10.0, 2.0, 0.0),
    "r2": Vec3(0.0, 2.0, 10.0),
    "r3": Vec3(10.0, 2.0, 10.0),
}
TARGETS = 40


def _rssi_model(rng, sigma):
    def signal_fn(position):
        signals = {}
        for reader_id, reader_pos in READERS.items():
            d = max(position.distance_to(reader_pos), 0.3)
            rssi = -30.0 - 25.0 * math.log10(d)
            if sigma > 0.0:
                rssi += rng.gauss(0.0, sigma)
            signals[reader_id] = rssi
        return signals

    return signal_fn


def _median_error(pitch_m, sigma, seed):
    rng = RandomStream(seed)
    survey = _rssi_model(RandomStream(seed + 1), sigma)
    live = _rssi_model(rng, sigma)
    columns = int(10.0 / pitch_m) + 1
    locator = LandmarcLocator(
        grid_references(
            Vec3(0.0, 1.0, 0.0), columns=columns, rows=columns,
            pitch_m=pitch_m, signal_fn=survey,
        ),
        k=4,
    )
    errors = []
    for i in range(TARGETS):
        truth = Vec3(0.5 + (i % 8) * 1.2, 1.0, 0.5 + (i // 8) * 1.8)
        estimate = locator.locate(live(truth))
        errors.append(estimate.error_to(truth))
    return sorted(errors)[len(errors) // 2]


def _run():
    rows = []
    for pitch in (1.0, 2.0, 4.0):
        for sigma in (0.0, 2.0, 4.0):
            rows.append(
                (pitch, sigma, _median_error(pitch, sigma, seed=11))
            )
    return rows


@pytest.mark.benchmark(group="ext-localization")
def test_extension_localization(benchmark):
    rows = benchmark.pedantic(_run, rounds=1, iterations=1)

    table = Table(
        "Extension — LANDMARC localization error (10x10 m room, k=4)",
        headers=("Grid pitch (m)", "RSSI noise sigma (dB)", "Median error (m)"),
    )
    errors = {}
    for pitch, sigma, error in rows:
        errors[(pitch, sigma)] = error
        table.add_row(f"{pitch:g}", f"{sigma:g}", f"{error:.2f}")
    record_result("extension_localization", table.render())

    # Room-level accuracy (the cited paper's claim) at realistic noise.
    assert errors[(1.0, 2.0)] < 2.5
    assert errors[(2.0, 2.0)] < 3.0
    # Noise degrades accuracy.
    assert errors[(2.0, 4.0)] >= errors[(2.0, 0.0)]
    # Denser reference grids help at matched noise.
    assert errors[(1.0, 2.0)] <= errors[(4.0, 2.0)] + 0.3
