"""Section 4 benchmark: the TDMA cost of antenna redundancy.

The paper: "Even though readers employ measures such as TDMA to
prevent interference between two or more of their antennas, our
initial observations showed a slight decrease in performance when
blocking was not an issue. Nonetheless, in realistic cases, there was
a distinctive gain using multiple antennas."

Both halves are reproduced here:

* **no blocking, time-starved** — a tag cluster parked in front of one
  antenna with a short dwell: the second antenna only eats airtime,
  and reliability dips slightly;
* **realistic pass** — the moving cart: the second antenna's different
  viewpoint wins more than the shared airtime costs.
"""

import pytest

from repro.analysis.tables import Table, percent
from repro.core.calibration import PaperSetup
from repro.core.experiment import run_trials
from repro.protocol.epc import EpcFactory
from repro.rf.geometry import Vec3
from repro.world.motion import LinearPass, StationaryPlacement
from repro.world.portal import (
    AntennaInstallation,
    Portal,
    ReaderAssignment,
    dual_antenna_portal,
)
from repro.world.simulation import CarrierGroup, PortalPassSimulator
from repro.world.tags import Tag

from conftest import record_result

REPETITIONS = 10


def _single_at(x: float) -> Portal:
    return Portal(
        readers=(
            ReaderAssignment(
                "reader-0",
                (
                    AntennaInstallation(
                        "ant-0", Vec3(x, 1.0, 0.0), Vec3.unit_z()
                    ),
                ),
            ),
        )
    )


def _cluster_carrier():
    factory = EpcFactory()
    tags = [
        Tag(
            epc=factory.next_epc().to_hex(),
            local_position=Vec3(
                (i % 6) * 0.12 - 0.3, 0.8 + (i // 6) * 0.15, 0.0
            ),
        )
        for i in range(30)
    ]
    return CarrierGroup(
        motion=StationaryPlacement(Vec3(-1.0, 0.0, 1.0), duration_s=0.25),
        tags=tags,
        clutter_sigma_db=2.0,
    )


def _moving_carrier():
    factory = EpcFactory()
    tags = [
        Tag(
            epc=factory.next_epc().to_hex(),
            local_position=Vec3((i - 20) * 0.05, 1.0, 0.0),
        )
        for i in range(40)
    ]
    return CarrierGroup(
        motion=LinearPass.centered_lane_pass(
            lane_distance_m=1.0, speed_mps=8.0, half_span_m=2.0, height_m=0.0
        ),
        tags=tags,
        clutter_sigma_db=2.0,
    )


def _rate(portal, carrier):
    setup = PaperSetup()
    simulator = PortalPassSimulator(
        portal=portal, env=setup.env, params=setup.params
    )
    epcs = [t.epc for t in carrier.tags]
    trials = run_trials(
        "tdma-cost",
        lambda seeds, i: simulator.run_pass([carrier], seeds, i),
        REPETITIONS,
    )
    return sum(o.tags_read(epcs) for o in trials.outcomes) / (
        len(epcs) * REPETITIONS
    )


def _run():
    return {
        "cluster / 1 antenna": _rate(_single_at(-1.0), _cluster_carrier()),
        "cluster / 2 antennas (TDMA)": _rate(
            dual_antenna_portal(), _cluster_carrier()
        ),
        "moving cart / 1 antenna": _rate(_single_at(0.0), _moving_carrier()),
        "moving cart / 2 antennas": _rate(
            dual_antenna_portal(), _moving_carrier()
        ),
    }


@pytest.mark.benchmark(group="sec4-tdma")
def test_sec4_antenna_tdma_cost(benchmark):
    rates = benchmark.pedantic(_run, rounds=1, iterations=1)

    table = Table(
        "Section 4 — the TDMA cost (and payoff) of a second antenna",
        headers=("Workload / portal", "Read reliability"),
    )
    for name, rate in rates.items():
        table.add_row(name, percent(rate, 1))
    record_result("sec4_antenna_tdma_cost", table.render())

    # "A slight decrease in performance when blocking was not an issue":
    assert (
        rates["cluster / 2 antennas (TDMA)"]
        <= rates["cluster / 1 antenna"] + 0.01
    )
    # ...but not a collapse (it is TDMA, not interference).
    assert (
        rates["cluster / 1 antenna"]
        - rates["cluster / 2 antennas (TDMA)"]
        <= 0.20
    )
    # "In realistic cases, there was a distinctive gain":
    assert (
        rates["moving cart / 2 antennas"]
        >= rates["moving cart / 1 antenna"]
    )