"""Ablation: robustness of the redundancy conclusion to the fading model.

The Rician K-factor is a calibration choice the paper gives no data
for. This ablation sweeps K from Rayleigh-like (heavy scatter) to
strongly line-of-sight and checks that the paper's headline conclusion
— two tags per object beat one tag, by a large margin at low single-tag
reliability — survives every choice.
"""

import dataclasses

import pytest

from repro.analysis.tables import Table, percent
from repro.core.calibration import PaperSetup, paper_link_environment
from repro.core.experiment import run_trials
from repro.core.reliability import tracking_success
from repro.rf.propagation import RicianFading
from repro.sim.rng import SeedSequence
from repro.world.objects import BoxFace
from repro.world.portal import single_antenna_portal
from repro.world.scenarios.object_tracking import build_box_cart
from repro.world.simulation import PortalPassSimulator

from conftest import record_result

K_FACTORS_DB = (0.0, 7.0, 15.0)
REPETITIONS = 6


def _tracking(env, faces):
    setup = PaperSetup()
    sim = PortalPassSimulator(
        portal=single_antenna_portal(), env=env, params=setup.params
    )
    carrier, boxes = build_box_cart(list(faces))
    box_epcs = [[t.epc for t in b.all_tags()] for b in boxes]
    trials = run_trials(
        "fading-ablation",
        lambda seeds, i: sim.run_pass([carrier], seeds, i),
        REPETITIONS,
    )
    hits = 0
    total = 0
    for outcome in trials.outcomes:
        seen = outcome.read_epcs
        for epcs in box_epcs:
            total += 1
            hits += tracking_success(seen, epcs)
    return hits / total


def _run():
    rows = []
    for k_db in K_FACTORS_DB:
        base = paper_link_environment()
        env = dataclasses.replace(
            base,
            channel=dataclasses.replace(
                base.channel, fading=RicianFading(k_factor_db=k_db)
            ),
        )
        one_tag = _tracking(env, (BoxFace.FRONT,))
        two_tags = _tracking(env, (BoxFace.FRONT, BoxFace.SIDE_CLOSER))
        rows.append((k_db, one_tag, two_tags))
    return rows


@pytest.mark.benchmark(group="ablation-fading")
def test_ablation_fading(benchmark):
    rows = benchmark.pedantic(_run, rounds=1, iterations=1)

    table = Table(
        "Ablation — redundancy gain vs Rician K-factor",
        headers=("K (dB)", "1 tag", "2 tags", "gain"),
    )
    for k_db, one_tag, two_tags in rows:
        table.add_row(
            f"{k_db:g}",
            percent(one_tag),
            percent(two_tags),
            f"+{100 * (two_tags - one_tag):.0f} pts",
        )
    record_result("ablation_fading", table.render())

    for k_db, one_tag, two_tags in rows:
        # The redundancy conclusion is not an artefact of the K choice.
        assert two_tags >= one_tag, f"K={k_db}"
        assert two_tags >= 0.85, f"K={k_db}"
