"""Ablation: anti-collision protocol choice vs physical reliability.

The paper explicitly scopes out "modifications to the RFID protocol
itself such as better collision control algorithms". This ablation
justifies that scoping: against the same flaky physical channel, Gen 2
adaptive-Q, Vogt framed ALOHA, and a deterministic binary tree walk all
identify nearly the same tag set — the misses are physical, and no
collision-control cleverness recovers a tag whose link never closes.
"""

import pytest

from repro.analysis.tables import Table
from repro.protocol.aloha import inventory_until_aloha
from repro.protocol.epc import EpcFactory
from repro.protocol.gen2 import TagChannel, inventory_until
from repro.protocol.tree import inventory_tree
from repro.sim.rng import RandomStream

from conftest import record_result

POPULATION = 40
BUDGET_S = 4.0

#: A mixed physical population: some strong, some marginal, some dead —
#: the profile a real cart presents.
def _channel_for(index):
    if index % 4 == 0:
        return TagChannel(energized=False, reply_decode_p=0.0)  # dead
    if index % 4 == 1:
        return TagChannel(energized=True, reply_decode_p=0.55)  # marginal
    return TagChannel(energized=True, reply_decode_p=0.97)  # strong


def _run():
    population = [e.to_hex() for e in EpcFactory().batch(POPULATION)]
    index_of = {epc: i for i, epc in enumerate(population)}

    def channel(epc):
        return _channel_for(index_of[epc])

    results = {}
    results["gen2 (adaptive Q)"] = inventory_until(
        population, channel, RandomStream(1), time_budget_s=BUDGET_S
    )
    results["framed ALOHA (Vogt)"] = inventory_until_aloha(
        population, channel, RandomStream(1), time_budget_s=BUDGET_S
    )
    results["binary tree"] = inventory_tree(
        population, channel, RandomStream(1), time_budget_s=BUDGET_S
    )
    readable = sum(
        1 for i in range(POPULATION) if _channel_for(i).energized
    )
    return results, readable


@pytest.mark.benchmark(group="ablation-protocols")
def test_ablation_protocols(benchmark):
    results, readable = benchmark.pedantic(_run, rounds=1, iterations=1)

    table = Table(
        "Ablation — anti-collision protocol vs physical ceiling "
        f"({POPULATION} tags, {readable} physically readable)",
        headers=("Protocol", "Unique reads", "Airtime (s)", "Rounds"),
    )
    for name, result in results.items():
        table.add_row(
            name,
            len(result.unique_reads),
            f"{result.duration_s:.2f}",
            result.rounds,
        )
    record_result("ablation_protocols", table.render())

    for name, result in results.items():
        reads = len(result.unique_reads)
        # No protocol resurrects a dead tag.
        assert reads <= readable, name
        # Every protocol clears nearly the whole physically readable set.
        assert reads >= readable - 3, name
