"""Figure 7 benchmark: two-subject tracking summary bars.

Regenerates the paper's Figure 7: measured vs calculated tracking
reliability when two subjects walk abreast (maximal mutual blocking).

Shape assertions: the two-subject baseline sits below the one-subject
one (blocking), redundancy still recovers most of the loss, and four
tags or tags+antennas reach >=85%.
"""

import pytest

from repro.analysis.tables import bar_chart

from conftest import record_result


@pytest.mark.benchmark(group="fig7")
def test_fig7_two_subjects(
    benchmark, table2_results, table4_outcomes, table5_outcomes
):
    def build():
        t4 = {o.case.name: o for o in table4_outcomes}
        t5 = {o.case.name: o for o in table5_outcomes}
        single = sum(
            (r.two_subject_closer.rate + r.two_subject_farther.rate) / 2
            for r in table2_results.values()
        ) / len(table2_results)
        labels = [
            "1 tag, 1 antenna",
            "2 tags, 1 antenna",
            "4 tags, 1 antenna",
            "2 tags, 2 antennas",
            "4 tags, 2 antennas",
        ]
        measured = [
            single,
            (
                t4["1ant/2tags/front+back/2subj"].measured_average
                + t4["1ant/2tags/sides/2subj"].measured_average
            )
            / 2,
            t4["1ant/4tags/all/2subj"].measured_average,
            (
                t5["2ant/2tags/front+back/2subj"].measured_average
                + t5["2ant/2tags/sides/2subj"].measured_average
            )
            / 2,
            t5["2ant/4tags/all/2subj"].measured_average,
        ]
        calculated = [
            single,
            (
                t4["1ant/2tags/front+back/2subj"].calculated
                + t4["1ant/2tags/sides/2subj"].calculated
            )
            / 2,
            t4["1ant/4tags/all/2subj"].calculated,
            (
                t5["2ant/2tags/front+back/2subj"].calculated
                + t5["2ant/2tags/sides/2subj"].calculated
            )
            / 2,
            t5["2ant/4tags/all/2subj"].calculated,
        ]
        return labels, measured, calculated

    labels, measured, calculated = benchmark.pedantic(
        build, rounds=1, iterations=1
    )
    chart = bar_chart(
        "Figure 7 — tracking of two subjects (paper: 56% baseline -> ~100%)",
        labels,
        [measured, calculated],
        ["Measured", "Calculated"],
    )
    record_result("fig7_two_subjects", chart)

    baseline = measured[0]
    # Two-subject baseline near the paper's 56%.
    assert abs(baseline - 0.56) <= 0.17
    # Redundancy recovers: two tags lift the average markedly
    # (paper: 56% -> 83%).
    assert measured[1] >= baseline + 0.10
    # Four tags on two antennas: near-saturation (paper: 100%).
    assert measured[-1] >= 0.85
