"""Ablation: where do the missed reads come from?

DESIGN.md separates two loss families:

* **physical** — the link never closes (blocking, detuning, orientation,
  fades), which no protocol change can fix;
* **protocol/dwell** — the link closes but the inventory process runs
  out of slots (collisions, short dwell).

The ablation compares the calibrated stochastic channel against a
"genie" channel with fading and shadowing disabled. With deterministic
physics the portal reads essentially everything — demonstrating that
the paper's reliability problem is physical, which is why it scopes out
better anti-collision algorithms.
"""

import dataclasses

import pytest

from repro.analysis.tables import Table, percent
from repro.core.calibration import PaperSetup, paper_link_environment
from repro.core.experiment import run_trials
from repro.rf.propagation import ChannelModel, RicianFading, ShadowingModel
from repro.sim.rng import SeedSequence
from repro.world.objects import BoxFace
from repro.world.portal import single_antenna_portal
from repro.world.scenarios.object_tracking import build_box_cart
from repro.world.simulation import PortalPassSimulator

from conftest import record_result

REPETITIONS = 6


def _reliability(env, clutter_sigma_db):
    setup = PaperSetup()
    sim = PortalPassSimulator(
        portal=single_antenna_portal(), env=env, params=setup.params
    )
    carrier, _ = build_box_cart(
        [BoxFace.FRONT], clutter_sigma_db=clutter_sigma_db
    )
    epcs = [t.epc for t in carrier.tags]
    trials = run_trials(
        "loss-sources",
        lambda seeds, i: sim.run_pass([carrier], seeds, i),
        REPETITIONS,
    )
    total = 0
    for outcome in trials.outcomes:
        total += outcome.tags_read(epcs)
    return total / (len(epcs) * REPETITIONS)


def _run():
    calibrated_env = paper_link_environment()
    genie_env = dataclasses.replace(
        calibrated_env,
        channel=ChannelModel(
            path_loss=calibrated_env.channel.path_loss,
            shadowing=ShadowingModel(sigma_db=0.0),
            fading=RicianFading(k_factor_db=40.0),
        ),
    )
    from repro.world.scenarios.object_tracking import (
        BOX_CART_CLUTTER_SIGMA_DB,
    )

    return {
        "calibrated (stochastic channel)": _reliability(
            calibrated_env, BOX_CART_CLUTTER_SIGMA_DB
        ),
        "genie (deterministic channel)": _reliability(genie_env, 0.0),
    }


@pytest.mark.benchmark(group="ablation-loss")
def test_ablation_loss_sources(benchmark):
    rates = benchmark.pedantic(_run, rounds=1, iterations=1)

    table = Table(
        "Ablation — loss sources (front tags, 12 boxes, 1 antenna)",
        headers=("Channel", "Tag read reliability"),
    )
    for name, rate in rates.items():
        table.add_row(name, percent(rate))
    record_result("ablation_loss_sources", table.render())

    # With deterministic physics, protocol losses alone are negligible:
    # the portal reads essentially all front tags.
    assert rates["genie (deterministic channel)"] >= 0.97
    # The calibrated channel reproduces the paper's physical misses.
    assert rates["calibrated (stochastic channel)"] <= 0.95
    # Therefore the gap — the paper's unreliability — is physical.
    gap = (
        rates["genie (deterministic channel)"]
        - rates["calibrated (stochastic channel)"]
    )
    assert gap >= 0.05
