"""Deployment benchmark: the portal's read-zone footprint.

Maps P(read) over the lane plane for the calibrated baseline portal.
Ties three paper claims together spatially: read range "is generally a
few meters" (Section 3), reliability peaks on boresight, and the
false-positive remedy of separating antennas/zones works because the
footprint is bounded.
"""

import pytest

from repro.analysis.figures import heatmap
from repro.world.portal import single_antenna_portal
from repro.world.read_zone import map_read_zone

from conftest import record_result


def _run():
    return map_read_zone(
        single_antenna_portal(),
        x_range=(-3.0, 3.0),
        z_range=(0.5, 9.0),
        steps=9,
        trials=6,
    )


@pytest.mark.benchmark(group="related-read-zone")
def test_related_read_zone(benchmark):
    zone = benchmark.pedantic(_run, rounds=1, iterations=1)

    art = heatmap(
        "Read-zone map — P(read) at 1 m height (rows: distance, cols: x)",
        zone.probabilities,
        row_labels=[f"{z:.1f}m" for z in zone.z_values],
        col_labels=[f"{x:+.0f}m" for x in zone.x_values],
    )
    range_line = (
        f"\nreliable (>=90%) out to {zone.max_reliable_range_m():.1f} m "
        "on boresight"
    )
    record_result("related_read_zone", art + range_line)

    # "A few meters" of reliable range.
    assert 1.0 <= zone.max_reliable_range_m() <= 7.0
    # The nearest row is solidly covered around boresight.
    centre = len(zone.x_values) // 2
    assert zone.probabilities[0][centre] >= 0.8
    # The far edge is not: the footprint is bounded.
    assert max(zone.probabilities[-1]) <= 0.7
    # Coverage shrinks with distance (monotone row maxima, with slack).
    row_maxima = [max(row) for row in zone.probabilities]
    assert row_maxima[0] >= row_maxima[-1]