"""Figure 6 benchmark: one-subject tracking summary bars.

Regenerates the paper's Figure 6: measured vs calculated tracking
reliability for one walking subject across six configurations, from a
single tag on one antenna up to four tags on two antennas.

Shape assertion: the staircase rises monotonically (within noise) from
the ~63% baseline to ~100% at full redundancy, and measured tracks
calculated for the tag-redundant configurations.
"""

import pytest

from repro.analysis.tables import bar_chart
from repro.core.redundancy import combined_reliability

from conftest import record_result


@pytest.mark.benchmark(group="fig6")
def test_fig6_one_subject(
    benchmark, table2_results, table2_rates, table4_outcomes, table5_outcomes
):
    def build():
        t4 = {o.case.name: o for o in table4_outcomes}
        t5 = {o.case.name: o for o in table5_outcomes}
        single = (
            table2_results["front"].one_subject.rate
            + table2_results["side_closer"].one_subject.rate
            + table2_results["side_farther"].one_subject.rate
        ) / 3.0
        labels = [
            "1 tag, 1 antenna",
            "2 tags, 1 antenna",
            "4 tags, 1 antenna",
            "2 tags, 2 antennas",
            "4 tags, 2 antennas",
        ]
        measured = [
            single,
            (
                t4["1ant/2tags/front+back/1subj"].measured_average
                + t4["1ant/2tags/sides/1subj"].measured_average
            )
            / 2,
            t4["1ant/4tags/all/1subj"].measured_average,
            (
                t5["2ant/2tags/front+back/1subj"].measured_average
                + t5["2ant/2tags/sides/1subj"].measured_average
            )
            / 2,
            t5["2ant/4tags/all/1subj"].measured_average,
        ]
        calculated = [
            single,
            (
                t4["1ant/2tags/front+back/1subj"].calculated
                + t4["1ant/2tags/sides/1subj"].calculated
            )
            / 2,
            t4["1ant/4tags/all/1subj"].calculated,
            (
                t5["2ant/2tags/front+back/1subj"].calculated
                + t5["2ant/2tags/sides/1subj"].calculated
            )
            / 2,
            t5["2ant/4tags/all/1subj"].calculated,
        ]
        return labels, measured, calculated

    labels, measured, calculated = benchmark.pedantic(
        build, rounds=1, iterations=1
    )
    chart = bar_chart(
        "Figure 6 — tracking of one subject (paper: 63% baseline -> ~100%)",
        labels,
        [measured, calculated],
        ["Measured", "Calculated"],
    )
    record_result("fig6_one_subject", chart)

    baseline = measured[0]
    # Baseline near the paper's 63%.
    assert abs(baseline - 0.63) <= 0.15
    # Every redundant configuration beats the baseline clearly.
    for value in measured[1:]:
        assert value >= baseline + 0.15
    # Full redundancy saturates.
    assert measured[-1] >= 0.95
    # The paper's headline: two tags take one-subject tracking from 63%
    # to ~96%.
    assert measured[1] >= 0.85
