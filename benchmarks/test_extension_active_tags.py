"""Extension benchmark: active tags (the paper's stated future work).

"Future extensions of this work involve experimenting with active
tags" (Section 5). The paper also notes that "passive tags have a much
weaker signal, a much shorter communication range, and thus much lower
read reliability than battery-powered, active, RFID tags" — this
benchmark quantifies that claim on identical workloads, plus the cost
active tags pay: battery life vs beacon rate.
"""

import pytest

from repro.analysis.tables import Table, percent
from repro.core.calibration import PaperSetup
from repro.core.experiment import run_trials
from repro.core.reliability import tracking_success
from repro.world.active_tags import ActiveTagModel, ActiveTagSimulator
from repro.world.objects import BoxFace
from repro.world.portal import single_antenna_portal
from repro.world.scenarios.object_tracking import build_box_cart
from repro.world.simulation import PortalPassSimulator

from conftest import record_result

REPETITIONS = 6


def _run():
    setup = PaperSetup()
    passive_sim = PortalPassSimulator(
        portal=single_antenna_portal(), env=setup.env, params=setup.params
    )
    active_sim = ActiveTagSimulator(passive_sim)

    rows = {}
    for name, sim in (("passive", passive_sim), ("active", active_sim)):
        # The paper's hardest passive placement: top of a router box.
        carrier, boxes = build_box_cart([BoxFace.TOP])
        box_epcs = [[t.epc for t in b.all_tags()] for b in boxes]
        trials = run_trials(
            f"active-ext:{name}",
            lambda seeds, i: sim.run_pass([carrier], seeds, i),
            REPETITIONS,
        )
        hits = total = 0
        for outcome in trials.outcomes:
            for epcs in box_epcs:
                total += 1
                hits += tracking_success(outcome.read_epcs, epcs)
        rows[name] = hits / total

    battery = {
        interval: ActiveTagModel(
            beacon_interval_s=interval
        ).battery_life_days()
        for interval in (0.1, 0.5, 2.0, 10.0)
    }
    return rows, battery


@pytest.mark.benchmark(group="ext-active")
def test_extension_active_tags(benchmark):
    rows, battery = benchmark.pedantic(_run, rounds=1, iterations=1)

    table = Table(
        "Extension — active vs passive tags on the paper's worst "
        "placement (top of router boxes)",
        headers=("Technology", "Tracking reliability"),
    )
    table.add_row("passive (EPC Gen 2)", percent(rows["passive"]))
    table.add_row("active (0 dBm beacons)", percent(rows["active"]))
    lines = [table.render(), "", "Active-tag battery life vs beacon rate:"]
    for interval, days in sorted(battery.items()):
        lines.append(
            f"  beacon every {interval:4.1f} s -> {days:7.0f} days "
            f"({days / 365:.1f} years)"
        )
    record_result("extension_active_tags", "\n".join(lines))

    # The paper's premise: active >> passive on hostile placements.
    assert rows["passive"] <= 0.60
    assert rows["active"] >= 0.95
    # The cost: beacon rate eats battery monotonically.
    lives = [battery[i] for i in sorted(battery)]
    assert lives == sorted(lives)
    # Even aggressive 10 Hz beaconing lasts a month-plus on one cell.
    assert battery[0.1] >= 30.0
