"""Extension benchmark: false positives and the paper's remedies.

Section 2.1: "it is also possible to get false positive reads, where
RFID tags might be read from outside the region normally associated
with the antenna"; the paper's remedies are "increasing the distance
between antennas and/or ... decreasing the power output of the
readers". The paper measures only false negatives; this extension
quantifies the false-positive side with an ambient staging zone next
to the lane and validates both remedies plus the protocol-level one
(Select filtering).
"""

import pytest

from repro.analysis.tables import Table
from repro.core.calibration import PaperSetup
from repro.protocol.epc import EpcFactory
from repro.protocol.select import SelectionState, mask_for_prefix_hex
from repro.rf.geometry import Vec3
from repro.sim.rng import SeedSequence
from repro.world.ambient import AmbientZone, build_ambient_carrier, classify_reads
from repro.world.objects import BoxFace
from repro.world.portal import single_antenna_portal
from repro.world.scenarios.object_tracking import build_box_cart
from repro.world.simulation import PortalPassSimulator

from conftest import record_result

TRIALS = 8


def _run():
    setup = PaperSetup()
    # The intended traffic: the paper's box cart with front tags.
    cart, _ = build_box_cart([BoxFace.FRONT])
    intended = [t.epc for t in cart.tags]
    # The ambient hazard: a staging zone 3.5 m beyond the lane.
    zone = AmbientZone(
        "staging", Vec3(0.0, 0.0, 3.5), 2.0, 1.5, tag_count=9
    )
    ambient, stray_epcs = build_ambient_carrier(
        zone, EpcFactory(company_prefix=424242), duration_s=cart.motion.duration_s
    )

    def measure(tx_power_dbm, zone_z=None):
        carrier_ambient = ambient
        if zone_z is not None:
            moved = AmbientZone("staging", Vec3(0, 0, zone_z), 2.0, 1.5, 9)
            carrier_ambient, _ = build_ambient_carrier(
                moved,
                EpcFactory(company_prefix=424242),
                duration_s=cart.motion.duration_s,
            )
        sim = PortalPassSimulator(
            portal=single_antenna_portal(tx_power_dbm=tx_power_dbm),
            env=setup.env,
            params=setup.params,
        )
        fp = 0.0
        fn = 0.0
        for trial in range(TRIALS):
            result = sim.run_pass(
                [cart, carrier_ambient], SeedSequence(777), trial
            )
            report = classify_reads(result.trace, intended)
            fp += report.stray_reads / len(stray_epcs)
            fn += 1.0 - report.intended_reads / len(intended)
        return fp / TRIALS, fn / TRIALS

    baseline_fp, baseline_fn = measure(30.0)
    low_power_fp, low_power_fn = measure(24.0)
    far_zone_fp, far_zone_fn = measure(30.0, zone_z=6.0)

    # Protocol remedy: Select on the intended company prefix keeps the
    # strays out of inventory entirely (zero airtime, zero FP).
    state = SelectionState()
    state.apply(
        mask_for_prefix_hex(intended[0][:10]), intended + list(stray_epcs)
    )
    select_filtered = state.filter(intended + list(stray_epcs))

    return {
        "baseline (30 dBm, zone at 3.5 m)": (baseline_fp, baseline_fn),
        "reduced power (24 dBm)": (low_power_fp, low_power_fn),
        "zone moved to 6 m": (far_zone_fp, far_zone_fn),
        "__select__": (set(select_filtered) == set(intended)),
    }


@pytest.mark.benchmark(group="ext-false-positives")
def test_extension_false_positives(benchmark):
    rates = benchmark.pedantic(_run, rounds=1, iterations=1)
    select_clean = rates.pop("__select__")

    table = Table(
        "Extension — false positives from an ambient staging zone",
        headers=("Remedy", "Stray-read rate", "Intended-miss rate"),
    )
    for name, (fp, fn) in rates.items():
        table.add_row(name, f"{fp:.1%}", f"{fn:.1%}")
    table.add_row(
        "Select prefix filter", "0.0% (protocol-level)", "unchanged"
    )
    record_result("extension_false_positives", table.render())

    baseline_fp, baseline_fn = rates["baseline (30 dBm, zone at 3.5 m)"]
    low_fp, low_fn = rates["reduced power (24 dBm)"]
    far_fp, _ = rates["zone moved to 6 m"]
    # The hazard is real at full power.
    assert baseline_fp > 0.05
    # Remedy 1: less power -> fewer strays...
    assert low_fp < baseline_fp
    # ...at a false-negative cost (the trade-off the paper implies).
    assert low_fn >= baseline_fn
    # Remedy 2: physical separation works without that cost.
    assert far_fp < baseline_fp
    # Remedy 3: Select removes strays from inventory entirely.
    assert select_clean
