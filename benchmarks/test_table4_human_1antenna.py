"""Table 4 benchmark: human tracking redundancy with one antenna.

Regenerates the paper's tag-level redundancy rows for people: two tags
(front+back or both sides) and four tags, one and two subjects.

Shape assertions: two tags lift tracking far above the single-tag
baseline, four tags saturate near 100%, and the measured values track
the independence model for tag-level redundancy.
"""

import pytest

from repro.analysis.tables import Table, percent
from repro.core.model import HUMAN_1ANTENNA_REDUNDANCY

from conftest import record_result

#: Paper rows keyed by our case names: (R_M 1 subj, R_M 2 subj avg).
_PAPER = {
    "1ant/2tags/front+back/1subj": (1.00, None),
    "1ant/2tags/sides/1subj": (0.93, None),
    "1ant/4tags/all/1subj": (1.00, None),
    "1ant/2tags/front+back/2subj": (None, 0.95),
    "1ant/2tags/sides/2subj": (None, 0.70),
    "1ant/4tags/all/2subj": (None, 1.00),
}


@pytest.mark.benchmark(group="table4")
def test_table4_human_1antenna(benchmark, table4_outcomes):
    outcomes = benchmark.pedantic(
        lambda: table4_outcomes, rounds=1, iterations=1
    )

    table = Table(
        "Table 4 — human tracking redundancy, 1 antenna",
        headers=("Case", "R_M (measured)", "R_C (model)", "Paper R_M"),
    )
    by_name = {}
    for outcome in outcomes:
        by_name[outcome.case.name] = outcome
        paper_one, paper_two = _PAPER[outcome.case.name]
        paper_value = paper_one if paper_one is not None else paper_two
        table.add_row(
            outcome.case.name,
            percent(outcome.measured_average),
            percent(outcome.calculated, decimals=1),
            percent(paper_value),
        )
    record_result("table4_human_1antenna", table.render())

    one_subj_2tags = [
        by_name["1ant/2tags/front+back/1subj"].measured_average,
        by_name["1ant/2tags/sides/1subj"].measured_average,
    ]
    # Two tags lift one-subject tracking from ~63% to >=85%
    # (paper: 63% -> 96%).
    assert sum(one_subj_2tags) / 2 >= 0.85
    # Four tags saturate.
    assert by_name["1ant/4tags/all/1subj"].measured_average >= 0.95
    assert by_name["1ant/4tags/all/2subj"].measured_average >= 0.85
    # Two-subject redundancy still helps but blocking keeps it lower
    # than the one-subject case (paper: 96% vs 83%).
    two_subj_2tags = [
        by_name["1ant/2tags/front+back/2subj"].measured_average,
        by_name["1ant/2tags/sides/2subj"].measured_average,
    ]
    assert sum(two_subj_2tags) / 2 <= sum(one_subj_2tags) / 2 + 0.05
    # Tag-level redundancy stays reasonably close to the model for the
    # one-subject rows (the paper's Table 4 shows R_M ~ R_C there).
    for name in ("1ant/2tags/front+back/1subj", "1ant/2tags/sides/1subj"):
        outcome = by_name[name]
        assert outcome.measured_average >= outcome.calculated - 0.15
