"""Table 5 benchmark: human tracking redundancy with two antennas.

Regenerates the paper's combined tag+antenna redundancy rows: one, two
and four tags per person on a two-antenna portal.

Shape assertions: one tag + two antennas already beats the single-
antenna baseline; two tags + two antennas reach >=95%; four tags reach
~100% — "reliability virtually reaches 100% using ... a combination of
two tags per person and two antennas per portal".
"""

import pytest

from repro.analysis.tables import Table, percent
from repro.core.model import HUMAN_2ANTENNA_REDUNDANCY

from conftest import record_result

#: Paper Table 5 measured values (1 subj R_M, 2 subj R_M) by case name.
_PAPER = {
    "2ant/2tags/front+back/1subj": (1.00, None),
    "2ant/2tags/sides/1subj": (1.00, None),
    "2ant/4tags/all/1subj": (1.00, None),
    "2ant/2tags/front+back/2subj": (None, 1.00),
    "2ant/2tags/sides/2subj": (None, 0.95),
    "2ant/4tags/all/2subj": (None, 1.00),
}


@pytest.mark.benchmark(group="table5")
def test_table5_human_2antennas(benchmark, table5_outcomes):
    outcomes = benchmark.pedantic(
        lambda: table5_outcomes, rounds=1, iterations=1
    )

    table = Table(
        "Table 5 — human tracking redundancy, 2 antennas",
        headers=("Case", "R_M (measured)", "R_C (model)", "Paper R_M"),
    )
    by_name = {}
    for outcome in outcomes:
        by_name[outcome.case.name] = outcome
        paper_one, paper_two = _PAPER[outcome.case.name]
        paper_value = paper_one if paper_one is not None else paper_two
        table.add_row(
            outcome.case.name,
            percent(outcome.measured_average),
            percent(outcome.calculated, decimals=1),
            percent(paper_value),
        )
    record_result("table5_human_2antennas", table.render())

    # Two tags + two antennas: >=90% for one subject (paper: 100%).
    for name in ("2ant/2tags/front+back/1subj", "2ant/2tags/sides/1subj"):
        assert by_name[name].measured_average >= 0.90
    # Four tags: saturation for one subject.
    assert by_name["2ant/4tags/all/1subj"].measured_average >= 0.95
    # Two subjects with four tags still excellent (paper: 100%).
    assert by_name["2ant/4tags/all/2subj"].measured_average >= 0.85
    # Adding the second antenna never hurts relative to Table 4's
    # one-antenna equivalents would require cross-fixture comparison;
    # at minimum the two-subject two-tag rows clear the paper band - 15.
    assert by_name["2ant/2tags/front+back/2subj"].measured_average >= 0.80
