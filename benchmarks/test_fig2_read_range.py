"""Figure 2 benchmark: read reliability vs tag-antenna distance.

Regenerates the paper's read-range curve: 20 facing tags in the
Figure 1 grid, single poll per measurement, repeated per distance.
Shape assertions: perfect at 1 m, gradual decay through the mid range,
near-dead by 9-10 m.
"""

import pytest

from repro.analysis.figures import Series, line_plot
from repro.analysis.tables import Table
from repro.core.model import READ_RANGE_MEAN_TAGS
from repro.world.scenarios.read_range import run_read_range_experiment

from conftest import record_result

DISTANCES = (1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0, 10.0)
REPETITIONS = 12


def _run():
    return run_read_range_experiment(
        distances_m=DISTANCES, repetitions=REPETITIONS
    )


@pytest.mark.benchmark(group="fig2")
def test_fig2_read_range(benchmark):
    results = benchmark.pedantic(_run, rounds=1, iterations=1)

    table = Table(
        "Figure 2 — mean tags read (of 20) vs distance",
        headers=("Distance (m)", "Measured", "LQ", "UQ", "Paper (approx)"),
    )
    means = {}
    for distance in DISTANCES:
        point = results[distance]
        means[distance] = point.mean_tags_read
        table.add_row(
            f"{distance:.0f}",
            f"{point.mean_tags_read:.1f}",
            f"{point.distribution.lower_quartile:.1f}",
            f"{point.distribution.upper_quartile:.1f}",
            f"{READ_RANGE_MEAN_TAGS[distance]:.1f}",
        )
    plot = line_plot(
        "Figure 2 — tags read vs distance",
        [
            Series(
                "measured",
                tuple(DISTANCES),
                tuple(means[d] for d in DISTANCES),
                marker="*",
            ),
            Series(
                "paper",
                tuple(DISTANCES),
                tuple(READ_RANGE_MEAN_TAGS[d] for d in DISTANCES),
                marker="o",
            ),
        ],
        y_min=0.0,
        y_max=20.0,
    )
    record_result("fig2_read_range", table.render() + "\n\n" + plot)

    # Shape: 100% at 1 m.
    assert means[1.0] >= 19.0
    # Gradual decay between 2 and 9 m (the paper's main observation).
    assert means[2.0] > means[4.0] > means[6.0] > means[8.0]
    # Nearly dead at the far end.
    assert means[9.0] <= 8.0
    assert means[10.0] <= 8.0
    # Mid-range half-way point falls where the paper's does (5-7 m).
    half_crossings = [d for d in DISTANCES if means[d] <= 10.0]
    assert half_crossings and 4.0 <= half_crossings[0] <= 8.0
