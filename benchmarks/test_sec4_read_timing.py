"""Section 4 benchmark: per-tag read time (~0.02 s) and its consequence.

The paper's redundancy conclusions hold only when "allowing adequate
time for all tags to be read, which is around .02 sec per tag". This
benchmark measures the simulated air-interface throughput directly and
then demonstrates the consequence: cutting portal dwell below the
population's read-time budget collapses multi-tag reliability.
"""

import pytest

from repro.analysis.tables import Table
from repro.protocol.epc import EpcFactory
from repro.protocol.gen2 import TagChannel, inventory_until
from repro.protocol.timing import DEFAULT_TIMING, PAPER_SECONDS_PER_TAG
from repro.sim.rng import RandomStream

from conftest import record_result

POPULATION_SIZES = (10, 25, 50, 100)


def _measure():
    rows = []
    for size in POPULATION_SIZES:
        population = [e.to_hex() for e in EpcFactory().batch(size)]

        def channel(epc):
            return TagChannel(energized=True, reply_decode_p=0.95)

        result = inventory_until(
            population,
            channel,
            RandomStream(size),
            time_budget_s=30.0,
            timing=DEFAULT_TIMING,
        )
        seconds_per_tag = result.duration_s / max(len(result.unique_reads), 1)
        rows.append(
            (
                size,
                len(result.unique_reads),
                result.duration_s,
                seconds_per_tag,
            )
        )
    return rows


@pytest.mark.benchmark(group="sec4-timing")
def test_sec4_read_timing(benchmark):
    rows = benchmark.pedantic(_measure, rounds=1, iterations=1)

    table = Table(
        "Section 4 — air-interface read throughput "
        f"(paper budget: {PAPER_SECONDS_PER_TAG} s/tag)",
        headers=("Population", "Read", "Airtime (s)", "s/tag"),
    )
    for size, read, duration, per_tag in rows:
        table.add_row(size, read, f"{duration:.3f}", f"{per_tag:.4f}")
    record_result("sec4_read_timing", table.render())

    for size, read, duration, per_tag in rows:
        # Everything read given generous time.
        assert read == size
        # Within the paper's order of magnitude: [0.02/4, 0.02*2].
        assert PAPER_SECONDS_PER_TAG / 4 <= per_tag <= PAPER_SECONDS_PER_TAG * 2

    # Consequence: a dwell budget below N * 0.02 s misses tags.
    population = [e.to_hex() for e in EpcFactory().batch(100)]

    def channel(epc):
        return TagChannel(energized=True, reply_decode_p=0.95)

    starved = inventory_until(
        population,
        channel,
        RandomStream(7),
        time_budget_s=100 * PAPER_SECONDS_PER_TAG / 10.0,
        timing=DEFAULT_TIMING,
    )
    assert len(starved.unique_reads) < 100
