"""Ablation: how correlated are a portal's two antenna views?

DESIGN.md calls out the independence assumption of R_C as the paper's
main modelling simplification: the paper itself measures 2-antenna
object tracking at 86% where the model predicts 96%, because both
antennas look at the same blocked, detuned, clutter-faded tag.

This ablation extracts the *effective correlation* of antenna-level
read opportunities from the simulator: it fits the mixture model
``R = rho * max(P) + (1 - rho) * R_independent`` to the measured
2-antenna reliability. Tag-level opportunities are fitted the same way
for contrast — they should be near-independent (rho ~ 0).
"""

import pytest

from repro.analysis.tables import Table, percent
from repro.core.redundancy import combined_reliability
from repro.world.objects import BoxFace
from repro.world.scenarios.object_tracking import (
    RedundancyCase,
    run_object_redundancy_experiment,
)

from conftest import BENCH_REPS_OBJECT, record_result


def _effective_correlation(measured, independent, best_single):
    """Solve the common-cause mixture for rho, clamped to [0, 1]."""
    denom = independent - best_single
    if abs(denom) < 1e-9:
        return 0.0
    rho = (independent - measured) / denom
    return max(0.0, min(1.0, rho))


def _run(table1_rates):
    cases = (
        RedundancyCase("1 antenna, 1 tag (front)", 1, (BoxFace.FRONT,)),
        RedundancyCase("2 antennas, 1 tag (front)", 2, (BoxFace.FRONT,)),
        RedundancyCase(
            "1 antenna, 2 tags (front+side)",
            1,
            (BoxFace.FRONT, BoxFace.SIDE_CLOSER),
        ),
    )
    outcomes = run_object_redundancy_experiment(
        cases=cases,
        repetitions=BENCH_REPS_OBJECT,
        single_opportunity=table1_rates,
    )
    return {o.case.name: o for o in outcomes}


@pytest.mark.benchmark(group="ablation-correlation")
def test_ablation_antenna_correlation(benchmark, table1_rates):
    by_name = benchmark.pedantic(
        lambda: _run(table1_rates), rounds=1, iterations=1
    )

    p_front = table1_rates[BoxFace.FRONT]
    p_side = table1_rates[BoxFace.SIDE_CLOSER]

    two_ant = by_name["2 antennas, 1 tag (front)"]
    rho_antenna = _effective_correlation(
        two_ant.measured.rate,
        combined_reliability([p_front, p_front]),
        p_front,
    )
    two_tag = by_name["1 antenna, 2 tags (front+side)"]
    rho_tag = _effective_correlation(
        two_tag.measured.rate,
        combined_reliability([p_front, p_side]),
        max(p_front, p_side),
    )

    table = Table(
        "Ablation — effective correlation of redundant opportunities",
        headers=("Redundancy axis", "R_M", "R_C (independent)", "rho"),
    )
    table.add_row(
        "2 antennas (same tag)",
        percent(two_ant.measured.rate),
        percent(combined_reliability([p_front, p_front]), 1),
        f"{rho_antenna:.2f}",
    )
    table.add_row(
        "2 tags (same antenna)",
        percent(two_tag.measured.rate),
        percent(combined_reliability([p_front, p_side]), 1),
        f"{rho_tag:.2f}",
    )
    table.add_row(
        "paper's implied antenna rho",
        "86%",
        "96%",
        f"{_effective_correlation(0.86, 0.96, 0.85):.2f}",
    )
    record_result("ablation_correlation", table.render())

    # Antenna views share the carrier-local clutter: correlated.
    assert rho_antenna > rho_tag
    # Tag opportunities are near-independent (the reason the paper's
    # R_C matches its tag-redundancy measurement).
    assert rho_tag <= 0.45
