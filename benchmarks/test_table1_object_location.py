"""Table 1 benchmark: read reliability per tag location on boxes.

Regenerates the paper's per-location rows for 12 router boxes carted
past one antenna. Shape assertions: ordering (top worst by a wide
margin), each row within a band of the paper, and the all-locations
average near the paper's 63%.
"""

import pytest

from repro.analysis.tables import Table, percent
from repro.core.model import OBJECT_LOCATION_RELIABILITY
from repro.world.objects import BoxFace

from conftest import record_result


@pytest.mark.benchmark(group="table1")
def test_table1_object_location(benchmark, table1_rates):
    rates = benchmark.pedantic(
        lambda: table1_rates, rounds=1, iterations=1
    )

    table = Table(
        "Table 1 — read reliability for tags on objects",
        headers=("Tag location", "Measured", "Paper"),
    )
    for face in (
        BoxFace.FRONT,
        BoxFace.SIDE_CLOSER,
        BoxFace.SIDE_FARTHER,
        BoxFace.TOP,
    ):
        table.add_row(
            face.value,
            percent(rates[face]),
            percent(OBJECT_LOCATION_RELIABILITY[face.value]),
        )
    # The paper averages over six faces assuming front=back, top=bottom.
    average = (
        2 * rates[BoxFace.FRONT]
        + rates[BoxFace.SIDE_CLOSER]
        + rates[BoxFace.SIDE_FARTHER]
        + 2 * rates[BoxFace.TOP]
    ) / 6.0
    table.add_row("average (6 faces)", percent(average), percent(0.63))
    record_result("table1_object_location", table.render())

    # Ordering: top is dramatically worst.
    assert rates[BoxFace.TOP] < rates[BoxFace.SIDE_FARTHER]
    assert rates[BoxFace.SIDE_FARTHER] < min(
        rates[BoxFace.FRONT], rates[BoxFace.SIDE_CLOSER]
    )
    assert rates[BoxFace.TOP] <= rates[BoxFace.FRONT] - 0.30
    # Per-row bands.
    for face in rates:
        paper = OBJECT_LOCATION_RELIABILITY[face.value]
        assert abs(rates[face] - paper) <= 0.17, (
            f"{face.value}: {rates[face]:.2f} vs paper {paper:.2f}"
        )
    # Headline average.
    assert abs(average - 0.63) <= 0.12
