"""Robustness benchmark: supervised failover under injected reader crashes.

Regenerates the fault-injection headline: with a fault plan that kills
the primary reader mid-pass, a lone supervised reader collapses (the
crash wipes its unpolled buffer and the outage swallows the read
window), while a two-reader failover group recovers to its fault-free
baseline — and every fault is *observable* (health transitions, a
promotion, degraded-coverage verdicts) rather than silently booked as
"object absent".
"""

import pytest

from repro.analysis.tables import Table, percent
from repro.world.scenarios.fault_injection import (
    run_fault_injection_experiment,
    run_fault_rate_sweep,
)

from conftest import record_result

REPETITIONS = 20
SWEEP_REPETITIONS = 12


def _fingerprint(result):
    """Everything observable about a run, as a comparable value."""
    return tuple(
        (
            cell.label,
            cell.estimate.successes,
            tuple(
                (
                    o.detected,
                    o.degraded,
                    o.verdict,
                    round(o.coverage, 9),
                    o.active_reader,
                    o.transitions,
                    o.promotions,
                )
                for o in cell.outcomes
            ),
        )
        for cell in (
            result.single_fault_free,
            result.single_crash,
            result.failover_fault_free,
            result.failover_crash,
        )
    )


@pytest.mark.benchmark(group="robustness-faults")
def test_primary_crash_failover(benchmark):
    result = benchmark.pedantic(
        lambda: run_fault_injection_experiment(repetitions=REPETITIONS),
        rounds=1,
        iterations=1,
    )

    table = Table(
        "Fault injection — primary reader killed mid-pass (front tag)",
        headers=("Configuration", "Reliability", "Degraded", "Failovers"),
    )
    for cell in (
        result.single_fault_free,
        result.single_crash,
        result.failover_fault_free,
        result.failover_crash,
    ):
        table.add_row(
            cell.label,
            percent(cell.estimate.rate),
            f"{cell.degraded_trials}/{len(cell.outcomes)}",
            f"{cell.promoted_trials}/{len(cell.outcomes)}",
        )
    table.add_row(
        "collapse / recovery gap",
        f"{result.single_collapse:+.2f} / {result.failover_recovery_gap:+.2f}",
        "-",
        "-",
    )
    record_result("robustness_faults", table.render())

    # Acceptance: the failover group recovers to within 2 points of its
    # fault-free baseline while the single reader visibly collapses.
    assert result.failover_recovery_gap <= 0.02
    assert result.single_collapse >= 0.5
    assert result.single_crash.estimate.rate <= 0.10

    # Fault-free cells run clean: no degradation, no promotions.
    for cell in (result.single_fault_free, result.failover_fault_free):
        assert cell.degraded_trials == 0
        assert cell.promoted_trials == 0

    # Every injected fault is observable: the supervisor degrades and
    # promotes in every crashed trial, and the health history shows the
    # primary going down and (watchdog) coming back.
    assert result.failover_crash.degraded_trials == REPETITIONS
    assert result.failover_crash.promoted_trials == REPETITIONS
    for outcome in result.failover_crash.outcomes:
        states = [
            (tr.old.value, tr.new.value)
            for tr in outcome.transitions
            if tr.reader_id == "reader-0"
        ]
        assert ("degraded", "down") in states
        assert ("down", "healthy") in states  # watchdog reboot observed
        assert outcome.active_reader == "reader-1"

    # Blind misses are never reported as "object absent, full
    # confidence" — the degraded-mode contract.
    for cell in (
        result.single_fault_free,
        result.single_crash,
        result.failover_fault_free,
        result.failover_crash,
    ):
        assert cell.misreported_blind_trials == 0


def test_fault_experiment_bit_reproducible():
    first = run_fault_injection_experiment(repetitions=6, seed=424242)
    second = run_fault_injection_experiment(repetitions=6, seed=424242)
    assert _fingerprint(first) == _fingerprint(second)
    other = run_fault_injection_experiment(repetitions=6, seed=424243)
    assert _fingerprint(other) != _fingerprint(first)


@pytest.mark.benchmark(group="robustness-faults")
def test_fault_rate_sweep(benchmark):
    results = benchmark.pedantic(
        lambda: run_fault_rate_sweep(repetitions=SWEEP_REPETITIONS),
        rounds=1,
        iterations=1,
    )

    table = Table(
        "Tracking reliability vs per-pass crash probability",
        headers=("Crash rate", "1 reader", "2-reader failover"),
    )
    for rate, (single, failover) in sorted(results.items()):
        table.add_row(
            f"{rate:g}",
            percent(single.estimate.rate),
            percent(failover.estimate.rate),
        )
    record_result("robustness_fault_sweep", table.render())

    single_0 = results[0.0][0].estimate.rate
    failover_0 = results[0.0][1].estimate.rate
    # A lone reader decays roughly linearly in the crash rate (each
    # crash forfeits the pass); the pair only loses a pass when both
    # readers die, so at moderate rates it holds near its baseline.
    assert results[1.0][0].estimate.rate <= 0.10
    for rate in (0.25, 0.5):
        single_r = results[rate][0].estimate.rate
        failover_r = results[rate][1].estimate.rate
        assert single_r < single_0
        # Failover's loss stays within sampling noise of the r**2
        # both-die probability; a generous margin keeps this stable
        # across seeds at 12 repetitions.
        assert failover_0 - failover_r <= rate**2 + 0.25
        # The crossover: redundancy beats the (better-placed) single
        # antenna once crashes are common.
        assert failover_r >= single_r - 0.10
