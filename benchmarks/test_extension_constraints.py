"""Extension benchmark: software correction vs physical redundancy.

The paper's related work (Inoue et al. [6]) proposes correcting missed
reads with real-world constraints instead of extra hardware. This
extension pits the two approaches against each other on the same
simulated traffic: single-tag boxes through a three-checkpoint site.

* physical redundancy: add a second tag per box (paper's approach);
* software correction: route + accompany constraints (related work);
* both combined.
"""

import pytest

from repro.analysis.tables import Table, percent
from repro.core.calibration import PaperSetup
from repro.reader.backend import ObjectRegistry, TrackedObject
from repro.reader.site import Checkpoint, SiteTracker
from repro.sim.events import TagReadEvent
from repro.sim.rng import SeedSequence
from repro.world.objects import BoxFace
from repro.world.portal import single_antenna_portal
from repro.world.scenarios.object_tracking import build_box_cart
from repro.world.simulation import PortalPassSimulator

from conftest import record_result

CHECKPOINTS = ("dock", "belt", "gate")
PALLET_PASSES = 6


def _site_run(faces, use_groups):
    setup = PaperSetup()
    simulator = PortalPassSimulator(
        portal=single_antenna_portal(), env=setup.env, params=setup.params
    )
    raw_total = corrected_total = journeys_total = 0
    for pallet in range(PALLET_PASSES):
        carrier, boxes = build_box_cart(list(faces))
        registry = ObjectRegistry()
        for box in boxes:
            registry.register(
                TrackedObject(
                    box.box_id, frozenset(t.epc for t in box.all_tags())
                )
            )
        site = SiteTracker(
            checkpoints=[
                Checkpoint(name, ((f"reader-{name}", "ant-0"),))
                for name in CHECKPOINTS
            ],
            registry=registry,
            groups=(
                {"pallet": [b.box_id for b in boxes]} if use_groups else None
            ),
        )
        for leg, name in enumerate(CHECKPOINTS):
            result = simulator.run_pass(
                [carrier], SeedSequence(9000 + pallet), leg
            )
            site.ingest(
                [
                    TagReadEvent(
                        time=event.time + 1000.0 * leg,
                        epc=event.epc,
                        reader_id=f"reader-{name}",
                        antenna_id=event.antenna_id,
                        rssi_dbm=event.rssi_dbm,
                    )
                    for event in result.trace
                ]
            )
        raw, corrected, total = site.completion_report()
        raw_total += raw
        corrected_total += corrected
        journeys_total += total
    return (
        raw_total / journeys_total,
        corrected_total / journeys_total,
    )


def _run():
    single_raw, single_sw = _site_run((BoxFace.FRONT,), use_groups=True)
    double_raw, double_sw = _site_run(
        (BoxFace.FRONT, BoxFace.SIDE_CLOSER), use_groups=True
    )
    return {
        "1 tag, raw": single_raw,
        "1 tag + software correction": single_sw,
        "2 tags, raw": double_raw,
        "2 tags + software correction": double_sw,
    }


@pytest.mark.benchmark(group="ext-constraints")
def test_extension_constraints(benchmark):
    rates = benchmark.pedantic(_run, rounds=1, iterations=1)

    table = Table(
        "Extension — journey completeness across 3 checkpoints "
        f"({PALLET_PASSES} pallets x 12 boxes)",
        headers=("Scheme", "Complete journeys"),
    )
    for name, rate in rates.items():
        table.add_row(name, percent(rate, 1))
    record_result("extension_constraints", table.render())

    # Software correction helps the weak physical baseline...
    assert rates["1 tag + software correction"] >= rates["1 tag, raw"]
    # ...physical redundancy alone beats the raw single tag...
    assert rates["2 tags, raw"] > rates["1 tag, raw"]
    # ...and the combination is at least as good as either alone.
    assert rates["2 tags + software correction"] >= max(
        rates["2 tags, raw"], rates["1 tag + software correction"] - 0.02
    )
    # The stacked scheme is near-perfect.
    assert rates["2 tags + software correction"] >= 0.95
