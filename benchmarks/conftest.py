"""Shared fixtures and result recording for the benchmark harness.

Every benchmark regenerates one of the paper's tables or figures,
prints the paper-vs-measured rows, and writes them to
``benchmarks/results/<name>.txt`` so the numbers survive pytest's
output capturing. Heavy measurements that several benchmarks need
(the Table 1 / Table 2 single-opportunity reliabilities) are computed
once per session here.
"""

from __future__ import annotations

import os

import pytest

from repro.world.scenarios.human_tracking import (
    TABLE4_CASES,
    TABLE5_CASES,
    run_human_redundancy_experiment,
    run_table2_experiment,
)
from repro.world.scenarios.object_tracking import run_table1_experiment

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")

#: Repetition counts for benchmarks: enough for stable shapes, small
#: enough that the whole harness finishes in tens of minutes.
BENCH_REPS_OBJECT = 8
BENCH_REPS_HUMAN = 16


def record_result(name: str, text: str) -> None:
    """Print a rendered table and persist it under benchmarks/results/."""
    print()
    print(text)
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, f"{name}.txt")
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(text + "\n")


@pytest.fixture(scope="session")
def table1_rates():
    """Measured Table 1 single-opportunity reliabilities (per face)."""
    results = run_table1_experiment(repetitions=BENCH_REPS_OBJECT)
    return {face: est.rate for face, est in results.items()}


@pytest.fixture(scope="session")
def table2_results():
    """Measured Table 2 per-placement results (1 and 2 subjects)."""
    return run_table2_experiment(repetitions=BENCH_REPS_HUMAN)


@pytest.fixture(scope="session")
def table2_rates(table2_results):
    """Single-subject placement rates keyed like the paper's tables."""
    return {
        "front": table2_results["front"].one_subject.rate,
        "back": table2_results["front"].one_subject.rate,
        "side_closer": table2_results["side_closer"].one_subject.rate,
        "side_farther": table2_results["side_farther"].one_subject.rate,
    }


@pytest.fixture(scope="session")
def table4_outcomes(table2_rates):
    """Human redundancy measurements with one antenna (Table 4)."""
    return run_human_redundancy_experiment(
        TABLE4_CASES, table2_rates, repetitions=BENCH_REPS_HUMAN
    )


@pytest.fixture(scope="session")
def table5_outcomes(table2_rates):
    """Human redundancy measurements with two antennas (Table 5)."""
    return run_human_redundancy_experiment(
        TABLE5_CASES, table2_rates, repetitions=BENCH_REPS_HUMAN
    )
