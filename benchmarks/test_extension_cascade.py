"""Extension benchmark: cascaded macro tags vs identical-tag redundancy.

The paper restricts itself to identical tags and cites cascaded
tagging (Lindsay & Reade [10]) as the alternative. This extension
compares the two analytically and structurally on the paper's own
numbers: per-item marginal reliability, and the burstiness of losses —
the cascade's Achilles heel, since one missed macro tag drops the whole
manifest back onto weak item tags simultaneously.
"""

import pytest

from repro.analysis.tables import Table, percent
from repro.core.cascade import (
    CascadeHierarchy,
    MacroTag,
    cascade_item_reliability,
    expected_items_lost_jointly,
)
from repro.core.model import OBJECT_AVERAGE_RELIABILITY
from repro.core.redundancy import combined_reliability
from repro.sim.rng import RandomStream

from conftest import record_result

ITEM_P = OBJECT_AVERAGE_RELIABILITY  # 0.63, the paper's item-level average
MACRO_P = 0.95                       # a well-placed, larger macro tag
ITEMS_PER_CASE = 12
TRIALS = 4000


def _simulate_batch(rng, scheme):
    """Monte-Carlo one case pass; returns items identified."""
    if scheme == "cascade":
        hierarchy = CascadeHierarchy()
        items = [f"item-{i:02d}" for i in range(ITEMS_PER_CASE)]
        hierarchy.add(MacroTag("macro", "case", frozenset(items)))
        reads = {i for i in items if rng.bernoulli(ITEM_P)}
        if rng.bernoulli(MACRO_P):
            reads.add("macro")
        return len(hierarchy.identified_items(reads))
    # identical: two item-level tags per item.
    identified = 0
    for _ in range(ITEMS_PER_CASE):
        if rng.bernoulli(ITEM_P) or rng.bernoulli(ITEM_P):
            identified += 1
    return identified


def _run():
    analytic_cascade = cascade_item_reliability(ITEM_P, MACRO_P)
    analytic_identical = combined_reliability([ITEM_P, ITEM_P])

    rng = RandomStream(20070625)
    results = {}
    for scheme in ("cascade", "identical"):
        counts = [
            _simulate_batch(rng, scheme) for _ in range(TRIALS)
        ]
        mean = sum(counts) / (TRIALS * ITEMS_PER_CASE)
        # Burstiness: conditional burst size — given that a case lost
        # anything, how many items went missing together?
        losses = [ITEMS_PER_CASE - c for c in counts if c < ITEMS_PER_CASE]
        burst = sum(losses) / len(losses) if losses else 0.0
        results[scheme] = (mean, burst)
    return analytic_cascade, analytic_identical, results


@pytest.mark.benchmark(group="ext-cascade")
def test_extension_cascade(benchmark):
    analytic_cascade, analytic_identical, results = benchmark.pedantic(
        _run, rounds=1, iterations=1
    )

    table = Table(
        "Extension — cascaded macro tags vs identical-tag redundancy "
        f"(item p={ITEM_P}, macro p={MACRO_P}, {ITEMS_PER_CASE} items/case)",
        headers=(
            "Scheme",
            "Item reliability (MC)",
            "Item reliability (analytic)",
            "E[items lost | any lost]",
        ),
    )
    table.add_row(
        "cascade (item + macro)",
        percent(results["cascade"][0], 1),
        percent(analytic_cascade, 1),
        f'{results["cascade"][1]:.2f}',
    )
    table.add_row(
        "identical (2 item tags)",
        percent(results["identical"][0], 1),
        percent(analytic_identical, 1),
        f'{results["identical"][1]:.2f}',
    )
    table.add_row(
        "expected joint loss (macro miss)",
        f"{expected_items_lost_jointly(ITEMS_PER_CASE, ITEM_P, MACRO_P):.2f}"
        " items",
        "-",
        "-",
    )
    record_result("extension_cascade", table.render())

    # Monte Carlo agrees with the analytics.
    assert results["cascade"][0] == pytest.approx(analytic_cascade, abs=0.02)
    assert results["identical"][0] == pytest.approx(
        analytic_identical, abs=0.02
    )
    # The cascade wins on marginal reliability (its selling point)...
    assert results["cascade"][0] > results["identical"][0]
    # ...but loses on burstiness: when the cascade does lose, it loses
    # a pile of items at once (the macro-miss branch), while identical
    # tags lose items one or two at a time.
    assert results["cascade"][1] > 2.0 * results["identical"][1]
