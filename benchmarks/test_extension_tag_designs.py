"""Extension benchmark: alternative tag designs (paper future work).

"Future extensions of this work involve ... tag reliability for
different tag designs" (Section 5). This benchmark evaluates the
design catalog against the paper's own measured placements: what would
each design have scored on the Table 1 locations, and what does the
reliability-per-dollar picture look like next to plain redundancy?
"""

import pytest

from repro.analysis.tables import Table, percent
from repro.core.model import OBJECT_LOCATION_RELIABILITY
from repro.core.redundancy import combined_reliability
from repro.world.tag_designs import (
    DESIGNS,
    TagDesign,
    expected_read_reliability,
)

from conftest import record_result

#: Which placements press which weakness: the top sits on metal; an
#: uncontrolled orientation models careless item-level tagging.
SCENARIOS = (
    ("front (controlled)", "front", False, True),
    ("top (on metal)", "top", True, True),
    ("front (careless orientation)", "front", False, False),
)


def _run():
    rows = []
    for label, placement, on_metal, controlled in SCENARIOS:
        base = OBJECT_LOCATION_RELIABILITY[placement]
        per_design = {
            design: expected_read_reliability(
                design,
                base,
                on_metal=on_metal,
                orientation_controlled=controlled,
            )
            for design in TagDesign
        }
        rows.append((label, base, per_design))
    return rows


@pytest.mark.benchmark(group="ext-designs")
def test_extension_tag_designs(benchmark):
    rows = benchmark.pedantic(_run, rounds=1, iterations=1)

    table = Table(
        "Extension — expected reliability per tag design "
        "(from the paper's Table 1 baselines)",
        headers=("Scenario", "single dipole", "dual dipole", "NF loop",
                 "metal mount"),
    )
    results = {}
    for label, base, per_design in rows:
        results[label] = per_design
        table.add_row(
            label,
            percent(per_design[TagDesign.SINGLE_DIPOLE]),
            percent(per_design[TagDesign.DUAL_DIPOLE]),
            percent(per_design[TagDesign.NEAR_FIELD_LOOP]),
            percent(per_design[TagDesign.METAL_MOUNT]),
        )
    # The economics row: fixing "top" with a metal-mount tag vs adding
    # a second cheap dipole elsewhere.
    metal_fix = results["top (on metal)"][TagDesign.METAL_MOUNT]
    two_cheap = combined_reliability(
        [OBJECT_LOCATION_RELIABILITY["front"],
         OBJECT_LOCATION_RELIABILITY["side_closer"]]
    )
    cost_metal = DESIGNS[TagDesign.METAL_MOUNT].unit_cost_usd
    cost_two = 2 * DESIGNS[TagDesign.SINGLE_DIPOLE].unit_cost_usd
    lines = [
        table.render(),
        "",
        f"Fixing 'top' with one metal-mount tag: {percent(metal_fix)} at "
        f"${cost_metal:.2f}/object",
        f"Avoiding 'top' with two cheap dipoles: {percent(two_cheap)} at "
        f"${cost_two:.2f}/object",
        "-> the paper's guidance (avoid bad placements, add cheap tags) "
        "is also the economical one.",
    ]
    record_result("extension_tag_designs", "\n".join(lines))

    # Metal-mount rescues the metal placement.
    assert metal_fix >= 0.90
    # Dual dipole wins exactly when orientation is uncontrolled.
    careless = results["front (careless orientation)"]
    controlled = results["front (controlled)"]
    assert (
        careless[TagDesign.DUAL_DIPOLE]
        > careless[TagDesign.SINGLE_DIPOLE]
    )
    assert (
        controlled[TagDesign.DUAL_DIPOLE]
        < controlled[TagDesign.SINGLE_DIPOLE]
    )
    # The near-field loop is not a portal technology.
    assert all(
        row[TagDesign.NEAR_FIELD_LOOP] < 0.5 for row in results.values()
    )
    # And the punchline: cheap redundancy beats exotic hardware on $.
    assert two_cheap >= 0.95
    assert cost_two < cost_metal