"""A minimal deterministic discrete-event simulation engine.

The protocol layer advances air-interface time slot by slot; the world
layer advances object positions continuously. Both are driven from this
engine: the clock is a float of seconds, events fire in (time,
insertion-order) order, and the engine never consults wall-clock time,
so identical seeds produce identical traces.
"""

from __future__ import annotations

import heapq
from typing import Callable, List, Optional

from .events import ScheduledEvent, next_sequence


class SimulationError(RuntimeError):
    """Raised for invalid engine operations (e.g. scheduling in the past)."""


class Engine:
    """Priority-queue discrete-event executor.

    ``observer``, when set, is called with each :class:`ScheduledEvent`
    immediately after its action fires — the observability layer's view
    of the event stream. ``None`` (the default) costs one identity test
    per event and nothing else.
    """

    def __init__(
        self,
        start_time: float = 0.0,
        observer: Optional[Callable[[ScheduledEvent], None]] = None,
    ) -> None:
        self._now = start_time
        self._queue: List[ScheduledEvent] = []
        self._running = False
        self._processed = 0
        self.observer = observer

    @property
    def now(self) -> float:
        """Current simulation time in seconds."""
        return self._now

    @property
    def processed_events(self) -> int:
        """How many events have fired so far (diagnostics)."""
        return self._processed

    @property
    def pending_events(self) -> int:
        """Events scheduled but not yet fired (cancelled ones included)."""
        return len(self._queue)

    def schedule_at(
        self, time: float, action: Callable[[], None], label: str = ""
    ) -> ScheduledEvent:
        """Schedule ``action`` at absolute time ``time``.

        Raises
        ------
        SimulationError
            If ``time`` precedes the current clock.
        """
        if time < self._now:
            raise SimulationError(
                f"cannot schedule event at {time} before current time {self._now}"
            )
        event = ScheduledEvent(time, next_sequence(), action, label)
        heapq.heappush(self._queue, event)
        return event

    def schedule_after(
        self, delay: float, action: Callable[[], None], label: str = ""
    ) -> ScheduledEvent:
        """Schedule ``action`` ``delay`` seconds from now."""
        if delay < 0.0:
            raise SimulationError(f"delay must be non-negative, got {delay!r}")
        return self.schedule_at(self._now + delay, action, label)

    def step(self) -> bool:
        """Fire the next non-cancelled event. Returns False when the queue is empty."""
        while self._queue:
            event = heapq.heappop(self._queue)
            if event.cancelled:
                continue
            self._now = event.time
            self._processed += 1
            event.action()
            if self.observer is not None:
                self.observer(event)
            return True
        return False

    def run(
        self,
        until: Optional[float] = None,
        max_events: Optional[int] = None,
    ) -> None:
        """Run events in order until the queue drains, ``until`` is reached,
        or ``max_events`` have fired.

        When ``until`` is given the clock is advanced to exactly ``until``
        on return even if the last event fired earlier, matching how a
        measurement window of fixed duration behaves.
        """
        fired = 0
        while self._queue:
            if max_events is not None and fired >= max_events:
                return
            head = self._queue[0]
            if head.cancelled:
                heapq.heappop(self._queue)
                continue
            if until is not None and head.time > until:
                break
            if self.step():
                fired += 1
        if until is not None and until > self._now:
            self._now = until

    def advance_to(self, time: float) -> None:
        """Move the clock forward with no events (idle time)."""
        if time < self._now:
            raise SimulationError(
                f"cannot move clock backwards from {self._now} to {time}"
            )
        self._now = time
