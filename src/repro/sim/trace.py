"""Trace recording for read events.

A :class:`ReadTrace` is what a portal pass produces: the time-ordered
list of successful singulations, from which reliability metrics are
computed. It deliberately mirrors the information content of the
AR400's XML tag lists that the paper's Java harness consumed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, Iterator, List, Optional, Set, Tuple

from .events import TagReadEvent


@dataclass
class ReadTrace:
    """An append-only, time-ordered record of tag reads."""

    events: List[TagReadEvent] = field(default_factory=list)

    def record(self, event: TagReadEvent) -> None:
        """Append one read event; times must be non-decreasing."""
        if self.events and event.time < self.events[-1].time - 1e-12:
            raise ValueError(
                "read events must be recorded in non-decreasing time order: "
                f"{event.time} after {self.events[-1].time}"
            )
        self.events.append(event)

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self) -> Iterator[TagReadEvent]:
        return iter(self.events)

    @property
    def is_empty(self) -> bool:
        return not self.events

    def epcs_seen(self) -> FrozenSet[str]:
        """The distinct EPCs read at least once."""
        return frozenset(e.epc for e in self.events)

    def was_read(self, epc: str) -> bool:
        """True when ``epc`` appears anywhere in the trace."""
        return any(e.epc == epc for e in self.events)

    def reads_of(self, epc: str) -> List[TagReadEvent]:
        """All events for one EPC, in time order."""
        return [e for e in self.events if e.epc == epc]

    def by_antenna(self) -> Dict[Tuple[str, str], List[TagReadEvent]]:
        """Events grouped by (reader_id, antenna_id)."""
        groups: Dict[Tuple[str, str], List[TagReadEvent]] = {}
        for e in self.events:
            groups.setdefault((e.reader_id, e.antenna_id), []).append(e)
        return groups

    def read_counts(self) -> Dict[str, int]:
        """Number of reads per EPC."""
        counts: Dict[str, int] = {}
        for e in self.events:
            counts[e.epc] = counts.get(e.epc, 0) + 1
        return counts

    def first_read_time(self, epc: str) -> Optional[float]:
        """Time of the first read of ``epc``, or None if never read."""
        for e in self.events:
            if e.epc == epc:
                return e.time
        return None

    def window(self, start: float, end: float) -> "ReadTrace":
        """A sub-trace restricted to ``start <= time < end``."""
        if end < start:
            raise ValueError(f"invalid window [{start}, {end})")
        sub = ReadTrace()
        for e in self.events:
            if start <= e.time < end:
                sub.record(e)
        return sub

    def merged_with(self, other: "ReadTrace") -> "ReadTrace":
        """Time-ordered merge of two traces (e.g. two readers' outputs)."""
        merged = ReadTrace()
        merged.events = sorted(
            list(self.events) + list(other.events), key=lambda e: e.time
        )
        return merged
