"""Trace recording for read events.

A :class:`ReadTrace` is what a portal pass produces: the time-ordered
list of successful singulations, from which reliability metrics are
computed. It deliberately mirrors the information content of the
AR400's XML tag lists that the paper's Java harness consumed.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import (
    Dict,
    FrozenSet,
    Iterable,
    Iterator,
    List,
    Optional,
    Set,
    Tuple,
)

from .events import TagReadEvent


@dataclass
class ReadTrace:
    """An append-only, time-ordered record of tag reads.

    Per-EPC queries (:meth:`was_read`, :meth:`reads_of`,
    :meth:`first_read_time`) are served from a lazily built per-EPC
    index rather than full scans: the index is constructed on the first
    query and invalidated by :meth:`record`, so dedup-style access
    patterns (many queries against a settled trace) run in O(1) per
    lookup while the append path stays a plain list append.
    """

    events: List[TagReadEvent] = field(default_factory=list)
    #: Lazy EPC -> events index; never part of equality or repr — two
    #: traces with the same events are equal whether or not either has
    #: been queried yet.
    _epc_index: Optional[Dict[str, List[TagReadEvent]]] = field(
        default=None, compare=False, repr=False
    )

    def record(self, event: TagReadEvent) -> None:
        """Append one read event; times must be non-decreasing."""
        if self.events and event.time < self.events[-1].time - 1e-12:
            raise ValueError(
                "read events must be recorded in non-decreasing time order: "
                f"{event.time} after {self.events[-1].time}"
            )
        self.events.append(event)
        self._epc_index = None

    def _index(self) -> Dict[str, List[TagReadEvent]]:
        """The per-EPC index, built on first use after any mutation."""
        index = self._epc_index
        if index is None:
            index = {}
            for e in self.events:
                index.setdefault(e.epc, []).append(e)
            self._epc_index = index
        return index

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self) -> Iterator[TagReadEvent]:
        return iter(self.events)

    @property
    def is_empty(self) -> bool:
        return not self.events

    def epcs_seen(self) -> FrozenSet[str]:
        """The distinct EPCs read at least once."""
        return frozenset(self._index())

    def was_read(self, epc: str) -> bool:
        """True when ``epc`` appears anywhere in the trace."""
        return epc in self._index()

    def reads_of(self, epc: str) -> List[TagReadEvent]:
        """All events for one EPC, in time order."""
        return list(self._index().get(epc, ()))

    def by_antenna(self) -> Dict[Tuple[str, str], List[TagReadEvent]]:
        """Events grouped by (reader_id, antenna_id)."""
        groups: Dict[Tuple[str, str], List[TagReadEvent]] = {}
        for e in self.events:
            groups.setdefault((e.reader_id, e.antenna_id), []).append(e)
        return groups

    def read_counts(self) -> Dict[str, int]:
        """Number of reads per EPC."""
        return {epc: len(events) for epc, events in self._index().items()}

    def first_read_time(self, epc: str) -> Optional[float]:
        """Time of the first read of ``epc``, or None if never read."""
        events = self._index().get(epc)
        return events[0].time if events else None

    def window(self, start: float, end: float) -> "ReadTrace":
        """A sub-trace restricted to ``start <= time < end``."""
        if end < start:
            raise ValueError(f"invalid window [{start}, {end})")
        sub = ReadTrace()
        for e in self.events:
            if start <= e.time < end:
                sub.record(e)
        return sub

    def merged_with(self, other: "ReadTrace") -> "ReadTrace":
        """Time-ordered merge of two traces (e.g. two readers' outputs)."""
        merged = ReadTrace()
        merged.events = sorted(
            list(self.events) + list(other.events), key=lambda e: e.time
        )
        return merged

    # -- lossless JSONL round-trip ----------------------------------------

    def to_jsonl(self) -> str:
        """One JSON line per event, in trace order.

        Floats serialize in shortest-repr form, which Python's ``json``
        parses back to the identical double — the round trip through
        :meth:`from_jsonl` is lossless, bit for bit.
        """
        return "\n".join(
            json.dumps(
                {
                    "time": e.time,
                    "epc": e.epc,
                    "reader_id": e.reader_id,
                    "antenna_id": e.antenna_id,
                    "rssi_dbm": e.rssi_dbm,
                },
                sort_keys=True,
            )
            for e in self.events
        )

    @classmethod
    def from_jsonl(cls, text: Iterable[str]) -> "ReadTrace":
        """Rebuild a trace from :meth:`to_jsonl` output.

        ``text`` is a string or any iterable of lines; blank lines are
        skipped, so files with trailing newlines load cleanly.
        """
        lines = text.splitlines() if isinstance(text, str) else text
        trace = cls()
        for line in lines:
            stripped = line.strip()
            if not stripped:
                continue
            doc = json.loads(stripped)
            trace.record(
                TagReadEvent(
                    time=doc["time"],
                    epc=doc["epc"],
                    reader_id=doc["reader_id"],
                    antenna_id=doc["antenna_id"],
                    rssi_dbm=doc["rssi_dbm"],
                )
            )
        return trace
