"""Seeded, named random streams for reproducible experiments.

Every stochastic component in the simulator draws from a
:class:`RandomStream` derived from a single experiment seed plus a
stable name ("fading", "shadowing", "protocol", ...). Deriving streams
by name keeps results reproducible when new randomness consumers are
added: existing streams keep their sequences.
"""

from __future__ import annotations

import hashlib
import random
from typing import Iterator, Optional, Sequence, TypeVar

T = TypeVar("T")


def _derive_seed(root_seed: int, name: str) -> int:
    """Derive a child seed from a root seed and a stream name, stably."""
    digest = hashlib.sha256(f"{root_seed}:{name}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


class RandomStream:
    """A thin, explicitly-seeded wrapper over :mod:`random`.

    Only the distributions the simulator needs are exposed, which keeps
    the reproducibility surface small and auditable.
    """

    def __init__(self, seed: int) -> None:
        self._seed = seed
        self._rng = random.Random(seed)

    @property
    def seed(self) -> int:
        """The seed this stream was created with."""
        return self._seed

    def uniform(self, low: float = 0.0, high: float = 1.0) -> float:
        """Uniform float in [low, high)."""
        return self._rng.uniform(low, high)

    def random(self) -> float:
        """Uniform float in [0, 1)."""
        return self._rng.random()

    def gauss(self, mu: float, sigma: float) -> float:
        """Gaussian draw."""
        if sigma < 0.0:
            raise ValueError(f"sigma must be non-negative, got {sigma!r}")
        if sigma == 0.0:
            return mu
        return self._rng.gauss(mu, sigma)

    def expovariate(self, rate: float) -> float:
        """Exponential draw with the given rate (1/mean)."""
        if rate <= 0.0:
            raise ValueError(f"rate must be positive, got {rate!r}")
        return self._rng.expovariate(rate)

    def randint(self, low: int, high: int) -> int:
        """Uniform integer in [low, high], inclusive on both ends."""
        if low > high:
            raise ValueError(f"empty integer range [{low}, {high}]")
        return self._rng.randint(low, high)

    def choice(self, items: Sequence[T]) -> T:
        """Uniform choice from a non-empty sequence."""
        if not items:
            raise ValueError("cannot choose from an empty sequence")
        return self._rng.choice(items)

    def shuffle(self, items: list) -> None:
        """In-place Fisher-Yates shuffle."""
        self._rng.shuffle(items)

    def bernoulli(self, p: float) -> bool:
        """True with probability ``p``.

        ``p`` is clamped to [0, 1] so callers composing probabilities from
        dB-domain arithmetic never trip on tiny negative round-off.
        """
        p = max(0.0, min(1.0, p))
        return self._rng.random() < p

    def spawn(self, name: str) -> "RandomStream":
        """Create an independent child stream identified by ``name``."""
        return RandomStream(_derive_seed(self._seed, name))


class SeedSequence:
    """Factory handing out named :class:`RandomStream` objects from one root seed."""

    def __init__(self, root_seed: int) -> None:
        self._root_seed = root_seed

    @property
    def root_seed(self) -> int:
        return self._root_seed

    def stream(self, name: str) -> RandomStream:
        """The stream for ``name``; the same name always yields the same sequence."""
        return RandomStream(_derive_seed(self._root_seed, name))

    def trial_stream(self, name: str, trial_index: int) -> RandomStream:
        """A stream unique to a (name, trial) pair, for per-repetition draws."""
        return RandomStream(
            _derive_seed(self._root_seed, f"{name}#trial={trial_index}")
        )

    def streams(self, names: Sequence[str]) -> Iterator[RandomStream]:
        """Yield one stream per name, in order."""
        for name in names:
            yield self.stream(name)
