"""Event types for the discrete-event core.

The engine itself (:mod:`repro.sim.engine`) is agnostic to payloads; the
classes here give the protocol and reader layers a shared vocabulary of
timestamped happenings so traces can be analysed uniformly.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Optional

#: Monotonic tie-breaker so simultaneous events pop in scheduling order.
_EVENT_COUNTER = itertools.count()


@dataclass(order=True)
class ScheduledEvent:
    """An entry in the engine's priority queue.

    Ordering is by time, then by insertion order, which makes runs
    deterministic even when many events share a timestamp.
    """

    time: float
    sequence: int = field(compare=True)
    action: Callable[[], None] = field(compare=False)
    label: str = field(compare=False, default="")
    cancelled: bool = field(compare=False, default=False)

    def cancel(self) -> None:
        """Mark this event so the engine skips it when popped."""
        self.cancelled = True


def next_sequence() -> int:
    """Hand out the global tie-break counter value."""
    return next(_EVENT_COUNTER)


@dataclass(frozen=True)
class TagReadEvent:
    """A successful tag singulation observed by a reader.

    Attributes mirror what the Matrics AR400's XML tag list reports:
    which antenna saw which EPC, when, and with what signal strength.
    """

    time: float
    epc: str
    reader_id: str
    antenna_id: str
    rssi_dbm: float

    def key(self) -> tuple:
        """Identity used for duplicate elimination in the middleware."""
        return (self.epc, self.reader_id, self.antenna_id)


@dataclass(frozen=True)
class SlotOutcome:
    """Result of one ALOHA slot during an inventory round."""

    time: float
    slot_index: int
    responders: int
    epc: Optional[str] = None

    @property
    def kind(self) -> str:
        """One of ``"empty"``, ``"success"``, ``"collision"``."""
        if self.responders == 0:
            return "empty"
        if self.epc is not None:
            return "success"
        return "collision"
