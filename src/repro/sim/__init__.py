"""Deterministic discrete-event simulation substrate."""

from .engine import Engine, SimulationError
from .events import ScheduledEvent, SlotOutcome, TagReadEvent
from .rng import RandomStream, SeedSequence
from .trace import ReadTrace

__all__ = [
    "Engine",
    "SimulationError",
    "ScheduledEvent",
    "SlotOutcome",
    "TagReadEvent",
    "RandomStream",
    "SeedSequence",
    "ReadTrace",
]
