"""Wire- and transport-level fault injection.

The pass simulator handles *physical* faults (a dead reader emits no
reads); this module handles everything that can go wrong between a
live reader and the application: the HTTP-style poll link dropping or
delaying responses, and the XML tag list arriving corrupted.

:class:`FaultyTransport` wraps a :class:`~repro.reader.wire.PolledInterface`
and consults a :class:`~repro.faults.plan.FaultPlan`; all randomness
comes from an injected :class:`~repro.sim.rng.RandomStream`, so a run
replays exactly from its seed.
"""

from __future__ import annotations

from typing import List, Optional

from ..reader.wire import (
    PolledInterface,
    ReaderUnreachable,
    TransportTimeout,
    parse_tag_list,
    render_tag_list,
)
from ..sim.events import TagReadEvent
from ..sim.rng import RandomStream
from .plan import FaultPlan, WireCorruption


def corrupt_document(
    document: str, mode: str, rng: RandomStream
) -> str:
    """Deterministically mangle an XML tag list the way transports do.

    ``truncate`` cuts the body short; ``garble`` flips a byte to an
    XML-hostile character; ``drop_field`` removes one required element.
    An empty or near-empty document falls back to truncation of
    whatever is there.
    """
    if mode not in WireCorruption.MODES:
        raise ValueError(f"unknown corruption mode {mode!r}")
    if mode == "truncate" or len(document) < 8:
        cut = rng.randint(1, max(1, len(document) - 1))
        return document[:cut]
    if mode == "garble":
        index = rng.randint(0, len(document) - 1)
        return document[:index] + "<" + document[index + 1 :]
    # drop_field: remove the first occurrence of a required element.
    field = rng.choice(
        ["EPC", "ReaderID", "AntennaID", "Timestamp", "RSSI"]
    )
    open_tag, close_tag = f"<{field}>", f"</{field}>"
    start = document.find(open_tag)
    if start < 0:
        return document[: len(document) // 2]
    end = document.find(close_tag, start)
    if end < 0:
        return document[:start]
    return document[:start] + document[end + len(close_tag) :]


class FaultyTransport:
    """A poll link that fails the way real ones do.

    Drains the wrapped interface on each poll, then applies the plan's
    transport faults in a fixed order: reachability, drop, duplicate,
    delay, corruption. A dropped poll keeps the drained batch pending —
    the reader's buffer still holds it, so a retry recovers the data
    (which is exactly what :class:`~repro.reader.supervisor.SupervisedReader`
    exploits). A reader *crash with restart* instead wipes whatever was
    still unread at restart time.
    """

    def __init__(
        self,
        interface: PolledInterface,
        reader_id: str,
        plan: Optional[FaultPlan] = None,
        rng: Optional[RandomStream] = None,
    ) -> None:
        self._interface = interface
        self._reader_id = reader_id
        self._plan = plan
        self._rng = rng if rng is not None else RandomStream(0)
        self._pending: List[TagReadEvent] = []
        self._wiped_through = 0.0

    @property
    def reader_id(self) -> str:
        return self._reader_id

    def poll(self, now: float) -> str:
        """Return the tag-list XML for everything due at ``now``.

        Raises
        ------
        ReaderUnreachable
            While the plan has the reader crashed or hung.
        TransportTimeout
            When the plan drops this poll (the batch stays buffered).
        """
        plan = self._plan
        if plan is None:
            return self._interface.poll(now)
        if plan.reader_down(self._reader_id, now):
            raise ReaderUnreachable(
                f"reader {self._reader_id!r} is not answering at t={now:.3f}"
            )
        self._apply_restart_loss(now)
        batch = self._pending + parse_tag_list(self._interface.poll(now))
        self._pending = []
        fault = plan.poll_fault_for(self._reader_id)
        if fault is not None:
            if self._rng.bernoulli(fault.drop_probability):
                # Response lost in transit; the reader keeps its buffer.
                self._pending = batch
                raise TransportTimeout(
                    f"poll to {self._reader_id!r} timed out at t={now:.3f}"
                )
            if self._rng.bernoulli(fault.duplicate_probability):
                batch = batch + batch
            if self._rng.bernoulli(fault.delay_probability):
                horizon = now - fault.delay_s
                self._pending = [e for e in batch if e.time > horizon]
                batch = [e for e in batch if e.time <= horizon]
        document = render_tag_list(batch)
        corruption = plan.wire_corruption_for(self._reader_id)
        if corruption is not None and self._rng.bernoulli(
            corruption.probability
        ):
            # The mangled bytes go out, but the reader's buffer has
            # already been drained — keep the batch pending so a retry
            # (re-poll) can still deliver it intact.
            self._pending = batch
            return corrupt_document(document, corruption.mode, self._rng)
        return document

    def _apply_restart_loss(self, now: float) -> None:
        """Discard buffered reads lost to a crash+restart we just crossed."""
        assert self._plan is not None
        for crash in self._plan.crash_restarts(self._reader_id):
            restart = crash.restart_at_s or 0.0
            if restart <= self._wiped_through or now < restart:
                continue
            # Everything buffered before the restart died with the
            # process: drain it off the interface and drop it.
            self._interface.poll(restart)
            self._pending = [e for e in self._pending if e.time >= restart]
            self._wiped_through = restart
