"""Deterministic fault plans: what breaks, when, and for how long.

The paper's redundancy arguments (multiple tags, antennas, readers per
portal) are stressed in the reproduction only by RF read-misses; a DSN
deployment also faces *component* faults — a reader crashing mid-pass,
an antenna cable working loose, a forklift radio splattering the band.
A :class:`FaultPlan` is a declarative, seed-reproducible schedule of
such faults. The same plan object is consumed by two layers:

* the pass simulator (:mod:`repro.world.simulation`) consults it for
  physical faults — reader outages, antenna impairments, interference
  bursts — while generating the read trace;
* the transport layer (:mod:`repro.faults.injectors`) consults it for
  wire-level faults — unreachable readers, corrupted XML, dropped or
  delayed or duplicated polls.

Plans are plain frozen data. Randomly *sampled* plans
(:meth:`FaultPlan.sample`) draw every fault time from a named
:class:`~repro.sim.rng.RandomStream`, so an experiment replays
bit-for-bit from its root seed.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..sim.rng import RandomStream


class FaultPlanError(ValueError):
    """Raised for inconsistent fault specifications."""


def _require_time(value: float, what: str) -> None:
    if value < 0.0 or not math.isfinite(value):
        raise FaultPlanError(f"{what} must be finite and >= 0, got {value!r}")


def _require_probability(value: float, what: str) -> None:
    if not 0.0 <= value <= 1.0:
        raise FaultPlanError(f"{what} must be in [0, 1], got {value!r}")


# -- fault specifications --------------------------------------------------


@dataclass(frozen=True)
class ReaderCrash:
    """The reader process dies at ``at_s``; optionally restarts later.

    A restart wipes the reader's unread buffer (the AR400 keeps its tag
    list in RAM), which is what distinguishes a crash from a
    :class:`ReaderHang`: after a hang clears, buffered reads are still
    there to drain.
    """

    reader_id: str
    at_s: float
    restart_at_s: Optional[float] = None

    def __post_init__(self) -> None:
        _require_time(self.at_s, "crash time")
        if self.restart_at_s is not None and self.restart_at_s <= self.at_s:
            raise FaultPlanError(
                f"restart at {self.restart_at_s!r} must come after the "
                f"crash at {self.at_s!r}"
            )

    @property
    def down_until(self) -> float:
        return math.inf if self.restart_at_s is None else self.restart_at_s


@dataclass(frozen=True)
class ReaderHang:
    """Firmware wedge: no inventory and no poll responses for a window."""

    reader_id: str
    at_s: float
    duration_s: float

    def __post_init__(self) -> None:
        _require_time(self.at_s, "hang time")
        if self.duration_s <= 0.0:
            raise FaultPlanError(
                f"hang duration must be positive, got {self.duration_s!r}"
            )

    @property
    def end_s(self) -> float:
        return self.at_s + self.duration_s


@dataclass(frozen=True)
class AntennaFault:
    """One antenna port is impaired during [start_s, end_s).

    ``gain_penalty_db`` of ``None`` means total silence (cable cut or
    connector failure); a finite value models detune or water ingress —
    the port still radiates, just ``gain_penalty_db`` weaker.
    """

    reader_id: str
    antenna_id: str
    start_s: float
    end_s: float = math.inf
    gain_penalty_db: Optional[float] = None

    def __post_init__(self) -> None:
        _require_time(self.start_s, "antenna fault start")
        if self.end_s <= self.start_s:
            raise FaultPlanError(
                f"antenna fault window [{self.start_s!r}, {self.end_s!r}) "
                "is empty"
            )
        if self.gain_penalty_db is not None and self.gain_penalty_db <= 0.0:
            raise FaultPlanError(
                "gain penalty must be positive dB (or None for silence), "
                f"got {self.gain_penalty_db!r}"
            )

    @property
    def silent(self) -> bool:
        return self.gain_penalty_db is None


@dataclass(frozen=True)
class InterferenceBurst:
    """Ambient in-band interference raising every reader's receive floor."""

    start_s: float
    end_s: float
    power_dbm: float

    def __post_init__(self) -> None:
        _require_time(self.start_s, "burst start")
        if self.end_s <= self.start_s:
            raise FaultPlanError(
                f"burst window [{self.start_s!r}, {self.end_s!r}) is empty"
            )
        if not -120.0 <= self.power_dbm <= 30.0:
            raise FaultPlanError(
                f"burst power {self.power_dbm!r} dBm outside a plausible "
                "-120..30 range"
            )


@dataclass(frozen=True)
class WireCorruption:
    """Each poll response is corrupted with some probability.

    Modes mirror how an HTTP/XML transport actually fails:

    * ``"truncate"`` — the connection dies mid-body;
    * ``"garble"`` — bytes flip in transit (bad serial link, proxy bug);
    * ``"drop_field"`` — a field goes missing (firmware version skew).
    """

    MODES = ("truncate", "garble", "drop_field")

    reader_id: str
    probability: float
    mode: str = "truncate"

    def __post_init__(self) -> None:
        _require_probability(self.probability, "corruption probability")
        if self.mode not in self.MODES:
            raise FaultPlanError(
                f"unknown corruption mode {self.mode!r}; pick from {self.MODES}"
            )


@dataclass(frozen=True)
class PollFault:
    """Transport-level poll trouble: drops, delays, duplicate delivery."""

    reader_id: str
    drop_probability: float = 0.0
    delay_probability: float = 0.0
    delay_s: float = 0.5
    duplicate_probability: float = 0.0

    def __post_init__(self) -> None:
        _require_probability(self.drop_probability, "drop probability")
        _require_probability(self.delay_probability, "delay probability")
        _require_probability(self.duplicate_probability, "duplicate probability")
        if self.delay_s < 0.0:
            raise FaultPlanError(
                f"delay must be non-negative, got {self.delay_s!r}"
            )


# -- coverage accounting ---------------------------------------------------


def _merge_intervals(
    intervals: List[Tuple[float, float]]
) -> List[Tuple[float, float]]:
    """Union of half-open intervals, sorted and non-overlapping."""
    merged: List[Tuple[float, float]] = []
    for start, end in sorted(intervals):
        if merged and start <= merged[-1][1]:
            merged[-1] = (merged[-1][0], max(merged[-1][1], end))
        else:
            merged.append((start, end))
    return merged


def _clipped_length(
    intervals: List[Tuple[float, float]], duration: float
) -> float:
    total = 0.0
    for start, end in _merge_intervals(intervals):
        lo = max(0.0, start)
        hi = min(duration, end)
        if hi > lo:
            total += hi - lo
    return total


@dataclass(frozen=True)
class AntennaCoverage:
    """How much of a pass one antenna actually watched."""

    reader_id: str
    antenna_id: str
    #: Fraction of the pass during which this port could read at all.
    live_fraction: float
    #: Fraction during which it was radiating but gain-impaired.
    impaired_fraction: float = 0.0

    @property
    def degraded(self) -> bool:
        return self.live_fraction < 1.0 or self.impaired_fraction > 0.0


@dataclass(frozen=True)
class CoverageReport:
    """Per-antenna liveness over one observation window.

    This is the artifact that lets the back-end distinguish "the object
    was absent" from "the infrastructure was blind": a pass observed
    with a downed antenna reports reduced coverage, and every tracking
    decision made from it carries that reduced confidence.
    """

    duration_s: float
    antennas: Tuple[AntennaCoverage, ...]
    interference_fraction: float = 0.0

    @property
    def live_fraction(self) -> float:
        """Mean antenna liveness — 1.0 means the portal never blinked."""
        if not self.antennas:
            return 1.0
        return sum(a.live_fraction for a in self.antennas) / len(self.antennas)

    @property
    def degraded(self) -> bool:
        return (
            any(a.degraded for a in self.antennas)
            or self.interference_fraction > 0.0
        )

    def for_reader(self, reader_id: str) -> List[AntennaCoverage]:
        return [a for a in self.antennas if a.reader_id == reader_id]

    @staticmethod
    def full(
        antennas: Sequence[Tuple[str, str]], duration_s: float
    ) -> "CoverageReport":
        """The no-fault report: every antenna live for the whole pass."""
        return CoverageReport(
            duration_s=duration_s,
            antennas=tuple(
                AntennaCoverage(reader_id, antenna_id, 1.0)
                for reader_id, antenna_id in antennas
            ),
        )


# -- the plan --------------------------------------------------------------


@dataclass(frozen=True)
class FaultPlan:
    """A complete, declarative fault schedule for one experiment run."""

    crashes: Tuple[ReaderCrash, ...] = ()
    hangs: Tuple[ReaderHang, ...] = ()
    antenna_faults: Tuple[AntennaFault, ...] = ()
    interference_bursts: Tuple[InterferenceBurst, ...] = ()
    wire_corruptions: Tuple[WireCorruption, ...] = ()
    poll_faults: Tuple[PollFault, ...] = ()

    def __post_init__(self) -> None:
        seen_wire = set()
        for corruption in self.wire_corruptions:
            if corruption.reader_id in seen_wire:
                raise FaultPlanError(
                    "multiple wire corruptions for reader "
                    f"{corruption.reader_id!r}; merge them into one"
                )
            seen_wire.add(corruption.reader_id)
        seen_poll = set()
        for fault in self.poll_faults:
            if fault.reader_id in seen_poll:
                raise FaultPlanError(
                    "multiple poll faults for reader "
                    f"{fault.reader_id!r}; merge them into one"
                )
            seen_poll.add(fault.reader_id)

    @property
    def is_empty(self) -> bool:
        return not (
            self.crashes
            or self.hangs
            or self.antenna_faults
            or self.interference_bursts
            or self.wire_corruptions
            or self.poll_faults
        )

    # -- point queries (used per dwell / per poll) -------------------------

    def reader_down(self, reader_id: str, t: float) -> bool:
        """Is the reader dead or wedged at time ``t``?"""
        for crash in self.crashes:
            if crash.reader_id == reader_id and crash.at_s <= t < crash.down_until:
                return True
        for hang in self.hangs:
            if hang.reader_id == reader_id and hang.at_s <= t < hang.end_s:
                return True
        return False

    def reader_outages(self, reader_id: str) -> List[Tuple[float, float]]:
        """Merged [start, end) windows during which the reader is down."""
        windows = [
            (c.at_s, c.down_until)
            for c in self.crashes
            if c.reader_id == reader_id
        ] + [(h.at_s, h.end_s) for h in self.hangs if h.reader_id == reader_id]
        return _merge_intervals(windows)

    def crash_restarts(self, reader_id: str) -> List[ReaderCrash]:
        """Crashes of this reader that eventually restart (buffer loss)."""
        return sorted(
            (
                c
                for c in self.crashes
                if c.reader_id == reader_id and c.restart_at_s is not None
            ),
            key=lambda c: c.at_s,
        )

    def antenna_state(
        self, reader_id: str, antenna_id: str, t: float
    ) -> Tuple[bool, float]:
        """(silent, gain_penalty_db) for one port at time ``t``."""
        penalty = 0.0
        for fault in self.antenna_faults:
            if (
                fault.reader_id == reader_id
                and fault.antenna_id == antenna_id
                and fault.start_s <= t < fault.end_s
            ):
                if fault.silent:
                    return True, 0.0
                penalty += fault.gain_penalty_db or 0.0
        return False, penalty

    def interference_dbm_at(self, t: float) -> Optional[float]:
        """Strongest active ambient burst at ``t``, or None when quiet."""
        active = [
            b.power_dbm
            for b in self.interference_bursts
            if b.start_s <= t < b.end_s
        ]
        return max(active) if active else None

    def wire_corruption_for(self, reader_id: str) -> Optional[WireCorruption]:
        for corruption in self.wire_corruptions:
            if corruption.reader_id == reader_id:
                return corruption
        return None

    def poll_fault_for(self, reader_id: str) -> Optional[PollFault]:
        for fault in self.poll_faults:
            if fault.reader_id == reader_id:
                return fault
        return None

    # -- coverage ----------------------------------------------------------

    def coverage_report(
        self, antennas: Sequence[Tuple[str, str]], duration_s: float
    ) -> CoverageReport:
        """What fraction of ``[0, duration_s)`` each port was actually live.

        A port is blind while its reader is down *or* a silent antenna
        fault covers it; gain-impaired (but radiating) windows are
        reported separately.
        """
        if duration_s <= 0.0:
            raise FaultPlanError(
                f"duration must be positive, got {duration_s!r}"
            )
        entries: List[AntennaCoverage] = []
        for reader_id, antenna_id in antennas:
            blind = list(self.reader_outages(reader_id))
            impaired: List[Tuple[float, float]] = []
            for fault in self.antenna_faults:
                if (
                    fault.reader_id != reader_id
                    or fault.antenna_id != antenna_id
                ):
                    continue
                window = (fault.start_s, fault.end_s)
                if fault.silent:
                    blind.append(window)
                else:
                    impaired.append(window)
            blind_s = _clipped_length(blind, duration_s)
            impaired_s = _clipped_length(impaired, duration_s)
            entries.append(
                AntennaCoverage(
                    reader_id=reader_id,
                    antenna_id=antenna_id,
                    live_fraction=1.0 - blind_s / duration_s,
                    impaired_fraction=impaired_s / duration_s,
                )
            )
        burst_windows = [
            (b.start_s, b.end_s) for b in self.interference_bursts
        ]
        return CoverageReport(
            duration_s=duration_s,
            antennas=tuple(entries),
            interference_fraction=(
                _clipped_length(burst_windows, duration_s) / duration_s
            ),
        )

    # -- sampling ----------------------------------------------------------

    @staticmethod
    def sample(
        stream: RandomStream,
        reader_ids: Sequence[str],
        duration_s: float,
        crash_probability: float = 0.0,
        restart_probability: float = 0.0,
        hang_probability: float = 0.0,
        hang_duration_s: float = 1.0,
        antenna_silence_probability: float = 0.0,
        antennas: Sequence[Tuple[str, str]] = (),
        burst_probability: float = 0.0,
        burst_power_dbm: float = -50.0,
        burst_duration_s: float = 1.0,
    ) -> "FaultPlan":
        """Draw a random plan from a named stream — deterministic per seed.

        Every fault fires independently per component with the given
        probability; times are uniform over the pass. Because all draws
        come from ``stream``, re-running with the same root seed and the
        same arguments reproduces the identical plan.
        """
        _require_probability(crash_probability, "crash probability")
        _require_probability(restart_probability, "restart probability")
        _require_probability(hang_probability, "hang probability")
        _require_probability(
            antenna_silence_probability, "antenna silence probability"
        )
        _require_probability(burst_probability, "burst probability")
        if duration_s <= 0.0:
            raise FaultPlanError(
                f"duration must be positive, got {duration_s!r}"
            )
        crashes: List[ReaderCrash] = []
        hangs: List[ReaderHang] = []
        antenna_faults: List[AntennaFault] = []
        bursts: List[InterferenceBurst] = []
        for reader_id in reader_ids:
            if stream.bernoulli(crash_probability):
                at = stream.uniform(0.0, duration_s)
                restart: Optional[float] = None
                if stream.bernoulli(restart_probability):
                    restart = at + stream.uniform(
                        0.1, max(0.2, duration_s - at)
                    )
                crashes.append(ReaderCrash(reader_id, at, restart))
            if stream.bernoulli(hang_probability):
                at = stream.uniform(0.0, duration_s)
                hangs.append(ReaderHang(reader_id, at, hang_duration_s))
        for reader_id, antenna_id in antennas:
            if stream.bernoulli(antenna_silence_probability):
                start = stream.uniform(0.0, duration_s)
                antenna_faults.append(
                    AntennaFault(reader_id, antenna_id, start)
                )
        if stream.bernoulli(burst_probability):
            start = stream.uniform(0.0, duration_s)
            bursts.append(
                InterferenceBurst(
                    start, start + burst_duration_s, burst_power_dbm
                )
            )
        return FaultPlan(
            crashes=tuple(crashes),
            hangs=tuple(hangs),
            antenna_faults=tuple(antenna_faults),
            interference_bursts=tuple(bursts),
        )
