"""Deterministic fault injection: plans, schedules, and injectors."""

from .injectors import FaultyTransport, corrupt_document
from .plan import (
    AntennaCoverage,
    AntennaFault,
    CoverageReport,
    FaultPlan,
    FaultPlanError,
    InterferenceBurst,
    PollFault,
    ReaderCrash,
    ReaderHang,
    WireCorruption,
)

__all__ = [
    "AntennaCoverage",
    "AntennaFault",
    "CoverageReport",
    "FaultPlan",
    "FaultPlanError",
    "FaultyTransport",
    "InterferenceBurst",
    "PollFault",
    "ReaderCrash",
    "ReaderHang",
    "WireCorruption",
    "corrupt_document",
]
