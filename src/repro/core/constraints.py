"""Constraint-based missed-read correction (Inoue et al., ARES 2006).

The paper's related work cites a complementary software technique: use
real-world constraints to *infer* reads the RF layer missed.

* **Route constraint** — objects move along known paths; an object seen
  at checkpoint A and later at checkpoint C must have passed B, so the
  missed B read can be filled in.
* **Accompany constraint** — objects known to travel as a group (a
  pallet's cases) are all present wherever enough of the group is
  seen, so group members missing from a read can be recovered.

Implemented here as a post-processing layer over read traces so the
benchmarks can quantify how much software correction adds on top of
physical redundancy.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Mapping, Optional, Sequence, Set, Tuple


@dataclass(frozen=True)
class Observation:
    """An object sighting: (object_id, checkpoint, time)."""

    object_id: str
    checkpoint: str
    time: float


class RouteConstraint:
    """A known linear route of checkpoints (e.g. dock -> belt -> gate).

    If an object is observed at two checkpoints of the route, it must
    have traversed every checkpoint between them; those intermediate
    sightings are recovered with interpolated timestamps.
    """

    def __init__(self, checkpoints: Sequence[str]) -> None:
        if len(checkpoints) < 2:
            raise ValueError("a route needs at least two checkpoints")
        if len(set(checkpoints)) != len(checkpoints):
            raise ValueError(f"duplicate checkpoints in route: {checkpoints}")
        self._order: Dict[str, int] = {
            name: i for i, name in enumerate(checkpoints)
        }
        self._checkpoints = tuple(checkpoints)

    @property
    def checkpoints(self) -> Tuple[str, ...]:
        return self._checkpoints

    def position_of(self, checkpoint: str) -> int:
        try:
            return self._order[checkpoint]
        except KeyError:
            raise KeyError(
                f"checkpoint {checkpoint!r} not on route {self._checkpoints}"
            ) from None

    def recover(self, observations: Sequence[Observation]) -> List[Observation]:
        """Fill in missed intermediate checkpoints per object.

        Returns the recovered (inferred) observations only, with times
        linearly interpolated between the bracketing real sightings.
        """
        by_object: Dict[str, List[Observation]] = {}
        for obs in observations:
            if obs.checkpoint in self._order:
                by_object.setdefault(obs.object_id, []).append(obs)
        recovered: List[Observation] = []
        for object_id, sightings in by_object.items():
            ordered = sorted(sightings, key=lambda o: o.time)
            seen_positions = {self.position_of(o.checkpoint) for o in ordered}
            for earlier, later in zip(ordered, ordered[1:]):
                p0 = self.position_of(earlier.checkpoint)
                p1 = self.position_of(later.checkpoint)
                if p1 <= p0 + 1:
                    continue
                span = p1 - p0
                for missing in range(p0 + 1, p1):
                    if missing in seen_positions:
                        continue
                    frac = (missing - p0) / span
                    recovered.append(
                        Observation(
                            object_id=object_id,
                            checkpoint=self._checkpoints[missing],
                            time=earlier.time
                            + frac * (later.time - earlier.time),
                        )
                    )
                    seen_positions.add(missing)
        return recovered


class AccompanyConstraint:
    """Known groupings of objects that move together.

    When at least ``quorum_fraction`` of a group is sighted at a
    checkpoint within ``window_s``, the rest of the group is inferred
    present there too.
    """

    def __init__(
        self,
        groups: Mapping[str, Sequence[str]],
        quorum_fraction: float = 0.5,
        window_s: float = 5.0,
    ) -> None:
        if not groups:
            raise ValueError("need at least one group")
        if not 0.0 < quorum_fraction <= 1.0:
            raise ValueError(
                f"quorum must be in (0, 1], got {quorum_fraction!r}"
            )
        if window_s <= 0.0:
            raise ValueError(f"window must be positive, got {window_s!r}")
        self._groups: Dict[str, FrozenSet[str]] = {
            name: frozenset(members) for name, members in groups.items()
        }
        for name, members in self._groups.items():
            if not members:
                raise ValueError(f"group {name!r} is empty")
        self._quorum = quorum_fraction
        self._window = window_s

    def recover(self, observations: Sequence[Observation]) -> List[Observation]:
        """Infer sightings of unseen group members.

        A group's presence at a checkpoint is attested by the sightings
        of its members within one window; if the quorum is met, missing
        members are inferred at the window's median time.
        """
        recovered: List[Observation] = []
        for group_name, members in self._groups.items():
            # Sightings of this group's members, per checkpoint.
            per_checkpoint: Dict[str, List[Observation]] = {}
            for obs in observations:
                if obs.object_id in members:
                    per_checkpoint.setdefault(obs.checkpoint, []).append(obs)
            for checkpoint, sightings in per_checkpoint.items():
                ordered = sorted(sightings, key=lambda o: o.time)
                # Slide a window over the sightings; use the earliest
                # window that meets the quorum.
                for start in range(len(ordered)):
                    window = [
                        o
                        for o in ordered[start:]
                        if o.time - ordered[start].time <= self._window
                    ]
                    seen_ids = {o.object_id for o in window}
                    if len(seen_ids) / len(members) >= self._quorum:
                        times = sorted(o.time for o in window)
                        median = times[len(times) // 2]
                        for missing in sorted(members - seen_ids):
                            recovered.append(
                                Observation(missing, checkpoint, median)
                            )
                        break
        return recovered


@dataclass
class ConstraintPipeline:
    """Apply route and accompany constraints until a fixed point.

    Accompany inference can enable route inference (a recovered pallet
    member now has two route sightings) and vice versa, so the pipeline
    iterates until no new observation appears.
    """

    routes: List[RouteConstraint] = field(default_factory=list)
    accompany: List[AccompanyConstraint] = field(default_factory=list)
    max_iterations: int = 10

    def correct(
        self, observations: Sequence[Observation]
    ) -> Tuple[List[Observation], List[Observation]]:
        """Returns (all observations incl. inferred, inferred only)."""
        known: Set[Tuple[str, str]] = {
            (o.object_id, o.checkpoint) for o in observations
        }
        current: List[Observation] = list(observations)
        inferred: List[Observation] = []
        for _ in range(self.max_iterations):
            new: List[Observation] = []
            for constraint in list(self.routes) + list(self.accompany):
                for obs in constraint.recover(current):
                    key = (obs.object_id, obs.checkpoint)
                    if key not in known:
                        known.add(key)
                        new.append(obs)
            if not new:
                break
            current.extend(new)
            inferred.extend(new)
        return current, inferred
