"""The paper's analytical redundancy model and redundancy planning.

Section 4 defines every (tag, antenna) combination covering an object
as a **read opportunity** and, assuming independence, predicts the
object tracking reliability of a redundant configuration as

    R_C = 1 - (1 - P_1)(1 - P_2) ... (1 - P_n)

This module implements that model, its inverse (how much redundancy do
I need for a target reliability?), and the bookkeeping for enumerating
read opportunities of tag/antenna/reader-level redundancy schemes. The
independence assumption is knowingly optimistic — the paper's own
2-antenna measurement (86%) undershoots its model (96%) because both
antennas see the same blocked geometry — and the simulator quantifies
that gap (see the correlation ablation benchmark).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from itertools import product
from typing import Dict, Iterable, List, Mapping, Sequence, Tuple


def combined_reliability(opportunity_reliabilities: Sequence[float]) -> float:
    """The paper's R_C: probability at least one opportunity succeeds.

    Raises
    ------
    ValueError
        If no opportunities are given or any probability is outside
        [0, 1].
    """
    if not opportunity_reliabilities:
        raise ValueError("need at least one read opportunity")
    miss = 1.0
    for p in opportunity_reliabilities:
        if not 0.0 <= p <= 1.0:
            raise ValueError(f"probability {p!r} outside [0, 1]")
        miss *= 1.0 - p
    return 1.0 - miss


def combined_reliability_correlated(
    opportunity_reliabilities: Sequence[float], correlation: float
) -> float:
    """R_C under pairwise-correlated failures (a simple common-cause mix).

    With probability ``correlation`` all opportunities share one fate
    (governed by the *best* single opportunity); with probability
    ``1 - correlation`` they fail independently. ``correlation = 0``
    recovers the paper's model; ``correlation = 1`` means redundancy
    adds nothing. The simulator's measured gap between R_M and R_C for
    multi-antenna setups corresponds to an effective correlation, which
    the ablation benchmark extracts.
    """
    if not 0.0 <= correlation <= 1.0:
        raise ValueError(f"correlation must be in [0, 1], got {correlation!r}")
    independent = combined_reliability(opportunity_reliabilities)
    best = max(opportunity_reliabilities)
    return correlation * best + (1.0 - correlation) * independent


def opportunities_needed(
    single_reliability: float, target_reliability: float
) -> int:
    """Minimum number of independent opportunities to reach a target.

    Inverts R_C for identical opportunities:
    ``n >= log(1 - target) / log(1 - p)``.

    Raises
    ------
    ValueError
        If ``single_reliability`` is 0 (no amount of redundancy helps)
        or the probabilities are out of range.
    """
    if not 0.0 < single_reliability <= 1.0:
        raise ValueError(
            "single-opportunity reliability must be in (0, 1], got "
            f"{single_reliability!r}"
        )
    if not 0.0 <= target_reliability < 1.0:
        raise ValueError(
            f"target must be in [0, 1), got {target_reliability!r}"
        )
    if single_reliability >= target_reliability:
        return 1
    if single_reliability == 1.0:
        return 1
    n = math.log(1.0 - target_reliability) / math.log(1.0 - single_reliability)
    return max(1, int(math.ceil(n - 1e-12)))


@dataclass(frozen=True)
class ReadOpportunity:
    """One (tag placement, antenna) combination with its reliability."""

    tag_label: str
    antenna_id: str
    reliability: float

    def __post_init__(self) -> None:
        if not 0.0 <= self.reliability <= 1.0:
            raise ValueError(
                f"reliability must be in [0, 1], got {self.reliability!r}"
            )


@dataclass(frozen=True)
class RedundancyConfiguration:
    """A named redundancy scheme: which tags, which antennas.

    ``opportunity_table`` maps (tag_label, antenna_id) to the measured
    or modelled single-opportunity reliability; schemes are compared by
    enumerating their opportunities through the R_C model.
    """

    name: str
    tag_labels: Tuple[str, ...]
    antenna_ids: Tuple[str, ...]

    def __post_init__(self) -> None:
        if not self.tag_labels:
            raise ValueError("configuration needs at least one tag")
        if not self.antenna_ids:
            raise ValueError("configuration needs at least one antenna")

    @property
    def opportunity_count(self) -> int:
        return len(self.tag_labels) * len(self.antenna_ids)

    def opportunities(
        self, opportunity_table: Mapping[Tuple[str, str], float]
    ) -> List[ReadOpportunity]:
        """Enumerate the read opportunities with their reliabilities.

        Raises
        ------
        KeyError
            If the table lacks an entry for any (tag, antenna) pair.
        """
        result = []
        for tag_label, antenna_id in product(self.tag_labels, self.antenna_ids):
            key = (tag_label, antenna_id)
            if key not in opportunity_table:
                raise KeyError(
                    f"no reliability for opportunity {key!r} in table"
                )
            result.append(
                ReadOpportunity(tag_label, antenna_id, opportunity_table[key])
            )
        return result

    def expected_reliability(
        self, opportunity_table: Mapping[Tuple[str, str], float]
    ) -> float:
        """R_C of this configuration under the paper's independence model."""
        return combined_reliability(
            [o.reliability for o in self.opportunities(opportunity_table)]
        )


def uniform_opportunity_table(
    tag_reliabilities: Mapping[str, float], antenna_ids: Sequence[str]
) -> Dict[Tuple[str, str], float]:
    """Table where every antenna sees each tag with the same reliability.

    The paper's R_C columns are computed this way: the per-placement
    reliabilities of Section 3 reused for each antenna of the portal.
    """
    if not antenna_ids:
        raise ValueError("need at least one antenna id")
    return {
        (tag, antenna): p
        for tag, p in tag_reliabilities.items()
        for antenna in antenna_ids
    }


def marginal_gain(current: Sequence[float], additional: float) -> float:
    """Reliability gained by adding one more opportunity.

    Useful for planners deciding whether another tag is worth its cost:
    the marginal gain shrinks geometrically with each addition.
    """
    before = combined_reliability(current) if current else 0.0
    after = combined_reliability(list(current) + [additional])
    return after - before
