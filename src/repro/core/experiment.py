"""Repeated-trial experiment runner.

The paper's methodology is uniform: fix a physical configuration,
repeat the pass 10-40 times, report means and quartiles. This module
is that loop — seeded, labelled, and aggregation-ready — shared by all
scenarios and benchmarks.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Callable, Dict, Generic, List, Optional, Sequence, TypeVar

from ..sim.rng import SeedSequence
from .reliability import CountDistribution, ReliabilityEstimate

T = TypeVar("T")

#: Default root seed for every experiment; benchmarks override per run.
DEFAULT_SEED = 20070625  # DSN 2007, Edinburgh, 25 June


def stable_hash(text: str) -> int:
    """A process-independent 31-bit hash for deriving sub-seeds.

    Python's built-in ``hash()`` is salted per interpreter process, so
    using it for seed derivation silently breaks reproducibility across
    runs; every scenario derives its per-configuration seeds through
    this instead.
    """
    digest = hashlib.sha256(text.encode("utf-8")).digest()
    return int.from_bytes(digest[:4], "big") & 0x7FFFFFFF


@dataclass
class TrialSet(Generic[T]):
    """Results of running one configuration ``n`` times."""

    label: str
    outcomes: List[T] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.outcomes)

    def map(self, fn: Callable[[T], float]) -> List[float]:
        return [fn(o) for o in self.outcomes]

    def success_estimate(
        self, predicate: Callable[[T], bool]
    ) -> ReliabilityEstimate:
        """Bernoulli estimate over a per-trial success predicate."""
        return ReliabilityEstimate.from_outcomes(
            [predicate(o) for o in self.outcomes]
        )

    def count_distribution(
        self, counter: Callable[[T], int], total: int
    ) -> CountDistribution:
        """"x of N read" distribution, for Figure 2/4-style results."""
        return CountDistribution(
            counts=tuple(counter(o) for o in self.outcomes), total_tags=total
        )


def run_trials(
    label: str,
    trial_fn: Callable[[SeedSequence, int], T],
    repetitions: int,
    seed: int = DEFAULT_SEED,
) -> TrialSet[T]:
    """Run ``trial_fn`` ``repetitions`` times with per-trial seeding.

    ``trial_fn(seeds, trial_index)`` receives the experiment's seed
    container and its repetition index; everything stochastic inside
    must derive from those two so that re-running with the same seed
    reproduces the result exactly.
    """
    if repetitions < 1:
        raise ValueError(f"repetitions must be >= 1, got {repetitions!r}")
    seeds = SeedSequence(seed)
    trial_set: TrialSet[T] = TrialSet(label=label)
    for trial in range(repetitions):
        trial_set.outcomes.append(trial_fn(seeds, trial))
    return trial_set


def sweep(
    label_fn: Callable[[float], str],
    values: Sequence[float],
    trial_fn_factory: Callable[[float], Callable[[SeedSequence, int], T]],
    repetitions: int,
    seed: int = DEFAULT_SEED,
) -> Dict[float, TrialSet[T]]:
    """Run a parameter sweep: one :func:`run_trials` per value.

    Each sweep point derives its own seed from the root seed and the
    parameter value, keeping points statistically independent while the
    whole sweep stays reproducible.
    """
    results: Dict[float, TrialSet[T]] = {}
    for value in values:
        point_seed = seed ^ stable_hash(repr(round(value, 9)))
        results[value] = run_trials(
            label_fn(value), trial_fn_factory(value), repetitions, seed=point_seed
        )
    return results
