"""Repeated-trial experiment runner.

The paper's methodology is uniform: fix a physical configuration,
repeat the pass 10-40 times, report means and quartiles. This module
is that loop — seeded, labelled, and aggregation-ready — shared by all
scenarios and benchmarks.
"""

from __future__ import annotations

import hashlib
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Callable, Dict, Generic, List, Optional, Sequence, Tuple, TypeVar

from ..obs.metrics import summarise_timer
from ..sim.rng import SeedSequence
from .parallel import (
    execute_timed_trials,
    gather_timed_trials,
    resolve_workers,
    submit_timed_trials,
    task_is_picklable,
)
from .reliability import CountDistribution, ReliabilityEstimate

T = TypeVar("T")

#: Default root seed for every experiment; benchmarks override per run.
DEFAULT_SEED = 20070625  # DSN 2007, Edinburgh, 25 June


def stable_hash(text: str) -> int:
    """A process-independent 31-bit hash for deriving sub-seeds.

    Python's built-in ``hash()`` is salted per interpreter process, so
    using it for seed derivation silently breaks reproducibility across
    runs; every scenario derives its per-configuration seeds through
    this instead.
    """
    digest = hashlib.sha256(text.encode("utf-8")).digest()
    return int.from_bytes(digest[:4], "big") & 0x7FFFFFFF


@dataclass
class TrialSet(Generic[T]):
    """Results of running one configuration ``n`` times."""

    label: str
    outcomes: List[T] = field(default_factory=list)
    #: Wall time of each trial, in trial-index order — measured where
    #: the trial ran (inside the worker, for parallel loops) and
    #: shipped back with the outcomes. Excluded from equality: two runs
    #: with identical outcomes are the same experiment however long the
    #: machine took.
    trial_seconds: List[float] = field(default_factory=list, compare=False)

    def __len__(self) -> int:
        return len(self.outcomes)

    def timing_summary(self) -> Dict[str, float]:
        """count / mean / p50 / p95 of the per-trial wall times."""
        return summarise_timer(self.trial_seconds)

    def map(self, fn: Callable[[T], float]) -> List[float]:
        return [fn(o) for o in self.outcomes]

    def success_estimate(
        self, predicate: Callable[[T], bool]
    ) -> ReliabilityEstimate:
        """Bernoulli estimate over a per-trial success predicate."""
        return ReliabilityEstimate.from_outcomes(
            [predicate(o) for o in self.outcomes]
        )

    def count_distribution(
        self, counter: Callable[[T], int], total: int
    ) -> CountDistribution:
        """"x of N read" distribution, for Figure 2/4-style results."""
        return CountDistribution(
            counts=tuple(counter(o) for o in self.outcomes), total_tags=total
        )


def run_trials(
    label: str,
    trial_fn: Callable[[SeedSequence, int], T],
    repetitions: int,
    seed: int = DEFAULT_SEED,
    workers: Optional[int] = None,
) -> TrialSet[T]:
    """Run ``trial_fn`` ``repetitions`` times with per-trial seeding.

    ``trial_fn(seeds, trial_index)`` receives the experiment's seed
    container and its repetition index; everything stochastic inside
    must derive from those two so that re-running with the same seed
    reproduces the result exactly.

    ``workers`` fans the trial loop out over a process pool (``None``
    defers to the ``REPRO_WORKERS`` environment variable; unset means
    serial). Because per-trial streams are derived statelessly from
    ``(seed, name, trial)``, the parallel outcomes are **bit-identical**
    to the serial loop, in trial-index order. Trial callables that
    cannot be pickled (closures) silently run serially; use the trial
    task dataclasses (e.g. :class:`~repro.core.parallel.PassTrialTask`)
    to make a workload parallel-capable.
    """
    if repetitions < 1:
        raise ValueError(f"repetitions must be >= 1, got {repetitions!r}")
    effective = resolve_workers(workers)
    if effective > 1 and task_is_picklable(trial_fn):
        outcomes, seconds = execute_timed_trials(
            trial_fn, repetitions, seed, effective
        )
        return TrialSet(label=label, outcomes=outcomes, trial_seconds=seconds)
    seeds = SeedSequence(seed)
    trial_set: TrialSet[T] = TrialSet(label=label)
    for trial in range(repetitions):
        began = time.perf_counter()
        trial_set.outcomes.append(trial_fn(seeds, trial))
        trial_set.trial_seconds.append(time.perf_counter() - began)
    return trial_set


def sweep(
    label_fn: Callable[[float], str],
    values: Sequence[float],
    trial_fn_factory: Callable[[float], Callable[[SeedSequence, int], T]],
    repetitions: int,
    seed: int = DEFAULT_SEED,
    workers: Optional[int] = None,
) -> Dict[float, TrialSet[T]]:
    """Run a parameter sweep: one :func:`run_trials` per value.

    Each sweep point derives its own seed from the root seed and the
    parameter value, keeping points statistically independent while the
    whole sweep stays reproducible. Two sweep values that collide after
    rounding to 9 decimals would share a seed (and, if exactly equal,
    silently overwrite each other's results), so duplicates raise
    :class:`ValueError`.

    With ``workers`` (or ``REPRO_WORKERS``) set and picklable trial
    tasks, every (value, trial) pair across the whole sweep fans out
    over one shared process pool, so narrow sweeps with few repetitions
    per point still saturate the machine.
    """
    points: List[Tuple[float, int, Callable[[SeedSequence, int], T]]] = []
    seen: Dict[str, float] = {}
    for value in values:
        key = repr(round(value, 9))
        if key in seen:
            raise ValueError(
                f"sweep values {seen[key]!r} and {value!r} collide after "
                f"round(value, 9); sweep points must be distinct"
            )
        seen[key] = value
        point_seed = seed ^ stable_hash(key)
        points.append((value, point_seed, trial_fn_factory(value)))

    effective = resolve_workers(workers)
    results: Dict[float, TrialSet[T]] = {}
    if effective > 1 and all(task_is_picklable(fn) for _, _, fn in points):
        # One pool for the whole sweep: submit every point's chunks up
        # front, then collect in order.
        with ProcessPoolExecutor(max_workers=effective) as pool:
            submitted = [
                (
                    value,
                    submit_timed_trials(
                        pool, fn, repetitions, point_seed, effective
                    ),
                )
                for value, point_seed, fn in points
            ]
            for value, futures in submitted:
                outcomes, seconds = gather_timed_trials(futures)
                results[value] = TrialSet(
                    label=label_fn(value),
                    outcomes=outcomes,
                    trial_seconds=seconds,
                )
        return results
    for value, point_seed, fn in points:
        results[value] = run_trials(
            label_fn(value), fn, repetitions, seed=point_seed
        )
    return results
