"""Deployment planner: invert the redundancy model.

The paper's conclusion — "simple reliability techniques, especially
using multiple tags per object, can significantly improve RFID system
reliability to near 100%" — begs the operational question: *how much*
redundancy does a deployment need? This planner answers it from the
R_C model plus per-unit costs, choosing the cheapest (tags, antennas)
combination that clears a target tracking reliability.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from .redundancy import combined_reliability


@dataclass(frozen=True)
class CostModel:
    """Per-unit costs for planning.

    Defaults reflect the paper's era: tags a few cents at volume
    (the paper footnotes $0.05/tag), antennas and cabling in the
    hundreds of dollars, readers over a thousand.
    """

    cost_per_tag: float = 0.05
    cost_per_antenna: float = 300.0
    cost_per_reader: float = 1500.0
    objects_per_deployment: int = 1_000_000

    def total_cost(self, tags_per_object: int, antennas: int, readers: int = 1) -> float:
        """Total deployment cost of one configuration."""
        if min(tags_per_object, antennas, readers) < 1:
            raise ValueError("all counts must be >= 1")
        return (
            tags_per_object * self.cost_per_tag * self.objects_per_deployment
            + antennas * self.cost_per_antenna
            + readers * self.cost_per_reader
        )


@dataclass(frozen=True)
class PlanOption:
    """One candidate configuration with its predicted reliability and cost."""

    tags_per_object: int
    antennas: int
    predicted_reliability: float
    cost: float
    placements: Tuple[str, ...]


class DeploymentPlanner:
    """Chooses redundancy levels for a target tracking reliability.

    Parameters
    ----------
    placement_reliabilities:
        Single-antenna read reliability per available placement, best
        placements first when ordered by value (the planner always
        fills the best placements first, mirroring the paper's advice
        to avoid worst-case locations).
    cost_model:
        Unit economics.
    antenna_efficiency:
        Discount applied to opportunities added by extra antennas, to
        reflect the measured shortfall of antenna-level redundancy
        versus the independence model (paper Table 3: measured 86%
        against calculated 96%). 1.0 reproduces the paper's pure R_C.
    """

    def __init__(
        self,
        placement_reliabilities: Mapping[str, float],
        cost_model: Optional[CostModel] = None,
        antenna_efficiency: float = 0.7,
    ) -> None:
        if not placement_reliabilities:
            raise ValueError("need at least one placement")
        for name, p in placement_reliabilities.items():
            if not 0.0 <= p <= 1.0:
                raise ValueError(
                    f"reliability for {name!r} must be in [0, 1], got {p!r}"
                )
        if not 0.0 < antenna_efficiency <= 1.0:
            raise ValueError(
                f"antenna efficiency must be in (0, 1], got {antenna_efficiency!r}"
            )
        self._placements = dict(
            sorted(
                placement_reliabilities.items(),
                key=lambda kv: kv[1],
                reverse=True,
            )
        )
        self._cost_model = cost_model or CostModel()
        self._antenna_efficiency = antenna_efficiency

    def predict(self, tags_per_object: int, antennas: int) -> float:
        """Predicted tracking reliability of a configuration.

        The first antenna contributes full opportunities; each extra
        antenna contributes opportunities discounted by the antenna
        efficiency (correlated-view penalty).
        """
        if tags_per_object < 1 or antennas < 1:
            raise ValueError("counts must be >= 1")
        if tags_per_object > len(self._placements):
            raise ValueError(
                f"only {len(self._placements)} placements available, "
                f"asked for {tags_per_object} tags"
            )
        chosen = list(self._placements.values())[:tags_per_object]
        ps: List[float] = []
        for p in chosen:
            ps.append(p)
            for _ in range(antennas - 1):
                ps.append(p * self._antenna_efficiency)
        return combined_reliability(ps)

    def enumerate_options(
        self, max_tags: Optional[int] = None, max_antennas: int = 4
    ) -> List[PlanOption]:
        """All configurations up to the given limits, cheapest first."""
        limit_tags = min(
            max_tags if max_tags is not None else len(self._placements),
            len(self._placements),
        )
        options: List[PlanOption] = []
        names = list(self._placements.keys())
        for tags in range(1, limit_tags + 1):
            for antennas in range(1, max_antennas + 1):
                options.append(
                    PlanOption(
                        tags_per_object=tags,
                        antennas=antennas,
                        predicted_reliability=self.predict(tags, antennas),
                        cost=self._cost_model.total_cost(tags, antennas),
                        placements=tuple(names[:tags]),
                    )
                )
        return sorted(options, key=lambda o: o.cost)

    def plan(
        self,
        target_reliability: float,
        max_tags: Optional[int] = None,
        max_antennas: int = 4,
    ) -> PlanOption:
        """Cheapest configuration that clears the target.

        Raises
        ------
        ValueError
            If no in-limit configuration reaches the target.
        """
        if not 0.0 <= target_reliability < 1.0:
            raise ValueError(
                f"target must be in [0, 1), got {target_reliability!r}"
            )
        for option in self.enumerate_options(max_tags, max_antennas):
            if option.predicted_reliability >= target_reliability:
                return option
        raise ValueError(
            f"no configuration within limits reaches {target_reliability:.3f}; "
            "add placements or relax the target"
        )
