"""Parameter sensitivity analysis for calibrated models.

The calibration in :mod:`repro.core.calibration` pins a handful of
physical parameters the paper never reported. A reproduction is only
trustworthy if its conclusions do not hinge on those choices, so this
module provides the tooling to quantify that: perturb one parameter at
a time, re-evaluate a metric, and report elasticities.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Mapping, Sequence, Tuple

#: A metric: maps a parameter assignment to a scalar outcome.
MetricFn = Callable[[Mapping[str, float]], float]


@dataclass(frozen=True)
class ParameterSpec:
    """One tunable parameter and its plausible range."""

    name: str
    nominal: float
    low: float
    high: float

    def __post_init__(self) -> None:
        if not self.low <= self.nominal <= self.high:
            raise ValueError(
                f"{self.name}: nominal {self.nominal} outside "
                f"[{self.low}, {self.high}]"
            )


@dataclass(frozen=True)
class SensitivityResult:
    """Metric response to one parameter's excursion."""

    parameter: str
    metric_nominal: float
    metric_low: float
    metric_high: float

    @property
    def swing(self) -> float:
        """Total metric movement across the parameter's range."""
        return abs(self.metric_high - self.metric_low)

    @property
    def elasticity(self) -> float:
        """Swing normalised by the nominal metric (0 if nominal is 0)."""
        if self.metric_nominal == 0.0:
            return float("inf") if self.swing > 0 else 0.0
        return self.swing / abs(self.metric_nominal)


def one_at_a_time(
    specs: Sequence[ParameterSpec],
    metric: MetricFn,
) -> List[SensitivityResult]:
    """Classic OAT sweep: hold everything nominal, excursion one knob.

    Returns results sorted by swing, largest first — the parameters the
    conclusion actually depends on float to the top.
    """
    if not specs:
        raise ValueError("need at least one parameter")
    names = [s.name for s in specs]
    if len(set(names)) != len(names):
        raise ValueError(f"duplicate parameter names: {names}")
    nominal = {s.name: s.nominal for s in specs}
    base = metric(nominal)
    results = []
    for spec in specs:
        low_point = dict(nominal)
        low_point[spec.name] = spec.low
        high_point = dict(nominal)
        high_point[spec.name] = spec.high
        results.append(
            SensitivityResult(
                parameter=spec.name,
                metric_nominal=base,
                metric_low=metric(low_point),
                metric_high=metric(high_point),
            )
        )
    return sorted(results, key=lambda r: r.swing, reverse=True)


def tornado_rows(
    results: Sequence[SensitivityResult],
) -> List[Tuple[str, float, float]]:
    """(parameter, delta_low, delta_high) rows for a tornado chart."""
    return [
        (
            r.parameter,
            r.metric_low - r.metric_nominal,
            r.metric_high - r.metric_nominal,
        )
        for r in results
    ]


def conclusion_robust(
    results: Sequence[SensitivityResult],
    predicate: Callable[[float], bool],
) -> bool:
    """Does a qualitative conclusion hold at every excursion?

    ``predicate`` tests the metric (e.g. ``lambda m: m >= 0.9``); the
    conclusion is robust when nominal, low, and high all satisfy it for
    every parameter.
    """
    if not results:
        raise ValueError("need at least one result")
    for r in results:
        if not (
            predicate(r.metric_nominal)
            and predicate(r.metric_low)
            and predicate(r.metric_high)
        ):
            return False
    return True
