"""Cascaded (macro) tagging baseline (Lindsay & Reade, 2003).

The related-work alternative to identical-tag redundancy: tag the
*containers* (case, pallet, truckload) with easier-to-read "macro"
tags that carry a manifest of the item tags inside. Reading one macro
tag then implies the presence of every listed item.

The paper deliberately restricts itself to identical tags; this module
implements the cascade so benchmarks can compare the two approaches:
cascade wins on read reliability (macro tags are bigger/better placed)
but fails *jointly* — one missed macro tag loses the whole manifest —
and requires manifest maintenance.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Mapping, Optional, Sequence, Set

from .redundancy import combined_reliability


@dataclass(frozen=True)
class MacroTag:
    """A container-level tag carrying a manifest of contained EPCs."""

    epc: str
    level: str
    manifest: FrozenSet[str]

    def __post_init__(self) -> None:
        if not self.manifest:
            raise ValueError(f"macro tag {self.epc} has an empty manifest")
        if self.epc in self.manifest:
            raise ValueError(f"macro tag {self.epc} lists itself")


@dataclass
class CascadeHierarchy:
    """A containment hierarchy: items inside cases inside pallets, etc.

    ``macro_tags`` may nest: a pallet macro's manifest can list case
    macro EPCs; resolution expands manifests transitively.
    """

    macro_tags: Dict[str, MacroTag] = field(default_factory=dict)

    def add(self, macro: MacroTag) -> None:
        if macro.epc in self.macro_tags:
            raise ValueError(f"duplicate macro tag {macro.epc}")
        self.macro_tags[macro.epc] = macro

    def resolve(self, epc: str, _seen: Optional[Set[str]] = None) -> FrozenSet[str]:
        """All item EPCs implied by reading ``epc`` (transitively).

        A plain item tag implies only itself; a macro tag implies every
        item in its manifest, expanding nested macros. Cycles raise.
        """
        seen = _seen if _seen is not None else set()
        if epc in seen:
            raise ValueError(f"cycle in cascade hierarchy at {epc}")
        if epc not in self.macro_tags:
            return frozenset({epc})
        seen.add(epc)
        items: Set[str] = set()
        for member in self.macro_tags[epc].manifest:
            items |= self.resolve(member, seen)
        seen.discard(epc)
        return frozenset(items)

    def identified_items(self, read_epcs: Set[str]) -> FrozenSet[str]:
        """Every item identified by a set of raw reads, macros expanded."""
        items: Set[str] = set()
        for epc in read_epcs:
            items |= self.resolve(epc)
        return frozenset(items)


def cascade_item_reliability(
    item_reliability: float,
    macro_reliability: float,
    macros_covering_item: int = 1,
) -> float:
    """Analytical item-identification reliability under a cascade.

    An item is identified when its own tag reads *or* any covering
    macro tag reads — the same R_C combination, but note the failure
    correlation across items sharing a macro: this formula gives the
    per-item marginal, not the joint distribution.
    """
    if macros_covering_item < 0:
        raise ValueError(
            f"macro count must be non-negative, got {macros_covering_item!r}"
        )
    ps = [item_reliability] + [macro_reliability] * macros_covering_item
    return combined_reliability(ps)


def expected_items_lost_jointly(
    items_per_case: int,
    item_reliability: float,
    macro_reliability: float,
) -> float:
    """Expected number of items missed *together* when a macro read fails.

    The cascade's weakness: conditioned on the macro missing, all
    ``items_per_case`` items fall back on their individual (weak) tags
    simultaneously, so losses are bursty. Returns the expected count of
    items missed in the macro-miss branch, weighted by its probability.
    """
    if items_per_case < 1:
        raise ValueError(f"items per case must be >= 1, got {items_per_case!r}")
    for name, p in (("item", item_reliability), ("macro", macro_reliability)):
        if not 0.0 <= p <= 1.0:
            raise ValueError(f"{name} reliability must be in [0, 1], got {p!r}")
    p_macro_miss = 1.0 - macro_reliability
    expected_missed_items = items_per_case * (1.0 - item_reliability)
    return p_macro_miss * expected_missed_items
