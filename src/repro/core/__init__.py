"""The paper's contribution: reliability analysis and redundancy techniques."""

from .calibration import (
    CALIBRATED_TX_POWER_DBM,
    PaperSetup,
    paper_link_environment,
    paper_simulation_parameters,
)
from .cascade import (
    CascadeHierarchy,
    MacroTag,
    cascade_item_reliability,
    expected_items_lost_jointly,
)
from .constraints import (
    AccompanyConstraint,
    ConstraintPipeline,
    Observation,
    RouteConstraint,
)
from .experiment import DEFAULT_SEED, TrialSet, run_trials, sweep
from .parallel import (
    REPRO_WORKERS_ENV,
    PassTrialTask,
    execute_timed_trials,
    execute_trials,
    resolve_workers,
    task_is_picklable,
)
from .model import (
    EmpiricalReliabilityModel,
    HUMAN_ONE_SUBJECT_RELIABILITY,
    HUMAN_TWO_SUBJECT_RELIABILITY,
    OBJECT_AVERAGE_RELIABILITY,
    OBJECT_LOCATION_RELIABILITY,
    OBJECT_REDUNDANCY_SUMMARY,
    OBJECT_TRACKING_BASELINE,
    READ_RANGE_MEAN_TAGS,
)
from .planner import CostModel, DeploymentPlanner, PlanOption
from .redundancy import (
    ReadOpportunity,
    RedundancyConfiguration,
    combined_reliability,
    combined_reliability_correlated,
    marginal_gain,
    opportunities_needed,
    uniform_opportunity_table,
)
from .reliability import (
    CountDistribution,
    ReliabilityEstimate,
    per_location_reliability,
    tracking_success,
)

from .sensitivity import (
    ParameterSpec,
    SensitivityResult,
    conclusion_robust,
    one_at_a_time,
    tornado_rows,
)

from .localization import (
    LandmarcLocator,
    LocalizationError,
    LocationEstimate,
    ReferenceTag,
    grid_references,
    signal_distance,
)

from .certification import SequentialCertifier, Verdict

__all__ = [
    "SequentialCertifier",
    "Verdict",

    "LandmarcLocator",
    "LocalizationError",
    "LocationEstimate",
    "ReferenceTag",
    "grid_references",
    "signal_distance",

    "ParameterSpec",
    "SensitivityResult",
    "conclusion_robust",
    "one_at_a_time",
    "tornado_rows",

    "CALIBRATED_TX_POWER_DBM",
    "PaperSetup",
    "paper_link_environment",
    "paper_simulation_parameters",
    "CascadeHierarchy",
    "MacroTag",
    "cascade_item_reliability",
    "expected_items_lost_jointly",
    "AccompanyConstraint",
    "ConstraintPipeline",
    "Observation",
    "RouteConstraint",
    "DEFAULT_SEED",
    "TrialSet",
    "run_trials",
    "sweep",
    "REPRO_WORKERS_ENV",
    "PassTrialTask",
    "execute_timed_trials",
    "execute_trials",
    "resolve_workers",
    "task_is_picklable",
    "EmpiricalReliabilityModel",
    "HUMAN_ONE_SUBJECT_RELIABILITY",
    "HUMAN_TWO_SUBJECT_RELIABILITY",
    "OBJECT_AVERAGE_RELIABILITY",
    "OBJECT_LOCATION_RELIABILITY",
    "OBJECT_REDUNDANCY_SUMMARY",
    "OBJECT_TRACKING_BASELINE",
    "READ_RANGE_MEAN_TAGS",
    "CostModel",
    "DeploymentPlanner",
    "PlanOption",
    "ReadOpportunity",
    "RedundancyConfiguration",
    "combined_reliability",
    "combined_reliability_correlated",
    "marginal_gain",
    "opportunities_needed",
    "uniform_opportunity_table",
    "CountDistribution",
    "ReliabilityEstimate",
    "per_location_reliability",
    "tracking_success",
]
