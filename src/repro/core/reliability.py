"""Reliability definitions and estimators (paper Section 2.1).

* **read reliability** — probability that a reader successfully detects
  and identifies a *tag* while it is in the read range of one of the
  reader's antennas;
* **tracking reliability** — probability that the system detects and
  identifies an *object* present in a designated area. An object may
  carry several tags, so tracking reliability is a property of the
  object, not of any single tag.

Estimates carry their trial counts so tables can report uncertainty;
the paper reports means and upper/lower quartiles over repetitions,
and we add Wilson score intervals for the Bernoulli rates.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple


@dataclass(frozen=True)
class ReliabilityEstimate:
    """A Bernoulli success-rate estimate from repeated trials."""

    successes: int
    trials: int

    def __post_init__(self) -> None:
        if self.trials <= 0:
            raise ValueError(f"trials must be positive, got {self.trials!r}")
        if not 0 <= self.successes <= self.trials:
            raise ValueError(
                f"successes {self.successes} out of range 0..{self.trials}"
            )

    @property
    def rate(self) -> float:
        """Point estimate (fraction of successful trials)."""
        return self.successes / self.trials

    @property
    def percent(self) -> float:
        """Point estimate in percent, as the paper's tables report."""
        return 100.0 * self.rate

    def wilson_interval(self, z: float = 1.96) -> Tuple[float, float]:
        """Wilson score interval for the underlying probability.

        Preferred over the normal approximation because the paper's
        rates sit near 0 and 1, where Wald intervals misbehave.
        """
        n = float(self.trials)
        p = self.rate
        denom = 1.0 + z * z / n
        centre = (p + z * z / (2.0 * n)) / denom
        half = (z / denom) * math.sqrt(p * (1.0 - p) / n + z * z / (4.0 * n * n))
        return (max(0.0, centre - half), min(1.0, centre + half))

    def combined_with(self, other: "ReliabilityEstimate") -> "ReliabilityEstimate":
        """Pool two estimates of the same quantity."""
        return ReliabilityEstimate(
            self.successes + other.successes, self.trials + other.trials
        )

    @staticmethod
    def from_outcomes(outcomes: Sequence[bool]) -> "ReliabilityEstimate":
        """Build from a list of per-trial success booleans."""
        if not outcomes:
            raise ValueError("need at least one outcome")
        return ReliabilityEstimate(sum(1 for o in outcomes if o), len(outcomes))

    @staticmethod
    def pooled(estimates: Sequence["ReliabilityEstimate"]) -> "ReliabilityEstimate":
        """Pool several estimates (e.g. average over placements)."""
        if not estimates:
            raise ValueError("need at least one estimate")
        return ReliabilityEstimate(
            sum(e.successes for e in estimates),
            sum(e.trials for e in estimates),
        )


@dataclass(frozen=True)
class CountDistribution:
    """Distribution of "tags read out of N" across trials (Figs 2 and 4)."""

    counts: Tuple[int, ...]
    total_tags: int

    def __post_init__(self) -> None:
        if not self.counts:
            raise ValueError("need at least one trial count")
        if self.total_tags <= 0:
            raise ValueError(
                f"total tags must be positive, got {self.total_tags!r}"
            )
        for c in self.counts:
            if not 0 <= c <= self.total_tags:
                raise ValueError(
                    f"count {c} out of range 0..{self.total_tags}"
                )

    @property
    def mean(self) -> float:
        return sum(self.counts) / len(self.counts)

    @property
    def mean_fraction(self) -> float:
        return self.mean / self.total_tags

    def quantile(self, q: float) -> float:
        """Linear-interpolated quantile of the per-trial counts."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q!r}")
        ordered = sorted(self.counts)
        if len(ordered) == 1:
            return float(ordered[0])
        pos = q * (len(ordered) - 1)
        lo = int(math.floor(pos))
        hi = int(math.ceil(pos))
        frac = pos - lo
        return ordered[lo] * (1.0 - frac) + ordered[hi] * frac

    @property
    def lower_quartile(self) -> float:
        return self.quantile(0.25)

    @property
    def upper_quartile(self) -> float:
        return self.quantile(0.75)

    def as_reliability(self) -> ReliabilityEstimate:
        """Interpret each tag-read in each trial as a Bernoulli draw."""
        return ReliabilityEstimate(
            successes=sum(self.counts),
            trials=self.total_tags * len(self.counts),
        )


def tracking_success(read_epcs: set, object_epcs: Sequence[str]) -> bool:
    """Did the system identify the object (any of its tags read)?

    This is the paper's tracking-reliability event: one successful tag
    read suffices to identify an object carrying several tags.
    """
    if not object_epcs:
        raise ValueError("object carries no tags")
    return any(epc in read_epcs for epc in object_epcs)


def per_location_reliability(
    outcomes_by_location: Dict[str, Sequence[bool]],
) -> Dict[str, ReliabilityEstimate]:
    """Convenience for building Table 1/2-style per-placement rows."""
    if not outcomes_by_location:
        raise ValueError("no locations given")
    return {
        location: ReliabilityEstimate.from_outcomes(outcomes)
        for location, outcomes in outcomes_by_location.items()
    }
