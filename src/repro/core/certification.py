"""Sequential reliability certification (Wald's SPRT).

Deployment validation questions are sequential by nature: "keep sending
pallets through the portal until we're confident it meets (or misses)
the 99% SLA". Fixed-sample testing wastes passes; Wald's sequential
probability ratio test gives the same error guarantees with far fewer
trials on clear-cut portals.

Hypotheses: H0: p >= p_good (portal acceptable) vs H1: p <= p_bad.
After each pass, update the log-likelihood ratio and stop when either
boundary is crossed.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass, field
from typing import Iterable, Optional


class Verdict(enum.Enum):
    ACCEPT = "accept"        # portal meets the good threshold
    REJECT = "reject"        # portal at/below the bad threshold
    CONTINUE = "continue"    # keep testing


@dataclass
class SequentialCertifier:
    """Wald SPRT over Bernoulli tracking outcomes.

    Parameters
    ----------
    p_good:
        Reliability the portal must meet (H0 acceptance level).
    p_bad:
        Reliability considered a clear failure (H1). Must be < p_good;
        the gap is the "indifference region" where either verdict is
        tolerable.
    alpha:
        Probability of rejecting a good portal (false alarm).
    beta:
        Probability of accepting a bad portal (miss).
    """

    p_good: float = 0.99
    p_bad: float = 0.95
    alpha: float = 0.05
    beta: float = 0.05
    _llr: float = field(default=0.0, init=False)
    _trials: int = field(default=0, init=False)
    _successes: int = field(default=0, init=False)

    def __post_init__(self) -> None:
        if not 0.0 < self.p_bad < self.p_good < 1.0:
            raise ValueError(
                f"need 0 < p_bad < p_good < 1, got {self.p_bad}, {self.p_good}"
            )
        for name in ("alpha", "beta"):
            value = getattr(self, name)
            if not 0.0 < value < 0.5:
                raise ValueError(f"{name} must be in (0, 0.5), got {value!r}")

    # -- boundaries ---------------------------------------------------------

    @property
    def upper_boundary(self) -> float:
        """LLR above which H1 (bad) is declared: log((1-beta)/alpha)."""
        return math.log((1.0 - self.beta) / self.alpha)

    @property
    def lower_boundary(self) -> float:
        """LLR below which H0 (good) is declared: log(beta/(1-alpha))."""
        return math.log(self.beta / (1.0 - self.alpha))

    # -- updates ------------------------------------------------------------

    def observe(self, success: bool) -> Verdict:
        """Fold one pass outcome into the test and return the state."""
        if success:
            self._llr += math.log(self.p_bad / self.p_good)
            self._successes += 1
        else:
            self._llr += math.log((1.0 - self.p_bad) / (1.0 - self.p_good))
        self._trials += 1
        return self.verdict()

    def observe_many(self, outcomes: Iterable[bool]) -> Verdict:
        """Fold outcomes until a decision or exhaustion."""
        verdict = self.verdict()
        for outcome in outcomes:
            verdict = self.observe(outcome)
            if verdict is not Verdict.CONTINUE:
                break
        return verdict

    def verdict(self) -> Verdict:
        if self._llr >= self.upper_boundary:
            return Verdict.REJECT
        if self._llr <= self.lower_boundary:
            return Verdict.ACCEPT
        return Verdict.CONTINUE

    # -- reporting ------------------------------------------------------------

    @property
    def trials(self) -> int:
        return self._trials

    @property
    def successes(self) -> int:
        return self._successes

    @property
    def observed_rate(self) -> Optional[float]:
        if self._trials == 0:
            return None
        return self._successes / self._trials

    def expected_trials_if_good(self) -> float:
        """Approximate expected sample size when the true rate is p_good.

        Wald's approximation: E[N] = (L(accept boundary)) / E[step].
        """
        step = self.p_good * math.log(self.p_bad / self.p_good) + (
            1.0 - self.p_good
        ) * math.log((1.0 - self.p_bad) / (1.0 - self.p_good))
        if step == 0.0:
            return float("inf")
        return self.lower_boundary / step

    def reset(self) -> None:
        self._llr = 0.0
        self._trials = 0
        self._successes = 0
