"""Calibrated physical parameters for reproducing the paper's testbed.

The simulator has a handful of free physical parameters the paper does
not (and could not) report: shadowing spread, Rician K-factor, body and
packaging losses, diffraction caps. This module pins them.

Calibration procedure (run once, results frozen here):

1. set the hardware constants to the paper's published setup (30 dBm
   conducted, area antenna ~6 dBic, single-dipole tag, 2006-era chip
   sensitivity around -12 dBm);
2. tune ``ShadowingModel.sigma_db`` and the two-ray floor reflection so
   the 20-tag read-range curve is ~100% at 1 m and decays over 2-9 m
   (paper Figure 2);
3. tune the obstruction cap and body/metal losses so the
   single-antenna, single-tag placements land near Table 1/Table 2;
4. leave every Section 4 (redundancy) experiment untouched — those
   results must *emerge* from the calibrated physics.

The values below are the outcome of that procedure; the calibration
tests in ``tests/core/test_calibration.py`` pin the resulting
single-opportunity reliabilities to the paper's bands so regressions
are caught.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..rf.antenna import DipoleAntenna, PatchAntenna
from ..rf.coupling import CouplingModel
from ..rf.link import LinkEnvironment
from ..rf.propagation import ChannelModel, PathLossModel, RicianFading, ShadowingModel
from ..world.simulation import SimulationParameters

#: Conducted power of the paper's Matrics AR400 at default settings.
CALIBRATED_TX_POWER_DBM = 30.0


def paper_link_environment() -> LinkEnvironment:
    """Link environment matching the paper's hardware."""
    return LinkEnvironment(
        channel=ChannelModel(
            path_loss=PathLossModel(
                use_two_ray=True,
                ground_reflection_coeff=-0.35,
                path_loss_exponent=2.1,
            ),
            shadowing=ShadowingModel(sigma_db=3.0),
            fading=RicianFading(k_factor_db=7.0),
        ),
        reader_antenna=PatchAntenna(boresight_gain_dbi=6.0, rolloff_exponent=2.0),
        tag_antenna=DipoleAntenna(broadside_gain_dbi=2.15),
        # 2006-era Gen 2 chips; modern silicon is ~8 dB better, which is
        # why today's portals outperform the paper's numbers.
        tag_sensitivity_dbm=-13.5,
        reader_sensitivity_dbm=-75.0,
        backscatter_loss_db=5.0,
        cable_loss_db=1.0,
        required_sinr_db=10.0,
    )


def paper_simulation_parameters() -> SimulationParameters:
    """Calibrated simulator knobs (see module docstring for procedure)."""
    return SimulationParameters(
        obstruction_cap_db=25.0,
        k_penalty_per_obstruction=0.5,
        decode_slope_db=1.5,
        capture_probability=0.1,
        tdma_slot_s=0.10,
        coupling=CouplingModel(
            contact_penalty_db=30.0,
            safe_distance_m=0.04,
            falloff_exponent=2.0,
        ),
        reflection_gain_db=4.0,
        reflection_range_m=1.2,
    )


@dataclass(frozen=True)
class PaperSetup:
    """One-stop bundle of the calibrated environment and parameters."""

    tx_power_dbm: float = CALIBRATED_TX_POWER_DBM
    env: LinkEnvironment = field(default_factory=paper_link_environment)
    params: SimulationParameters = field(
        default_factory=paper_simulation_parameters
    )
