"""LANDMARC-style RSSI localization (paper reference [11]).

The paper cites Ni et al.'s LANDMARC for human location sensing with
active RFID: deploy *reference tags* at known positions, measure every
tag's signal strength at several readers, and locate a tracking tag at
the weighted centroid of its k nearest reference tags in
signal-strength space. The insight is that reference tags experience
the same multipath as the tracked tag, so comparing signal vectors
cancels environment effects that would wreck naive path-loss ranging.

Implemented here over our RSSI model so the repository covers the
paper's "room-level accuracy" tracking claim quantitatively
(``tests/core/test_localization.py``).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from ..rf.geometry import Vec3

#: RSSI vector: one reading per reader, keyed by reader id.
SignalVector = Mapping[str, float]


class LocalizationError(ValueError):
    """Raised for inconsistent localization inputs."""


@dataclass(frozen=True)
class ReferenceTag:
    """A tag at a surveyed position with its measured signal vector."""

    tag_id: str
    position: Vec3
    signals: Dict[str, float]

    def __post_init__(self) -> None:
        if not self.signals:
            raise LocalizationError(
                f"reference tag {self.tag_id!r} has no signal readings"
            )


def signal_distance(a: SignalVector, b: SignalVector) -> float:
    """Euclidean distance between signal vectors over shared readers.

    LANDMARC's E_j metric. Readers missing from either vector are
    skipped; at least one shared reader is required.
    """
    shared = set(a) & set(b)
    if not shared:
        raise LocalizationError("signal vectors share no readers")
    return math.sqrt(sum((a[r] - b[r]) ** 2 for r in shared))


@dataclass(frozen=True)
class LocationEstimate:
    """A position estimate with its evidence."""

    position: Vec3
    neighbors: Tuple[str, ...]
    weights: Tuple[float, ...]

    def error_to(self, truth: Vec3) -> float:
        return self.position.distance_to(truth)


class LandmarcLocator:
    """k-nearest-neighbour weighted-centroid locator."""

    def __init__(
        self, references: Sequence[ReferenceTag], k: int = 4
    ) -> None:
        if not references:
            raise LocalizationError("need at least one reference tag")
        if k < 1:
            raise LocalizationError(f"k must be >= 1, got {k!r}")
        ids = [r.tag_id for r in references]
        if len(set(ids)) != len(ids):
            raise LocalizationError(f"duplicate reference tag ids: {ids}")
        self._references = list(references)
        self.k = min(k, len(references))

    def locate(self, signals: SignalVector) -> LocationEstimate:
        """Estimate the position of a tag with signal vector ``signals``.

        Weights follow LANDMARC: w_i = (1/E_i^2) / sum(1/E_j^2), with an
        exact-match shortcut when a reference's distance is ~zero.
        """
        scored: List[Tuple[float, ReferenceTag]] = sorted(
            ((signal_distance(signals, r.signals), r) for r in self._references),
            key=lambda pair: pair[0],
        )
        nearest = scored[: self.k]
        # Exact (or near-exact) match: the tag sits on a reference.
        if nearest[0][0] < 1e-9:
            reference = nearest[0][1]
            return LocationEstimate(
                position=reference.position,
                neighbors=(reference.tag_id,),
                weights=(1.0,),
            )
        inv_squares = [1.0 / (e * e) for e, _ in nearest]
        total = sum(inv_squares)
        weights = [w / total for w in inv_squares]
        x = sum(w * r.position.x for w, (_, r) in zip(weights, nearest))
        y = sum(w * r.position.y for w, (_, r) in zip(weights, nearest))
        z = sum(w * r.position.z for w, (_, r) in zip(weights, nearest))
        return LocationEstimate(
            position=Vec3(x, y, z),
            neighbors=tuple(r.tag_id for _, r in nearest),
            weights=tuple(weights),
        )


def grid_references(
    origin: Vec3,
    columns: int,
    rows: int,
    pitch_m: float,
    signal_fn,
) -> List[ReferenceTag]:
    """Survey a regular reference-tag grid.

    ``signal_fn(position) -> Dict[str, float]`` produces the signal
    vector at a position (in simulation, by evaluating the RSSI model;
    in a real deployment, by measurement).
    """
    if columns < 1 or rows < 1:
        raise LocalizationError("grid must be at least 1x1")
    if pitch_m <= 0:
        raise LocalizationError(f"pitch must be positive, got {pitch_m!r}")
    references = []
    for r in range(rows):
        for c in range(columns):
            position = origin + Vec3(c * pitch_m, 0.0, r * pitch_m)
            references.append(
                ReferenceTag(
                    tag_id=f"ref-{r}-{c}",
                    position=position,
                    signals=dict(signal_fn(position)),
                )
            )
    return references
