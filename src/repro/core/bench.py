"""Recorded performance benchmarks: ``python -m repro bench``.

The ROADMAP's north star is a simulator that runs "as fast as the
hardware allows"; this module is how that is *tracked* rather than
assumed. One invocation measures the hot paths (link-budget
evaluation, the per-pass cache, the read-range search) and a
representative repeat-the-pass workload in serial and parallel, then
writes everything to a machine-readable ``BENCH_<date>.json`` so the
perf trajectory survives across PRs.

The workload numbers double as a determinism check: the parallel run
must reproduce the serial outcomes bit-for-bit (``workload.parity``),
which is the contract :mod:`repro.core.parallel` is built on.
"""

from __future__ import annotations

import datetime as _datetime
import json
import os
import platform
import sys
import time
from typing import Any, Dict, List, Optional

from ..rf.link import (
    LinkEnvironment,
    _boresight_geometry,
    _linear_scan_read_range_m,
    compose_link,
    compute_link_terms,
    evaluate_link,
    free_space_read_range_m,
)
from ..sim.rng import SeedSequence
from .experiment import DEFAULT_SEED, run_trials

#: Workload sizes: (trials, link evaluations) per mode.
_FULL_TRIALS = 16
_QUICK_TRIALS = 4
_FULL_LINK_EVALS = 2000
_QUICK_LINK_EVALS = 200


def _time(fn, iterations: int) -> float:
    """Wall-clock seconds for ``iterations`` calls of ``fn``."""
    start = time.perf_counter()
    for _ in range(iterations):
        fn()
    return time.perf_counter() - start


def _bench_link_budget(link_evals: int) -> Dict[str, Any]:
    """Hot path 1: full link evaluation vs cached-terms composition."""
    env = LinkEnvironment()
    geometry = _boresight_geometry(2.5)
    full_s = _time(
        lambda: evaluate_link(
            env,
            30.0,
            geometry,
            obstruction_loss_db=5.0,
            tag_detuning_db=3.0,
            shadowing_db=-1.5,
            fading_power_gain=0.8,
        ),
        link_evals,
    )
    terms = compute_link_terms(env, geometry)
    cached_s = _time(
        lambda: compose_link(
            env,
            30.0,
            terms,
            obstruction_loss_db=5.0,
            tag_detuning_db=3.0,
            shadowing_db=-1.5,
            fading_power_gain=0.8,
        ),
        link_evals,
    )
    return {
        "iterations": link_evals,
        "evaluate_link_s": full_s,
        "evaluate_link_per_sec": link_evals / full_s if full_s > 0 else None,
        "compose_cached_terms_s": cached_s,
        "compose_cached_terms_per_sec": (
            link_evals / cached_s if cached_s > 0 else None
        ),
        "terms_cache_speedup": full_s / cached_s if cached_s > 0 else None,
    }


def _bench_read_range(quick: bool) -> Dict[str, Any]:
    """Hot path 2: envelope-bisect search vs the legacy linear scan."""
    env = LinkEnvironment()
    step = 0.05 if quick else 0.01
    fast_s = _time(lambda: free_space_read_range_m(env, 30.0, step_m=step), 3)
    scan_s = _time(lambda: _linear_scan_read_range_m(env, 30.0, step_m=step), 3)
    return {
        "step_m": step,
        "bisect_search_s": fast_s / 3.0,
        "linear_scan_s": scan_s / 3.0,
        "speedup": scan_s / fast_s if fast_s > 0 else None,
        "answers_equal": free_space_read_range_m(env, 30.0, step_m=step)
        == _linear_scan_read_range_m(env, 30.0, step_m=step),
    }


def _workload_task():
    """The representative workload: the paper's box cart, front tags."""
    from ..world.objects import BoxFace
    from ..world.portal import single_antenna_portal
    from ..world.scenarios.object_tracking import (
        _make_simulator,
        build_box_cart,
    )
    from .parallel import PassTrialTask

    sim = _make_simulator(single_antenna_portal())
    carrier, _ = build_box_cart([BoxFace.FRONT])
    return sim, PassTrialTask(simulator=sim, carriers=(carrier,))


def _bench_pass_cache(trials: int, seed: int) -> Dict[str, Any]:
    """Hot path 3: the per-pass link cache, on vs off (serial)."""
    sim, task = _workload_task()
    seeds = SeedSequence(seed)

    sim.use_link_cache = True
    start = time.perf_counter()
    cached = [task(seeds, i) for i in range(trials)]
    cached_s = time.perf_counter() - start
    cache_stats = sim._last_cache_stats

    sim.use_link_cache = False
    start = time.perf_counter()
    uncached = [task(seeds, i) for i in range(trials)]
    uncached_s = time.perf_counter() - start
    sim.use_link_cache = True

    return {
        "passes": trials,
        "cached_s": cached_s,
        "cached_passes_per_sec": trials / cached_s if cached_s > 0 else None,
        "uncached_s": uncached_s,
        "uncached_passes_per_sec": (
            trials / uncached_s if uncached_s > 0 else None
        ),
        "cache_speedup": uncached_s / cached_s if cached_s > 0 else None,
        "bit_identical": cached == uncached,
        "last_pass_cache_stats": cache_stats,
    }


def _bench_workload(
    trials: int, workers: int, seed: int
) -> Dict[str, Any]:
    """Serial vs parallel fan-out of the representative workload."""
    _, task = _workload_task()

    start = time.perf_counter()
    serial = run_trials("bench:serial", task, trials, seed=seed, workers=1)
    serial_s = time.perf_counter() - start

    start = time.perf_counter()
    parallel = run_trials(
        "bench:parallel", task, trials, seed=seed, workers=workers
    )
    parallel_s = time.perf_counter() - start

    return {
        "description": (
            "12-box cart, front tags, full portal pass per trial "
            "(paper Table 1 workload)"
        ),
        "trials": trials,
        "serial": {
            "seconds": serial_s,
            "passes_per_sec": trials / serial_s if serial_s > 0 else None,
            "trial_times": serial.timing_summary(),
        },
        "parallel": {
            "workers": workers,
            "seconds": parallel_s,
            "passes_per_sec": trials / parallel_s if parallel_s > 0 else None,
            "trial_times": parallel.timing_summary(),
        },
        "speedup": serial_s / parallel_s if parallel_s > 0 else None,
        "parity": serial.outcomes == parallel.outcomes,
    }


def _bench_obs_overhead(trials: int, seed: int) -> Dict[str, Any]:
    """Observability cost on the Table 1 cart workload, three ways.

    * ``off`` — ``recorder=None``: the hooks reduce to one identity
      test per site; this is the mode every existing experiment runs in
      and the mode the <2% overhead budget applies to.
    * ``metrics`` — a default :class:`~repro.obs.Recorder`: per-pass
      counters, histograms and miss attribution, no event capture.
    * ``full`` — every capture flag on: link waterfalls, slots, RNG
      provenance.

    Read outcomes must be identical in all three modes — recording
    never perturbs the simulation.
    """
    from ..obs import Recorder
    from ..sim.trace import ReadTrace  # noqa: F401  (import cost off the clock)

    sim, task = _workload_task()
    seeds = SeedSequence(seed)

    def _run(recorder) -> Any:
        sim.recorder = recorder
        start = time.perf_counter()
        results = [task(seeds, i) for i in range(trials)]
        elapsed = time.perf_counter() - start
        sim.recorder = None
        return results, elapsed

    off, off_s = _run(None)
    metrics, metrics_s = _run(Recorder())
    full, full_s = _run(
        Recorder(capture_link_budget=True, capture_slots=True, capture_rng=True)
    )

    def _traces(results) -> Any:
        return [r.trace for r in results]

    return {
        "passes": trials,
        "off_s": off_s,
        "off_passes_per_sec": trials / off_s if off_s > 0 else None,
        "metrics_s": metrics_s,
        "metrics_overhead_pct": (
            100.0 * (metrics_s - off_s) / off_s if off_s > 0 else None
        ),
        "full_capture_s": full_s,
        "full_capture_overhead_pct": (
            100.0 * (full_s - off_s) / off_s if off_s > 0 else None
        ),
        "bit_identical": (
            _traces(off) == _traces(metrics) == _traces(full)
        ),
    }


def run_benchmark(
    workers: Optional[int] = None,
    quick: bool = False,
    seed: int = DEFAULT_SEED,
) -> Dict[str, Any]:
    """Run the full bench suite and return the result document."""
    if workers is None:
        workers = min(4, os.cpu_count() or 1)
    workers = max(1, workers)
    trials = _QUICK_TRIALS if quick else _FULL_TRIALS
    link_evals = _QUICK_LINK_EVALS if quick else _FULL_LINK_EVALS

    stages: List[str] = []

    def _stage(name: str) -> None:
        stages.append(name)
        print(f"bench: {name} ...", flush=True)

    _stage("link-budget microbench")
    link = _bench_link_budget(link_evals)
    _stage("read-range search")
    read_range = _bench_read_range(quick)
    _stage("pass cache on/off")
    pass_cache = _bench_pass_cache(max(2, trials // 4), seed)
    _stage("observability overhead")
    obs_overhead = _bench_obs_overhead(max(2, trials // 4), seed)
    _stage(f"workload serial vs {workers}-worker")
    workload = _bench_workload(trials, workers, seed)

    return {
        "meta": {
            "date": _datetime.date.today().isoformat(),  # repro: allow[det-wallclock] names the BENCH_<date>.json artifact; not simulated state
            "python": sys.version.split()[0],
            "platform": platform.platform(),
            "cpu_count": os.cpu_count(),
            "workers": workers,
            "quick": quick,
            "seed": seed,
            "stages": stages,
        },
        "hot_paths": {
            "link_budget": link,
            "read_range_search": read_range,
            "pass_cache": pass_cache,
            "obs_overhead": obs_overhead,
        },
        "workload": workload,
    }


def default_output_path(doc: Dict[str, Any]) -> str:
    """The conventional artifact name: ``BENCH_<date>.json``."""
    return f"BENCH_{doc['meta']['date']}.json"


def write_benchmark(doc: Dict[str, Any], path: Optional[str] = None) -> str:
    """Serialise a bench document; returns the path written."""
    path = path or default_output_path(doc)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(doc, fh, indent=2, sort_keys=False)
        fh.write("\n")
    return path


def summarise(doc: Dict[str, Any]) -> str:
    """A human-readable recap of the numbers that matter."""
    wl = doc["workload"]
    pc = doc["hot_paths"]["pass_cache"]
    lines = [
        f"serial:   {wl['serial']['passes_per_sec']:.2f} passes/s",
        (
            f"parallel: {wl['parallel']['passes_per_sec']:.2f} passes/s "
            f"({wl['parallel']['workers']} workers, "
            f"speedup {wl['speedup']:.2f}x, "
            f"parity={'OK' if wl['parity'] else 'FAIL'})"
        ),
        (
            f"link cache: {pc['cache_speedup']:.2f}x over uncached "
            f"(bit-identical={'OK' if pc['bit_identical'] else 'FAIL'})"
        ),
        (
            f"trial time: p50 {wl['serial']['trial_times']['p50_s'] * 1e3:.1f} ms, "
            f"p95 {wl['serial']['trial_times']['p95_s'] * 1e3:.1f} ms (serial)"
        ),
        (
            "obs overhead: "
            f"{doc['hot_paths']['obs_overhead']['metrics_overhead_pct']:+.1f}% "
            "metrics-only, "
            f"{doc['hot_paths']['obs_overhead']['full_capture_overhead_pct']:+.1f}% "
            "full capture "
            f"(traces identical="
            f"{'OK' if doc['hot_paths']['obs_overhead']['bit_identical'] else 'FAIL'})"
        ),
        (
            f"read-range search: "
            f"{doc['hot_paths']['read_range_search']['speedup']:.1f}x "
            f"over linear scan"
        ),
    ]
    return "\n".join(lines)
