"""Process-pool execution of embarrassingly parallel trial loops.

Every experiment in the paper is "repeat the pass N times and
aggregate", and every random draw inside a trial derives statelessly
from ``(root_seed, stream_name, trial_index)`` via
:meth:`repro.sim.rng.SeedSequence.trial_stream`. Trials therefore share
no mutable state at all: running them in worker processes produces
**bit-identical** outcomes to the serial loop, in any execution order.
This module is the machinery behind ``run_trials(..., workers=N)`` and
``sweep(..., workers=N)``:

* :func:`resolve_workers` — turns an explicit ``workers`` argument or
  the ``REPRO_WORKERS`` environment variable into a worker count
  (``None`` and unset both mean serial);
* :class:`PassTrialTask` — a picklable trial callable wrapping
  :meth:`~repro.world.simulation.PortalPassSimulator.run_pass`, the
  replacement for the scenario-local closures that cannot cross a
  process boundary;
* :func:`execute_trials` / :func:`submit_trials` /
  :func:`gather_trials` — chunked fan-out over a
  :class:`~concurrent.futures.ProcessPoolExecutor`, with results
  collected in trial-index order.

Closures still work everywhere: when a trial callable cannot be
pickled, the harness silently falls back to the serial loop, so
``REPRO_WORKERS`` can be exported globally without breaking ad-hoc
experiments.
"""

from __future__ import annotations

import os
import pickle
import time
from concurrent.futures import Future, ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Callable, List, Optional, Sequence, Tuple, TypeVar

from ..sim.rng import SeedSequence

T = TypeVar("T")

#: Environment variable consulted when ``workers=None``: export
#: ``REPRO_WORKERS=4`` to parallelise every experiment harness call in
#: the process without touching call sites.
REPRO_WORKERS_ENV = "REPRO_WORKERS"


def resolve_workers(workers: Optional[int]) -> int:
    """Effective worker count for a trial loop (1 means serial).

    ``workers=None`` defers to the ``REPRO_WORKERS`` environment
    variable; an unset/empty variable means serial. Explicit values win
    over the environment. ``0`` and ``1`` both mean serial.
    """
    if workers is None:
        raw = os.environ.get(REPRO_WORKERS_ENV, "").strip()
        if not raw:
            return 1
        try:
            workers = int(raw)
        except ValueError:
            raise ValueError(
                f"{REPRO_WORKERS_ENV} must be an integer, got {raw!r}"
            ) from None
    if workers < 0:
        raise ValueError(f"workers must be non-negative, got {workers!r}")
    return max(1, workers)


def task_is_picklable(task: Callable) -> bool:
    """True when ``task`` can cross a process boundary.

    Scenario closures (lambdas, nested functions) fail this check and
    run serially; the dedicated trial-task dataclasses pass it.
    """
    try:
        pickle.dumps(task)
        return True
    except Exception:
        return False


@dataclass(frozen=True)
class PassTrialTask:
    """A picklable trial callable: one seeded portal pass per trial.

    This is the parallel-safe replacement for the per-scenario
    ``def trial(seeds, i): return sim.run_pass([carrier], seeds, i)``
    closures. All fields are plain dataclasses, so the task ships to
    worker processes wholesale; the per-trial
    :class:`~repro.sim.rng.SeedSequence` is reconstructed in the worker
    from the root seed, which is what makes the fan-out bit-identical
    to the serial loop.
    """

    simulator: Any
    carriers: Tuple[Any, ...]
    fault_plan: Any = None

    def __call__(self, seeds: SeedSequence, trial: int) -> Any:
        return self.simulator.run_pass(
            list(self.carriers), seeds, trial, fault_plan=self.fault_plan
        )


def _run_trial_chunk(
    task: Callable[[SeedSequence, int], T],
    root_seed: int,
    start: int,
    stop: int,
) -> List[T]:
    """Worker entry point: run a contiguous block of trial indices.

    A fresh :class:`SeedSequence` is built from the root seed inside
    the worker; because streams are derived statelessly from
    ``(root_seed, name, trial)``, the outcomes match the serial loop
    exactly regardless of which worker runs which block.
    """
    seeds = SeedSequence(root_seed)
    return [task(seeds, trial) for trial in range(start, stop)]


def _run_trial_chunk_timed(
    task: Callable[[SeedSequence, int], T],
    root_seed: int,
    start: int,
    stop: int,
) -> List[Tuple[int, T, float]]:
    """Like :func:`_run_trial_chunk`, pairing each outcome with its
    trial index and wall time in seconds.

    The timing rides home **with the result** — workers share no state
    with the parent, so this is how per-trial latency from a process
    pool reaches the run's metrics registry. Outcomes are unaffected:
    the clock reads bracket the trial call and touch nothing inside it.
    The explicit trial index is what lets :func:`gather_timed_trials`
    re-establish trial order without relying on futures being iterated
    in submission order.
    """
    seeds = SeedSequence(root_seed)
    timed: List[Tuple[int, T, float]] = []
    for trial in range(start, stop):
        began = time.perf_counter()
        outcome = task(seeds, trial)
        timed.append((trial, outcome, time.perf_counter() - began))
    return timed


def _chunk_bounds(repetitions: int, chunks: int) -> List[Tuple[int, int]]:
    """Split ``range(repetitions)`` into at most ``chunks`` contiguous blocks."""
    chunks = max(1, min(chunks, repetitions))
    base, extra = divmod(repetitions, chunks)
    bounds: List[Tuple[int, int]] = []
    start = 0
    for i in range(chunks):
        stop = start + base + (1 if i < extra else 0)
        bounds.append((start, stop))
        start = stop
    return bounds


def submit_trials(
    executor: ProcessPoolExecutor,
    task: Callable[[SeedSequence, int], T],
    repetitions: int,
    root_seed: int,
    chunks: int,
) -> List["Future[List[T]]"]:
    """Submit a trial loop as contiguous chunks; pair with :func:`gather_trials`."""
    return [
        executor.submit(_run_trial_chunk, task, root_seed, start, stop)
        for start, stop in _chunk_bounds(repetitions, chunks)
    ]


def gather_trials(futures: Sequence["Future[List[T]]"]) -> List[T]:
    """Collect chunked results back into trial-index order."""
    outcomes: List[T] = []
    for future in futures:
        outcomes.extend(future.result())
    return outcomes


def execute_trials(
    task: Callable[[SeedSequence, int], T],
    repetitions: int,
    root_seed: int,
    workers: int,
    executor: Optional[ProcessPoolExecutor] = None,
) -> List[T]:
    """Run one trial loop on a process pool, in trial-index order.

    ``executor`` lets a sweep reuse one pool across many values; when
    omitted, a pool of ``workers`` processes is created for this loop
    and torn down afterwards.
    """
    if executor is not None:
        return gather_trials(
            submit_trials(executor, task, repetitions, root_seed, workers)
        )
    with ProcessPoolExecutor(max_workers=workers) as pool:
        return gather_trials(
            submit_trials(pool, task, repetitions, root_seed, workers)
        )


def submit_timed_trials(
    executor: ProcessPoolExecutor,
    task: Callable[[SeedSequence, int], T],
    repetitions: int,
    root_seed: int,
    chunks: int,
) -> List["Future[List[Tuple[int, T, float]]]"]:
    """Timed counterpart of :func:`submit_trials`."""
    return [
        executor.submit(_run_trial_chunk_timed, task, root_seed, start, stop)
        for start, stop in _chunk_bounds(repetitions, chunks)
    ]


def gather_timed_trials(
    futures: Sequence["Future[List[Tuple[int, T, float]]]"],
) -> Tuple[List[T], List[float]]:
    """Collect timed chunks back into (outcomes, seconds), both in
    trial-index order.

    Order is re-established by **sorting on the trial index each chunk
    carries**, not by assuming the futures arrive in submission order —
    so outcomes and their wall times stay aligned with the serial loop
    (``TrialSet.trial_seconds[i]`` belongs to ``outcomes[i]``) no matter
    how the caller sequences or re-collects its futures.
    """
    indexed: List[Tuple[int, T, float]] = []
    for future in futures:
        indexed.extend(future.result())
    indexed.sort(key=lambda item: item[0])
    outcomes = [outcome for _, outcome, _ in indexed]
    seconds = [elapsed for _, _, elapsed in indexed]
    return outcomes, seconds


def execute_timed_trials(
    task: Callable[[SeedSequence, int], T],
    repetitions: int,
    root_seed: int,
    workers: int,
    executor: Optional[ProcessPoolExecutor] = None,
) -> Tuple[List[T], List[float]]:
    """Timed counterpart of :func:`execute_trials`: same outcomes, plus
    each trial's wall time as measured inside its worker."""
    if executor is not None:
        return gather_timed_trials(
            submit_timed_trials(executor, task, repetitions, root_seed, workers)
        )
    with ProcessPoolExecutor(max_workers=workers) as pool:
        return gather_timed_trials(
            submit_timed_trials(pool, task, repetitions, root_seed, workers)
        )
