"""Experiment report assembly and the CLI's single output formatter.

Two jobs live here:

* :func:`emit` — the one exit point every ``python -m repro``
  subcommand routes its results through: a machine-readable payload
  and a human-readable rendering of the *same* data, selected by the
  ``--json`` flag. Centralising the choice keeps the two views from
  drifting apart subcommand by subcommand.
* EXPERIMENTS.md assembly — the benchmark harness writes each
  regenerated table/figure to ``benchmarks/results/<id>.txt``; this
  module assembles those artefacts into the ``EXPERIMENTS.md`` record
  (paper-vs-measured for every table and figure), so the document
  always reflects an actual benchmark run rather than hand-copied
  numbers.
"""

from __future__ import annotations

import json
import os
import sys
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, TextIO, Tuple


def emit(
    payload: Dict[str, Any],
    text: str,
    as_json: bool = False,
    stream: Optional[TextIO] = None,
) -> None:
    """Write one subcommand's result: JSON payload or rendered text.

    ``payload`` and ``text`` must describe the same result — the flag
    only chooses the view. Non-JSON-native values (enums, dataclasses
    left in by accident) fall back to ``str`` rather than crashing a
    finished experiment at print time.
    """
    out = stream if stream is not None else sys.stdout
    if as_json:
        json.dump(payload, out, indent=2, default=str)
        out.write("\n")
    else:
        out.write(text)
        if not text.endswith("\n"):
            out.write("\n")

#: Experiment registry: (result-file stem, paper artefact, one-line gloss).
EXPERIMENT_INDEX: Tuple[Tuple[str, str, str], ...] = (
    (
        "fig2_read_range",
        "Figure 2",
        "Read reliability vs tag-antenna distance (20-tag plane, single reads).",
    ),
    (
        "fig4_orientation_spacing",
        "Figure 4",
        "Tags read vs inter-tag spacing x orientation; minimum safe distance.",
    ),
    (
        "table1_object_location",
        "Table 1",
        "Read reliability per tag location on router boxes.",
    ),
    (
        "table2_human_location",
        "Table 2",
        "Read reliability per waist placement, one and two subjects.",
    ),
    (
        "table3_fig5_object_redundancy",
        "Table 3 / Figure 5",
        "Object-tracking redundancy: R_M vs R_C per configuration.",
    ),
    (
        "table4_human_1antenna",
        "Table 4",
        "Human-tracking redundancy with one antenna (2 and 4 tags).",
    ),
    (
        "table5_human_2antennas",
        "Table 5",
        "Human-tracking redundancy with two antennas (1, 2 and 4 tags).",
    ),
    (
        "fig6_one_subject",
        "Figure 6",
        "One-subject tracking summary, measured vs calculated.",
    ),
    (
        "fig7_two_subjects",
        "Figure 7",
        "Two-subject tracking summary, measured vs calculated.",
    ),
    (
        "sec4_reader_redundancy",
        "Section 4 (text)",
        "Reader-level redundancy backfires without dense-reader mode.",
    ),
    (
        "sec4_antenna_tdma_cost",
        "Section 4 (text)",
        "TDMA cost of a second antenna without blocking; gain with it.",
    ),
    (
        "sec4_read_timing",
        "Section 4 (text)",
        "Air-interface throughput vs the paper's ~0.02 s/tag budget.",
    ),
    (
        "ablation_correlation",
        "Ablation",
        "Effective correlation of antenna vs tag read opportunities.",
    ),
    (
        "ablation_loss_sources",
        "Ablation",
        "Physical vs protocol losses (genie-channel comparison).",
    ),
    (
        "ablation_fading",
        "Ablation",
        "Redundancy conclusion across Rician K-factors.",
    ),
    (
        "ablation_protocols",
        "Ablation",
        "Gen 2 vs framed ALOHA vs binary tree against the physical ceiling.",
    ),
    (
        "ablation_speed",
        "Ablation",
        "Carrier speed vs reliability (dwell starvation).",
    ),
    (
        "related_materials",
        "Related work [12]",
        "Read reliability per tagged content material (conveyor workload).",
    ),
    (
        "related_read_zone",
        "Deployment",
        "Monte-Carlo read-zone map of the baseline portal.",
    ),
    (
        "extension_false_positives",
        "Extension",
        "False positives from an ambient zone; power/distance/Select remedies.",
    ),
    (
        "extension_constraints",
        "Extension",
        "Software constraint correction vs (and with) physical redundancy.",
    ),
    (
        "extension_active_tags",
        "Extension",
        "Active tags (the paper's stated future work): reliability vs battery.",
    ),
    (
        "extension_localization",
        "Extension",
        "LANDMARC RSSI localization (ref [11]): accuracy vs grid and noise.",
    ),
    (
        "extension_tag_designs",
        "Extension",
        "Alternative tag designs vs the paper's placements and economics.",
    ),
    (
        "extension_cascade",
        "Extension",
        "Cascaded macro tags vs identical-tag redundancy (marginal vs bursty).",
    ),
)


@dataclass(frozen=True)
class ExperimentArtifact:
    """One result file resolved against the registry."""

    stem: str
    paper_ref: str
    gloss: str
    content: Optional[str]

    @property
    def available(self) -> bool:
        return self.content is not None


def load_artifacts(results_dir: str) -> List[ExperimentArtifact]:
    """Read every registered result file (missing ones flagged)."""
    artifacts = []
    for stem, paper_ref, gloss in EXPERIMENT_INDEX:
        path = os.path.join(results_dir, f"{stem}.txt")
        content: Optional[str] = None
        if os.path.isfile(path):
            with open(path, "r", encoding="utf-8") as handle:
                content = handle.read().rstrip()
        artifacts.append(ExperimentArtifact(stem, paper_ref, gloss, content))
    return artifacts


def render_experiments_md(
    artifacts: Sequence[ExperimentArtifact],
    preamble: str = "",
) -> str:
    """Assemble the EXPERIMENTS.md body from loaded artefacts."""
    lines: List[str] = [
        "# EXPERIMENTS — paper vs measured",
        "",
        "Generated from `benchmarks/results/` by "
        "`python -m repro.core.report` after running "
        "`pytest benchmarks/ --benchmark-only`.",
        "",
    ]
    if preamble:
        lines += [preamble, ""]
    missing = [a for a in artifacts if not a.available]
    if missing:
        lines.append("**Missing artefacts (benchmarks not yet run):** "
                     + ", ".join(a.stem for a in missing))
        lines.append("")
    for artifact in artifacts:
        lines.append(f"## {artifact.paper_ref} — {artifact.gloss}")
        lines.append("")
        if artifact.available:
            lines.append("```")
            lines.append(artifact.content or "")
            lines.append("```")
        else:
            lines.append("*(no result recorded yet)*")
        lines.append("")
    return "\n".join(lines)


def write_experiments_md(
    results_dir: str, output_path: str, preamble: str = ""
) -> int:
    """Assemble and write EXPERIMENTS.md; returns artefacts included."""
    artifacts = load_artifacts(results_dir)
    text = render_experiments_md(artifacts, preamble=preamble)
    with open(output_path, "w", encoding="utf-8") as handle:
        handle.write(text + "\n")
    return sum(1 for a in artifacts if a.available)


def rebuild_experiments_md() -> Dict[str, Any]:
    """Rebuild EXPERIMENTS.md from the repo's benchmark results.

    Returns a summary payload (output path, results dir, artefact
    counts) for :func:`emit`.
    """
    repo_root = os.path.dirname(
        os.path.dirname(
            os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
        )
    )
    results_dir = os.path.join(repo_root, "benchmarks", "results")
    output = os.path.join(repo_root, "EXPERIMENTS.md")
    preamble = (
        "Absolute percentages are not expected to match the paper exactly "
        "(our substrate is a calibrated simulator, not the authors' lab); "
        "the claims under reproduction are the *shapes*: orderings, "
        "crossovers, which scheme wins and by roughly what factor. Each "
        "benchmark asserts those shapes; this file records the raw rows."
    )
    count = write_experiments_md(results_dir, output, preamble=preamble)
    return {
        "output": output,
        "results_dir": results_dir,
        "artefacts_included": count,
        "artefacts_registered": len(EXPERIMENT_INDEX),
    }


def main() -> None:
    """CLI: rebuild EXPERIMENTS.md from the repo's benchmark results."""
    doc = rebuild_experiments_md()
    print(
        f"EXPERIMENTS.md written with {doc['artefacts_included']} artefacts "
        f"from {doc['results_dir']}"
    )


if __name__ == "__main__":
    main()
