"""The paper's measured reliabilities, as a queryable empirical model.

Two uses:

1. **Oracle for the analytical model** — the paper computes its R_C
   columns by plugging Section 3's measured single-opportunity
   reliabilities into the independence formula. We do exactly the
   same, so the benchmark "Calculated" columns match the paper's
   methodology rather than our simulator's output.
2. **Fast planning** — deployment planners can query expected
   reliability per placement without running the physics simulator.

Every number below is transcribed from the paper (DSN 2007); table and
figure references are in the attribute docstrings.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Sequence, Tuple

from .redundancy import combined_reliability

#: Table 1 — read reliability of a tag per location on a router box
#: (cart pass, 1 m/s, 1 m lane, single antenna).
OBJECT_LOCATION_RELIABILITY: Mapping[str, float] = {
    "front": 0.87,
    "side_closer": 0.83,
    "side_farther": 0.63,
    "top": 0.29,
}

#: The paper's stated per-object average over all locations assuming
#: front=back and top=bottom symmetry.
OBJECT_AVERAGE_RELIABILITY = 0.63

#: Table 2 — read reliability of a tag per waist placement, one subject.
HUMAN_ONE_SUBJECT_RELIABILITY: Mapping[str, float] = {
    "front_back": 0.75,
    "side_closer": 0.90,
    "side_farther": 0.10,
}

#: Table 2 — two subjects walking abreast: (closer, farther) rates.
HUMAN_TWO_SUBJECT_RELIABILITY: Mapping[str, Tuple[float, float]] = {
    "front_back": (0.90, 0.50),
    "side_closer": (0.90, 0.50),
    "side_farther": (0.30, 0.00),
}

#: Section 4.1 quotes the single-antenna, single-tag object *tracking*
#: average as 80% (tracking picks the better half of placements).
OBJECT_TRACKING_BASELINE = 0.80

#: Table 3 — measured (R_M) and calculated (R_C) object-tracking
#: reliability under redundancy. Keys: (antennas, tags_per_object, row).
OBJECT_REDUNDANCY_MEASURED: Mapping[Tuple[int, int, str], Tuple[float, float]] = {
    (2, 1, "front"): (0.92, 0.98),
    (2, 1, "side"): (0.79, 0.94),
    (2, 1, "average"): (0.86, 0.96),
    (1, 2, "front+side(good)"): (0.97, 0.98),
    (1, 2, "front+side(bad)"): (0.96, 0.95),
    (1, 2, "average"): (0.97, 0.97),
    (2, 2, "front+side"): (1.00, 0.999),
}

#: Figure 5 — object tracking summary bars (measured, calculated).
OBJECT_REDUNDANCY_SUMMARY: Mapping[str, Tuple[float, float]] = {
    "1 antenna, 1 tag": (0.80, 0.80),
    "2 antennas, 1 tag": (0.86, 0.96),
    "1 antenna, 2 tags": (0.97, 0.97),
    "2 antennas, 2 tags": (1.00, 0.999),
}

#: Table 4 — human tracking with 1 antenna and redundant tags.
#: Keys: (tags, location) -> (one-subject R_M, one-subject R_C,
#: two-subject closer R_M, two-subject farther R_M, two-subject avg R_M,
#: two-subject closer R_C, two-subject farther R_C, two-subject avg R_C).
HUMAN_1ANTENNA_REDUNDANCY: Mapping[Tuple[int, str], Tuple[float, ...]] = {
    (2, "front_back"): (1.00, 0.94, 1.00, 0.90, 0.95, 0.99, 0.75, 0.88),
    (2, "sides"): (0.93, 0.91, 0.90, 0.50, 0.70, 0.93, 0.50, 0.72),
    (4, "all"): (1.00, 0.995, 1.00, 1.00, 1.00, 0.99, 0.88, 0.94),
}

#: Table 5 — human tracking with 2 antennas.
#: Keys: (tags, location) -> (one-subject R_M, R_C, two-subject R_M, R_C).
HUMAN_2ANTENNA_REDUNDANCY: Mapping[Tuple[int, str], Tuple[float, float, float, float]] = {
    (1, "front_back"): (0.80, 0.94, 0.90, 0.95),
    (1, "side"): (0.90, 0.91, 0.80, 0.78),
    (2, "front_back"): (1.00, 0.996, 1.00, 0.998),
    (2, "sides"): (1.00, 0.992, 0.95, 0.97),
    (4, "all"): (1.00, 1.00, 1.00, 0.999),
}

#: Section 4.2 headline numbers.
HUMAN_TRACKING_1TAG_AVG = 0.63
HUMAN_TRACKING_2TAGS_AVG = 0.96
HUMAN_TRACKING_2SUBJ_1TAG_AVG = 0.56
HUMAN_TRACKING_2SUBJ_2TAGS_AVG = 0.83

#: Figure 2 — approximate mean tags read (out of 20) per distance (m).
#: Digitised from the plot: perfect to 1 m, gradual decay 2-9 m.
READ_RANGE_MEAN_TAGS: Mapping[float, float] = {
    1.0: 20.0,
    2.0: 19.0,
    3.0: 17.5,
    4.0: 15.5,
    5.0: 13.0,
    6.0: 10.0,
    7.0: 7.0,
    8.0: 4.0,
    9.0: 1.5,
    10.0: 0.0,
}

#: Figure 4 — the paper's qualitative findings for spacing/orientation:
#: minimum safe inter-tag spacing in metres per orientation case.
MIN_SAFE_SPACING_M: Mapping[int, float] = {
    1: 0.04,
    2: 0.02,
    3: 0.02,
    4: 0.02,
    5: 0.04,
    6: 0.02,
}

#: Orientation quality factor per Figure 4: fraction of tags read at
#: generous (40 mm) spacing. Cases 1 and 5 (dipole at the antenna) are
#: the paper's worst.
ORIENTATION_QUALITY: Mapping[int, float] = {
    1: 0.35,
    2: 0.95,
    3: 0.90,
    4: 0.85,
    5: 0.30,
    6: 0.85,
}


@dataclass(frozen=True)
class EmpiricalReliabilityModel:
    """Queryable wrapper over the paper's measured tables."""

    object_location: Mapping[str, float] = field(
        default_factory=lambda: dict(OBJECT_LOCATION_RELIABILITY)
    )
    human_one_subject: Mapping[str, float] = field(
        default_factory=lambda: dict(HUMAN_ONE_SUBJECT_RELIABILITY)
    )

    def object_tag_reliability(self, location: str) -> float:
        """Measured read reliability of a tag at ``location`` on a box."""
        try:
            return self.object_location[location]
        except KeyError:
            known = ", ".join(sorted(self.object_location))
            raise KeyError(
                f"unknown object tag location {location!r}; known: {known}"
            ) from None

    def human_tag_reliability(self, placement: str) -> float:
        """Measured read reliability of a tag at a waist ``placement``."""
        try:
            return self.human_one_subject[placement]
        except KeyError:
            known = ", ".join(sorted(self.human_one_subject))
            raise KeyError(
                f"unknown human placement {placement!r}; known: {known}"
            ) from None

    def expected_tracking_reliability(
        self, placements: Sequence[str], antennas: int = 1, domain: str = "object"
    ) -> float:
        """R_C for an object/person with tags at ``placements`` seen by
        ``antennas`` antennas, exactly as the paper computes its
        Calculated columns (each antenna replicates every tag's
        opportunity).
        """
        if antennas < 1:
            raise ValueError(f"antennas must be >= 1, got {antennas!r}")
        lookup = (
            self.object_tag_reliability
            if domain == "object"
            else self.human_tag_reliability
        )
        ps: List[float] = []
        for placement in placements:
            p = lookup(placement)
            ps.extend([p] * antennas)
        return combined_reliability(ps)
