"""Receiver noise floor and sensitivity derivation.

The link budget uses a reader sensitivity of about -75 dBm; this module
derives that figure from first principles so the constant in
:mod:`repro.core.calibration` is auditable rather than folklore:

    sensitivity = kTB + noise figure + required SNR

with kT = -174 dBm/Hz at 290 K, a ~250 kHz backscatter bandwidth
(~54 dB-Hz), an *effective* noise figure of ~35 dB for a 2006-era
monostatic reader (a few dB of LNA noise plus ~25-30 dB of
desensitization from the transmitter's own carrier leaking into the
receiver with its phase-noise skirt — the defining impairment of
monostatic RFID), and ~10 dB SNR for the FM0/Miller decoder — landing
at -75 dBm.
"""

from __future__ import annotations

from dataclasses import dataclass

from .units import watts_to_dbm

#: Boltzmann constant (J/K).
BOLTZMANN_J_PER_K = 1.380649e-23

#: Standard noise reference temperature (K).
REFERENCE_TEMPERATURE_K = 290.0


def thermal_noise_dbm(bandwidth_hz: float, temperature_k: float = REFERENCE_TEMPERATURE_K) -> float:
    """Thermal noise power kTB in dBm.

    At 290 K this is -174 dBm/Hz + 10 log10(B).
    """
    if bandwidth_hz <= 0.0:
        raise ValueError(f"bandwidth must be positive, got {bandwidth_hz!r}")
    if temperature_k <= 0.0:
        raise ValueError(
            f"temperature must be positive, got {temperature_k!r}"
        )
    watts = BOLTZMANN_J_PER_K * temperature_k * bandwidth_hz
    return watts_to_dbm(watts)


@dataclass(frozen=True)
class ReceiverModel:
    """A reader receive chain for sensitivity derivation.

    Parameters
    ----------
    bandwidth_hz:
        Decoder bandwidth; roughly 2x the backscatter link frequency.
    noise_figure_db:
        *Effective* excess noise of the receive chain, including the
        dominant impairment of monostatic readers: the transmitter's
        carrier leaks into the receiver and its phase-noise skirt falls
        in the backscatter band. 2006-era hardware sits around 30-40 dB
        effective; modern readers with carrier cancellation reach ~15.
    required_snr_db:
        Post-detection SNR the FM0/Miller decoder needs.
    """

    bandwidth_hz: float = 250e3
    noise_figure_db: float = 35.0
    required_snr_db: float = 10.0

    def __post_init__(self) -> None:
        if self.bandwidth_hz <= 0:
            raise ValueError("bandwidth must be positive")
        if self.noise_figure_db < 0:
            raise ValueError("noise figure must be non-negative")
        if self.required_snr_db < 0:
            raise ValueError("required SNR must be non-negative")

    @property
    def noise_floor_dbm(self) -> float:
        """kTB + NF."""
        return thermal_noise_dbm(self.bandwidth_hz) + self.noise_figure_db

    @property
    def sensitivity_dbm(self) -> float:
        """Minimum decodable signal: noise floor + required SNR."""
        return self.noise_floor_dbm + self.required_snr_db

    def snr_db(self, signal_dbm: float) -> float:
        """SNR of a received signal against this chain's noise floor."""
        return signal_dbm - self.noise_floor_dbm

    def decodable(self, signal_dbm: float) -> bool:
        return self.snr_db(signal_dbm) >= self.required_snr_db


def sensitivity_check(calibrated_sensitivity_dbm: float = -75.0) -> float:
    """Gap (dB) between the calibrated constant and the derived value.

    Used by the calibration tests: the constant in
    :func:`repro.core.calibration.paper_link_environment` must stay
    within a few dB of what the physics says.
    """
    derived = ReceiverModel().sensitivity_dbm
    return calibrated_sensitivity_dbm - derived
