"""RF substrate: units, geometry, propagation, antennas, materials, link budget."""

from .antenna import (
    CIRCULAR_TO_LINEAR_LOSS_DB,
    DipoleAntenna,
    PatchAntenna,
    polarization_loss_db,
)
from .coupling import CouplingModel, grid_positions
from .geometry import (
    ORIGIN,
    Pose,
    Rotation,
    Vec3,
    centroid,
    pairwise_distances,
    segment_intersects_sphere,
    segment_sphere_chord_length,
)
from .link import (
    LinkEnvironment,
    LinkGeometry,
    LinkResult,
    evaluate_link,
    forward_waterfall,
    free_space_read_range_m,
)
from .materials import (
    AIR,
    BODY,
    CARDBOARD,
    LIQUID,
    METAL,
    Material,
    material_by_name,
)
from .propagation import (
    RAYLEIGH,
    ChannelModel,
    PathLossModel,
    RicianFading,
    ShadowingModel,
)
from .units import (
    PAPER_READER_POWER_DBM,
    SPEED_OF_LIGHT,
    UHF_RFID_FREQ_HZ,
    db_to_linear,
    dbm_to_milliwatts,
    dbm_to_watts,
    friis_path_gain_db,
    linear_to_db,
    milliwatts_to_dbm,
    sum_powers_dbm,
    watts_to_dbm,
    wavelength,
)

from .regulatory import (
    ETSI_PLAN,
    FCC_PLAN,
    ChannelPlan,
    collision_probability,
    count_collisions,
    expected_interference_duty_cycle,
)

from .noise import ReceiverModel, sensitivity_check, thermal_noise_dbm

__all__ = [
    "ReceiverModel",
    "sensitivity_check",
    "thermal_noise_dbm",

    "ETSI_PLAN",
    "FCC_PLAN",
    "ChannelPlan",
    "collision_probability",
    "count_collisions",
    "expected_interference_duty_cycle",

    "CIRCULAR_TO_LINEAR_LOSS_DB",
    "DipoleAntenna",
    "PatchAntenna",
    "polarization_loss_db",
    "CouplingModel",
    "grid_positions",
    "ORIGIN",
    "Pose",
    "Rotation",
    "Vec3",
    "centroid",
    "pairwise_distances",
    "segment_intersects_sphere",
    "segment_sphere_chord_length",
    "LinkEnvironment",
    "LinkGeometry",
    "LinkResult",
    "evaluate_link",
    "forward_waterfall",
    "free_space_read_range_m",
    "AIR",
    "BODY",
    "CARDBOARD",
    "LIQUID",
    "METAL",
    "Material",
    "material_by_name",
    "RAYLEIGH",
    "ChannelModel",
    "PathLossModel",
    "RicianFading",
    "ShadowingModel",
    "PAPER_READER_POWER_DBM",
    "SPEED_OF_LIGHT",
    "UHF_RFID_FREQ_HZ",
    "db_to_linear",
    "dbm_to_milliwatts",
    "dbm_to_watts",
    "friis_path_gain_db",
    "linear_to_db",
    "milliwatts_to_dbm",
    "sum_powers_dbm",
    "watts_to_dbm",
    "wavelength",
]
