"""Regulatory channel plans and frequency hopping.

UHF RFID readers do not sit on one frequency: FCC Part 15 readers hop
pseudo-randomly over 50 channels in 902-928 MHz (the paper's US lab),
while ETSI EN 302 208 readers pick from 4 high-power channels in
865.6-867.6 MHz. Channelization matters to this library for one
reason: **reader-to-reader interference**. Two FHSS readers interfere
strongly only while their hop sequences land co- or adjacent-channel,
which is what :data:`repro.protocol.dense_reader.CO_CHANNEL_DWELL_PROBABILITY`
summarizes; this module computes that probability from an actual plan
instead of assuming it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from ..sim.rng import RandomStream


@dataclass(frozen=True)
class ChannelPlan:
    """A regulatory channel plan."""

    name: str
    start_hz: float
    channel_count: int
    spacing_hz: float
    dwell_s: float

    def __post_init__(self) -> None:
        if self.channel_count < 1:
            raise ValueError(f"need >= 1 channel, got {self.channel_count!r}")
        if self.spacing_hz <= 0 or self.start_hz <= 0:
            raise ValueError("frequencies must be positive")
        if self.dwell_s <= 0:
            raise ValueError(f"dwell must be positive, got {self.dwell_s!r}")

    def frequency_hz(self, channel: int) -> float:
        """Centre frequency of ``channel`` (0-based)."""
        if not 0 <= channel < self.channel_count:
            raise ValueError(
                f"channel {channel} out of range 0-{self.channel_count - 1}"
            )
        return self.start_hz + channel * self.spacing_hz

    def hop_sequence(self, rng: RandomStream, hops: int) -> List[int]:
        """A pseudo-random hop sequence of ``hops`` channels.

        FCC requires each channel be used at most once per cycle;
        we emulate that with shuffled cycles.
        """
        if hops < 0:
            raise ValueError(f"hops must be non-negative, got {hops!r}")
        sequence: List[int] = []
        while len(sequence) < hops:
            cycle = list(range(self.channel_count))
            rng.shuffle(cycle)
            sequence.extend(cycle)
        return sequence[:hops]


#: FCC Part 15.247: 902.75-927.25 MHz, 50 channels at 500 kHz, max
#: 0.4 s per channel per 20 s (readers typically dwell 0.2-0.4 s).
FCC_PLAN = ChannelPlan(
    name="FCC 902-928",
    start_hz=902.75e6,
    channel_count=50,
    spacing_hz=500e3,
    dwell_s=0.4,
)

#: ETSI EN 302 208 (2 W ERP high channels): 4 channels at 600 kHz.
ETSI_PLAN = ChannelPlan(
    name="ETSI 865-868",
    start_hz=865.7e6,
    channel_count=4,
    spacing_hz=600e3,
    dwell_s=4.0,
)


def collision_probability(
    plan: ChannelPlan, adjacent_counts: int = 1
) -> float:
    """Probability two independently hopping readers land within
    ``adjacent_counts`` channels of each other on a given dwell.

    Non-DRM receivers are desensitized not just co-channel but by
    adjacent-channel leakage, so the effective collision window spans
    ``2 * adjacent_counts + 1`` channels.
    """
    if adjacent_counts < 0:
        raise ValueError(
            f"adjacent count must be non-negative, got {adjacent_counts!r}"
        )
    window = 2 * adjacent_counts + 1
    return min(1.0, window / plan.channel_count)


def expected_interference_duty_cycle(
    plan: ChannelPlan,
    pass_duration_s: float,
    adjacent_counts: int = 1,
) -> float:
    """Expected fraction of a portal pass spent under hop collision.

    With independent hop sequences, each dwell collides independently
    with probability :func:`collision_probability`; over a pass of many
    dwells the duty cycle converges to that probability — the
    justification for modelling interference as a per-dwell Bernoulli.
    """
    if pass_duration_s <= 0:
        raise ValueError(
            f"pass duration must be positive, got {pass_duration_s!r}"
        )
    return collision_probability(plan, adjacent_counts)


def count_collisions(
    seq_a: Sequence[int], seq_b: Sequence[int], adjacent_counts: int = 1
) -> int:
    """How many dwells of two hop sequences land within the collision
    window of each other (for Monte-Carlo validation of the analytical
    probability)."""
    if len(seq_a) != len(seq_b):
        raise ValueError("hop sequences must have equal length")
    return sum(
        1 for a, b in zip(seq_a, seq_b) if abs(a - b) <= adjacent_counts
    )
