"""Forward/reverse link budget for passive UHF backscatter links.

A passive tag read succeeds only when **both** directions close:

* **forward link** — enough reader power reaches the tag chip to
  activate it (threshold around -12 dBm for early Gen 2 silicon). For
  30 dBm readers and passive tags this is almost always the limiting
  direction, which is why read range tops out at a few metres exactly
  as the paper's Figure 2 shows.
* **reverse link** — the backscattered reply must exceed the reader's
  receive sensitivity *and* clear any co-channel interference (other
  readers transmitting CW in band). Reader-to-reader interference
  desensitizes the receiver, which is the mechanism behind the paper's
  finding that two readers per portal without dense-reader mode
  *reduce* reliability.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from .antenna import DipoleAntenna, PatchAntenna, polarization_loss_db
from .geometry import Vec3
from .propagation import ChannelModel
from .units import linear_to_db


@dataclass(frozen=True)
class LinkEnvironment:
    """All hardware constants and channel models for a reader-tag link.

    Parameters
    ----------
    channel:
        Propagation stack (path loss + shadowing + fading).
    reader_antenna, tag_antenna:
        Gain patterns.
    tag_sensitivity_dbm:
        Minimum incident power that wakes the tag chip. -12 dBm matches
        2006-era Gen 2 silicon (modern chips reach -20 dBm).
    reader_sensitivity_dbm:
        Minimum backscatter power the reader can decode in a clean
        channel.
    backscatter_loss_db:
        Modulation/conversion loss of the tag's reflection (typically
        about 5 dB below the incident power, plus the return path).
    cable_loss_db:
        Coax loss between reader port and antenna, applied in both
        directions.
    required_sinr_db:
        Margin the backscatter signal needs over in-band interference.
    """

    channel: ChannelModel = field(default_factory=ChannelModel)
    reader_antenna: PatchAntenna = field(default_factory=PatchAntenna)
    tag_antenna: DipoleAntenna = field(default_factory=DipoleAntenna)
    tag_sensitivity_dbm: float = -12.0
    reader_sensitivity_dbm: float = -75.0
    backscatter_loss_db: float = 5.0
    cable_loss_db: float = 1.0
    required_sinr_db: float = 10.0


@dataclass(frozen=True)
class LinkGeometry:
    """World-frame geometry of one reader-antenna-to-tag link."""

    antenna_position: Vec3
    antenna_boresight: Vec3
    tag_position: Vec3
    tag_axis: Vec3

    @property
    def distance_m(self) -> float:
        return self.antenna_position.distance_to(self.tag_position)

    @property
    def direction(self) -> Vec3:
        """Unit vector from antenna to tag."""
        return (self.tag_position - self.antenna_position).normalized()


@dataclass(frozen=True)
class LinkTerms:
    """The geometry-determined terms of one link budget.

    Everything here depends only on the (antenna, tag) geometry and the
    hardware constants — not on the trial's shadowing/fading draws, the
    dwell's interference, or material losses. The pass simulator
    computes these once per distinct geometry and replays them through
    :func:`compose_link` for every read attempt sharing that geometry;
    :func:`evaluate_link` is exactly ``compose_link(compute_link_terms)``,
    so cached and uncached evaluations are bit-identical.
    """

    reader_gain_dbi: float
    tag_gain_dbi: float
    polarization_loss_db: float
    #: Deterministic path gain (no shadowing; that is added by
    #: :func:`compose_link` exactly as ``large_scale_gain_db`` would).
    path_gain_db: float


def compute_link_terms(
    env: LinkEnvironment,
    geometry: LinkGeometry,
    tag_gain_override_dbi: Optional[float] = None,
) -> LinkTerms:
    """Evaluate the geometry-dependent antenna/path terms of a link."""
    distance = geometry.distance_m
    direction = geometry.direction
    reader_gain = env.reader_antenna.gain_dbi(direction, geometry.antenna_boresight)
    # Tag sees the wave arriving from -direction; dipole pattern is
    # symmetric so the sign does not matter, but keep it explicit.
    if tag_gain_override_dbi is not None:
        tag_gain = tag_gain_override_dbi
    else:
        tag_gain = env.tag_antenna.gain_dbi(-direction, geometry.tag_axis)
    pol_loss = polarization_loss_db(
        env.reader_antenna.circular, geometry.tag_axis, direction
    )
    path_gain = env.channel.path_loss.path_gain_db(
        distance,
        tx_height_m=geometry.antenna_position.y,
        rx_height_m=geometry.tag_position.y,
    )
    return LinkTerms(
        reader_gain_dbi=reader_gain,
        tag_gain_dbi=tag_gain,
        polarization_loss_db=pol_loss,
        path_gain_db=path_gain,
    )


@dataclass(frozen=True)
class LinkResult:
    """Full accounting of one link-budget evaluation."""

    forward_power_dbm: float
    reverse_power_dbm: float
    activated: bool
    decodable: bool
    forward_margin_db: float
    reverse_margin_db: float

    @property
    def readable(self) -> bool:
        """True when the physical layer supports a read attempt."""
        return self.activated and self.decodable


def evaluate_link(
    env: LinkEnvironment,
    tx_power_dbm: float,
    geometry: LinkGeometry,
    obstruction_loss_db: float = 0.0,
    tag_detuning_db: float = 0.0,
    coupling_penalty_db: float = 0.0,
    shadowing_db: float = 0.0,
    fading_power_gain: float = 1.0,
    interference_dbm: Optional[float] = None,
    tag_gain_override_dbi: Optional[float] = None,
) -> LinkResult:
    """Evaluate a single read attempt's physical feasibility.

    Parameters
    ----------
    env:
        Hardware and channel constants.
    tx_power_dbm:
        Conducted power at the reader port.
    geometry:
        Positions and orientations, world frame.
    obstruction_loss_db:
        One-way through-material loss on the path (metal contents,
        bodies, packaging), applied to both directions.
    tag_detuning_db:
        Penalty from mounting material proximity (grounding-plate effect).
    coupling_penalty_db:
        Penalty from near-field coupling with neighbouring tags.
    shadowing_db:
        Large-scale shadowing realisation for this trial (zero-mean, dB).
    fading_power_gain:
        Small-scale fading realisation (linear, unit mean) for this
        attempt. Forward and reverse share it — backscatter channels are
        reciprocal within a coherence time.
    interference_dbm:
        In-band interference power at the reader's receiver, if any.
    tag_gain_override_dbi:
        When given, use this tag antenna gain instead of evaluating
        ``env.tag_antenna``'s dipole pattern — the hook through which
        alternative inlay designs (dual dipole, metal mount, ...)
        replace the stock pattern.

    Returns
    -------
    LinkResult
        Power levels and pass/fail for both directions.
    """
    terms = compute_link_terms(env, geometry, tag_gain_override_dbi)
    return compose_link(
        env,
        tx_power_dbm,
        terms,
        obstruction_loss_db=obstruction_loss_db,
        tag_detuning_db=tag_detuning_db,
        coupling_penalty_db=coupling_penalty_db,
        shadowing_db=shadowing_db,
        fading_power_gain=fading_power_gain,
        interference_dbm=interference_dbm,
    )


def compose_link(
    env: LinkEnvironment,
    tx_power_dbm: float,
    terms: LinkTerms,
    obstruction_loss_db: float = 0.0,
    tag_detuning_db: float = 0.0,
    coupling_penalty_db: float = 0.0,
    shadowing_db: float = 0.0,
    fading_power_gain: float = 1.0,
    interference_dbm: Optional[float] = None,
) -> LinkResult:
    """Assemble a :class:`LinkResult` from precomputed geometry terms.

    This is the arithmetic half of :func:`evaluate_link` — same
    operations in the same order, so results are bit-identical whether
    the terms come fresh from :func:`compute_link_terms` or from a
    per-pass cache.
    """
    if fading_power_gain < 0.0:
        raise ValueError(
            f"fading power gain must be non-negative, got {fading_power_gain!r}"
        )
    reader_gain = terms.reader_gain_dbi
    tag_gain = terms.tag_gain_dbi
    pol_loss = terms.polarization_loss_db
    # Shadowing joins the deterministic path gain exactly as
    # ``ChannelModel.large_scale_gain_db`` adds it.
    path_gain = terms.path_gain_db + shadowing_db
    fading_db = linear_to_db(max(fading_power_gain, 1e-12))
    one_way_losses = obstruction_loss_db + tag_detuning_db + coupling_penalty_db

    forward_power = (
        tx_power_dbm
        - env.cable_loss_db
        + reader_gain
        + path_gain
        + tag_gain
        - pol_loss
        - one_way_losses
        + fading_db
    )
    forward_margin = forward_power - env.tag_sensitivity_dbm
    activated = forward_margin >= 0.0

    # Reverse link: the tag re-radiates a fraction of the incident power
    # back over the same (reciprocal) channel.
    reverse_power = (
        forward_power
        - env.backscatter_loss_db
        + tag_gain
        + path_gain
        + reader_gain
        - pol_loss
        - one_way_losses
        - env.cable_loss_db
        + fading_db
    )
    effective_floor = env.reader_sensitivity_dbm
    if interference_dbm is not None:
        # Interference desensitizes the receiver: the backscatter signal
        # must now clear interference + required SINR, not just thermal
        # sensitivity.
        effective_floor = max(
            effective_floor, interference_dbm + env.required_sinr_db
        )
    reverse_margin = reverse_power - effective_floor
    decodable = reverse_margin >= 0.0

    return LinkResult(
        forward_power_dbm=forward_power,
        reverse_power_dbm=reverse_power,
        activated=activated,
        decodable=decodable,
        forward_margin_db=forward_margin,
        reverse_margin_db=reverse_margin,
    )


def forward_waterfall(
    tx_power_dbm: float,
    cable_loss_db: float,
    reader_gain_dbi: float,
    path_gain_db: float,
    shadowing_db: float,
    tag_gain_dbi: float,
    polarization_loss_db: float,
    obstruction_db: float,
    detuning_db: float,
    coupling_db: float,
    fault_loss_db: float = 0.0,
    fading_db: float = 0.0,
) -> List[Tuple[str, float]]:
    """Ordered signed contributions of one forward link budget, in dB.

    Each entry is ``(term name, contribution)`` with losses already
    negated, so summing the contributions in list order reproduces the
    forward power at the tag — the waterfall
    ``python -m repro explain`` prints. The argument names match the
    fields of :class:`repro.obs.records.DwellLinkRecord`, which is the
    record this renders.
    """
    return [
        ("tx power (dBm)", tx_power_dbm),
        ("port fault loss", -fault_loss_db),
        ("cable loss", -cable_loss_db),
        ("reader antenna gain", reader_gain_dbi),
        ("path gain", path_gain_db),
        ("shadowing", shadowing_db),
        ("tag antenna gain", tag_gain_dbi),
        ("polarization loss", -polarization_loss_db),
        ("obstruction loss", -obstruction_db),
        ("tag detuning", -detuning_db),
        ("tag coupling", -coupling_db),
        ("small-scale fading", fading_db),
    ]


def _boresight_geometry(distance_m: float) -> LinkGeometry:
    """The canonical planning geometry: tag on boresight, broadside."""
    return LinkGeometry(
        antenna_position=Vec3(0.0, 1.0, 0.0),
        antenna_boresight=Vec3.unit_z(),
        tag_position=Vec3(0.0, 1.0, distance_m),
        tag_axis=Vec3.unit_x(),
    )


def _readable_at(env: LinkEnvironment, tx_power_dbm: float, d: float) -> bool:
    """Deterministic (no shadowing/fading) readability at distance ``d``."""
    return evaluate_link(env, tx_power_dbm, _boresight_geometry(d)).readable


def _forward_closes_upper_bound(
    env: LinkEnvironment, tx_power_dbm: float, d: float
) -> bool:
    """Could the forward link possibly close at ``d``?

    Uses the monotone constructive-maximum path-gain envelope, so this
    predicate is true-then-false over increasing distance even where
    the exact two-ray gain ripples. A ``False`` here proves no link
    (forward, hence readable) closes at ``d`` or beyond.
    """
    geometry = _boresight_geometry(d)
    terms = compute_link_terms(env, geometry)
    path_ub = env.channel.path_loss.path_gain_upper_bound_db(
        geometry.distance_m,
        tx_height_m=geometry.antenna_position.y,
        rx_height_m=geometry.tag_position.y,
    )
    forward_ub = (
        tx_power_dbm
        - env.cable_loss_db
        + terms.reader_gain_dbi
        + path_ub
        + terms.tag_gain_dbi
        - terms.polarization_loss_db
    )
    return forward_ub >= env.tag_sensitivity_dbm


def _linear_scan_read_range_m(
    env: LinkEnvironment,
    tx_power_dbm: float,
    step_m: float = 0.01,
    max_range_m: float = 30.0,
) -> float:
    """Reference implementation: exhaustive scan of the distance grid.

    Kept as the oracle the fast search is regression-tested against.
    """
    if step_m <= 0.0:
        raise ValueError(f"step must be positive, got {step_m!r}")
    best = 0.0
    for k in range(1, int(max_range_m / step_m) + 1):
        d = k * step_m
        if _readable_at(env, tx_power_dbm, d):
            best = d
    return best


def free_space_read_range_m(
    env: LinkEnvironment,
    tx_power_dbm: float,
    step_m: float = 0.01,
    max_range_m: float = 30.0,
) -> float:
    """Largest boresight distance at which the link still closes.

    A deterministic (no shadowing/fading) search used for sanity checks
    and planning; the stochastic read probability around this range is
    what the experiments measure.

    The two-ray ripple makes readability non-monotone, so a plain
    bisection could land on a local dropout. Instead the search runs in
    two stages, returning exactly what the exhaustive grid scan would:

    1. **coarse bracket** — bisect the *monotone* constructive-maximum
       envelope (:meth:`~repro.rf.propagation.PathLossModel.path_gain_upper_bound_db`)
       to find the farthest grid point at which any link could possibly
       close; beyond it the forward budget provably fails;
    2. **refine** — walk the fine grid downward from that bracket to
       the first actually readable point.

    The envelope sits only a few dB above the exact gain, so stage 2
    touches a small slice of the grid and the whole search costs a few
    dozen link evaluations instead of thousands.
    """
    if step_m <= 0.0:
        raise ValueError(f"step must be positive, got {step_m!r}")
    n = int(max_range_m / step_m)
    if n < 1:
        return 0.0
    if not _forward_closes_upper_bound(env, tx_power_dbm, 1 * step_m):
        return 0.0
    # Largest grid index where the envelope still closes (monotone
    # true -> false over k).
    lo, hi = 1, n
    if _forward_closes_upper_bound(env, tx_power_dbm, n * step_m):
        lo = n
    else:
        while hi - lo > 1:
            mid = (lo + hi) // 2
            if _forward_closes_upper_bound(env, tx_power_dbm, mid * step_m):
                lo = mid
            else:
                hi = mid
    for k in range(lo, 0, -1):
        if _readable_at(env, tx_power_dbm, k * step_m):
            return k * step_m
    # The envelope admitted a bracket, but the *exact* link closes
    # nowhere on the grid — not even at the minimum distance (the
    # envelope sits above the true two-ray gain, so this is a real
    # case, not dead code). Report "no read range" rather than the
    # stale envelope bracket ``lo * step_m``.
    return 0.0
