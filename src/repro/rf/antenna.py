"""Antenna gain patterns and polarization coupling.

Two antenna families matter for the paper's setup:

* the reader's **area (patch) antenna** — circularly polarized,
  broadside gain around 6 dBic, with a cosine-power rolloff off
  boresight;
* the tag's **half-wave dipole** (the Symbol single-dipole inlay) —
  linearly polarized, 2.15 dBi broadside, with the classic
  ``sin``-shaped doughnut pattern and deep nulls along the dipole axis.

Orientation effects in the paper (Figure 3/4) come from two distinct
mechanisms modelled separately here: *pattern loss* (the tag null facing
the reader) and *polarization mismatch* (a circular reader antenna loses
a fixed 3 dB to any linear tag, so rotation in the antenna plane is
forgiven, but a dipole pointed at the antenna still dies on pattern).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from .geometry import Vec3
from .units import db_to_linear, linear_to_db

#: Fixed loss when a circularly polarized reader antenna illuminates a
#: linearly polarized tag, regardless of the tag's roll angle.
CIRCULAR_TO_LINEAR_LOSS_DB = 3.0

#: Pattern floor: no physical antenna has a mathematically perfect null;
#: scattering off the environment fills nulls in to roughly -25 dB.
NULL_FLOOR_DB = -25.0


@dataclass(frozen=True)
class PatchAntenna:
    """Circularly polarized area antenna, boresight along +z of its pose.

    Parameters
    ----------
    boresight_gain_dbi:
        Peak gain. 6 dBic is typical for the AR400's area antennas.
    rolloff_exponent:
        Power of the cosine rolloff; 2.0 gives roughly a 70-degree
        3 dB beamwidth, matching a wide portal antenna.
    """

    boresight_gain_dbi: float = 6.0
    rolloff_exponent: float = 2.0
    circular: bool = True

    def gain_dbi(self, direction: Vec3, boresight: Vec3) -> float:
        """Gain toward ``direction`` for an antenna whose boresight is ``boresight``.

        Both vectors are in world coordinates; only their angle matters.
        Directions behind the antenna get the null floor.
        """
        angle = boresight.angle_to(direction)
        if angle >= math.pi / 2.0:
            return self.boresight_gain_dbi + NULL_FLOOR_DB
        pattern = math.cos(angle) ** self.rolloff_exponent
        pattern_db = linear_to_db(max(pattern, db_to_linear(NULL_FLOOR_DB)))
        return self.boresight_gain_dbi + pattern_db


@dataclass(frozen=True)
class DipoleAntenna:
    """Half-wave dipole tag antenna.

    The pattern is the textbook ``cos((pi/2) cos(theta)) / sin(theta)``
    doughnut around the dipole axis; gain peaks broadside (2.15 dBi) and
    nulls along the axis.
    """

    broadside_gain_dbi: float = 2.15

    def gain_dbi(self, direction: Vec3, dipole_axis: Vec3) -> float:
        """Gain toward ``direction`` for a dipole whose axis is ``dipole_axis``."""
        theta = dipole_axis.angle_to(direction)
        sin_theta = math.sin(theta)
        if sin_theta < 1e-6:
            return self.broadside_gain_dbi + NULL_FLOOR_DB
        pattern = math.cos((math.pi / 2.0) * math.cos(theta)) / sin_theta
        power = pattern * pattern
        floor = db_to_linear(NULL_FLOOR_DB)
        pattern_db = linear_to_db(max(power, floor))
        return self.broadside_gain_dbi + pattern_db


def polarization_loss_db(
    reader_circular: bool,
    tag_axis: Vec3,
    propagation_dir: Vec3,
    reader_pol_axis: Vec3 = Vec3.unit_x(),
) -> float:
    """Polarization mismatch between reader antenna and a linear tag.

    Parameters
    ----------
    reader_circular:
        Circular reader polarization costs a constant 3 dB against any
        linear tag but is insensitive to tag roll; linear reader
        polarization matches or mismatches with ``cos^2`` of the angle
        between the projected axes.
    tag_axis:
        Tag dipole axis (world frame).
    propagation_dir:
        Unit vector from reader to tag; polarization lives in the plane
        transverse to it.
    reader_pol_axis:
        For a linearly polarized reader antenna, its E-field axis.
    """
    k = propagation_dir.normalized()
    # Project the tag axis onto the transverse plane.
    tag_t = tag_axis - k * tag_axis.dot(k)
    if tag_t.norm() < 1e-9:
        # Dipole pointing straight at the antenna: no transverse component.
        # Pattern loss already handles this; report the floor here too.
        return -NULL_FLOOR_DB
    if reader_circular:
        return CIRCULAR_TO_LINEAR_LOSS_DB
    reader_t = reader_pol_axis - k * reader_pol_axis.dot(k)
    if reader_t.norm() < 1e-9:
        return -NULL_FLOOR_DB
    angle = tag_t.angle_to(reader_t)
    cos2 = math.cos(angle) ** 2
    floor = db_to_linear(NULL_FLOOR_DB)
    return -linear_to_db(max(cos2, floor))
