"""Inter-tag mutual coupling ("tags placed too close interfere").

Closely spaced dipole tags detune each other: each tag's antenna sits
in the near field of its neighbours, which shifts its resonance and
steals induced power. The paper measures this directly (Figure 4),
finding that parallel tags need **20-40 mm** of separation to behave
independently, with almost total failure at sub-millimetre spacing.

We model the effect as a dB penalty per neighbouring tag that decays
smoothly with separation and vanishes beyond a cutoff, scaled by how
parallel the two dipole axes are (orthogonal dipoles barely couple).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence, Tuple

from .geometry import Vec3


@dataclass(frozen=True)
class CouplingModel:
    """Pairwise near-field coupling penalty between dipole tags.

    Parameters
    ----------
    contact_penalty_db:
        Penalty when two parallel tags are (nearly) touching. The
        paper's 0.3 mm case reads almost nothing, so the default is
        large.
    safe_distance_m:
        Separation beyond which coupling is negligible. The paper's
        measured safe distance is 20-40 mm; 0.04 m is the conservative
        end.
    falloff_exponent:
        Shape of the decay between contact and the safe distance.
        Near-field energy density falls off extremely fast (1/r^6 for
        reactive coupling), so the default is steep.
    """

    contact_penalty_db: float = 30.0
    safe_distance_m: float = 0.04
    falloff_exponent: float = 2.0

    def pair_penalty_db(
        self,
        separation_m: float,
        axis_a: Vec3,
        axis_b: Vec3,
    ) -> float:
        """Coupling penalty one tag suffers from one neighbour.

        Parameters
        ----------
        separation_m:
            Edge-to-edge distance between the two inlays.
        axis_a, axis_b:
            Dipole axes; coupling scales with the squared cosine of the
            angle between them (parallel couples fully, orthogonal not
            at all).
        """
        if separation_m < 0.0:
            raise ValueError(
                f"separation must be non-negative, got {separation_m!r}"
            )
        if separation_m >= self.safe_distance_m:
            return 0.0
        # Smooth monotone decay from contact_penalty_db at 0 to 0 at the
        # safe distance.
        frac = 1.0 - separation_m / self.safe_distance_m
        distance_factor = frac ** self.falloff_exponent
        alignment = self._alignment_factor(axis_a, axis_b)
        return self.contact_penalty_db * distance_factor * alignment

    @staticmethod
    def _alignment_factor(axis_a: Vec3, axis_b: Vec3) -> float:
        """cos^2 of the inter-axis angle, in [0, 1]."""
        denom = axis_a.norm() * axis_b.norm()
        if denom < 1e-18:
            return 0.0
        cosine = axis_a.dot(axis_b) / denom
        return min(1.0, cosine * cosine)

    #: Weight of non-dominant neighbours: near-field detuning is ruled
    #: by the closest inlay, with the rest contributing a residual.
    secondary_weight: float = 0.1
    #: Ceiling on the aggregate penalty — a tag cannot be "more than
    #: fully" detuned, and some energy always couples around the stack.
    max_total_penalty_db: float = 35.0

    def total_penalty_db(
        self,
        tag_index: int,
        positions: Sequence[Vec3],
        axes: Sequence[Vec3],
    ) -> float:
        """Aggregate penalty on tag ``tag_index`` from all other tags.

        The dominant (nearest/strongest) pair sets the penalty; further
        neighbours add a down-weighted residual, capped overall. This
        reproduces the gradual knee of the paper's Figure 4: middle
        tags of a dense stack fare slightly worse than edge tags, and
        reads recover progressively as spacing grows rather than
        flipping from dead to perfect.
        """
        if len(positions) != len(axes):
            raise ValueError(
                f"positions ({len(positions)}) and axes ({len(axes)}) "
                "must have equal length"
            )
        if not 0 <= tag_index < len(positions):
            raise IndexError(f"tag index {tag_index} out of range")
        me = positions[tag_index]
        my_axis = axes[tag_index]
        penalties = []
        for j, (pos, axis) in enumerate(zip(positions, axes)):
            if j == tag_index:
                continue
            sep = me.distance_to(pos)
            if sep >= self.safe_distance_m:
                continue
            penalty = self.pair_penalty_db(sep, my_axis, axis)
            if penalty > 0.0:
                penalties.append(penalty)
        if not penalties:
            return 0.0
        dominant = max(penalties)
        residual = (sum(penalties) - dominant) * self.secondary_weight
        return min(dominant + residual, self.max_total_penalty_db)

    def minimum_safe_spacing_m(
        self,
        axis_a: Vec3,
        axis_b: Vec3,
        tolerable_penalty_db: float = 1.0,
    ) -> float:
        """Smallest separation at which the pair penalty drops below a tolerance.

        This is the model-side counterpart of the paper's "minimum safe
        distance" question; a bisection over the monotone decay.
        """
        if tolerable_penalty_db <= 0.0:
            raise ValueError("tolerance must be positive")
        if self.pair_penalty_db(0.0, axis_a, axis_b) <= tolerable_penalty_db:
            return 0.0
        lo, hi = 0.0, self.safe_distance_m
        for _ in range(60):
            mid = (lo + hi) / 2.0
            if self.pair_penalty_db(mid, axis_a, axis_b) > tolerable_penalty_db:
                lo = mid
            else:
                hi = mid
        return hi


def grid_positions(
    count: int,
    spacing_m: float,
    direction: Vec3 = Vec3.unit_x(),
    origin: Vec3 = Vec3.zero(),
) -> Tuple[Vec3, ...]:
    """Positions of ``count`` tags in a line with uniform ``spacing_m``.

    Convenience used by the Figure 4 scenario (10 parallel tags on a
    cardboard sheet).
    """
    if count < 1:
        raise ValueError(f"count must be >= 1, got {count!r}")
    if spacing_m < 0.0:
        raise ValueError(f"spacing must be non-negative, got {spacing_m!r}")
    step = direction.normalized() * spacing_m if spacing_m > 0 else Vec3.zero()
    return tuple(origin + step * float(i) for i in range(count))
