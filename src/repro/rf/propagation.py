"""Large- and small-scale propagation models for the portal environment.

Three layers combine to form the channel gain between a reader antenna
and a tag:

1. **Deterministic path loss** — free-space Friis or a two-ray
   ground-reflection model (indoor lab floors cause the long-range
   ripple the paper observes between 2 m and 9 m in Figure 2).
2. **Log-normal shadowing** — slowly varying obstruction loss, sampled
   once per trial so repeated reads within a pass are correlated.
3. **Small-scale fading** — Rician fading per read attempt; the strong
   line-of-sight component in a portal makes Rician (rather than pure
   Rayleigh) the appropriate model, with the K-factor dropping when the
   path is obstructed.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from .units import UHF_RFID_FREQ_HZ, db_to_linear, linear_to_db, wavelength
from ..sim.rng import RandomStream


@dataclass(frozen=True)
class PathLossModel:
    """Deterministic path gain between two points at fixed heights.

    Parameters
    ----------
    freq_hz:
        Carrier frequency.
    use_two_ray:
        When true, add the ground-reflected ray (floor bounce). The
        interference between direct and reflected rays produces the
        distance-dependent ripple responsible for the gradual, bumpy
        reliability decay in the paper's Figure 2.
    ground_reflection_coeff:
        Amplitude reflection coefficient of the floor (negative for the
        phase inversion of a conductive/dielectric floor at shallow
        grazing angles).
    path_loss_exponent:
        Large-scale decay exponent. Free space is 2.0; cluttered indoor
        lab environments measure 2.2-2.8 because energy scatters out of
        the direct path. Applied as excess loss beyond a 1 m reference
        on top of the (two-ray) geometry.
    """

    freq_hz: float = UHF_RFID_FREQ_HZ
    use_two_ray: bool = True
    ground_reflection_coeff: float = -0.7
    path_loss_exponent: float = 2.0

    def path_gain_db(
        self,
        distance_m: float,
        tx_height_m: float = 1.0,
        rx_height_m: float = 1.0,
    ) -> float:
        """Path gain (dB, negative) for a link of horizontal separation ``distance_m``.

        ``distance_m`` is the horizontal ground distance; the direct-ray
        length is derived from the two heights.
        """
        if distance_m < 0.0:
            raise ValueError(f"distance must be non-negative, got {distance_m!r}")
        lam = wavelength(self.freq_hz)
        # Direct ray.
        dh = tx_height_m - rx_height_m
        d_direct = math.sqrt(distance_m * distance_m + dh * dh)
        d_direct = max(d_direct, lam / 10.0)
        k = 2.0 * math.pi / lam
        # Excess clutter loss beyond the 1 m reference distance.
        excess_db = 0.0
        if d_direct > 1.0 and self.path_loss_exponent > 2.0:
            excess_db = (
                10.0
                * (self.path_loss_exponent - 2.0)
                * math.log10(d_direct)
            )
        # Complex amplitude of the direct ray, normalised to Friis.
        amp_direct = (lam / (4.0 * math.pi * d_direct))
        if not self.use_two_ray:
            return linear_to_db(amp_direct * amp_direct) - excess_db
        # Ground-reflected ray: image of the transmitter below the floor.
        sh = tx_height_m + rx_height_m
        d_reflect = math.sqrt(distance_m * distance_m + sh * sh)
        d_reflect = max(d_reflect, lam / 10.0)
        amp_reflect = abs(self.ground_reflection_coeff) * (
            lam / (4.0 * math.pi * d_reflect)
        )
        phase = k * (d_reflect - d_direct)
        if self.ground_reflection_coeff < 0.0:
            phase += math.pi
        # Coherent sum of the two rays.
        real = amp_direct + amp_reflect * math.cos(phase)
        imag = amp_reflect * math.sin(phase)
        power = real * real + imag * imag
        if power <= 0.0:
            power = 1e-30
        return linear_to_db(power) - excess_db

    def path_gain_upper_bound_db(
        self,
        distance_m: float,
        tx_height_m: float = 1.0,
        rx_height_m: float = 1.0,
    ) -> float:
        """A monotone-decreasing upper bound on :meth:`path_gain_db`.

        Replaces the coherent two-ray sum with its constructive maximum
        ``(|a_direct| + |a_reflect|)^2``, which bounds the true gain at
        every distance and — unlike the rippled exact gain — decreases
        monotonically with distance. Used by the read-range search to
        bracket the farthest point any link could possibly close.
        Without the two-ray term the bound equals the exact gain.
        """
        if distance_m < 0.0:
            raise ValueError(f"distance must be non-negative, got {distance_m!r}")
        lam = wavelength(self.freq_hz)
        dh = tx_height_m - rx_height_m
        d_direct = math.sqrt(distance_m * distance_m + dh * dh)
        d_direct = max(d_direct, lam / 10.0)
        excess_db = 0.0
        if d_direct > 1.0 and self.path_loss_exponent > 2.0:
            excess_db = (
                10.0
                * (self.path_loss_exponent - 2.0)
                * math.log10(d_direct)
            )
        amp_direct = lam / (4.0 * math.pi * d_direct)
        if not self.use_two_ray:
            return linear_to_db(amp_direct * amp_direct) - excess_db
        sh = tx_height_m + rx_height_m
        d_reflect = math.sqrt(distance_m * distance_m + sh * sh)
        d_reflect = max(d_reflect, lam / 10.0)
        amp_reflect = abs(self.ground_reflection_coeff) * (
            lam / (4.0 * math.pi * d_reflect)
        )
        amp = amp_direct + amp_reflect
        return linear_to_db(amp * amp) - excess_db


@dataclass(frozen=True)
class ShadowingModel:
    """Log-normal shadowing, sampled once per (trial, link) pair.

    The shadowing term models quasi-static obstruction differences
    between nominally identical trials — the reason the paper reports
    quartiles over 10-40 repetitions rather than a single number.
    """

    sigma_db: float = 2.5

    def sample_db(self, rng: RandomStream) -> float:
        """Draw one shadowing realisation in dB (zero-mean Gaussian)."""
        if self.sigma_db == 0.0:
            return 0.0
        return rng.gauss(0.0, self.sigma_db)


@dataclass(frozen=True)
class RicianFading:
    """Small-scale Rician fading drawn per read attempt.

    Parameters
    ----------
    k_factor_db:
        Ratio of line-of-sight to scattered power, in dB. A portal with
        clear line of sight sits around 6-10 dB; a body- or
        metal-obstructed path degrades towards Rayleigh (K -> -inf).
    """

    k_factor_db: float = 7.0

    def sample_power_gain(self, rng: RandomStream) -> float:
        """Draw a linear power gain with unit mean.

        The envelope is ``|v + s|`` where ``v`` is the fixed LOS phasor
        and ``s`` a complex Gaussian scatter term; the power gain is the
        squared envelope normalised so its expectation is 1.
        """
        k = db_to_linear(self.k_factor_db)
        # LOS amplitude and scatter variance for unit mean power.
        los = math.sqrt(k / (k + 1.0))
        sigma = math.sqrt(1.0 / (2.0 * (k + 1.0)))
        re = los + rng.gauss(0.0, sigma)
        im = rng.gauss(0.0, sigma)
        return re * re + im * im

    def power_gain_from_normals(self, z1: float, z2: float) -> float:
        """The :meth:`sample_power_gain` value for given unit normals.

        ``z1``/``z2`` are standard-normal draws (``rng.gauss(0.0, 1.0)``
        twice from a fresh stream). Splitting the draw from the K-factor
        scaling lets the pass simulator cache the expensive part — the
        seeded stream construction and its Gaussian pair — per fading
        coherence cell, while still honouring a per-evaluation K
        penalty. Yields exactly the value ``sample_power_gain`` would
        have produced from the same stream.
        """
        k = db_to_linear(self.k_factor_db)
        los = math.sqrt(k / (k + 1.0))
        sigma = math.sqrt(1.0 / (2.0 * (k + 1.0)))
        re = los + z1 * sigma
        im = z2 * sigma
        return re * re + im * im

    def degraded(self, k_penalty_db: float) -> "RicianFading":
        """A copy with the K-factor reduced by ``k_penalty_db``.

        Used when a path is partially obstructed: obstruction removes
        line-of-sight energy, pushing the channel towards Rayleigh.
        """
        return RicianFading(self.k_factor_db - k_penalty_db)


RAYLEIGH = RicianFading(k_factor_db=-40.0)
"""A Rician channel so scatter-dominated it is effectively Rayleigh."""


@dataclass(frozen=True)
class ChannelModel:
    """Bundle of the three propagation layers used by the link budget."""

    path_loss: PathLossModel = PathLossModel()
    shadowing: ShadowingModel = ShadowingModel()
    fading: RicianFading = RicianFading()

    def large_scale_gain_db(
        self,
        distance_m: float,
        tx_height_m: float,
        rx_height_m: float,
        shadowing_db: float,
    ) -> float:
        """Deterministic path gain plus an externally sampled shadowing term."""
        return (
            self.path_loss.path_gain_db(distance_m, tx_height_m, rx_height_m)
            + shadowing_db
        )
