"""Unit conversions and RF constants.

Every quantity in the library is carried in SI units (metres, seconds,
watts) internally; the dB-domain helpers here are the single place where
logarithmic units are converted, so rounding conventions stay consistent
across the propagation, antenna, and link-budget modules.
"""

from __future__ import annotations

import math

#: Speed of light in vacuum (m/s).
SPEED_OF_LIGHT = 299_792_458.0

#: Centre of the US UHF RFID band (FCC 902-928 MHz), used by the paper's
#: Matrics AR400 reader.
UHF_RFID_FREQ_HZ = 915e6

#: Regulatory power cap the paper's reader ran at: 30 dBm (1 W) conducted.
PAPER_READER_POWER_DBM = 30.0


def db_to_linear(db: float) -> float:
    """Convert a dB ratio to a linear power ratio."""
    return 10.0 ** (db / 10.0)


def linear_to_db(ratio: float) -> float:
    """Convert a linear power ratio to dB.

    Raises
    ------
    ValueError
        If ``ratio`` is not strictly positive (zero power has no dB value).
    """
    if ratio <= 0.0:
        raise ValueError(f"cannot express non-positive ratio {ratio!r} in dB")
    return 10.0 * math.log10(ratio)


def dbm_to_watts(dbm: float) -> float:
    """Convert power in dBm to watts."""
    return 10.0 ** ((dbm - 30.0) / 10.0)


def watts_to_dbm(watts: float) -> float:
    """Convert power in watts to dBm.

    Raises
    ------
    ValueError
        If ``watts`` is not strictly positive.
    """
    if watts <= 0.0:
        raise ValueError(f"cannot express non-positive power {watts!r} in dBm")
    return 10.0 * math.log10(watts) + 30.0


def dbm_to_milliwatts(dbm: float) -> float:
    """Convert power in dBm to milliwatts."""
    return 10.0 ** (dbm / 10.0)


def milliwatts_to_dbm(milliwatts: float) -> float:
    """Convert power in milliwatts to dBm."""
    if milliwatts <= 0.0:
        raise ValueError(
            f"cannot express non-positive power {milliwatts!r} in dBm"
        )
    return 10.0 * math.log10(milliwatts)


def wavelength(freq_hz: float) -> float:
    """Free-space wavelength (m) at ``freq_hz``.

    At 915 MHz this is roughly 0.3276 m, which sets both the Friis path
    loss and the near-field coupling radius used for inter-tag
    interference.
    """
    if freq_hz <= 0.0:
        raise ValueError(f"frequency must be positive, got {freq_hz!r}")
    return SPEED_OF_LIGHT / freq_hz


def friis_path_gain_db(distance_m: float, freq_hz: float = UHF_RFID_FREQ_HZ) -> float:
    """Free-space path *gain* in dB (always negative beyond ~λ/4π).

    ``Pr = Pt + Gt + Gr + friis_path_gain_db(d)`` in the dB domain.

    Parameters
    ----------
    distance_m:
        Separation between antennas in metres. Clamped below at one tenth
        of a wavelength — Friis is a far-field formula and diverges to +inf
        as d -> 0.
    freq_hz:
        Carrier frequency.
    """
    lam = wavelength(freq_hz)
    d = max(distance_m, lam / 10.0)
    return 20.0 * math.log10(lam / (4.0 * math.pi * d))


def sum_powers_dbm(*levels_dbm: float) -> float:
    """Combine incoherent power levels given in dBm.

    Used when accumulating interference from several readers: powers add
    in the linear domain, not the dB domain.
    """
    if not levels_dbm:
        raise ValueError("need at least one power level to sum")
    total_mw = sum(dbm_to_milliwatts(level) for level in levels_dbm)
    return milliwatts_to_dbm(total_mw)
