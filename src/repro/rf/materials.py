"""Material effects on tag operation and propagation.

The paper singles out two mechanisms:

1. **Blocking** — material between antenna and tag attenuates the
   signal (severely for metal and liquids, mildly for cardboard).
2. **Grounding/detuning** — a tag mounted *near* metal or liquid is
   detuned even when the material is not in the propagation path,
   because the conductor shifts the antenna's impedance and shorts its
   near field.

Both are expressed as dB penalties consumed by the link budget.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict


@dataclass(frozen=True)
class Material:
    """Electromagnetic bulk behaviour of a packaging or content material.

    Parameters
    ----------
    name:
        Human-readable identifier.
    attenuation_db_per_cm:
        One-way through-loss per centimetre of traversed thickness.
        Metal is effectively opaque (modelled as a very large value);
        water-rich material absorbs strongly; dry cardboard barely
        registers at 915 MHz.
    detuning_db_at_contact:
        Loss applied to a tag mounted directly on the material,
        decaying with mounting distance (see :func:`detuning_loss_db`).
    detuning_range_m:
        Distance over which proximity detuning decays to ~zero.
        Near-field effects at 915 MHz extend a few centimetres.
    """

    name: str
    attenuation_db_per_cm: float
    detuning_db_at_contact: float = 0.0
    detuning_range_m: float = 0.05

    def through_loss_db(self, thickness_m: float) -> float:
        """One-way attenuation through ``thickness_m`` of this material."""
        if thickness_m < 0.0:
            raise ValueError(f"thickness must be non-negative, got {thickness_m!r}")
        return self.attenuation_db_per_cm * thickness_m * 100.0

    def detuning_loss_db(self, mount_distance_m: float) -> float:
        """Detuning penalty for a tag ``mount_distance_m`` from this material.

        Linear decay from the contact value to zero at
        ``detuning_range_m``; a crude but standard system-level stand-in
        for the impedance shift of a conductor-backed dipole.
        """
        if mount_distance_m < 0.0:
            raise ValueError(
                f"mount distance must be non-negative, got {mount_distance_m!r}"
            )
        if mount_distance_m >= self.detuning_range_m:
            return 0.0
        frac = 1.0 - mount_distance_m / self.detuning_range_m
        return self.detuning_db_at_contact * frac


#: Effectively opaque at UHF; also a strong detuner when tags sit on it.
#: The detuning reach (~10 cm) reflects how far a conductor-backed
#: dipole's impedance stays shifted — the reason "top of the box"
#: placement over a metal router is the paper's worst location.
METAL = Material(
    name="metal",
    attenuation_db_per_cm=200.0,
    detuning_db_at_contact=28.0,
    detuning_range_m=0.10,
)

#: Water-based contents (beverages, humans-as-material): strong absorber.
LIQUID = Material(
    name="liquid",
    attenuation_db_per_cm=8.0,
    detuning_db_at_contact=10.0,
    detuning_range_m=0.04,
)

#: Dry corrugated cardboard: nearly transparent.
CARDBOARD = Material(
    name="cardboard",
    attenuation_db_per_cm=0.3,
    detuning_db_at_contact=0.0,
)

#: Human tissue, used by the body-blocking model. Mostly water.
BODY = Material(
    name="body",
    attenuation_db_per_cm=4.0,
    detuning_db_at_contact=12.0,
    detuning_range_m=0.05,
)

#: Plain air (identity material).
AIR = Material(name="air", attenuation_db_per_cm=0.0)

#: Registry for lookup by name (used by scenario config files).
MATERIALS: Dict[str, Material] = {
    m.name: m for m in (METAL, LIQUID, CARDBOARD, BODY, AIR)
}


def material_by_name(name: str) -> Material:
    """Look up a built-in material.

    Raises
    ------
    KeyError
        With the list of known names, if ``name`` is not registered.
    """
    try:
        return MATERIALS[name]
    except KeyError:
        known = ", ".join(sorted(MATERIALS))
        raise KeyError(f"unknown material {name!r}; known: {known}") from None
