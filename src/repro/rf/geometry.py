"""3-D vectors, orientations, and poses for the simulated lab.

The coordinate convention throughout the library mirrors the paper's
experimental setup (Figure 1):

* **x** — horizontal, parallel to the antenna face (the direction carts
  move in the tracking experiments);
* **y** — vertical (height above the floor);
* **z** — boresight, pointing *away* from the reader antenna into the
  read zone.

An :class:`Orientation` stores a full rotation so that both a tag's
dipole axis and its patch normal are well defined; the paper's six tag
orientations (Figure 3) are provided as named constructors in
:mod:`repro.world.tags`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence, Tuple


@dataclass(frozen=True)
class Vec3:
    """An immutable 3-D vector with the handful of operations we need."""

    x: float
    y: float
    z: float

    def __add__(self, other: "Vec3") -> "Vec3":
        return Vec3(self.x + other.x, self.y + other.y, self.z + other.z)

    def __sub__(self, other: "Vec3") -> "Vec3":
        return Vec3(self.x - other.x, self.y - other.y, self.z - other.z)

    def __mul__(self, scalar: float) -> "Vec3":
        return Vec3(self.x * scalar, self.y * scalar, self.z * scalar)

    __rmul__ = __mul__

    def __truediv__(self, scalar: float) -> "Vec3":
        return Vec3(self.x / scalar, self.y / scalar, self.z / scalar)

    def __neg__(self) -> "Vec3":
        return Vec3(-self.x, -self.y, -self.z)

    def __iter__(self) -> Iterator[float]:
        yield self.x
        yield self.y
        yield self.z

    def dot(self, other: "Vec3") -> float:
        """Scalar (dot) product."""
        return self.x * other.x + self.y * other.y + self.z * other.z

    def cross(self, other: "Vec3") -> "Vec3":
        """Vector (cross) product, right-handed."""
        return Vec3(
            self.y * other.z - self.z * other.y,
            self.z * other.x - self.x * other.z,
            self.x * other.y - self.y * other.x,
        )

    def norm(self) -> float:
        """Euclidean length."""
        return math.sqrt(self.dot(self))

    def normalized(self) -> "Vec3":
        """Unit vector in the same direction.

        Raises
        ------
        ValueError
            If the vector is (numerically) zero.
        """
        n = self.norm()
        if n < 1e-12:
            raise ValueError("cannot normalize a zero vector")
        return self / n

    def distance_to(self, other: "Vec3") -> float:
        """Euclidean distance to ``other``."""
        return (self - other).norm()

    def angle_to(self, other: "Vec3") -> float:
        """Angle in radians between this vector and ``other`` (0..pi)."""
        denom = self.norm() * other.norm()
        if denom < 1e-24:
            raise ValueError("angle with a zero vector is undefined")
        cosine = max(-1.0, min(1.0, self.dot(other) / denom))
        return math.acos(cosine)

    def is_close(self, other: "Vec3", tol: float = 1e-9) -> bool:
        """True when all components match within ``tol``."""
        return (
            abs(self.x - other.x) <= tol
            and abs(self.y - other.y) <= tol
            and abs(self.z - other.z) <= tol
        )

    @staticmethod
    def zero() -> "Vec3":
        return Vec3(0.0, 0.0, 0.0)

    @staticmethod
    def unit_x() -> "Vec3":
        return Vec3(1.0, 0.0, 0.0)

    @staticmethod
    def unit_y() -> "Vec3":
        return Vec3(0.0, 1.0, 0.0)

    @staticmethod
    def unit_z() -> "Vec3":
        return Vec3(0.0, 0.0, 1.0)


ORIGIN = Vec3.zero()


@dataclass(frozen=True)
class Rotation:
    """A rotation stored as a 3x3 row-major orthonormal matrix."""

    rows: Tuple[Tuple[float, float, float], ...]

    @staticmethod
    def identity() -> "Rotation":
        return Rotation(((1.0, 0.0, 0.0), (0.0, 1.0, 0.0), (0.0, 0.0, 1.0)))

    @staticmethod
    def about_axis(axis: Vec3, angle_rad: float) -> "Rotation":
        """Rodrigues rotation about ``axis`` by ``angle_rad`` (right-hand rule)."""
        u = axis.normalized()
        c = math.cos(angle_rad)
        s = math.sin(angle_rad)
        t = 1.0 - c
        return Rotation(
            (
                (c + u.x * u.x * t, u.x * u.y * t - u.z * s, u.x * u.z * t + u.y * s),
                (u.y * u.x * t + u.z * s, c + u.y * u.y * t, u.y * u.z * t - u.x * s),
                (u.z * u.x * t - u.y * s, u.z * u.y * t + u.x * s, c + u.z * u.z * t),
            )
        )

    @staticmethod
    def from_euler(yaw: float, pitch: float, roll: float) -> "Rotation":
        """Compose intrinsic rotations: yaw about y, then pitch about x, then roll about z."""
        r_yaw = Rotation.about_axis(Vec3.unit_y(), yaw)
        r_pitch = Rotation.about_axis(Vec3.unit_x(), pitch)
        r_roll = Rotation.about_axis(Vec3.unit_z(), roll)
        return r_yaw.compose(r_pitch).compose(r_roll)

    def apply(self, v: Vec3) -> Vec3:
        """Rotate vector ``v``."""
        r = self.rows
        return Vec3(
            r[0][0] * v.x + r[0][1] * v.y + r[0][2] * v.z,
            r[1][0] * v.x + r[1][1] * v.y + r[1][2] * v.z,
            r[2][0] * v.x + r[2][1] * v.y + r[2][2] * v.z,
        )

    def compose(self, other: "Rotation") -> "Rotation":
        """Return the rotation equivalent to applying ``other`` first, then ``self``."""
        a = self.rows
        b = other.rows
        rows = tuple(
            tuple(
                sum(a[i][k] * b[k][j] for k in range(3))
                for j in range(3)
            )
            for i in range(3)
        )
        return Rotation(rows)  # type: ignore[arg-type]

    def inverse(self) -> "Rotation":
        """Inverse rotation (transpose, since the matrix is orthonormal)."""
        r = self.rows
        return Rotation(
            (
                (r[0][0], r[1][0], r[2][0]),
                (r[0][1], r[1][1], r[2][1]),
                (r[0][2], r[1][2], r[2][2]),
            )
        )


@dataclass(frozen=True)
class Pose:
    """A rigid-body pose: position plus orientation."""

    position: Vec3
    rotation: Rotation

    @staticmethod
    def at(position: Vec3) -> "Pose":
        """Pose at ``position`` with identity orientation."""
        return Pose(position, Rotation.identity())

    def transform_point(self, local: Vec3) -> Vec3:
        """Map a point from the body frame to the world frame."""
        return self.position + self.rotation.apply(local)

    def transform_direction(self, local: Vec3) -> Vec3:
        """Map a direction (no translation) from body to world frame."""
        return self.rotation.apply(local)

    def translated(self, offset: Vec3) -> "Pose":
        """A copy of this pose shifted by ``offset`` in the world frame."""
        return Pose(self.position + offset, self.rotation)


def segment_intersects_sphere(
    start: Vec3, end: Vec3, centre: Vec3, radius: float
) -> bool:
    """True when the segment ``start``-``end`` passes within ``radius`` of ``centre``.

    Used by the occlusion models (metal box contents, human bodies) to
    decide whether a propagation path is blocked.
    """
    seg = end - start
    seg_len2 = seg.dot(seg)
    if seg_len2 < 1e-24:
        return start.distance_to(centre) <= radius
    t = (centre - start).dot(seg) / seg_len2
    t = max(0.0, min(1.0, t))
    closest = start + seg * t
    return closest.distance_to(centre) <= radius


def segment_sphere_chord_length(
    start: Vec3, end: Vec3, centre: Vec3, radius: float
) -> float:
    """Length of the part of segment ``start``-``end`` inside the sphere.

    Attenuation through lossy material scales with the traversed
    thickness, so occlusion models need the chord length and not just a
    hit/miss answer. Returns 0.0 when the segment misses the sphere.
    """
    d = end - start
    seg_len = d.norm()
    if seg_len < 1e-12:
        return 0.0
    u = d / seg_len
    oc = start - centre
    b = oc.dot(u)
    c = oc.dot(oc) - radius * radius
    disc = b * b - c
    if disc <= 0.0:
        return 0.0
    sqrt_disc = math.sqrt(disc)
    t0 = -b - sqrt_disc
    t1 = -b + sqrt_disc
    # Clip the chord to the segment extent.
    t0 = max(t0, 0.0)
    t1 = min(t1, seg_len)
    return max(0.0, t1 - t0)


def centroid(points: Sequence[Vec3]) -> Vec3:
    """Arithmetic mean of a non-empty sequence of points."""
    if not points:
        raise ValueError("centroid of an empty point set is undefined")
    total = Vec3.zero()
    for p in points:
        total = total + p
    return total / float(len(points))


def pairwise_distances(points: Sequence[Vec3]) -> Iterable[float]:
    """Yield the distance for every unordered pair of points."""
    for i in range(len(points)):
        for j in range(i + 1, len(points)):
            yield points[i].distance_to(points[j])
