"""Command-line interface: run the paper's experiments from a shell.

Examples
--------
::

    python -m repro read-range --reps 12
    python -m repro table1 --reps 8 --json
    python -m repro table2 --record runs/table2
    python -m repro reader-redundancy
    python -m repro explain --scenario cart --tag 3
    python -m repro stats runs/table2
    python -m repro plan --target 0.995
    python -m repro report
    python -m repro bench --quick
    python -m repro validate
    python -m repro validate --bless --golden cart-front
    python -m repro lint src/ --json
    python -m repro lint --list-rules

Every experiment command accepts ``--reps``, ``--seed`` and
``--workers`` (trial fan-out over a process pool; defaults to the
``REPRO_WORKERS`` environment variable, unset means serial), plus the
observability pair: ``--record DIR`` attaches a
:class:`~repro.obs.Recorder` to the run and writes ``manifest.json`` +
``events.jsonl`` into ``DIR``, and ``--json`` (available on *every*
subcommand) emits the machine-readable payload instead of the ASCII
table — both views flow through one formatter,
:func:`repro.core.report.emit`.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Any, Dict, List, Optional, Sequence

from .analysis.tables import Table, percent
from .core.experiment import DEFAULT_SEED
from .core.model import (
    HUMAN_ONE_SUBJECT_RELIABILITY,
    OBJECT_LOCATION_RELIABILITY,
    READ_RANGE_MEAN_TAGS,
)
from .core.planner import CostModel, DeploymentPlanner


def _add_json(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--json", action="store_true",
        help="emit the machine-readable payload instead of the table",
    )


def _add_common(parser: argparse.ArgumentParser, default_reps: int) -> None:
    parser.add_argument(
        "--reps", type=int, default=default_reps,
        help=f"repetitions per configuration (default {default_reps})",
    )
    parser.add_argument(
        "--seed", type=int, default=DEFAULT_SEED,
        help="root seed for reproducibility",
    )
    parser.add_argument(
        "--workers", type=int, default=None,
        help=(
            "trial fan-out over a process pool; results are "
            "bit-identical to serial (default: REPRO_WORKERS env, "
            "unset = serial)"
        ),
    )
    parser.add_argument(
        "--record", metavar="DIR", default=None,
        help=(
            "record the run: write manifest.json and events.jsonl "
            "(tag outcomes, miss causes, supervision events) into DIR"
        ),
    )
    parser.add_argument(
        "--started-at", metavar="ISO8601", default=None,
        help=(
            "timestamp stamped into manifest.json with --record "
            "(default: current UTC time; pass explicitly to make the "
            "recorded run a pure function of its inputs)"
        ),
    )
    _add_json(parser)


def _make_recorder(args: argparse.Namespace):
    """A Recorder when ``--record`` was given, else None (zero cost)."""
    if getattr(args, "record", None) is None:
        return None
    from .obs import Recorder

    return Recorder()


def _resolve_started_at(args: argparse.Namespace) -> str:
    """Manifest timestamp: ``--started-at`` if given, else the clock.

    The CLI is the designated edge where wall time may enter a
    recording — everything below it is a pure function of the seed and
    the config, which is what the determinism lint rule enforces.
    """
    explicit = getattr(args, "started_at", None)
    if explicit is not None:
        return explicit
    import datetime

    return datetime.datetime.now(  # repro: allow[det-wallclock] CLI edge: provenance stamp only; pin with --started-at
        datetime.timezone.utc
    ).isoformat()


def _estimate_dict(estimate: Any) -> Dict[str, Any]:
    return {
        "rate": estimate.rate,
        "successes": estimate.successes,
        "trials": estimate.trials,
    }


def _finish(
    args: argparse.Namespace,
    payload: Dict[str, Any],
    text: str,
    recorder: Any = None,
    wall_s: float = 0.0,
    config: Optional[Dict[str, Any]] = None,
) -> int:
    """One exit point for every subcommand: record, then emit."""
    from .core.report import emit

    record_dir = getattr(args, "record", None)
    if record_dir is not None and recorder is not None:
        from .obs import (
            RunManifest,
            events_path,
            write_events_jsonl,
            write_manifest,
        )

        manifest = RunManifest.create(
            command=payload.get("command", args.command),
            seed=getattr(args, "seed", DEFAULT_SEED),
            config=config or {},
            wall_time_s=wall_s,
            workers=getattr(args, "workers", None),
            started_at=_resolve_started_at(args),
        )
        write_manifest(record_dir, manifest)
        count = write_events_jsonl(events_path(record_dir), recorder.events)
        payload = dict(payload)
        payload["recording"] = {
            "directory": record_dir,
            "events": count,
            "miss_causes": recorder.miss_cause_counts(),
        }
        text = f"{text}\nrecorded {count} events to {record_dir}"
    emit(payload, text, as_json=getattr(args, "json", False))
    return 0


def _cmd_read_range(args: argparse.Namespace) -> int:
    from .world.scenarios.read_range import run_read_range_experiment

    recorder = _make_recorder(args)
    began = time.perf_counter()
    results = run_read_range_experiment(
        repetitions=args.reps, seed=args.seed, workers=args.workers,
        recorder=recorder,
    )
    wall_s = time.perf_counter() - began
    table = Table(
        "Figure 2 — mean tags read (of 20) vs distance",
        headers=("Distance (m)", "Measured", "Paper (approx)"),
    )
    rows: List[Dict[str, Any]] = []
    for distance, point in sorted(results.items()):
        paper = READ_RANGE_MEAN_TAGS.get(distance)
        table.add_row(
            f"{distance:g}",
            f"{point.mean_tags_read:.1f}",
            f"{paper:.1f}" if paper is not None else "-",
        )
        rows.append(
            {
                "distance_m": distance,
                "measured_mean_tags": point.mean_tags_read,
                "paper_mean_tags": paper,
            }
        )
    payload = {
        "command": "read-range",
        "seed": args.seed,
        "reps": args.reps,
        "rows": rows,
    }
    return _finish(
        args, payload, table.render(), recorder=recorder, wall_s=wall_s,
        config={"reps": args.reps},
    )


def _cmd_table1(args: argparse.Namespace) -> int:
    from .world.scenarios.object_tracking import run_table1_experiment

    recorder = _make_recorder(args)
    began = time.perf_counter()
    results = run_table1_experiment(
        repetitions=args.reps, seed=args.seed, workers=args.workers,
        recorder=recorder,
    )
    wall_s = time.perf_counter() - began
    table = Table(
        "Table 1 — read reliability for tags on objects",
        headers=("Location", "Measured", "Paper"),
    )
    rows: List[Dict[str, Any]] = []
    for face, estimate in results.items():
        paper = OBJECT_LOCATION_RELIABILITY[face.value]
        table.add_row(face.value, percent(estimate.rate), percent(paper))
        rows.append(
            {
                "location": face.value,
                "measured": _estimate_dict(estimate),
                "paper_rate": paper,
            }
        )
    payload = {
        "command": "table1",
        "seed": args.seed,
        "reps": args.reps,
        "rows": rows,
    }
    return _finish(
        args, payload, table.render(), recorder=recorder, wall_s=wall_s,
        config={"reps": args.reps},
    )


def _cmd_table2(args: argparse.Namespace) -> int:
    from .world.scenarios.human_tracking import run_table2_experiment

    recorder = _make_recorder(args)
    began = time.perf_counter()
    results = run_table2_experiment(
        repetitions=args.reps, seed=args.seed, workers=args.workers,
        recorder=recorder,
    )
    wall_s = time.perf_counter() - began
    table = Table(
        "Table 2 — read reliability for tags on humans",
        headers=("Placement", "1 subject", "2 subj closer", "2 subj farther"),
    )
    rows: List[Dict[str, Any]] = []
    for placement, row in results.items():
        table.add_row(
            placement,
            percent(row.one_subject.rate),
            percent(row.two_subject_closer.rate),
            percent(row.two_subject_farther.rate),
        )
        rows.append(
            {
                "placement": placement,
                "one_subject": _estimate_dict(row.one_subject),
                "two_subject_closer": _estimate_dict(row.two_subject_closer),
                "two_subject_farther": _estimate_dict(
                    row.two_subject_farther
                ),
            }
        )
    payload = {
        "command": "table2",
        "seed": args.seed,
        "reps": args.reps,
        "rows": rows,
    }
    return _finish(
        args, payload, table.render(), recorder=recorder, wall_s=wall_s,
        config={"reps": args.reps},
    )


def _cmd_table3(args: argparse.Namespace) -> int:
    from .world.scenarios.object_tracking import (
        run_object_redundancy_experiment,
    )

    recorder = _make_recorder(args)
    began = time.perf_counter()
    outcomes = run_object_redundancy_experiment(
        repetitions=args.reps, seed=args.seed, workers=args.workers,
        recorder=recorder,
    )
    wall_s = time.perf_counter() - began
    table = Table(
        "Table 3 — redundancy for object tracking",
        headers=("Configuration", "R_M", "R_C"),
    )
    rows: List[Dict[str, Any]] = []
    for outcome in outcomes:
        table.add_row(
            outcome.case.name,
            percent(outcome.measured.rate),
            percent(outcome.calculated, 1),
        )
        rows.append(
            {
                "configuration": outcome.case.name,
                "measured": _estimate_dict(outcome.measured),
                "calculated": outcome.calculated,
            }
        )
    payload = {
        "command": "table3",
        "seed": args.seed,
        "reps": args.reps,
        "rows": rows,
    }
    return _finish(
        args, payload, table.render(), recorder=recorder, wall_s=wall_s,
        config={"reps": args.reps},
    )


def _cmd_reader_redundancy(args: argparse.Namespace) -> int:
    from .world.scenarios.reader_redundancy import (
        run_reader_redundancy_experiment,
    )

    recorder = _make_recorder(args)
    began = time.perf_counter()
    result = run_reader_redundancy_experiment(
        repetitions=args.reps, seed=args.seed, workers=args.workers,
        recorder=recorder,
    )
    wall_s = time.perf_counter() - began
    table = Table(
        "Section 4 — reader-level redundancy",
        headers=("Configuration", "Reliability"),
    )
    cells = (
        ("1 reader", result.single_reader),
        ("2 readers, no DRM", result.dual_no_drm),
        ("2 readers, DRM", result.dual_with_drm),
    )
    rows: List[Dict[str, Any]] = []
    for name, estimate in cells:
        table.add_row(name, percent(estimate.rate))
        rows.append(
            {"configuration": name, "measured": _estimate_dict(estimate)}
        )
    payload = {
        "command": "reader-redundancy",
        "seed": args.seed,
        "reps": args.reps,
        "rows": rows,
    }
    return _finish(
        args, payload, table.render(), recorder=recorder, wall_s=wall_s,
        config={"reps": args.reps},
    )


def _cmd_faults(args: argparse.Namespace) -> int:
    from .world.scenarios.fault_injection import (
        run_fault_injection_experiment,
        run_fault_rate_sweep,
    )

    recorder = _make_recorder(args)
    if args.sweep:
        began = time.perf_counter()
        results = run_fault_rate_sweep(
            repetitions=args.reps, seed=args.seed, workers=args.workers,
            recorder=recorder,
        )
        wall_s = time.perf_counter() - began
        table = Table(
            "Fault sweep — tracking reliability vs per-pass crash rate",
            headers=("Crash rate", "1 reader", "2-reader failover"),
        )
        rows: List[Dict[str, Any]] = []
        for rate, (single, failover) in sorted(results.items()):
            table.add_row(
                f"{rate:g}",
                percent(single.estimate.rate),
                percent(failover.estimate.rate),
            )
            rows.append(
                {
                    "crash_rate": rate,
                    "single": _estimate_dict(single.estimate),
                    "failover": _estimate_dict(failover.estimate),
                }
            )
        payload = {
            "command": "faults",
            "sweep": True,
            "seed": args.seed,
            "reps": args.reps,
            "rows": rows,
        }
        return _finish(
            args, payload, table.render(), recorder=recorder, wall_s=wall_s,
            config={"reps": args.reps, "sweep": True},
        )

    began = time.perf_counter()
    result = run_fault_injection_experiment(
        crash_fraction=args.crash_fraction,
        restart_after_s=(
            None if args.restart_after < 0 else args.restart_after
        ),
        repetitions=args.reps,
        seed=args.seed,
        workers=args.workers,
        recorder=recorder,
    )
    wall_s = time.perf_counter() - began
    table = Table(
        "Fault injection — primary reader killed mid-pass",
        headers=("Configuration", "Reliability", "Degraded", "Failovers"),
    )
    rows = []
    for outcome in (
        result.single_fault_free,
        result.single_crash,
        result.failover_fault_free,
        result.failover_crash,
    ):
        table.add_row(
            outcome.label,
            percent(outcome.estimate.rate),
            f"{outcome.degraded_trials}/{len(outcome.outcomes)}",
            f"{outcome.promoted_trials}/{len(outcome.outcomes)}",
        )
        rows.append(
            {
                "configuration": outcome.label,
                "measured": _estimate_dict(outcome.estimate),
                "degraded_trials": outcome.degraded_trials,
                "promoted_trials": outcome.promoted_trials,
                "trials": len(outcome.outcomes),
            }
        )
    sample = result.failover_crash.outcomes[0]
    observability = {
        "transitions": [
            {
                "time": t.time,
                "reader_id": t.reader_id,
                "old": t.old.value,
                "new": t.new.value,
            }
            for t in sample.transitions
        ],
        "promotions": [
            {
                "time": p.time,
                "from_reader": p.from_reader,
                "to_reader": p.to_reader,
            }
            for p in sample.promotions
        ],
        "verdict": sample.verdict,
        "coverage": sample.coverage,
    }
    lines = [table.render(), "", "Observability (failover-crash, trial 0):"]
    for transition in sample.transitions:
        lines.append(
            f"  t={transition.time:6.2f}s  {transition.reader_id}: "
            f"{transition.old.value} -> {transition.new.value}"
        )
    for promotion in sample.promotions:
        lines.append(
            f"  t={promotion.time:6.2f}s  failover: "
            f"{promotion.from_reader} -> {promotion.to_reader}"
        )
    lines.append(
        f"  verdict={sample.verdict!r} coverage={sample.coverage:.2f} "
        f"(blind misses reported 'unobserved', never 'absent')"
    )
    payload = {
        "command": "faults",
        "sweep": False,
        "seed": args.seed,
        "reps": args.reps,
        "rows": rows,
        "sample_observability": observability,
    }
    return _finish(
        args, payload, "\n".join(lines), recorder=recorder, wall_s=wall_s,
        config={
            "reps": args.reps,
            "crash_fraction": args.crash_fraction,
            "restart_after_s": args.restart_after,
        },
    )


def _cmd_explain(args: argparse.Namespace) -> int:
    from .obs.explain import explain_tag

    explanation = explain_tag(
        args.scenario, seed=args.pass_seed, trial=args.trial, tag=args.tag
    )
    return _finish(args, explanation.to_payload(), explanation.render())


def _cmd_stats(args: argparse.Namespace) -> int:
    from .obs.explain import render_stats, stats_payload

    payload = stats_payload(args.directory)
    return _finish(args, payload, render_stats(payload))


def _cmd_plan(args: argparse.Namespace) -> int:
    source = (
        OBJECT_LOCATION_RELIABILITY
        if args.domain == "object"
        else HUMAN_ONE_SUBJECT_RELIABILITY
    )
    planner = DeploymentPlanner(
        dict(source),
        cost_model=CostModel(
            cost_per_tag=args.tag_cost,
            cost_per_antenna=args.antenna_cost,
            objects_per_deployment=args.objects,
        ),
        antenna_efficiency=args.antenna_efficiency,
    )
    plan = planner.plan(args.target, max_antennas=args.max_antennas)
    table = Table(
        f"Deployment plan for {args.target:.1%} tracking reliability",
        headers=("Setting", "Value"),
    )
    table.add_row("tags per object", plan.tags_per_object)
    table.add_row("placements", ", ".join(plan.placements))
    table.add_row("antennas", plan.antennas)
    table.add_row("predicted reliability", percent(plan.predicted_reliability, 2))
    table.add_row("cost", f"${plan.cost:,.0f}")
    payload = {
        "command": "plan",
        "target": args.target,
        "domain": args.domain,
        "tags_per_object": plan.tags_per_object,
        "placements": list(plan.placements),
        "antennas": plan.antennas,
        "predicted_reliability": plan.predicted_reliability,
        "cost": plan.cost,
    }
    return _finish(args, payload, table.render())


def _cmd_bench(args: argparse.Namespace) -> int:
    from .core.bench import run_benchmark, summarise, write_benchmark

    doc = run_benchmark(
        workers=args.workers, quick=args.quick, seed=args.seed
    )
    path = write_benchmark(doc, args.output)
    payload = {"command": "bench", "output": path, **doc}
    text = f"{summarise(doc)}\nwrote {path}"
    _finish(args, payload, text)
    if not doc["workload"]["parity"]:
        print(
            "error: parallel outcomes differ from serial", file=sys.stderr
        )
        return 1
    return 0


def _cmd_validate(args: argparse.Namespace) -> int:
    import os

    from .validate import bless_golden, run_validation

    if args.bless:
        paths = bless_golden(args.golden or None)
        payload = {"command": "validate", "blessed": paths}
        text = "blessed golden documents:\n" + "\n".join(
            f"  {path}" for path in paths
        )
        return _finish(args, payload, text)
    deep = args.deep or os.environ.get(
        "REPRO_VALIDATE_DEEP", ""
    ).strip().lower() in ("1", "true", "yes")
    report = run_validation(
        pillars=args.pillar or None,
        seed=args.seed,
        deep=deep,
        checks=args.check or None,
    )
    _finish(args, report.to_payload(), report.render())
    return report.exit_code


def _cmd_lint(args: argparse.Namespace) -> int:
    from .lint import all_rules, rule_ids, run_lint

    if args.list_rules:
        rules = all_rules()
        width = max(len(r.rule_id) for r in rules)
        text = "\n".join(
            f"{r.rule_id.ljust(width)}  {r.rationale}" for r in rules
        )
        payload = {
            "command": "lint",
            "rules": [
                {
                    "id": r.rule_id,
                    "family": r.family,
                    "rationale": r.rationale,
                }
                for r in rules
            ],
        }
        return _finish(args, payload, text)
    try:
        report = run_lint(args.paths, rule_ids=args.rule or None)
    except KeyError as exc:
        print(
            f"error: no rule named {exc.args[0]!r}; known rules: "
            + ", ".join(rule_ids()),
            file=sys.stderr,
        )
        return 2
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    _finish(args, report.to_payload(), report.render())
    return report.exit_code


def _cmd_report(args: argparse.Namespace) -> int:
    from .core.report import rebuild_experiments_md

    doc = rebuild_experiments_md()
    payload = {"command": "report", **doc}
    text = (
        f"EXPERIMENTS.md written with {doc['artefacts_included']} artefacts "
        f"from {doc['results_dir']}"
    )
    return _finish(args, payload, text)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction of 'Reliability Techniques for RFID-Based "
            "Object Tracking Applications' (DSN 2007)."
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    experiments = (
        ("read-range", _cmd_read_range, 12, "Figure 2 read-range sweep"),
        ("table1", _cmd_table1, 8, "Table 1 tag locations on boxes"),
        ("table2", _cmd_table2, 20, "Table 2 tags on humans"),
        ("table3", _cmd_table3, 8, "Table 3 object redundancy"),
        (
            "reader-redundancy",
            _cmd_reader_redundancy,
            20,
            "Section 4 reader-level redundancy",
        ),
    )
    for name, handler, default_reps, help_text in experiments:
        p = sub.add_parser(name, help=help_text)
        _add_common(p, default_reps)
        p.set_defaults(handler=handler)

    faults = sub.add_parser(
        "faults",
        help="fault injection: reader crash, supervision, failover",
    )
    _add_common(faults, 20)
    faults.add_argument(
        "--crash-fraction", type=float, default=0.0125,
        help="when the primary dies, as a fraction of the pass",
    )
    faults.add_argument(
        "--restart-after", type=float, default=4.0,
        help="watchdog reboot delay in seconds (negative = never restart)",
    )
    faults.add_argument(
        "--sweep", action="store_true",
        help="sweep crash probability instead of the single-kill experiment",
    )
    faults.set_defaults(handler=_cmd_faults)

    explain = sub.add_parser(
        "explain",
        help=(
            "re-run one fully-instrumented pass and print the "
            "link-budget waterfall behind one tag's outcome"
        ),
    )
    explain.add_argument(
        "--scenario", default="cart",
        help="registered workload (cart, walk)",
    )
    explain.add_argument(
        "--pass-seed", type=int, default=DEFAULT_SEED,
        help="root seed of the pass to re-run",
    )
    explain.add_argument(
        "--trial", type=int, default=0,
        help="trial index within the seed (default 0)",
    )
    explain.add_argument(
        "--tag", default=None,
        help="EPC or population index (default: the first missed tag)",
    )
    _add_json(explain)
    explain.set_defaults(handler=_cmd_explain)

    stats = sub.add_parser(
        "stats",
        help="summarise a recorded run directory (manifest + events.jsonl)",
    )
    stats.add_argument(
        "directory",
        help="directory written by --record",
    )
    _add_json(stats)
    stats.set_defaults(handler=_cmd_stats)

    plan = sub.add_parser(
        "plan", help="deployment planning from the paper's measurements"
    )
    plan.add_argument("--target", type=float, default=0.99)
    plan.add_argument(
        "--domain", choices=("object", "human"), default="object"
    )
    plan.add_argument("--tag-cost", type=float, default=0.05)
    plan.add_argument("--antenna-cost", type=float, default=300.0)
    plan.add_argument("--objects", type=int, default=1_000_000)
    plan.add_argument("--antenna-efficiency", type=float, default=0.7)
    plan.add_argument("--max-antennas", type=int, default=4)
    _add_json(plan)
    plan.set_defaults(handler=_cmd_plan)

    validate = sub.add_parser(
        "validate",
        help=(
            "run the validation suite: physics invariants, metamorphic "
            "relations, and the golden-trace regression pins (exit code "
            "0 only when every check passes)"
        ),
    )
    validate.add_argument(
        "--pillar", action="append",
        choices=("invariants", "metamorphic", "golden"),
        help="run only this pillar (repeatable; default: all three)",
    )
    validate.add_argument(
        "--check", action="append", metavar="NAME",
        help=(
            "run only the named check (repeatable; golden checks are "
            "named golden:<scenario>)"
        ),
    )
    validate.add_argument(
        "--seed", type=int, default=DEFAULT_SEED,
        help=(
            "root seed for the stochastic sweeps (golden scenarios pin "
            "their own seeds and ignore this)"
        ),
    )
    validate.add_argument(
        "--deep", action="store_true",
        help=(
            "widen every sweep (nightly profile; also enabled by "
            "REPRO_VALIDATE_DEEP=1)"
        ),
    )
    validate.add_argument(
        "--bless", action="store_true",
        help=(
            "re-pin the golden-trace documents under tests/golden/ "
            "instead of checking them (the intentional-drift flow)"
        ),
    )
    validate.add_argument(
        "--golden", action="append", metavar="SCENARIO",
        help="restrict --bless to this scenario (repeatable)",
    )
    _add_json(validate)
    validate.set_defaults(handler=_cmd_validate)

    lint = sub.add_parser(
        "lint",
        help=(
            "static analysis of the source tree: units, determinism, "
            "RNG, pickle and exception discipline (exit 0 clean, "
            "1 findings, 2 usage error)"
        ),
    )
    lint.add_argument(
        "paths", nargs="*", default=["src"],
        help="files or directories to lint (default: src)",
    )
    lint.add_argument(
        "--rule", action="append", metavar="ID",
        help="run only this rule id (repeatable; see --list-rules)",
    )
    lint.add_argument(
        "--list-rules", action="store_true",
        help="print every rule id with its one-line rationale and exit",
    )
    _add_json(lint)
    lint.set_defaults(handler=_cmd_lint)

    report = sub.add_parser(
        "report", help="assemble EXPERIMENTS.md from benchmark results"
    )
    _add_json(report)
    report.set_defaults(handler=_cmd_report)

    bench = sub.add_parser(
        "bench",
        help="record the perf suite to a machine-readable BENCH_<date>.json",
    )
    bench.add_argument(
        "--quick", action="store_true",
        help="reduced iteration counts (for CI smoke runs)",
    )
    bench.add_argument(
        "--workers", type=int, default=None,
        help="worker count for the parallel workload (default: min(4, cpus))",
    )
    bench.add_argument(
        "--seed", type=int, default=DEFAULT_SEED,
        help="root seed for the workload trials",
    )
    bench.add_argument(
        "--output", default=None,
        help="output path (default: BENCH_<date>.json in the cwd)",
    )
    _add_json(bench)
    bench.set_defaults(handler=_cmd_bench)
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.handler(args)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    except BrokenPipeError:
        # stdout consumer (head, less) went away mid-write: not an error.
        return 0
    except OSError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    sys.exit(main())
