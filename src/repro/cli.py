"""Command-line interface: run the paper's experiments from a shell.

Examples
--------
::

    python -m repro read-range --reps 12
    python -m repro table1 --reps 8
    python -m repro table2
    python -m repro reader-redundancy
    python -m repro plan --target 0.995
    python -m repro report
    python -m repro bench --quick

Every experiment command accepts ``--reps``, ``--seed`` and
``--workers`` (trial fan-out over a process pool; defaults to the
``REPRO_WORKERS`` environment variable, unset means serial); outputs
are the same ASCII tables the benchmark harness records. ``bench``
records the performance suite to a machine-readable
``BENCH_<date>.json``.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional, Sequence

from .analysis.tables import Table, percent
from .core.experiment import DEFAULT_SEED
from .core.model import (
    HUMAN_ONE_SUBJECT_RELIABILITY,
    OBJECT_LOCATION_RELIABILITY,
    READ_RANGE_MEAN_TAGS,
)
from .core.planner import CostModel, DeploymentPlanner


def _add_common(parser: argparse.ArgumentParser, default_reps: int) -> None:
    parser.add_argument(
        "--reps", type=int, default=default_reps,
        help=f"repetitions per configuration (default {default_reps})",
    )
    parser.add_argument(
        "--seed", type=int, default=DEFAULT_SEED,
        help="root seed for reproducibility",
    )
    parser.add_argument(
        "--workers", type=int, default=None,
        help=(
            "trial fan-out over a process pool; results are "
            "bit-identical to serial (default: REPRO_WORKERS env, "
            "unset = serial)"
        ),
    )


def _cmd_read_range(args: argparse.Namespace) -> int:
    from .world.scenarios.read_range import run_read_range_experiment

    results = run_read_range_experiment(
        repetitions=args.reps, seed=args.seed, workers=args.workers
    )
    table = Table(
        "Figure 2 — mean tags read (of 20) vs distance",
        headers=("Distance (m)", "Measured", "Paper (approx)"),
    )
    for distance, point in sorted(results.items()):
        paper = READ_RANGE_MEAN_TAGS.get(distance)
        table.add_row(
            f"{distance:g}",
            f"{point.mean_tags_read:.1f}",
            f"{paper:.1f}" if paper is not None else "-",
        )
    print(table.render())
    return 0


def _cmd_table1(args: argparse.Namespace) -> int:
    from .world.scenarios.object_tracking import run_table1_experiment

    results = run_table1_experiment(
        repetitions=args.reps, seed=args.seed, workers=args.workers
    )
    table = Table(
        "Table 1 — read reliability for tags on objects",
        headers=("Location", "Measured", "Paper"),
    )
    for face, estimate in results.items():
        table.add_row(
            face.value,
            percent(estimate.rate),
            percent(OBJECT_LOCATION_RELIABILITY[face.value]),
        )
    print(table.render())
    return 0


def _cmd_table2(args: argparse.Namespace) -> int:
    from .world.scenarios.human_tracking import run_table2_experiment

    results = run_table2_experiment(
        repetitions=args.reps, seed=args.seed, workers=args.workers
    )
    table = Table(
        "Table 2 — read reliability for tags on humans",
        headers=("Placement", "1 subject", "2 subj closer", "2 subj farther"),
    )
    for placement, row in results.items():
        table.add_row(
            placement,
            percent(row.one_subject.rate),
            percent(row.two_subject_closer.rate),
            percent(row.two_subject_farther.rate),
        )
    print(table.render())
    return 0


def _cmd_table3(args: argparse.Namespace) -> int:
    from .world.scenarios.object_tracking import (
        run_object_redundancy_experiment,
    )

    outcomes = run_object_redundancy_experiment(
        repetitions=args.reps, seed=args.seed, workers=args.workers
    )
    table = Table(
        "Table 3 — redundancy for object tracking",
        headers=("Configuration", "R_M", "R_C"),
    )
    for outcome in outcomes:
        table.add_row(
            outcome.case.name,
            percent(outcome.measured.rate),
            percent(outcome.calculated, 1),
        )
    print(table.render())
    return 0


def _cmd_reader_redundancy(args: argparse.Namespace) -> int:
    from .world.scenarios.reader_redundancy import (
        run_reader_redundancy_experiment,
    )

    result = run_reader_redundancy_experiment(
        repetitions=args.reps, seed=args.seed, workers=args.workers
    )
    table = Table(
        "Section 4 — reader-level redundancy",
        headers=("Configuration", "Reliability"),
    )
    table.add_row("1 reader", percent(result.single_reader.rate))
    table.add_row("2 readers, no DRM", percent(result.dual_no_drm.rate))
    table.add_row("2 readers, DRM", percent(result.dual_with_drm.rate))
    print(table.render())
    return 0


def _cmd_faults(args: argparse.Namespace) -> int:
    from .world.scenarios.fault_injection import (
        run_fault_injection_experiment,
        run_fault_rate_sweep,
    )

    if args.sweep:
        try:
            results = run_fault_rate_sweep(
                repetitions=args.reps, seed=args.seed, workers=args.workers
            )
        except ValueError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 1
        table = Table(
            "Fault sweep — tracking reliability vs per-pass crash rate",
            headers=("Crash rate", "1 reader", "2-reader failover"),
        )
        for rate, (single, failover) in sorted(results.items()):
            table.add_row(
                f"{rate:g}",
                percent(single.estimate.rate),
                percent(failover.estimate.rate),
            )
        print(table.render())
        return 0

    try:
        result = run_fault_injection_experiment(
            crash_fraction=args.crash_fraction,
            restart_after_s=(
                None if args.restart_after < 0 else args.restart_after
            ),
            repetitions=args.reps,
            seed=args.seed,
            workers=args.workers,
        )
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    table = Table(
        "Fault injection — primary reader killed mid-pass",
        headers=("Configuration", "Reliability", "Degraded", "Failovers"),
    )
    for outcome in (
        result.single_fault_free,
        result.single_crash,
        result.failover_fault_free,
        result.failover_crash,
    ):
        table.add_row(
            outcome.label,
            percent(outcome.estimate.rate),
            f"{outcome.degraded_trials}/{len(outcome.outcomes)}",
            f"{outcome.promoted_trials}/{len(outcome.outcomes)}",
        )
    print(table.render())
    sample = result.failover_crash.outcomes[0]
    print()
    print("Observability (failover-crash, trial 0):")
    for transition in sample.transitions:
        print(
            f"  t={transition.time:6.2f}s  {transition.reader_id}: "
            f"{transition.old.value} -> {transition.new.value}"
        )
    for promotion in sample.promotions:
        print(
            f"  t={promotion.time:6.2f}s  failover: "
            f"{promotion.from_reader} -> {promotion.to_reader}"
        )
    print(
        f"  verdict={sample.verdict!r} coverage={sample.coverage:.2f} "
        f"(blind misses reported 'unobserved', never 'absent')"
    )
    return 0


def _cmd_plan(args: argparse.Namespace) -> int:
    source = (
        OBJECT_LOCATION_RELIABILITY
        if args.domain == "object"
        else HUMAN_ONE_SUBJECT_RELIABILITY
    )
    planner = DeploymentPlanner(
        dict(source),
        cost_model=CostModel(
            cost_per_tag=args.tag_cost,
            cost_per_antenna=args.antenna_cost,
            objects_per_deployment=args.objects,
        ),
        antenna_efficiency=args.antenna_efficiency,
    )
    try:
        plan = planner.plan(args.target, max_antennas=args.max_antennas)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    table = Table(
        f"Deployment plan for {args.target:.1%} tracking reliability",
        headers=("Setting", "Value"),
    )
    table.add_row("tags per object", plan.tags_per_object)
    table.add_row("placements", ", ".join(plan.placements))
    table.add_row("antennas", plan.antennas)
    table.add_row("predicted reliability", percent(plan.predicted_reliability, 2))
    table.add_row("cost", f"${plan.cost:,.0f}")
    print(table.render())
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    from .core.bench import run_benchmark, summarise, write_benchmark

    doc = run_benchmark(
        workers=args.workers, quick=args.quick, seed=args.seed
    )
    path = write_benchmark(doc, args.output)
    print(summarise(doc))
    print(f"wrote {path}")
    if not doc["workload"]["parity"]:
        print(
            "error: parallel outcomes differ from serial", file=sys.stderr
        )
        return 1
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    from .core import report

    report.main()
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction of 'Reliability Techniques for RFID-Based "
            "Object Tracking Applications' (DSN 2007)."
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    experiments = (
        ("read-range", _cmd_read_range, 12, "Figure 2 read-range sweep"),
        ("table1", _cmd_table1, 8, "Table 1 tag locations on boxes"),
        ("table2", _cmd_table2, 20, "Table 2 tags on humans"),
        ("table3", _cmd_table3, 8, "Table 3 object redundancy"),
        (
            "reader-redundancy",
            _cmd_reader_redundancy,
            20,
            "Section 4 reader-level redundancy",
        ),
    )
    for name, handler, default_reps, help_text in experiments:
        p = sub.add_parser(name, help=help_text)
        _add_common(p, default_reps)
        p.set_defaults(handler=handler)

    faults = sub.add_parser(
        "faults",
        help="fault injection: reader crash, supervision, failover",
    )
    _add_common(faults, 20)
    faults.add_argument(
        "--crash-fraction", type=float, default=0.0125,
        help="when the primary dies, as a fraction of the pass",
    )
    faults.add_argument(
        "--restart-after", type=float, default=4.0,
        help="watchdog reboot delay in seconds (negative = never restart)",
    )
    faults.add_argument(
        "--sweep", action="store_true",
        help="sweep crash probability instead of the single-kill experiment",
    )
    faults.set_defaults(handler=_cmd_faults)

    plan = sub.add_parser(
        "plan", help="deployment planning from the paper's measurements"
    )
    plan.add_argument("--target", type=float, default=0.99)
    plan.add_argument(
        "--domain", choices=("object", "human"), default="object"
    )
    plan.add_argument("--tag-cost", type=float, default=0.05)
    plan.add_argument("--antenna-cost", type=float, default=300.0)
    plan.add_argument("--objects", type=int, default=1_000_000)
    plan.add_argument("--antenna-efficiency", type=float, default=0.7)
    plan.add_argument("--max-antennas", type=int, default=4)
    plan.set_defaults(handler=_cmd_plan)

    report = sub.add_parser(
        "report", help="assemble EXPERIMENTS.md from benchmark results"
    )
    report.set_defaults(handler=_cmd_report)

    bench = sub.add_parser(
        "bench",
        help="record the perf suite to a machine-readable BENCH_<date>.json",
    )
    bench.add_argument(
        "--quick", action="store_true",
        help="reduced iteration counts (for CI smoke runs)",
    )
    bench.add_argument(
        "--workers", type=int, default=None,
        help="worker count for the parallel workload (default: min(4, cpus))",
    )
    bench.add_argument(
        "--seed", type=int, default=DEFAULT_SEED,
        help="root seed for the workload trials",
    )
    bench.add_argument(
        "--output", default=None,
        help="output path (default: BENCH_<date>.json in the cwd)",
    )
    bench.set_defaults(handler=_cmd_bench)
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.handler(args)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    sys.exit(main())
