"""Golden-trace regression: canonical recorded runs pinned as digests.

One golden scenario is a fully instrumented recorded run — every link
waterfall, slot, RNG derivation, and tag outcome — reduced to a digest
document under ``tests/golden/``. The document stores the SHA-256 of
the canonical JSONL event stream plus a human-readable summary (reads,
rounds, miss causes, slot outcomes), so a regression report says *what*
drifted, not just that something did.

Because every record is a pure function of ``(seed, trial)`` and the
JSONL form is canonical (sorted keys, shortest-form float repr), the
digest is bit-stable across runs, platforms, and Python versions; any
change — a single flipped slot outcome included — changes the digest
and fails the check. Intentional physics changes re-pin the documents
with ``python -m repro validate --bless``.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
from dataclasses import dataclass
from typing import Any, Callable, Dict, Iterable, List, Optional, Tuple

from ..obs.jsonl import dump_records
from ..obs.recorder import Recorder
from ..sim.rng import SeedSequence
from .result import CheckResult, failed, ok

PILLAR = "golden"

#: ``tests/golden/`` at the repository root (this file lives in
#: ``src/repro/validate/``).
GOLDEN_DIR = os.path.join(
    os.path.dirname(
        os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__))))
    ),
    "tests",
    "golden",
)

#: Golden runs pin their own seed; they must not drift when the CLI is
#: invoked with a different ``--seed`` (that would defeat regression
#: pinning), so this is deliberately NOT the CLI seed.
GOLDEN_SEED = 20070625


@dataclass(frozen=True)
class GoldenScenario:
    """One canonical workload pinned under ``tests/golden/``."""

    name: str
    description: str
    #: Returns ``(simulator, carriers, fault_plan-or-None)``.
    build: Callable[[], Tuple[Any, List[Any], Any]]
    trials: int = 2
    seed: int = GOLDEN_SEED


def _build_cart_front() -> Tuple[Any, List[Any], Any]:
    from ..world.objects import BoxFace
    from ..world.portal import single_antenna_portal
    from ..world.scenarios.object_tracking import (
        _make_simulator,
        build_box_cart,
    )

    sim = _make_simulator(single_antenna_portal())
    carrier, _ = build_box_cart([BoxFace.FRONT])
    return sim, [carrier], None


def _build_cart_front_back() -> Tuple[Any, List[Any], Any]:
    from ..world.objects import BoxFace
    from ..world.portal import single_antenna_portal
    from ..world.scenarios.object_tracking import (
        _make_simulator,
        build_box_cart,
    )

    sim = _make_simulator(single_antenna_portal())
    carrier, _ = build_box_cart([BoxFace.FRONT, BoxFace.BACK])
    return sim, [carrier], None


def _build_walk_front() -> Tuple[Any, List[Any], Any]:
    from ..world.humans import HumanTagPlacement
    from ..world.portal import single_antenna_portal
    from ..world.scenarios.human_tracking import _make_simulator, build_walk

    sim = _make_simulator(single_antenna_portal())
    carrier, _ = build_walk(1, [HumanTagPlacement.FRONT])
    return sim, [carrier], None


def _build_tag_plane_3m() -> Tuple[Any, List[Any], Any]:
    from ..core.calibration import PaperSetup
    from ..world.portal import single_antenna_portal
    from ..world.scenarios.read_range import build_tag_plane
    from ..world.simulation import PortalPassSimulator

    setup = PaperSetup()
    sim = PortalPassSimulator(
        portal=single_antenna_portal(tx_power_dbm=setup.tx_power_dbm),
        env=setup.env,
        params=setup.params,
    )
    return sim, [build_tag_plane(3.0)], None


def _build_cart_collisions() -> Tuple[Any, List[Any], Any]:
    """The cart with one-slot frames pinned: every round collides, so
    this trace is dense in collision slots — the workload that catches
    a flipped slot outcome."""
    sim, carriers, _ = _build_cart_front()
    sim.params = dataclasses.replace(sim.params, q_initial=0, q_max=0)
    return sim, carriers, None


def _build_cart_antenna_fault() -> Tuple[Any, List[Any], Any]:
    from ..faults.plan import AntennaFault, FaultPlan

    sim, carriers, _ = _build_cart_front()
    plan = FaultPlan(
        antenna_faults=(
            AntennaFault(
                reader_id="reader-0",
                antenna_id="ant-0",
                start_s=1.0,
            ),
        )
    )
    return sim, carriers, plan


#: The pinned scenario families, one per experiment axis: baseline
#: object cart, tag redundancy, human tracking, the Figure 2 tag plane,
#: a collision-saturated protocol trace, and a faulted pass.
GOLDEN_SCENARIOS: Dict[str, GoldenScenario] = {
    "cart-front": GoldenScenario(
        "cart-front",
        "Table 1 box cart, front tags, single antenna",
        _build_cart_front,
    ),
    "cart-front-back": GoldenScenario(
        "cart-front-back",
        "Box cart with redundant front+back tags",
        _build_cart_front_back,
    ),
    "walk-front": GoldenScenario(
        "walk-front",
        "Table 2 walking subject, front tag",
        _build_walk_front,
    ),
    "tag-plane-3m": GoldenScenario(
        "tag-plane-3m",
        "Figure 2 twenty-tag plane at 3 m, single poll",
        _build_tag_plane_3m,
    ),
    "cart-collisions": GoldenScenario(
        "cart-collisions",
        "Box cart with one-slot frames (collision-saturated)",
        _build_cart_collisions,
        trials=1,
    ),
    "cart-antenna-fault": GoldenScenario(
        "cart-antenna-fault",
        "Box cart with the antenna going silent at t=1s",
        _build_cart_antenna_fault,
        trials=1,
    ),
}


def records_digest(lines: Iterable[str]) -> str:
    """SHA-256 over canonical JSONL lines (newline-joined)."""
    digest = hashlib.sha256()
    for line in lines:
        digest.update(line.encode("utf-8"))
        digest.update(b"\n")
    return digest.hexdigest()


def compute_golden_doc(scenario: GoldenScenario) -> Dict[str, Any]:
    """Run a golden scenario fully instrumented and reduce it to its
    digest document."""
    recorder = Recorder(
        capture_link_budget=True, capture_slots=True, capture_rng=True
    )
    sim, carriers, fault_plan = scenario.build()
    sim.recorder = recorder
    lines: List[str] = []
    tags_read: List[int] = []
    rounds: List[int] = []
    durations: List[float] = []
    slot_outcomes: Dict[str, int] = {}
    miss_causes: Dict[str, int] = {}
    for trial in range(scenario.trials):
        result = sim.run_pass(
            list(carriers),
            SeedSequence(scenario.seed),
            trial,
            fault_plan=fault_plan,
        )
        observation = result.obs
        lines.extend(dump_records(observation.records()))
        tags_read.append(
            sum(1 for out in observation.tag_outcomes if out.read)
        )
        rounds.append(result.rounds)
        durations.append(result.duration_s)
        for slot in observation.slot_records:
            slot_outcomes[slot.outcome] = slot_outcomes.get(slot.outcome, 0) + 1
        for out in observation.tag_outcomes:
            if not out.read and out.cause is not None:
                miss_causes[out.cause.value] = (
                    miss_causes.get(out.cause.value, 0) + 1
                )
    return {
        "scenario": scenario.name,
        "description": scenario.description,
        "seed": scenario.seed,
        "trials": scenario.trials,
        "record_count": len(lines),
        "records_sha256": records_digest(lines),
        "summary": {
            "tags_read": tags_read,
            "rounds": rounds,
            "duration_s": durations,
            "slot_outcomes": dict(sorted(slot_outcomes.items())),
            "miss_causes": dict(sorted(miss_causes.items())),
        },
    }


def golden_path(name: str) -> str:
    return os.path.join(GOLDEN_DIR, f"{name}.json")


def diff_golden_docs(
    expected: Dict[str, Any], actual: Dict[str, Any]
) -> List[str]:
    """Human-readable field-level differences (empty = identical)."""
    diffs: List[str] = []
    for key in ("seed", "trials", "record_count", "records_sha256"):
        if expected.get(key) != actual.get(key):
            diffs.append(
                f"{key}: pinned {expected.get(key)!r} != measured "
                f"{actual.get(key)!r}"
            )
    pinned_summary = expected.get("summary", {})
    measured_summary = actual.get("summary", {})
    for key in sorted(set(pinned_summary) | set(measured_summary)):
        if pinned_summary.get(key) != measured_summary.get(key):
            diffs.append(
                f"summary.{key}: pinned {pinned_summary.get(key)!r} != "
                f"measured {measured_summary.get(key)!r}"
            )
    return diffs


def check_golden(
    names: Optional[Iterable[str]] = None, deep: bool = False
) -> List[CheckResult]:
    """Recompute every pinned scenario and compare against its document.

    ``deep`` is accepted for runner uniformity; golden runs are already
    exact, so there is no deeper profile to widen into.
    """
    results: List[CheckResult] = []
    selected = list(names) if names is not None else list(GOLDEN_SCENARIOS)
    for name in selected:
        scenario = GOLDEN_SCENARIOS.get(name)
        check_name = f"golden:{name}"
        if scenario is None:
            results.append(
                failed(
                    check_name,
                    PILLAR,
                    f"unknown golden scenario {name!r}; known: "
                    + ", ".join(sorted(GOLDEN_SCENARIOS)),
                )
            )
            continue
        path = golden_path(name)
        if not os.path.exists(path):
            results.append(
                failed(
                    check_name,
                    PILLAR,
                    f"no pinned document at {path}; run "
                    f"`python -m repro validate --bless` to create it",
                    path=path,
                )
            )
            continue
        with open(path, "r", encoding="utf-8") as handle:
            expected = json.load(handle)
        actual = compute_golden_doc(scenario)
        diffs = diff_golden_docs(expected, actual)
        if diffs:
            results.append(
                failed(
                    check_name,
                    PILLAR,
                    "trace drifted from pinned document: " + "; ".join(diffs),
                    diffs=diffs,
                    path=path,
                )
            )
        else:
            results.append(
                ok(
                    check_name,
                    PILLAR,
                    f"{actual['record_count']} records match digest "
                    f"{actual['records_sha256'][:12]}…",
                    record_count=actual["record_count"],
                    records_sha256=actual["records_sha256"],
                )
            )
    return results


def bless_golden(names: Optional[Iterable[str]] = None) -> List[str]:
    """(Re)compute and write the pinned documents; returns the paths.

    This is the *intentional drift* flow: after a deliberate physics or
    protocol change, re-pin and commit the new documents alongside it.
    """
    os.makedirs(GOLDEN_DIR, exist_ok=True)
    selected = list(names) if names is not None else list(GOLDEN_SCENARIOS)
    paths: List[str] = []
    for name in selected:
        scenario = GOLDEN_SCENARIOS.get(name)
        if scenario is None:
            raise ValueError(
                f"unknown golden scenario {name!r}; known: "
                + ", ".join(sorted(GOLDEN_SCENARIOS))
            )
        doc = compute_golden_doc(scenario)
        path = golden_path(name)
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(doc, handle, indent=2, sort_keys=True)
            handle.write("\n")
        paths.append(path)
    return paths
