"""Check results and the validation report the CLI renders.

A check is one named assertion sweep; its result carries enough detail
to debug a failure without re-running anything: the law being checked,
the measured quantities, and — on failure — the first counterexample
found. The report aggregates per pillar and maps onto a process exit
code, which is what makes ``python -m repro validate`` CI-gateable.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Tuple


@dataclass(frozen=True)
class CheckResult:
    """Outcome of one validation check."""

    #: Stable identifier, e.g. ``"link_reciprocity"``.
    name: str
    #: "invariants", "metamorphic", or "golden".
    pillar: str
    passed: bool
    #: One-line human summary; on failure, the first counterexample.
    detail: str
    #: Measured quantities backing the verdict (JSON-safe values only).
    metrics: Dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "pillar": self.pillar,
            "passed": self.passed,
            "detail": self.detail,
            "metrics": dict(self.metrics),
        }


def failed(
    name: str, pillar: str, detail: str, **metrics: Any
) -> CheckResult:
    """A failing :class:`CheckResult` (counterexample in ``detail``)."""
    return CheckResult(
        name=name, pillar=pillar, passed=False, detail=detail, metrics=metrics
    )


def ok(name: str, pillar: str, detail: str, **metrics: Any) -> CheckResult:
    """A passing :class:`CheckResult`."""
    return CheckResult(
        name=name, pillar=pillar, passed=True, detail=detail, metrics=metrics
    )


@dataclass
class ValidationReport:
    """Every check result of one ``repro validate`` run."""

    results: List[CheckResult] = field(default_factory=list)
    seed: int = 0
    deep: bool = False

    def add(self, result: CheckResult) -> None:
        self.results.append(result)

    def extend(self, results: List[CheckResult]) -> None:
        self.results.extend(results)

    @property
    def passed(self) -> bool:
        return all(r.passed for r in self.results) and bool(self.results)

    @property
    def exit_code(self) -> int:
        """0 when every check passed, 1 otherwise (including no checks)."""
        return 0 if self.passed else 1

    @property
    def failures(self) -> List[CheckResult]:
        return [r for r in self.results if not r.passed]

    def by_pillar(self) -> Dict[str, List[CheckResult]]:
        grouped: Dict[str, List[CheckResult]] = {}
        for result in self.results:
            grouped.setdefault(result.pillar, []).append(result)
        return grouped

    def counts(self) -> Tuple[int, int]:
        """(passed, total)."""
        return sum(1 for r in self.results if r.passed), len(self.results)

    def to_payload(self) -> Dict[str, Any]:
        passed, total = self.counts()
        return {
            "command": "validate",
            "seed": self.seed,
            "deep": self.deep,
            "passed": passed,
            "total": total,
            "ok": self.passed,
            "checks": [r.to_dict() for r in self.results],
        }

    def render(self) -> str:
        """ASCII summary, one line per check, grouped by pillar."""
        lines: List[str] = []
        for pillar, results in self.by_pillar().items():
            n_ok = sum(1 for r in results if r.passed)
            lines.append(f"{pillar} ({n_ok}/{len(results)})")
            for result in results:
                mark = "ok " if result.passed else "FAIL"
                lines.append(f"  [{mark}] {result.name}: {result.detail}")
        passed, total = self.counts()
        verdict = "PASS" if self.passed else "FAIL"
        lines.append(f"validate: {verdict} ({passed}/{total} checks)")
        return "\n".join(lines)
