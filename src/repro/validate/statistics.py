"""Statistical-equivalence helpers for the invariant sweeps.

Every stochastic invariant is checked as a *statistical equivalence*
claim: "the measured rate sits inside a 95% confidence interval of the
analytical prediction". These helpers keep the interval arithmetic in
one audited place so each check reads as the law it asserts, not as
interval plumbing. Nothing here draws randomness — checks pass their
own seeded streams — so the verdicts are exactly reproducible.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence, Tuple

#: Two-sided z for the default 95% confidence level.
Z_95 = 1.959963984540054


def wilson_interval(
    successes: int, trials: int, z: float = Z_95
) -> Tuple[float, float]:
    """Wilson score interval for a Bernoulli rate.

    Matches :meth:`repro.core.reliability.ReliabilityEstimate.wilson_interval`
    but takes raw counts so the checks can use it without building an
    estimate object.
    """
    if trials <= 0:
        raise ValueError(f"trials must be positive, got {trials!r}")
    if not 0 <= successes <= trials:
        raise ValueError(f"successes {successes} out of range 0..{trials}")
    n = float(trials)
    p = successes / n
    denom = 1.0 + z * z / n
    centre = (p + z * z / (2.0 * n)) / denom
    half = (z / denom) * math.sqrt(p * (1.0 - p) / n + z * z / (4.0 * n * n))
    return (max(0.0, centre - half), min(1.0, centre + half))


@dataclass(frozen=True)
class Agreement:
    """Verdict of one measured-vs-predicted comparison."""

    measured: float
    predicted: float
    low: float
    high: float

    @property
    def within(self) -> bool:
        """Does the prediction sit inside the measured CI?"""
        return self.low <= self.predicted <= self.high

    @property
    def below(self) -> bool:
        """Is the prediction strictly above the CI (measured shortfall)?"""
        return self.high < self.predicted


def binomial_agreement(
    successes: int, trials: int, predicted: float, z: float = Z_95
) -> Agreement:
    """Compare a Bernoulli measurement against an analytical rate.

    The check direction is "prediction inside the measurement's Wilson
    interval": with 95% coverage a *correct* simulator fails one sweep
    in twenty, so callers aggregate several points and require most to
    agree rather than gating on a single interval.
    """
    low, high = wilson_interval(successes, trials, z)
    return Agreement(
        measured=successes / trials, predicted=predicted, low=low, high=high
    )


def mean_confidence_interval(
    values: Sequence[float], z: float = Z_95
) -> Tuple[float, float, float]:
    """(mean, low, high): normal-approximation CI for a sample mean."""
    if not values:
        raise ValueError("need at least one value")
    n = len(values)
    mean = sum(values) / n
    if n == 1:
        return mean, mean, mean
    var = sum((v - mean) ** 2 for v in values) / (n - 1)
    half = z * math.sqrt(var / n)
    return mean, mean - half, mean + half


def holm_all_within(agreements: Sequence[Agreement], allow_misses: int = 0) -> bool:
    """True when at most ``allow_misses`` comparisons fall outside CI.

    A correct simulator measured at k independent 95% intervals misses
    ~0.05·k of them; sweeps with many points pass a small allowance in
    rather than demanding a 100% hit rate the statistics do not promise.
    """
    misses = sum(1 for a in agreements if not a.within)
    return misses <= allow_misses
