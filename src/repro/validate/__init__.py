"""Validation subsystem: continuous proof the simulator stays honest.

Every result this repository reports rests on three kinds of claims,
and each gets its own pillar of machine-checkable validation:

* **invariants** (:mod:`repro.validate.invariants`) — physical and
  model laws swept across configurations: link reciprocity, antenna
  pattern symmetry, monotonicity of reliability in power / distance /
  population, the independence-model bound ``R_C = 1 - Π(1 - P_i)``
  (matched within CI for independent opportunities, strict shortfall
  under induced correlation), and slotted-ALOHA throughput against the
  analytical ``n·p·(1-p)^(n-1)`` curve;
* **metamorphic** (:mod:`repro.validate.metamorphic`) — relations that
  must hold between *pairs* of runs: redundancy never hurts, EPC
  relabeling permutes but never changes aggregates, seed-split
  parallel trials merge to the serial result, CRC/EPC/JSONL round
  trips (the Hypothesis-driven versions live in ``tests/validate``;
  the deterministic sweeps here run in CI and from the CLI);
* **golden traces** (:mod:`repro.validate.golden`) — canonical
  recorded runs pinned as digest manifests under ``tests/golden/``;
  any bit-level drift in traces, waterfalls, slots or miss-cause
  counts fails the check, and ``python -m repro validate --bless``
  re-pins them intentionally.

Run everything with ``python -m repro validate`` (exit code 0 only
when every check passes) or per pillar with ``--pillar``. The
``REPRO_VALIDATE_DEEP=1`` environment variable (or ``--deep``) widens
every sweep for nightly-style runs.
"""

from .golden import (
    GOLDEN_DIR,
    GOLDEN_SCENARIOS,
    bless_golden,
    check_golden,
    compute_golden_doc,
    diff_golden_docs,
    records_digest,
)
from .invariants import INVARIANT_CHECKS
from .metamorphic import METAMORPHIC_CHECKS
from .result import CheckResult, ValidationReport
from .runner import PILLARS, run_validation
from .statistics import (
    binomial_agreement,
    mean_confidence_interval,
    wilson_interval,
)

__all__ = [
    "CheckResult",
    "GOLDEN_DIR",
    "GOLDEN_SCENARIOS",
    "INVARIANT_CHECKS",
    "METAMORPHIC_CHECKS",
    "PILLARS",
    "ValidationReport",
    "binomial_agreement",
    "bless_golden",
    "check_golden",
    "compute_golden_doc",
    "diff_golden_docs",
    "mean_confidence_interval",
    "records_digest",
    "run_validation",
    "wilson_interval",
]
