"""Physics and model invariants, swept across configurations.

Each check asserts a *law* — something that must hold for every
configuration, not a pinned value for one — and reports the first
counterexample when it breaks. The laws:

* **link reciprocity** — the backscatter channel is one physical
  channel traversed twice: the one-way gain inferred from the forward
  budget must equal the one inferred from the reverse budget, and the
  deterministic path gain must be symmetric under swapping the two
  ends (two-ray geometry depends on the height *pair*, not on which
  end transmits);
* **antenna pattern symmetry** — the patch pattern is a body of
  revolution about its boresight and the dipole doughnut is symmetric
  about its axis and its equatorial plane;
* **monotonicity** — read reliability cannot degrade when physics gets
  strictly easier: more TX power, less distance, fewer contending tags;
* **independence model** — simulated redundant opportunities match the
  paper's ``R_C = 1 - Π(1 - P_i)`` within a 95% CI when draws are
  independent, and fall measurably short of it under induced
  common-cause correlation (never exceeding it beyond CI);
* **slotted-ALOHA efficiency** — frame throughput tracks the
  analytical ``n·p·(1-p)^(n-1)`` (``p = 1/L``) within CI, and peaks
  where the theory says it must (frame size ≈ population).

Checks call the production code through its *modules* (``link_mod``,
``antenna_mod`` …) rather than through from-imports, so a test can
monkeypatch e.g. :func:`repro.rf.link.compose_link` and watch the
corresponding check fail — the proof the watchdog actually bites.
"""

from __future__ import annotations

import math
from typing import Callable, Dict, List, Tuple

from ..core.redundancy import (
    combined_reliability,
    combined_reliability_correlated,
)
from ..protocol import aloha as aloha_mod
from ..protocol.gen2 import TagChannel
from ..rf import antenna as antenna_mod
from ..rf import link as link_mod
from ..rf.geometry import Vec3
from ..sim.rng import SeedSequence
from .result import CheckResult, failed, ok
from .statistics import (
    binomial_agreement,
    holm_all_within,
    mean_confidence_interval,
)

PILLAR = "invariants"

#: Tolerance for identities that hold up to float summation order.
FLOAT_TOL = 1e-9


# ---------------------------------------------------------------------------
# link reciprocity


def _one_way_gains(
    env: "link_mod.LinkEnvironment",
    tx_power_dbm: float,
    geometry: "link_mod.LinkGeometry",
    **kwargs: float,
) -> Tuple[float, float]:
    """One-way channel gain inferred from each direction of the budget.

    ``forward = tx - cable + G`` and
    ``reverse = forward - backscatter + G - cable``, so both directions
    expose the same ``G`` — unless something breaks reciprocity.
    """
    result = link_mod.evaluate_link(env, tx_power_dbm, geometry, **kwargs)
    g_forward = result.forward_power_dbm - (tx_power_dbm - env.cable_loss_db)
    g_reverse = (
        result.reverse_power_dbm
        - result.forward_power_dbm
        + env.backscatter_loss_db
        + env.cable_loss_db
    )
    return g_forward, g_reverse


def check_link_reciprocity(seed: int, deep: bool = False) -> CheckResult:
    """Forward and reverse traverse one reciprocal channel; swapping the
    two ends of the deterministic path leaves its gain unchanged."""
    env = link_mod.LinkEnvironment()
    seeds = SeedSequence(seed)
    rng = seeds.stream("validate:reciprocity")
    cases = 200 if deep else 50
    checked = 0
    for i in range(cases):
        ant = Vec3(rng.uniform(-1, 1), rng.uniform(0.5, 2.0), 0.0)
        tag = Vec3(
            rng.uniform(-1, 1), rng.uniform(0.5, 2.0), rng.uniform(0.3, 8.0)
        )
        geometry = link_mod.LinkGeometry(
            antenna_position=ant,
            antenna_boresight=Vec3.unit_z(),
            tag_position=tag,
            tag_axis=Vec3.unit_x(),
        )
        g_fwd, g_rev = _one_way_gains(
            env,
            rng.uniform(20.0, 33.0),
            geometry,
            obstruction_loss_db=rng.uniform(0.0, 10.0),
            shadowing_db=rng.gauss(0.0, 3.0),
            fading_power_gain=math.exp(rng.gauss(0.0, 0.5)),
        )
        if abs(g_fwd - g_rev) > FLOAT_TOL:
            return failed(
                "link_reciprocity",
                PILLAR,
                f"one-way gain asymmetric at case {i}: forward "
                f"{g_fwd:.6f} dB vs reverse {g_rev:.6f} dB",
                case=i,
                g_forward_db=g_fwd,
                g_reverse_db=g_rev,
            )
        # Path-gain symmetry under swapping the two ends: the two-ray
        # geometry sees the same height pair either way.
        model = env.channel.path_loss
        d = geometry.distance_m
        a_to_b = model.path_gain_db(d, tx_height_m=ant.y, rx_height_m=tag.y)
        b_to_a = model.path_gain_db(d, tx_height_m=tag.y, rx_height_m=ant.y)
        if abs(a_to_b - b_to_a) > FLOAT_TOL:
            return failed(
                "link_reciprocity",
                PILLAR,
                f"path gain not symmetric at d={d:.3f} m, heights "
                f"({ant.y:.3f}, {tag.y:.3f}): {a_to_b:.9f} vs {b_to_a:.9f}",
                distance_m=d,
                gain_ab_db=a_to_b,
                gain_ba_db=b_to_a,
            )
        checked += 1
    return ok(
        "link_reciprocity",
        PILLAR,
        f"{checked} random geometries: one-way gains equal both "
        f"directions, path gain end-symmetric",
        cases=checked,
    )


# ---------------------------------------------------------------------------
# antenna pattern symmetry


def _rotate_about_z(v: Vec3, angle: float) -> Vec3:
    c, s = math.cos(angle), math.sin(angle)
    return Vec3(c * v.x - s * v.y, s * v.x + c * v.y, v.z)


def check_antenna_pattern_symmetry(seed: int, deep: bool = False) -> CheckResult:
    """The patch pattern is a body of revolution about boresight; the
    dipole doughnut is symmetric about its axis and equator."""
    patch = antenna_mod.PatchAntenna()
    dipole = antenna_mod.DipoleAntenna()
    boresight = Vec3.unit_z()
    axis = Vec3.unit_x()
    seeds = SeedSequence(seed)
    rng = seeds.stream("validate:pattern")
    cases = 400 if deep else 100
    checked = 0
    for i in range(cases):
        theta = rng.uniform(0.0, math.pi)
        roll_a = rng.uniform(0.0, 2.0 * math.pi)
        roll_b = rng.uniform(0.0, 2.0 * math.pi)
        base = Vec3(math.sin(theta), 0.0, math.cos(theta))
        d_a = _rotate_about_z(base, roll_a)
        d_b = _rotate_about_z(base, roll_b)
        g_a = patch.gain_dbi(d_a, boresight)
        g_b = patch.gain_dbi(d_b, boresight)
        if abs(g_a - g_b) > FLOAT_TOL:
            return failed(
                "antenna_pattern_symmetry",
                PILLAR,
                f"patch gain differs under rotation about boresight at "
                f"theta={theta:.4f}: {g_a:.9f} vs {g_b:.9f} dBi",
                theta_rad=theta,
                gain_a_dbi=g_a,
                gain_b_dbi=g_b,
            )
        direction = Vec3(
            rng.gauss(0.0, 1.0), rng.gauss(0.0, 1.0), rng.gauss(0.0, 1.0)
        )
        if direction.norm() < 1e-6:
            continue
        direction = direction.normalized()
        g_fwd = dipole.gain_dbi(direction, axis)
        g_mirror = dipole.gain_dbi(direction * -1.0, axis)
        g_flip = dipole.gain_dbi(direction, axis * -1.0)
        if abs(g_fwd - g_mirror) > FLOAT_TOL or abs(g_fwd - g_flip) > FLOAT_TOL:
            return failed(
                "antenna_pattern_symmetry",
                PILLAR,
                f"dipole pattern asymmetric at case {i}: "
                f"{g_fwd:.9f} / {g_mirror:.9f} / {g_flip:.9f} dBi",
                case=i,
                gain_dbi=g_fwd,
                gain_mirror_dbi=g_mirror,
                gain_flip_dbi=g_flip,
            )
        checked += 1
    return ok(
        "antenna_pattern_symmetry",
        PILLAR,
        f"{checked} random directions: patch rotationally symmetric, "
        f"dipole axis/equator symmetric",
        cases=checked,
    )


# ---------------------------------------------------------------------------
# monotonicity


def check_monotone_tx_power(seed: int, deep: bool = False) -> CheckResult:
    """More conducted power never reads worse: margins rise dB-for-dB
    and the deterministic read range never shrinks."""
    env = link_mod.LinkEnvironment()
    geometry = link_mod.LinkGeometry(
        antenna_position=Vec3(0.0, 1.0, 0.0),
        antenna_boresight=Vec3.unit_z(),
        tag_position=Vec3(0.2, 1.1, 2.5),
        tag_axis=Vec3.unit_x(),
    )
    terms = link_mod.compute_link_terms(env, geometry)
    powers = [20.0 + 0.5 * k for k in range(27)]  # 20..33 dBm
    margins = [
        link_mod.compose_link(env, p, terms).forward_margin_db for p in powers
    ]
    for (p_lo, m_lo), (p_hi, m_hi) in zip(
        zip(powers, margins), zip(powers[1:], margins[1:])
    ):
        if m_hi <= m_lo:
            return failed(
                "monotone_tx_power",
                PILLAR,
                f"forward margin fell from {m_lo:.3f} to {m_hi:.3f} dB "
                f"raising power {p_lo:g} -> {p_hi:g} dBm",
                power_low_dbm=p_lo,
                power_high_dbm=p_hi,
            )
    step = 0.05 if deep else 0.1
    ranges = [
        link_mod.free_space_read_range_m(env, p, step_m=step)
        for p in powers[:: 2 if not deep else 1]
    ]
    for i, (r_lo, r_hi) in enumerate(zip(ranges, ranges[1:])):
        if r_hi < r_lo:
            return failed(
                "monotone_tx_power",
                PILLAR,
                f"read range shrank from {r_lo:.2f} to {r_hi:.2f} m when "
                f"power rose (sweep index {i})",
                index=i,
                range_low_m=r_lo,
                range_high_m=r_hi,
            )
    return ok(
        "monotone_tx_power",
        PILLAR,
        f"forward margin and read range non-decreasing over "
        f"{powers[0]:g}..{powers[-1]:g} dBm",
        powers=len(powers),
        max_range_m=max(ranges),
    )


def check_monotone_distance(seed: int, deep: bool = False) -> CheckResult:
    """Farther tag planes never read better (Figure 2's backbone),
    measured end-to-end through the pass simulator."""
    from ..world.scenarios.read_range import run_read_range_experiment

    distances = (1.0, 3.0, 5.0, 8.0) if deep else (1.0, 3.0, 5.0)
    reps = 6 if deep else 3
    results = run_read_range_experiment(
        distances_m=distances, repetitions=reps, seed=seed
    )
    means: List[Tuple[float, float, float]] = []
    for d in distances:
        dist = results[d].distribution
        mean, low, high = mean_confidence_interval(
            [float(c) for c in dist.counts]
        )
        means.append((d, mean, high - mean))
    for (d_near, m_near, h_near), (d_far, m_far, h_far) in zip(
        means, means[1:]
    ):
        # Allow CI-wide slack: equality within noise is fine, a clear
        # inversion is not.
        if m_far > m_near + h_near + h_far:
            return failed(
                "monotone_distance",
                PILLAR,
                f"mean tags read rose from {m_near:.2f}@{d_near:g}m to "
                f"{m_far:.2f}@{d_far:g}m beyond CI slack",
                near_m=d_near,
                far_m=d_far,
                mean_near=m_near,
                mean_far=m_far,
            )
    return ok(
        "monotone_distance",
        PILLAR,
        "mean tags read non-increasing over "
        + " > ".join(f"{m:.1f}@{d:g}m" for d, m, _ in means),
        points=[{"distance_m": d, "mean": m} for d, m, _ in means],
    )


def _perfect_channel(epc: str) -> TagChannel:
    return TagChannel(energized=True, reply_decode_p=1.0)


def _frame_successes(
    population_sizes: List[int],
    frame_size: int,
    frames: int,
    seeds: SeedSequence,
) -> Dict[int, List[int]]:
    """Per-frame success counts for each population size (clean channel)."""
    per_n: Dict[int, List[int]] = {}
    for n in population_sizes:
        epcs = [f"EPC-{n}-{i:04d}" for i in range(n)]
        counts: List[int] = []
        for f in range(frames):
            rng = seeds.trial_stream(f"validate:aloha:{n}:{frame_size}", f)
            result = aloha_mod.run_aloha_frame(
                epcs, _perfect_channel, rng, frame_size
            )
            counts.append(len(result.read_epcs))
        per_n[n] = counts
    return per_n


def check_monotone_tag_count(seed: int, deep: bool = False) -> CheckResult:
    """Per-tag read probability in a fixed frame never improves when
    more tags contend (collision pressure only ever rises)."""
    seeds = SeedSequence(seed)
    frame_size = 32
    sizes = [1, 4, 16, 32, 64]
    frames = 200 if deep else 60
    per_n = _frame_successes(sizes, frame_size, frames, seeds)
    rates: List[Tuple[int, float, float]] = []
    for n in sizes:
        mean, low, high = mean_confidence_interval(
            [c / n for c in per_n[n]]
        )
        rates.append((n, mean, high - mean))
    for (n_lo, r_lo, h_lo), (n_hi, r_hi, h_hi) in zip(rates, rates[1:]):
        if r_hi > r_lo + h_lo + h_hi:
            return failed(
                "monotone_tag_count",
                PILLAR,
                f"per-tag read rate rose from {r_lo:.3f} (n={n_lo}) to "
                f"{r_hi:.3f} (n={n_hi}) beyond CI slack",
                n_low=n_lo,
                n_high=n_hi,
            )
    return ok(
        "monotone_tag_count",
        PILLAR,
        "per-tag read rate non-increasing over n="
        + " > ".join(f"{r:.2f}@{n}" for n, r, _ in rates),
        frame_size=frame_size,
        frames=frames,
    )


# ---------------------------------------------------------------------------
# independence model


def check_independence_model(seed: int, deep: bool = False) -> CheckResult:
    """Monte Carlo over redundant read opportunities: independent draws
    match ``R_C`` within CI; induced common-cause correlation falls
    measurably short and never exceeds the model."""
    ps = (0.6, 0.75, 0.85)
    correlation = 0.5
    trials = 20000 if deep else 4000
    seeds = SeedSequence(seed)
    r_c = combined_reliability(list(ps))
    r_corr = combined_reliability_correlated(list(ps), correlation)

    rng = seeds.stream("validate:independence")
    ind_successes = 0
    for _ in range(trials):
        if any(rng.bernoulli(p) for p in ps):
            ind_successes += 1
    independent = binomial_agreement(ind_successes, trials, r_c)
    if not independent.within:
        return failed(
            "independence_model",
            PILLAR,
            f"independent draws measured {independent.measured:.4f}, CI "
            f"[{independent.low:.4f}, {independent.high:.4f}] excludes "
            f"R_C={r_c:.4f}",
            measured=independent.measured,
            r_c=r_c,
        )

    rng = seeds.stream("validate:correlated")
    best = max(ps)
    corr_successes = 0
    for _ in range(trials):
        if rng.bernoulli(correlation):
            tracked = rng.bernoulli(best)
        else:
            tracked = any(rng.bernoulli(p) for p in ps)
        if tracked:
            corr_successes += 1
    correlated = binomial_agreement(corr_successes, trials, r_corr)
    if not correlated.within:
        return failed(
            "independence_model",
            PILLAR,
            f"correlated draws measured {correlated.measured:.4f}, CI "
            f"excludes the common-cause prediction {r_corr:.4f}",
            measured=correlated.measured,
            predicted=r_corr,
        )
    # The paper's bound: under correlation the measured reliability
    # falls short of the independence model, and never exceeds it.
    shortfall = binomial_agreement(corr_successes, trials, r_c)
    if not shortfall.below:
        return failed(
            "independence_model",
            PILLAR,
            f"correlated measurement {shortfall.measured:.4f} does not "
            f"fall short of R_C={r_c:.4f} beyond CI — redundancy under "
            f"common-cause correlation should underperform the model",
            measured=shortfall.measured,
            r_c=r_c,
        )
    return ok(
        "independence_model",
        PILLAR,
        f"independent {independent.measured:.4f} ≈ R_C {r_c:.4f} within "
        f"CI; correlated {correlated.measured:.4f} matches common-cause "
        f"model and undershoots R_C",
        trials=trials,
        r_c=r_c,
        r_correlated=r_corr,
        measured_independent=independent.measured,
        measured_correlated=correlated.measured,
    )


# ---------------------------------------------------------------------------
# slotted-ALOHA efficiency


def expected_frame_successes(n: int, frame_size: int) -> float:
    """Analytical mean singulations in one frame: ``n·(1-1/L)^(n-1)``.

    Each tag picks a slot uniformly (``p = 1/L``); it is singulated when
    nobody else picked its slot, so the expected success count is
    ``n·p·(1-p)^(n-1)·L = n·(1-1/L)^(n-1)``.
    """
    if n < 1 or frame_size < 1:
        raise ValueError("population and frame size must be >= 1")
    if frame_size == 1:
        return 1.0 if n == 1 else 0.0
    return n * (1.0 - 1.0 / frame_size) ** (n - 1)


def check_aloha_efficiency(seed: int, deep: bool = False) -> CheckResult:
    """Measured frame throughput tracks the analytical curve within a
    95% CI and peaks where the theory puts it (frame size ≈ n)."""
    seeds = SeedSequence(seed)
    frames = 300 if deep else 80
    n = 32
    sweep_sizes = [8, 16, 32, 64, 128]
    agreements = []
    measured_means: Dict[int, float] = {}
    for frame_size in sweep_sizes:
        counts = _frame_successes([n], frame_size, frames, seeds)[n]
        mean, low, high = mean_confidence_interval(counts)
        predicted = expected_frame_successes(n, frame_size)
        measured_means[frame_size] = mean
        agreements.append((frame_size, mean, low, high, predicted))
    outside = [
        (L, mean, predicted)
        for L, mean, low, high, predicted in agreements
        if not low <= predicted <= high
    ]
    # 5 independent 95% intervals: allow one to miss.
    if len(outside) > 1:
        L, mean, predicted = outside[0]
        return failed(
            "aloha_efficiency",
            PILLAR,
            f"{len(outside)}/5 frame sizes outside CI; first: L={L} "
            f"measured {mean:.2f} vs analytic {predicted:.2f}",
            outside=len(outside),
            frame_size=L,
            measured=mean,
            predicted=predicted,
        )
    # Optimum location: per-slot efficiency S/L peaks at L ≈ n among
    # the swept powers of two.
    efficiency = {L: measured_means[L] / L for L in sweep_sizes}
    best_L = max(efficiency, key=lambda L: efficiency[L])
    if best_L not in (16, 32):
        return failed(
            "aloha_efficiency",
            PILLAR,
            f"per-slot efficiency peaked at L={best_L} for n={n}; "
            f"theory puts the optimum at L ≈ n",
            best_frame_size=best_L,
            population=n,
        )
    return ok(
        "aloha_efficiency",
        PILLAR,
        f"throughput within CI of n·p·(1-p)^(n-1) at {5 - len(outside)}/5 "
        f"frame sizes; efficiency peak at L={best_L} for n={n}",
        frames=frames,
        population=n,
        measured={str(L): m for L, m in measured_means.items()},
        analytic={
            str(L): expected_frame_successes(n, L) for L in sweep_sizes
        },
    )


#: Ordered registry the runner walks; names are stable CLI/report keys.
INVARIANT_CHECKS: Dict[str, Callable[[int, bool], CheckResult]] = {
    "link_reciprocity": check_link_reciprocity,
    "antenna_pattern_symmetry": check_antenna_pattern_symmetry,
    "monotone_tx_power": check_monotone_tx_power,
    "monotone_distance": check_monotone_distance,
    "monotone_tag_count": check_monotone_tag_count,
    "independence_model": check_independence_model,
    "aloha_efficiency": check_aloha_efficiency,
}
