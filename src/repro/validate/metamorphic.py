"""Metamorphic relations: properties between *pairs* of runs.

Where an invariant constrains one run, a metamorphic relation
constrains how two related runs may differ — the follow-up run is the
oracle. The deterministic sweeps here run from ``python -m repro
validate`` and CI; the randomized Hypothesis versions live in
``tests/validate/test_metamorphic.py`` and explore the same relations
with generated inputs:

* **redundancy never hurts** — adding an opportunity can only raise
  the independence-model reliability, and correlation can only lower
  it (checked at the model layer, where the relation is exact; the
  simulator adds coupling/collision physics that legitimately trade
  off);
* **EPC relabeling** — renaming tags permutes per-tag records but
  cannot change any aggregate (reads, miss-cause histogram, slot
  outcomes), checked on the recorded events of an instrumented pass;
* **seed-split merge** — a trial loop fanned out over worker processes
  merges to the same :class:`~repro.core.experiment.TrialSet` as the
  serial loop, outcomes and order both;
* **round trips** — CRC-16 verification, SGTIN-96 bits/hex codecs, the
  JSONL record codec, and the run manifest dict codec are lossless.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Tuple

from ..core.experiment import run_trials
from ..core.parallel import PassTrialTask
from ..core.redundancy import (
    combined_reliability,
    combined_reliability_correlated,
    marginal_gain,
)
from ..obs.jsonl import dump_records, parse_records
from ..obs.manifest import RunManifest
from ..obs.records import SlotRecord, TagOutcomeRecord
from ..protocol.crc import (
    bits_to_bytes,
    bytes_to_bits,
    crc16,
    verify_crc16,
)
from ..protocol.epc import MAX_SERIAL, Sgtin96
from ..sim.rng import SeedSequence
from .result import CheckResult, failed, ok
from .statistics import mean_confidence_interval  # noqa: F401  (re-export for tests)

PILLAR = "metamorphic"

FLOAT_TOL = 1e-12


# ---------------------------------------------------------------------------
# redundancy never hurts (model layer, exact)


def check_redundancy_never_hurts(seed: int, deep: bool = False) -> CheckResult:
    """Adding an opportunity never lowers ``R_C``; correlation never
    raises it above the independent combination."""
    seeds = SeedSequence(seed)
    rng = seeds.stream("validate:redundancy")
    cases = 500 if deep else 120
    for i in range(cases):
        n = rng.randint(1, 6)
        ps = [rng.uniform(0.0, 1.0) for _ in range(n)]
        extra = rng.uniform(0.0, 1.0)
        base = combined_reliability(ps)
        grown = combined_reliability(ps + [extra])
        if grown < base - FLOAT_TOL:
            return failed(
                "redundancy_never_hurts",
                PILLAR,
                f"adding opportunity p={extra:.4f} lowered R_C "
                f"{base:.6f} -> {grown:.6f} (case {i})",
                case=i,
                base=base,
                grown=grown,
            )
        gain = marginal_gain(ps, extra)
        if gain < -FLOAT_TOL:
            return failed(
                "redundancy_never_hurts",
                PILLAR,
                f"marginal_gain returned {gain:.6g} < 0 (case {i})",
                case=i,
                gain=gain,
            )
        correlation = rng.uniform(0.0, 1.0)
        correlated = combined_reliability_correlated(ps, correlation)
        if correlated > base + FLOAT_TOL:
            return failed(
                "redundancy_never_hurts",
                PILLAR,
                f"correlation {correlation:.3f} raised reliability above "
                f"the independence model: {correlated:.6f} > {base:.6f} "
                f"(case {i})",
                case=i,
                correlation=correlation,
            )
        if correlated < max(ps) - FLOAT_TOL:
            return failed(
                "redundancy_never_hurts",
                PILLAR,
                f"correlated combination {correlated:.6f} fell below the "
                f"best single opportunity {max(ps):.6f} (case {i})",
                case=i,
            )
    return ok(
        "redundancy_never_hurts",
        PILLAR,
        f"{cases} random opportunity sets: R_C monotone in opportunities, "
        f"correlation bounded by [max(p), R_C]",
        cases=cases,
    )


# ---------------------------------------------------------------------------
# EPC relabeling


def _observation_aggregates(
    tag_records: List[TagOutcomeRecord],
    slot_records: List[SlotRecord],
) -> Dict[str, Any]:
    """Label-free aggregates of one recorded pass."""
    causes: Dict[str, int] = {}
    for out in tag_records:
        if not out.read and out.cause is not None:
            causes[out.cause.value] = causes.get(out.cause.value, 0) + 1
    slot_outcomes: Dict[str, int] = {}
    for slot in slot_records:
        slot_outcomes[slot.outcome] = slot_outcomes.get(slot.outcome, 0) + 1
    return {
        "population": len(tag_records),
        "read": sum(1 for out in tag_records if out.read),
        "total_reads": sum(out.reads for out in tag_records),
        "miss_causes": dict(sorted(causes.items())),
        "slot_outcomes": dict(sorted(slot_outcomes.items())),
        "responder_slots": sum(len(s.responders) for s in slot_records),
    }


def relabel_records(
    tag_records: List[TagOutcomeRecord],
    slot_records: List[SlotRecord],
    mapping: Dict[str, str],
) -> Tuple[List[TagOutcomeRecord], List[SlotRecord]]:
    """Apply an EPC bijection to recorded events (records are frozen, so
    relabeled copies are returned)."""
    import dataclasses

    new_tags = [
        dataclasses.replace(out, epc=mapping[out.epc]) for out in tag_records
    ]
    new_slots = [
        dataclasses.replace(
            slot,
            responders=tuple(mapping[epc] for epc in slot.responders),
            winner=mapping[slot.winner] if slot.winner is not None else None,
        )
        for slot in slot_records
    ]
    return new_tags, new_slots


def check_epc_relabel_aggregates(seed: int, deep: bool = False) -> CheckResult:
    """Relabeling every EPC through a bijection permutes per-tag records
    but leaves every aggregate of the pass untouched."""
    from ..obs.explain import run_instrumented_pass

    trials = 3 if deep else 1
    for trial in range(trials):
        _sim, _result, observation = run_instrumented_pass(
            "cart", seed, trial
        )
        tag_records = list(observation.tag_outcomes)
        slot_records = list(observation.slot_records)
        epcs = sorted({out.epc for out in tag_records})
        mapping = {epc: f"RELABEL-{i:04d}" for i, epc in enumerate(epcs)}
        new_tags, new_slots = relabel_records(
            tag_records, slot_records, mapping
        )
        before = _observation_aggregates(tag_records, slot_records)
        after = _observation_aggregates(new_tags, new_slots)
        if before != after:
            drifted = [k for k in before if before[k] != after[k]]
            return failed(
                "epc_relabel_aggregates",
                PILLAR,
                f"relabeling changed aggregate(s) {drifted} on trial "
                f"{trial}",
                trial=trial,
                before=before,
                after=after,
            )
        if sorted(out.epc for out in new_tags) != sorted(mapping.values()):
            return failed(
                "epc_relabel_aggregates",
                PILLAR,
                f"relabeled records are not a permutation of the bijection "
                f"image on trial {trial}",
                trial=trial,
            )
    return ok(
        "epc_relabel_aggregates",
        PILLAR,
        f"{trials} instrumented pass(es): EPC bijection left reads, "
        f"miss causes and slot outcomes unchanged",
        trials=trials,
    )


# ---------------------------------------------------------------------------
# seed-split merge


def check_seed_split_merge(seed: int, deep: bool = False) -> CheckResult:
    """A worker-pool trial loop merges to the serial loop's TrialSet:
    same outcomes, same trial-index order."""
    from ..obs.explain import EXPLAIN_SCENARIOS

    sim, carriers = EXPLAIN_SCENARIOS["walk"].build()
    task = PassTrialTask(simulator=sim, carriers=tuple(carriers))
    reps = 6 if deep else 4
    serial = run_trials("validate-merge", task, reps, seed=seed, workers=1)
    split = run_trials("validate-merge", task, reps, seed=seed, workers=2)
    if serial != split:
        first = next(
            (
                i
                for i, (a, b) in enumerate(
                    zip(serial.outcomes, split.outcomes)
                )
                if a != b
            ),
            None,
        )
        return failed(
            "seed_split_merge",
            PILLAR,
            f"parallel trial set diverged from serial (first differing "
            f"trial: {first})",
            repetitions=reps,
            first_divergence=first,
        )
    if len(split.trial_seconds) != reps:
        return failed(
            "seed_split_merge",
            PILLAR,
            f"parallel run returned {len(split.trial_seconds)} trial "
            f"timings for {reps} trials",
            repetitions=reps,
        )
    return ok(
        "seed_split_merge",
        PILLAR,
        f"{reps} trials: workers=2 merged bit-identical to serial, "
        f"timings in trial order",
        repetitions=reps,
    )


# ---------------------------------------------------------------------------
# round trips


def check_codec_round_trips(seed: int, deep: bool = False) -> CheckResult:
    """CRC-16, SGTIN-96 and byte/bit codecs are lossless round trips."""
    seeds = SeedSequence(seed)
    rng = seeds.stream("validate:codec")
    cases = 400 if deep else 100
    for i in range(cases):
        payload = bytes(rng.randint(0, 255) for _ in range(rng.randint(1, 24)))
        bits = bytes_to_bits(payload)
        if bits_to_bytes(bits) != payload:
            return failed(
                "codec_round_trips",
                PILLAR,
                f"bytes->bits->bytes mangled payload at case {i}",
                case=i,
            )
        crc = crc16(bits)
        if not verify_crc16(bits, crc):
            return failed(
                "codec_round_trips",
                PILLAR,
                f"crc16 failed to verify its own value at case {i}",
                case=i,
                crc=crc,
            )
        # A single flipped bit must break verification.
        flip = rng.randint(0, len(bits) - 1)
        corrupted = list(bits)
        corrupted[flip] ^= 1
        if verify_crc16(corrupted, crc):
            return failed(
                "codec_round_trips",
                PILLAR,
                f"crc16 accepted a single-bit corruption at case {i} "
                f"(bit {flip})",
                case=i,
                bit=flip,
            )
        partition = rng.randint(0, 6)
        from ..protocol.epc import _PARTITIONS

        cp_bits, _, ir_bits, _ = _PARTITIONS[partition]
        epc = Sgtin96(
            filter_value=rng.randint(0, 7),
            partition=partition,
            company_prefix=rng.randint(0, (1 << cp_bits) - 1),
            item_reference=rng.randint(0, (1 << ir_bits) - 1),
            serial=rng.randint(0, MAX_SERIAL),
        )
        if Sgtin96.from_bits(epc.to_bits()) != epc:
            return failed(
                "codec_round_trips",
                PILLAR,
                f"SGTIN-96 bits round trip mangled {epc!r} (case {i})",
                case=i,
            )
        if Sgtin96.from_hex(epc.to_hex()) != epc:
            return failed(
                "codec_round_trips",
                PILLAR,
                f"SGTIN-96 hex round trip mangled {epc!r} (case {i})",
                case=i,
            )
    return ok(
        "codec_round_trips",
        PILLAR,
        f"{cases} random payloads: CRC-16 verifies and rejects 1-bit "
        f"corruption, SGTIN-96 bits/hex round-trip exactly",
        cases=cases,
    )


def check_record_round_trips(seed: int, deep: bool = False) -> CheckResult:
    """JSONL record codec and manifest dict codec reproduce an
    instrumented pass's events bit-for-bit."""
    from ..obs.explain import run_instrumented_pass

    _sim, _result, observation = run_instrumented_pass("walk", seed, 0)
    records = list(observation.records())
    if not records:
        return failed(
            "record_round_trips",
            PILLAR,
            "instrumented pass produced no records to round-trip",
        )
    lines = list(dump_records(records))
    rebuilt = list(parse_records(lines))
    if rebuilt != records:
        first = next(
            (i for i, (a, b) in enumerate(zip(rebuilt, records)) if a != b),
            None,
        )
        return failed(
            "record_round_trips",
            PILLAR,
            f"JSONL round trip diverged at record {first} of "
            f"{len(records)}",
            records=len(records),
            first_divergence=first,
        )
    manifest = RunManifest.create(
        command="validate",
        seed=seed,
        config={"scenario": "walk", "trials": 1},
        wall_time_s=0.0,
        workers=None,
        started_at="2007-06-25T00:00:00+00:00",
    )
    if RunManifest.from_dict(manifest.to_dict()) != manifest:
        return failed(
            "record_round_trips",
            PILLAR,
            "RunManifest dict round trip is not the identity",
        )
    return ok(
        "record_round_trips",
        PILLAR,
        f"{len(records)} recorded events and the run manifest round-trip "
        f"losslessly",
        records=len(records),
    )


#: Ordered registry the runner walks; names are stable CLI/report keys.
METAMORPHIC_CHECKS: Dict[str, Callable[[int, bool], CheckResult]] = {
    "redundancy_never_hurts": check_redundancy_never_hurts,
    "epc_relabel_aggregates": check_epc_relabel_aggregates,
    "seed_split_merge": check_seed_split_merge,
    "codec_round_trips": check_codec_round_trips,
    "record_round_trips": check_record_round_trips,
}
