"""Drives the three validation pillars and aggregates the report.

One crashed check must not hide the verdicts of the others, so every
check runs inside a guard that converts an unexpected exception into a
failing :class:`~repro.validate.result.CheckResult` — the report stays
complete and the exit code still goes nonzero.
"""

from __future__ import annotations

import traceback
from typing import Callable, Iterable, List, Optional, Tuple

from ..core.experiment import DEFAULT_SEED
from .golden import check_golden
from .invariants import INVARIANT_CHECKS
from .metamorphic import METAMORPHIC_CHECKS
from .result import CheckResult, ValidationReport, failed

#: Pillars in report order; ``--pillar`` accepts any subset.
PILLARS: Tuple[str, ...] = ("invariants", "metamorphic", "golden")


def _guarded(
    name: str,
    pillar: str,
    fn: Callable[[int, bool], CheckResult],
    seed: int,
    deep: bool,
) -> CheckResult:
    try:
        return fn(seed, deep)
    except Exception as exc:  # noqa: BLE001 - the guard is the point
        trace = traceback.format_exc(limit=3)
        return failed(
            name,
            pillar,
            f"check crashed: {exc!r}",
            traceback=trace,
        )


def run_validation(
    pillars: Optional[Iterable[str]] = None,
    seed: int = DEFAULT_SEED,
    deep: bool = False,
    checks: Optional[Iterable[str]] = None,
) -> ValidationReport:
    """Run the selected pillars and return the aggregated report.

    Parameters
    ----------
    pillars:
        Subset of :data:`PILLARS` to run (``None`` = all, in order).
    seed:
        Root seed for the stochastic sweeps. Golden scenarios ignore it
        by design — they pin their own seeds.
    deep:
        Widen every sweep (the ``REPRO_VALIDATE_DEEP=1`` profile).
    checks:
        Restrict to specific check names (golden checks are named
        ``golden:<scenario>``); unknown names are reported as failures
        rather than silently skipped.
    """
    selected = list(pillars) if pillars is not None else list(PILLARS)
    unknown = [p for p in selected if p not in PILLARS]
    if unknown:
        raise ValueError(
            f"unknown pillar(s) {unknown!r}; known: {', '.join(PILLARS)}"
        )
    wanted = set(checks) if checks is not None else None
    matched: set = set()
    report = ValidationReport(seed=seed, deep=deep)
    for pillar in PILLARS:
        if pillar not in selected:
            continue
        if pillar == "golden":
            golden_names: Optional[List[str]] = None
            if wanted is not None:
                golden_names = [
                    name.split(":", 1)[1]
                    for name in wanted
                    if name.startswith("golden:")
                ]
                matched.update(
                    name for name in wanted if name.startswith("golden:")
                )
                if not golden_names:
                    continue
            report.extend(check_golden(names=golden_names, deep=deep))
            continue
        registry = (
            INVARIANT_CHECKS if pillar == "invariants" else METAMORPHIC_CHECKS
        )
        for name, fn in registry.items():
            if wanted is not None and name not in wanted:
                continue
            matched.add(name)
            report.add(_guarded(name, pillar, fn, seed, deep))
    if wanted is not None:
        for name in sorted(wanted - matched):
            report.add(
                failed(
                    name,
                    "unknown",
                    f"no check named {name!r} in the selected pillars",
                )
            )
    return report
