"""ASCII table and bar-chart rendering for benchmark output.

The benchmark harness prints the same rows/series the paper reports;
these renderers keep that output consistent and diff-friendly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence


@dataclass
class Table:
    """A simple fixed-width ASCII table."""

    title: str
    headers: Sequence[str]
    rows: List[Sequence[str]] = field(default_factory=list)

    def add_row(self, *cells: object) -> None:
        """Append a row; cells are str()-ified."""
        row = tuple(str(c) for c in cells)
        if len(row) != len(self.headers):
            raise ValueError(
                f"row has {len(row)} cells, table has {len(self.headers)} columns"
            )
        self.rows.append(row)

    def render(self) -> str:
        """The full table as a string (title, rule, header, rows)."""
        widths = [len(h) for h in self.headers]
        for row in self.rows:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))

        def fmt(cells: Sequence[str]) -> str:
            return " | ".join(c.ljust(w) for c, w in zip(cells, widths))

        rule = "-+-".join("-" * w for w in widths)
        lines = [self.title, "=" * len(self.title), fmt(self.headers), rule]
        lines += [fmt(row) for row in self.rows]
        return "\n".join(lines)


def percent(value: float, decimals: int = 0) -> str:
    """Format a [0, 1] rate the way the paper's tables do ("87%")."""
    if not -0.001 <= value <= 1.001:
        raise ValueError(f"expected a rate in [0, 1], got {value!r}")
    return f"{100.0 * value:.{decimals}f}%"


def bar_chart(
    title: str,
    labels: Sequence[str],
    series: Sequence[Sequence[float]],
    series_names: Sequence[str],
    width: int = 40,
) -> str:
    """Horizontal ASCII bars for figure-style summaries (Figs 5-7).

    Each label gets one bar per series; values are rates in [0, 1].
    """
    if len(series) != len(series_names):
        raise ValueError("series and series_names must have equal length")
    for s in series:
        if len(s) != len(labels):
            raise ValueError("every series needs one value per label")
    label_w = max(len(label) for label in labels) if labels else 0
    name_w = max(len(n) for n in series_names) if series_names else 0
    lines = [title, "=" * len(title)]
    for i, label in enumerate(labels):
        for s, name in zip(series, series_names):
            value = s[i]
            if not -0.001 <= value <= 1.001:
                raise ValueError(f"rate out of range for bar: {value!r}")
            filled = int(round(max(0.0, min(1.0, value)) * width))
            bar = "#" * filled + "." * (width - filled)
            lines.append(
                f"{label.ljust(label_w)}  {name.ljust(name_w)} |{bar}| "
                f"{percent(value)}"
            )
        lines.append("")
    return "\n".join(lines)


@dataclass(frozen=True)
class PaperComparison:
    """One reproduced quantity next to the paper's value."""

    name: str
    paper_value: float
    measured_value: float
    tolerance: float

    @property
    def within_tolerance(self) -> bool:
        return abs(self.measured_value - self.paper_value) <= self.tolerance

    def render(self) -> str:
        verdict = "OK " if self.within_tolerance else "OFF"
        return (
            f"[{verdict}] {self.name}: paper={self.paper_value:.3f} "
            f"measured={self.measured_value:.3f} (tol {self.tolerance:.3f})"
        )


def comparison_report(comparisons: Sequence[PaperComparison]) -> str:
    """Render a block of paper-vs-measured lines plus a pass count."""
    lines = [c.render() for c in comparisons]
    ok = sum(1 for c in comparisons if c.within_tolerance)
    lines.append(f"-- {ok}/{len(comparisons)} within tolerance --")
    return "\n".join(lines)
