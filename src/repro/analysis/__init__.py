"""Statistics and reporting helpers for experiments and benchmarks."""

from .stats import (
    BootstrapInterval,
    bootstrap_interval,
    mean,
    monotone_decreasing,
    quantile,
    quartiles,
    relative_error,
    stddev,
    variance,
)
from .tables import (
    PaperComparison,
    Table,
    bar_chart,
    comparison_report,
    percent,
)

from .figures import Series, heatmap, line_plot, sparkline

from .trace_stats import (
    PassProfile,
    RssiSummary,
    antenna_balance,
    antenna_utilization,
    inter_read_gaps,
    read_rate_over_time,
)

__all__ = [
    "PassProfile",
    "RssiSummary",
    "antenna_balance",
    "antenna_utilization",
    "inter_read_gaps",
    "read_rate_over_time",

    "Series",
    "heatmap",
    "line_plot",
    "sparkline",

    "BootstrapInterval",
    "bootstrap_interval",
    "mean",
    "monotone_decreasing",
    "quantile",
    "quartiles",
    "relative_error",
    "stddev",
    "variance",
    "PaperComparison",
    "Table",
    "bar_chart",
    "comparison_report",
    "percent",
]
