"""Summary statistics used by the benchmark tables.

Kept deliberately dependency-light (plain Python; numpy only where it
clearly pays) so the analysis layer can run anywhere the library runs.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, List, Sequence, Tuple

from ..sim.rng import RandomStream


def mean(values: Sequence[float]) -> float:
    """Arithmetic mean of a non-empty sequence."""
    if not values:
        raise ValueError("mean of an empty sequence is undefined")
    return sum(values) / len(values)


def variance(values: Sequence[float]) -> float:
    """Unbiased sample variance (n-1 denominator)."""
    if len(values) < 2:
        raise ValueError("variance needs at least two values")
    m = mean(values)
    return sum((v - m) ** 2 for v in values) / (len(values) - 1)


def stddev(values: Sequence[float]) -> float:
    """Sample standard deviation."""
    return math.sqrt(variance(values))


def quantile(values: Sequence[float], q: float) -> float:
    """Linear-interpolated quantile (the paper's quartile convention)."""
    if not values:
        raise ValueError("quantile of an empty sequence is undefined")
    if not 0.0 <= q <= 1.0:
        raise ValueError(f"q must be in [0, 1], got {q!r}")
    ordered = sorted(values)
    if len(ordered) == 1:
        return ordered[0]
    pos = q * (len(ordered) - 1)
    lo = int(math.floor(pos))
    hi = int(math.ceil(pos))
    frac = pos - lo
    return ordered[lo] * (1.0 - frac) + ordered[hi] * frac


def quartiles(values: Sequence[float]) -> Tuple[float, float, float]:
    """(lower quartile, median, upper quartile)."""
    return quantile(values, 0.25), quantile(values, 0.5), quantile(values, 0.75)


@dataclass(frozen=True)
class BootstrapInterval:
    """A bootstrap percentile confidence interval for a statistic."""

    point: float
    low: float
    high: float
    confidence: float

    @property
    def width(self) -> float:
        return self.high - self.low


def bootstrap_interval(
    values: Sequence[float],
    statistic: Callable[[Sequence[float]], float] = mean,
    resamples: int = 1000,
    confidence: float = 0.95,
    seed: int = 12345,
) -> BootstrapInterval:
    """Percentile bootstrap CI for an arbitrary statistic.

    Used where the Bernoulli machinery of
    :class:`repro.core.reliability.ReliabilityEstimate` does not apply
    (e.g. mean tags-read counts).
    """
    if not values:
        raise ValueError("bootstrap of an empty sequence is undefined")
    if resamples < 10:
        raise ValueError(f"resamples must be >= 10, got {resamples!r}")
    if not 0.0 < confidence < 1.0:
        raise ValueError(f"confidence must be in (0, 1), got {confidence!r}")
    rng = RandomStream(seed)
    stats: List[float] = []
    n = len(values)
    for _ in range(resamples):
        resample = [values[rng.randint(0, n - 1)] for _ in range(n)]
        stats.append(statistic(resample))
    alpha = (1.0 - confidence) / 2.0
    return BootstrapInterval(
        point=statistic(values),
        low=quantile(stats, alpha),
        high=quantile(stats, 1.0 - alpha),
        confidence=confidence,
    )


def relative_error(measured: float, reference: float) -> float:
    """|measured - reference| / |reference| (inf for a zero reference)."""
    if reference == 0.0:
        return float("inf") if measured != 0.0 else 0.0
    return abs(measured - reference) / abs(reference)


def monotone_decreasing(values: Sequence[float], slack: float = 0.0) -> bool:
    """True when the sequence never rises by more than ``slack``.

    Used to assert shape properties (e.g. reliability vs distance) that
    hold up to simulation noise.
    """
    if slack < 0.0:
        raise ValueError(f"slack must be non-negative, got {slack!r}")
    return all(b <= a + slack for a, b in zip(values, values[1:]))
