"""ASCII line/scatter plots for figure-style benchmark output.

Complements :mod:`repro.analysis.tables`: where a paper figure is a
curve (Figure 2's reliability-vs-distance) rather than bars, these
renderers draw it as a fixed-grid ASCII plot that survives logs and
diffs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple


@dataclass(frozen=True)
class Series:
    """One named curve: parallel x/y sequences."""

    name: str
    xs: Tuple[float, ...]
    ys: Tuple[float, ...]
    marker: str = "*"

    def __post_init__(self) -> None:
        if len(self.xs) != len(self.ys):
            raise ValueError(
                f"series {self.name!r}: {len(self.xs)} xs vs {len(self.ys)} ys"
            )
        if not self.xs:
            raise ValueError(f"series {self.name!r} is empty")
        if len(self.marker) != 1:
            raise ValueError("marker must be a single character")


def line_plot(
    title: str,
    series: Sequence[Series],
    width: int = 60,
    height: int = 16,
    y_min: Optional[float] = None,
    y_max: Optional[float] = None,
) -> str:
    """Render one or more series on a shared-axis ASCII grid.

    The x axis spans the union of the series' x ranges; the y axis is
    auto-scaled unless pinned. Later series overwrite earlier ones where
    markers collide.
    """
    if not series:
        raise ValueError("need at least one series")
    if width < 10 or height < 4:
        raise ValueError("plot must be at least 10x4 characters")
    all_x = [x for s in series for x in s.xs]
    all_y = [y for s in series for y in s.ys]
    x_lo, x_hi = min(all_x), max(all_x)
    y_lo = y_min if y_min is not None else min(all_y)
    y_hi = y_max if y_max is not None else max(all_y)
    if x_hi == x_lo:
        x_hi = x_lo + 1.0
    if y_hi == y_lo:
        y_hi = y_lo + 1.0

    grid: List[List[str]] = [[" "] * width for _ in range(height)]

    def place(x: float, y: float, marker: str) -> None:
        cx = int(round((x - x_lo) / (x_hi - x_lo) * (width - 1)))
        cy = int(round((y - y_lo) / (y_hi - y_lo) * (height - 1)))
        cy = height - 1 - cy  # row 0 is the top
        if 0 <= cx < width and 0 <= cy < height:
            grid[cy][cx] = marker

    for s in series:
        for x, y in zip(s.xs, s.ys):
            place(x, y, s.marker)

    label_width = max(
        len(f"{y_hi:.4g}"), len(f"{y_lo:.4g}")
    )
    lines = [title, "=" * len(title)]
    for row_index, row in enumerate(grid):
        if row_index == 0:
            label = f"{y_hi:.4g}".rjust(label_width)
        elif row_index == height - 1:
            label = f"{y_lo:.4g}".rjust(label_width)
        else:
            label = " " * label_width
        lines.append(f"{label} |{''.join(row)}|")
    x_axis = f"{x_lo:.4g}".ljust(width // 2) + f"{x_hi:.4g}".rjust(
        width - width // 2
    )
    lines.append(" " * label_width + "  " + x_axis)
    legend = "   ".join(f"{s.marker} = {s.name}" for s in series)
    lines.append(" " * label_width + "  " + legend)
    return "\n".join(lines)


def heatmap(
    title: str,
    rows: Sequence[Sequence[float]],
    row_labels: Optional[Sequence[str]] = None,
    col_labels: Optional[Sequence[str]] = None,
) -> str:
    """Render a [0, 1]-valued grid as shaded ASCII cells.

    Used for read-zone maps: each cell maps its probability to a
    five-level shade.
    """
    if not rows or not rows[0]:
        raise ValueError("heatmap needs a non-empty grid")
    width = len(rows[0])
    for row in rows:
        if len(row) != width:
            raise ValueError("heatmap rows must have equal length")
        for value in row:
            if not -0.001 <= value <= 1.001:
                raise ValueError(f"heatmap values must be in [0, 1]: {value!r}")
    if row_labels is not None and len(row_labels) != len(rows):
        raise ValueError("row_labels length mismatch")
    if col_labels is not None and len(col_labels) != width:
        raise ValueError("col_labels length mismatch")

    shades = " .:*#"

    def cell(value: float) -> str:
        level = int(round(max(0.0, min(1.0, value)) * (len(shades) - 1)))
        return shades[level] * 2

    label_w = max((len(l) for l in row_labels), default=0) if row_labels else 0
    lines = [title, "=" * len(title)]
    for i, row in enumerate(rows):
        label = (row_labels[i] if row_labels else "").rjust(label_w)
        lines.append(f"{label} |{''.join(cell(v) for v in row)}|")
    if col_labels:
        # Show first and last column labels under the grid.
        grid_width = 2 * width
        footer = col_labels[0].ljust(grid_width // 2) + col_labels[-1].rjust(
            grid_width - grid_width // 2
        )
        lines.append(" " * label_w + "  " + footer)
    lines.append(
        " " * label_w + "  legend: ' '=0 '.'=0.25 ':'=0.5 '*'=0.75 '#'=1"
    )
    return "\n".join(lines)


def sparkline(values: Sequence[float]) -> str:
    """A one-line bar sketch of a sequence (8-level blocks)."""
    if not values:
        raise ValueError("need at least one value")
    blocks = " ▁▂▃▄▅▆▇█"
    lo, hi = min(values), max(values)
    if hi == lo:
        return blocks[4] * len(values)
    out = []
    for v in values:
        level = int(round((v - lo) / (hi - lo) * (len(blocks) - 1)))
        out.append(blocks[level])
    return "".join(out)
