"""Analytics over read traces.

Operational questions about a portal ("is one antenna pulling its
weight?", "how hot is the RSSI when reads do happen?", "when during
the pass do reads concentrate?") are all functions of the read trace;
this module computes them so deployments and notebooks don't reinvent
the aggregation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..sim.trace import ReadTrace
from .stats import mean, quantile


@dataclass(frozen=True)
class RssiSummary:
    """Distribution summary of the RSSI of successful reads."""

    count: int
    min_dbm: float
    median_dbm: float
    max_dbm: float

    @staticmethod
    def from_trace(trace: ReadTrace) -> Optional["RssiSummary"]:
        values = [e.rssi_dbm for e in trace]
        if not values:
            return None
        return RssiSummary(
            count=len(values),
            min_dbm=min(values),
            median_dbm=quantile(values, 0.5),
            max_dbm=max(values),
        )


def read_rate_over_time(
    trace: ReadTrace, duration_s: float, buckets: int = 10
) -> List[int]:
    """Read counts per equal time bucket over ``[0, duration_s)``.

    Shows where in a pass the reads concentrate (the "read window").
    """
    if buckets < 1:
        raise ValueError(f"buckets must be >= 1, got {buckets!r}")
    if duration_s <= 0.0:
        raise ValueError(f"duration must be positive, got {duration_s!r}")
    counts = [0] * buckets
    for event in trace:
        index = int(event.time / duration_s * buckets)
        if 0 <= index < buckets:
            counts[index] += 1
        elif index == buckets:  # event exactly at duration
            counts[-1] += 1
    return counts


def antenna_utilization(trace: ReadTrace) -> Dict[Tuple[str, str], int]:
    """Read counts per (reader, antenna) — is redundancy earning reads?"""
    return {
        key: len(events) for key, events in trace.by_antenna().items()
    }


def antenna_balance(trace: ReadTrace) -> Optional[float]:
    """Smallest/largest antenna share, in (0, 1]; None without reads.

    1.0 means perfectly balanced antennas; values near 0 mean one
    antenna is doing all the work (a sign the other is misplaced).
    """
    utilization = antenna_utilization(trace)
    if not utilization:
        return None
    counts = list(utilization.values())
    return min(counts) / max(counts)


def inter_read_gaps(trace: ReadTrace, epc: str) -> List[float]:
    """Gaps between consecutive reads of one tag."""
    times = [e.time for e in trace.reads_of(epc)]
    return [b - a for a, b in zip(times, times[1:])]


@dataclass(frozen=True)
class PassProfile:
    """One-stop pass summary for dashboards and logs."""

    total_reads: int
    unique_tags: int
    rssi: Optional[RssiSummary]
    balance: Optional[float]
    busiest_bucket: int
    read_window_fraction: float

    @staticmethod
    def from_trace(
        trace: ReadTrace, duration_s: float, buckets: int = 10
    ) -> "PassProfile":
        rate = read_rate_over_time(trace, duration_s, buckets)
        busiest = max(range(len(rate)), key=lambda i: rate[i])
        active = sum(1 for c in rate if c > 0)
        return PassProfile(
            total_reads=len(trace),
            unique_tags=len(trace.epcs_seen()),
            rssi=RssiSummary.from_trace(trace),
            balance=antenna_balance(trace),
            busiest_bucket=busiest,
            read_window_fraction=active / buckets,
        )

    def render(self) -> str:
        lines = [
            f"reads: {self.total_reads} over {self.unique_tags} tags",
            f"read window: {self.read_window_fraction:.0%} of pass, "
            f"peak in bucket {self.busiest_bucket}",
        ]
        if self.rssi is not None:
            lines.append(
                f"rssi: median {self.rssi.median_dbm:.1f} dBm "
                f"[{self.rssi.min_dbm:.1f}, {self.rssi.max_dbm:.1f}]"
            )
        if self.balance is not None:
            lines.append(f"antenna balance: {self.balance:.2f}")
        return "\n".join(lines)
