"""AR400-style wire format: XML tag lists over a polled interface.

The paper's harness "sends commands to the reader over its HTTP
interface and the reader responds with a list of tags in XML format".
This module emulates that contract so downstream tooling (middleware,
back-end, examples) consumes the same shape of data a physical Matrics
reader would have produced.
"""

from __future__ import annotations

import xml.etree.ElementTree as ET
from dataclasses import dataclass
from typing import List, Sequence

from ..sim.events import TagReadEvent


class WireFormatError(ValueError):
    """Raised when a tag-list document cannot be parsed."""


class PollOrderError(ValueError):
    """Raised when a poll's ``now`` precedes an earlier poll's ``now``."""


class TransportError(RuntimeError):
    """Base for failures of the reader's poll link (not of the payload)."""


class TransportTimeout(TransportError):
    """The poll went unanswered within the transport's patience."""


class ReaderUnreachable(TransportError):
    """The reader is not accepting connections (crashed, hung, unplugged)."""


def render_tag_list(events: Sequence[TagReadEvent]) -> str:
    """Serialize read events as an AR400-flavoured XML tag list."""
    root = ET.Element("TagList")
    for event in events:
        tag = ET.SubElement(root, "Tag")
        ET.SubElement(tag, "EPC").text = event.epc
        ET.SubElement(tag, "ReaderID").text = event.reader_id
        ET.SubElement(tag, "AntennaID").text = event.antenna_id
        ET.SubElement(tag, "Timestamp").text = f"{event.time:.6f}"
        ET.SubElement(tag, "RSSI").text = f"{event.rssi_dbm:.1f}"
    return ET.tostring(root, encoding="unicode")


def parse_tag_list(document: str) -> List[TagReadEvent]:
    """Parse a tag-list document back into read events.

    Raises
    ------
    WireFormatError
        On malformed XML or missing/invalid fields.
    """
    try:
        root = ET.fromstring(document)
    except ET.ParseError as exc:
        raise WireFormatError(f"malformed tag list XML: {exc}") from exc
    if root.tag != "TagList":
        raise WireFormatError(
            f"expected <TagList> root, got <{root.tag}>"
        )
    events: List[TagReadEvent] = []
    for i, tag in enumerate(root.findall("Tag")):
        fields = {}
        for name in ("EPC", "ReaderID", "AntennaID", "Timestamp", "RSSI"):
            element = tag.find(name)
            if element is None or element.text is None:
                raise WireFormatError(f"tag #{i} missing <{name}>")
            fields[name] = element.text
        try:
            events.append(
                TagReadEvent(
                    time=float(fields["Timestamp"]),
                    epc=fields["EPC"],
                    reader_id=fields["ReaderID"],
                    antenna_id=fields["AntennaID"],
                    rssi_dbm=float(fields["RSSI"]),
                )
            )
        except ValueError as exc:
            raise WireFormatError(f"tag #{i} has invalid numerics: {exc}") from exc
    return events


@dataclass
class PolledInterface:
    """The HTTP-poll view of a reader's buffered trace.

    A buffered (continuous-mode) reader accumulates reads; each poll
    drains everything since the previous poll — the paper notes its
    "tracking results were independent of the application level polling
    speed" precisely because the buffer loses nothing.
    """

    events: List[TagReadEvent]
    _cursor: int = 0
    _last_poll: float = float("-inf")

    def poll(self, now: float) -> str:
        """Return (as XML) all buffered events with ``time <= now``.

        Polls must be issued in non-decreasing ``now`` order — the
        buffer is a drain, not a random-access log. A poll whose ``now``
        precedes an earlier poll's ``now`` raises :class:`PollOrderError`
        instead of silently returning an empty batch (which callers
        would misread as "nothing happened").

        Raises
        ------
        PollOrderError
            When ``now`` is earlier than a previous poll's ``now``.
        """
        if now < self._last_poll:
            raise PollOrderError(
                f"poll at t={now!r} after a poll at t={self._last_poll!r}; "
                "time cannot go backwards on a drained buffer"
            )
        self._last_poll = now
        batch: List[TagReadEvent] = []
        while (
            self._cursor < len(self.events)
            and self.events[self._cursor].time <= now
        ):
            batch.append(self.events[self._cursor])
            self._cursor += 1
        return render_tag_list(batch)

    def reset(self) -> None:
        """Rewind for reuse across passes: full buffer, clock released."""
        self._cursor = 0
        self._last_poll = float("-inf")

    @property
    def drained(self) -> bool:
        return self._cursor >= len(self.events)
