"""A reader-device facade emulating the paper's Matrics AR400 workflow.

The paper's harness drove the reader in two modes:

* **single read** — an HTTP command triggers one inventory cycle and
  the response carries the tag list ("a single read was performed each
  time", Figure 2);
* **buffered continuous read** — the reader inventories continuously
  and buffers; the application polls at its leisure ("the readers were
  operated in a buffered (continuous) read mode and our tracking
  results were independent of the application level polling speed").

:class:`ReaderDevice` exposes exactly those two verbs on top of the
pass simulator, returning the same XML documents a physical AR400
would, so application code written against this facade would port to
real hardware with only a transport change.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence

from ..core.calibration import PaperSetup

if TYPE_CHECKING:  # pragma: no cover - annotation-only, avoids a cycle
    from ..faults.plan import CoverageReport, FaultPlan
from ..rf.link import LinkEnvironment
from ..sim.rng import SeedSequence
from ..world.motion import StationaryPlacement
from ..world.portal import Portal, single_antenna_portal
from ..world.simulation import (
    CarrierGroup,
    PassResult,
    PortalPassSimulator,
    SimulationParameters,
)
from .wire import PolledInterface, render_tag_list


class DeviceError(RuntimeError):
    """Raised for invalid device operations (e.g. polling before start)."""


@dataclass
class DeviceConfig:
    """User-settable reader configuration (the AR400's web-console knobs)."""

    tx_power_dbm: float = 30.0
    single_read_window_s: float = 0.5

    def __post_init__(self) -> None:
        if not 10.0 <= self.tx_power_dbm <= 33.0:
            raise DeviceError(
                f"tx power {self.tx_power_dbm!r} outside the AR400's "
                "10-33 dBm range"
            )
        if self.single_read_window_s <= 0:
            raise DeviceError("single-read window must be positive")


class ReaderDevice:
    """One logical reader bound to a portal and an RF environment."""

    def __init__(
        self,
        portal: Optional[Portal] = None,
        env: Optional[LinkEnvironment] = None,
        params: Optional[SimulationParameters] = None,
        config: Optional[DeviceConfig] = None,
        seed: int = 427008,
        fault_plan: Optional["FaultPlan"] = None,
    ) -> None:
        setup = PaperSetup()
        self.config = config or DeviceConfig()
        self.portal = portal or single_antenna_portal(
            tx_power_dbm=self.config.tx_power_dbm
        )
        self._simulator = PortalPassSimulator(
            portal=self.portal,
            env=env or setup.env,
            params=params or setup.params,
        )
        self._seeds = SeedSequence(seed)
        self._trial = 0
        self._buffer: Optional[PolledInterface] = None
        self._reader_buffers: Dict[str, PolledInterface] = {}
        self._pass_duration = 0.0
        self.fault_plan = fault_plan
        self._last_coverage: Optional["CoverageReport"] = None

    # -- single read ------------------------------------------------------

    def single_read(self, carriers: Sequence[CarrierGroup]) -> str:
        """One commanded inventory cycle; returns the XML tag list.

        The carriers are observed for the configured single-read window
        at their *current* (t=0) positions — the stationary semantics of
        the paper's Figure 2 measurements.
        """
        frozen = [self._frozen(c) for c in carriers]
        result = self._run(frozen)
        return render_tag_list(list(result.trace))

    def _frozen(self, carrier: CarrierGroup) -> CarrierGroup:
        """A copy of the carrier pinned at its t=0 position."""
        return CarrierGroup(
            motion=StationaryPlacement(
                position=carrier.motion.position_at(0.0),
                duration_s=self.config.single_read_window_s,
            ),
            tags=carrier.tags,
            occluders=carrier.occluders,
            clutter_sigma_db=carrier.clutter_sigma_db,
        )

    # -- buffered continuous mode ------------------------------------------

    def start_continuous(self, carriers: Sequence[CarrierGroup]) -> None:
        """Begin a buffered continuous read over one carrier pass."""
        if self._buffer is not None:
            raise DeviceError("continuous read already running; stop() first")
        result = self._run(carriers)
        self._buffer = PolledInterface(list(result.trace))
        self._reader_buffers = {
            reader.reader_id: PolledInterface(
                [e for e in result.trace if e.reader_id == reader.reader_id]
            )
            for reader in self.portal.readers
        }
        self._pass_duration = result.duration_s
        self._last_coverage = result.coverage

    def poll(self, now: float) -> str:
        """Drain buffered reads with ``time <= now`` as XML.

        Raises
        ------
        DeviceError
            When no continuous read is active.
        """
        if self._buffer is None:
            raise DeviceError("no continuous read active")
        return self._buffer.poll(now)

    def stop(self) -> str:
        """End the continuous read, returning any still-buffered events."""
        if self._buffer is None:
            raise DeviceError("no continuous read active")
        remainder = self._buffer.poll(now=float("inf"))
        self._buffer = None
        self._reader_buffers = {}
        return remainder

    def reader_buffer(self, reader_id: str) -> PolledInterface:
        """The per-reader slice of the running continuous read.

        Supervision needs per-reader transports (retry and failover are
        per *component*, not per portal); this hands out one drainable
        buffer per physical reader, suitable for wrapping in a
        :class:`~repro.faults.injectors.FaultyTransport` or polling via
        a :class:`~repro.reader.supervisor.SupervisedReader`.

        Raises
        ------
        DeviceError
            When no continuous read is active or the id is unknown.
        """
        if self._buffer is None:
            raise DeviceError("no continuous read active")
        try:
            return self._reader_buffers[reader_id]
        except KeyError:
            known = sorted(self._reader_buffers)
            raise DeviceError(
                f"unknown reader {reader_id!r}; portal has {known}"
            ) from None

    @property
    def pass_duration_s(self) -> float:
        """Duration of the most recent continuous pass."""
        return self._pass_duration

    @property
    def coverage(self) -> Optional["CoverageReport"]:
        """Coverage report of the most recent pass (None = fault-free)."""
        return self._last_coverage

    # -- internals --------------------------------------------------------

    def _run(self, carriers: Sequence[CarrierGroup]) -> PassResult:
        result = self._simulator.run_pass(
            carriers, self._seeds, self._trial, fault_plan=self.fault_plan
        )
        self._trial += 1
        return result
