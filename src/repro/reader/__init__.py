"""Reader-side stack: wire format, middleware, and back-end logic."""

from .backend import (
    ObjectRegistry,
    RegistryError,
    TrackedObject,
    TrackingBackend,
    TrackingDecision,
)
from .middleware import (
    DuplicateEliminator,
    LocationFilter,
    MiddlewarePipeline,
    PresenceInterval,
    SlidingWindowSmoother,
)
from .wire import PolledInterface, WireFormatError, parse_tag_list, render_tag_list

from .device import DeviceConfig, DeviceError, ReaderDevice

from .site import Checkpoint, Journey, SiteError, SiteTracker

from .smurf import EpochObservations, SmurfCleaner

__all__ = [
    "EpochObservations",
    "SmurfCleaner",

    "Checkpoint",
    "Journey",
    "SiteError",
    "SiteTracker",

    "DeviceConfig",
    "DeviceError",
    "ReaderDevice",

    "ObjectRegistry",
    "RegistryError",
    "TrackedObject",
    "TrackingBackend",
    "TrackingDecision",
    "DuplicateEliminator",
    "LocationFilter",
    "MiddlewarePipeline",
    "PresenceInterval",
    "SlidingWindowSmoother",
    "PolledInterface",
    "WireFormatError",
    "parse_tag_list",
    "render_tag_list",
]
