"""Reader-side stack: wire format, middleware, supervision, back-end logic."""

from .backend import (
    ObjectRegistry,
    RegistryError,
    TrackedObject,
    TrackingBackend,
    TrackingDecision,
)
from .middleware import (
    DuplicateEliminator,
    LocationFilter,
    MiddlewarePipeline,
    PresenceInterval,
    SlidingWindowSmoother,
)
from .wire import (
    PolledInterface,
    PollOrderError,
    ReaderUnreachable,
    TransportError,
    TransportTimeout,
    WireFormatError,
    parse_tag_list,
    render_tag_list,
)

from .supervisor import (
    HealthTransition,
    PollStats,
    Promotion,
    ReaderFailoverGroup,
    ReaderHealth,
    RetryPolicy,
    SupervisedReader,
    SupervisorError,
)

from .device import DeviceConfig, DeviceError, ReaderDevice

from .site import Checkpoint, Journey, SiteError, SiteTracker

from .smurf import EpochObservations, SmurfCleaner

__all__ = [
    "EpochObservations",
    "SmurfCleaner",

    "Checkpoint",
    "Journey",
    "SiteError",
    "SiteTracker",

    "DeviceConfig",
    "DeviceError",
    "ReaderDevice",

    "HealthTransition",
    "PollStats",
    "Promotion",
    "ReaderFailoverGroup",
    "ReaderHealth",
    "RetryPolicy",
    "SupervisedReader",
    "SupervisorError",

    "ObjectRegistry",
    "RegistryError",
    "TrackedObject",
    "TrackingBackend",
    "TrackingDecision",
    "DuplicateEliminator",
    "LocationFilter",
    "MiddlewarePipeline",
    "PresenceInterval",
    "SlidingWindowSmoother",
    "PolledInterface",
    "PollOrderError",
    "ReaderUnreachable",
    "TransportError",
    "TransportTimeout",
    "WireFormatError",
    "parse_tag_list",
    "render_tag_list",
]
