"""Edge middleware: duplicate elimination, smoothing, location filtering.

Raw reader streams are noisy in both directions — the same tag reports
dozens of times per pass (duplicates) and fades in and out (flicker).
Standard RFID middleware cleans the stream before the back-end sees it:

* :class:`DuplicateEliminator` — collapse repeats within a time window;
* :class:`SlidingWindowSmoother` — declare a tag *present* while it has
  at least one read in the trailing window (the fixed-window version of
  adaptive cleaning a la SMURF, VLDB'06 [15] in the paper);
* :class:`LocationFilter` — attribute events to zones and drop reads
  from antennas outside the zone of interest (the paper's false-positive
  remedy is physical — spacing and power — but deployments also filter).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Set, Tuple

from ..sim.events import TagReadEvent


class DuplicateEliminator:
    """Drop repeat reads of the same (epc, reader, antenna) within a window."""

    def __init__(self, window_s: float = 1.0) -> None:
        if window_s < 0.0:
            raise ValueError(f"window must be non-negative, got {window_s!r}")
        self._window = window_s
        self._last_seen: Dict[Tuple[str, str, str], float] = {}

    def filter(self, events: Iterable[TagReadEvent]) -> List[TagReadEvent]:
        """Pass each event at most once per window, preserving order.

        Streams can arrive mildly out of order (multi-reader merges,
        delayed polls). An event *older* than the last-seen timestamp
        for its key is always treated as a duplicate and dropped — it
        must never rewind ``last_seen``, or a late straggler would
        re-arm the window and let a following on-time read through
        twice.
        """
        out: List[TagReadEvent] = []
        for event in events:
            key = event.key()
            last = self._last_seen.get(key)
            if last is not None and event.time < last:
                continue  # late straggler; never re-arm the window
            if last is None or event.time - last >= self._window:
                out.append(event)
                self._last_seen[key] = event.time
        return out

    def reset(self) -> None:
        self._last_seen.clear()


@dataclass(frozen=True)
class PresenceInterval:
    """A smoothed presence: tag considered in-zone during [start, end)."""

    epc: str
    start: float
    end: float

    @property
    def duration(self) -> float:
        return self.end - self.start


class SlidingWindowSmoother:
    """Turn flickering reads into continuous presence intervals.

    A tag is *present* from its first read until ``window_s`` elapses
    with no read. Small windows flicker (false transitions); large
    windows lag departures — the tension SMURF resolves adaptively,
    which :meth:`adaptive_window` approximates using the observed
    inter-read rate.
    """

    def __init__(self, window_s: float = 2.0) -> None:
        if window_s <= 0.0:
            raise ValueError(f"window must be positive, got {window_s!r}")
        self._window = window_s

    @property
    def window_s(self) -> float:
        return self._window

    def smooth(self, events: Sequence[TagReadEvent]) -> List[PresenceInterval]:
        """Presence intervals per tag from a time-ordered event stream."""
        by_tag: Dict[str, List[float]] = {}
        for event in events:
            by_tag.setdefault(event.epc, []).append(event.time)
        intervals: List[PresenceInterval] = []
        for epc, times in by_tag.items():
            times.sort()
            start = times[0]
            last = times[0]
            for t in times[1:]:
                if t - last > self._window:
                    intervals.append(
                        PresenceInterval(epc, start, last + self._window)
                    )
                    start = t
                last = t
            intervals.append(PresenceInterval(epc, start, last + self._window))
        return sorted(intervals, key=lambda iv: (iv.start, iv.epc))

    @staticmethod
    def adaptive_window(
        read_times: Sequence[float], target_miss_probability: float = 0.05
    ) -> float:
        """SMURF-style window: wide enough that a present tag is unlikely
        to go a full window unread.

        With reads arriving roughly Poisson at rate ``lambda``, the
        probability of a silent window of length w is ``exp(-lambda w)``;
        solve for w at the target miss probability.
        """
        if not 0.0 < target_miss_probability < 1.0:
            raise ValueError(
                "target miss probability must be in (0, 1), got "
                f"{target_miss_probability!r}"
            )
        if len(read_times) < 2:
            return 2.0  # no rate information; fall back to a stock window
        ordered = sorted(read_times)
        span = ordered[-1] - ordered[0]
        if span <= 0.0:
            return 2.0
        rate = (len(ordered) - 1) / span
        return -math.log(target_miss_probability) / rate


class LocationFilter:
    """Map (reader, antenna) to zones and keep only zones of interest."""

    def __init__(
        self,
        zone_of: Mapping[Tuple[str, str], str],
        zones_of_interest: Optional[Set[str]] = None,
    ) -> None:
        if not zone_of:
            raise ValueError("need at least one antenna-zone mapping")
        self._zone_of = dict(zone_of)
        self._interest = zones_of_interest

    def zone_for(self, event: TagReadEvent) -> Optional[str]:
        return self._zone_of.get((event.reader_id, event.antenna_id))

    def filter(self, events: Iterable[TagReadEvent]) -> List[TagReadEvent]:
        """Keep events whose antenna maps to a zone of interest."""
        out = []
        for event in events:
            zone = self.zone_for(event)
            if zone is None:
                continue
            if self._interest is not None and zone not in self._interest:
                continue
            out.append(event)
        return out


@dataclass
class MiddlewarePipeline:
    """Location filter -> duplicate elimination -> smoothing, in order."""

    location: Optional[LocationFilter] = None
    dedup: DuplicateEliminator = field(default_factory=DuplicateEliminator)
    smoother: SlidingWindowSmoother = field(
        default_factory=SlidingWindowSmoother
    )

    def process(
        self, events: Sequence[TagReadEvent]
    ) -> Tuple[List[TagReadEvent], List[PresenceInterval]]:
        """Run the full pipeline; returns (clean events, presences)."""
        stream: Sequence[TagReadEvent] = events
        if self.location is not None:
            stream = self.location.filter(stream)
        clean = self.dedup.filter(stream)
        return clean, self.smoother.smooth(clean)
