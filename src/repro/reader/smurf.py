"""Adaptive-window RFID data cleaning (SMURF; paper reference [15]).

Jeffery, Garofalakis & Franklin's SMURF ("Adaptive cleaning for RFID
data streams", VLDB 2006) treats a tag's reads as Bernoulli samples of
its presence: within a window of ``w`` epochs, a tag present with
per-epoch read probability ``p`` is seen ``Binomial(w, p)`` times.
SMURF sizes each tag's smoothing window adaptively:

* **completeness** — the window must be wide enough that a present tag
  is unlikely to go entirely unread (avoid false transitions);
* **responsiveness** — the window must stay narrow enough to notice
  real departures; SMURF detects a *transition* when the observed read
  count falls statistically below what the estimated ``p`` predicts.

Our :class:`~repro.reader.middleware.SlidingWindowSmoother` is the
fixed-window baseline; this module is the adaptive upgrade, per tag.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..sim.events import TagReadEvent


@dataclass
class EpochObservations:
    """Read bookkeeping for one tag over discrete epochs."""

    epochs_seen: int = 0
    reads: int = 0

    @property
    def read_rate(self) -> float:
        """Per-epoch Bernoulli estimate p-hat (0 before any epoch)."""
        if self.epochs_seen == 0:
            return 0.0
        return self.reads / self.epochs_seen


@dataclass
class SmurfCleaner:
    """Per-tag adaptive smoothing over an epoch-structured stream.

    Parameters
    ----------
    epoch_s:
        Duration of one read epoch (typically one inventory cycle).
    delta:
        Completeness target: P(present tag unread for a full window)
        <= delta.
    min_window_epochs, max_window_epochs:
        Clamp on the adaptive window.
    """

    epoch_s: float = 0.2
    delta: float = 0.05
    min_window_epochs: int = 1
    max_window_epochs: int = 25
    _state: Dict[str, EpochObservations] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.epoch_s <= 0:
            raise ValueError(f"epoch must be positive, got {self.epoch_s!r}")
        if not 0.0 < self.delta < 1.0:
            raise ValueError(f"delta must be in (0, 1), got {self.delta!r}")
        if not 1 <= self.min_window_epochs <= self.max_window_epochs:
            raise ValueError("window clamp must satisfy 1 <= min <= max")

    # -- window sizing ------------------------------------------------------

    def required_window_epochs(self, read_rate: float) -> int:
        """Smallest window meeting the completeness target at ``read_rate``.

        From (1 - p)^w <= delta: w >= ln(delta) / ln(1 - p).
        """
        if read_rate <= 0.0:
            return self.max_window_epochs
        if read_rate >= 1.0:
            return self.min_window_epochs
        w = math.log(self.delta) / math.log(1.0 - read_rate)
        return max(
            self.min_window_epochs,
            min(self.max_window_epochs, int(math.ceil(w))),
        )

    def transition_detected(
        self, read_rate: float, window_epochs: int, window_reads: int
    ) -> bool:
        """Has the tag statistically departed mid-window?

        SMURF's binomial test: flag a transition when the observed
        count falls more than two standard deviations below the
        expectation ``w * p``.
        """
        if window_epochs <= 0:
            return False
        expected = window_epochs * read_rate
        stddev = math.sqrt(
            max(window_epochs * read_rate * (1.0 - read_rate), 0.0)
        )
        return (expected - window_reads) > 2.0 * stddev

    # -- stream processing --------------------------------------------------

    def presence_intervals(
        self, events: Sequence[TagReadEvent], duration_s: float
    ) -> Dict[str, List[Tuple[float, float]]]:
        """Smooth a pass's events into per-tag presence intervals.

        The stream is diced into epochs; each tag's per-epoch read rate
        is estimated online and its smoothing window adapts with it.
        """
        if duration_s <= 0:
            raise ValueError(f"duration must be positive, got {duration_s!r}")
        epochs = max(1, int(math.ceil(duration_s / self.epoch_s)))
        # reads_per_epoch[tag][epoch] = count
        reads: Dict[str, List[int]] = {}
        for event in events:
            index = min(int(event.time / self.epoch_s), epochs - 1)
            per_tag = reads.setdefault(event.epc, [0] * epochs)
            per_tag[index] += 1

        intervals: Dict[str, List[Tuple[float, float]]] = {}
        for epc, counts in reads.items():
            tag_intervals: List[Tuple[float, float]] = []
            state = EpochObservations()
            open_start: Optional[float] = None
            silent = 0
            for index, count in enumerate(counts):
                state.epochs_seen += 1
                state.reads += 1 if count > 0 else 0
                rate = max(state.read_rate, 1e-3)
                window = self.required_window_epochs(rate)
                t = index * self.epoch_s
                if count > 0:
                    if open_start is None:
                        open_start = t
                    silent = 0
                elif open_start is not None:
                    silent += 1
                    if silent >= window:
                        tag_intervals.append(
                            (open_start, t - (silent - 1) * self.epoch_s)
                        )
                        open_start = None
                        silent = 0
            if open_start is not None:
                end = min(epochs * self.epoch_s, duration_s)
                tag_intervals.append((open_start, end))
            intervals[epc] = tag_intervals
        return intervals

    def reset(self) -> None:
        self._state.clear()
