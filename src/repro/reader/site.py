"""Multi-portal site model: checkpoints along a physical route.

Real deployments chain portals: receiving dock -> conveyor gate ->
shipping door. Each portal produces read events; the site layer fuses
them into per-object *journeys* and feeds the constraint pipeline
(:mod:`repro.core.constraints`) so a miss at one checkpoint can be
recovered from the others — combining the paper's physical redundancy
with the software correction of its related work.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Set, Tuple

from ..core.constraints import (
    AccompanyConstraint,
    ConstraintPipeline,
    Observation,
    RouteConstraint,
)
from ..sim.events import TagReadEvent
from .backend import ObjectRegistry


class SiteError(ValueError):
    """Raised for inconsistent site configuration."""


@dataclass(frozen=True)
class Checkpoint:
    """One portal position along the site route."""

    name: str
    #: (reader_id, antenna_id) pairs whose reads attribute here.
    antennas: Tuple[Tuple[str, str], ...]

    def __post_init__(self) -> None:
        if not self.antennas:
            raise SiteError(f"checkpoint {self.name!r} has no antennas")


@dataclass
class Journey:
    """One object's reconstructed path through the site."""

    object_id: str
    sightings: List[Observation] = field(default_factory=list)
    inferred: List[Observation] = field(default_factory=list)

    @property
    def checkpoints_seen(self) -> Set[str]:
        return {o.checkpoint for o in self.sightings}

    @property
    def checkpoints_known(self) -> Set[str]:
        return self.checkpoints_seen | {o.checkpoint for o in self.inferred}

    def complete(self, route: Sequence[str]) -> bool:
        """Did the object (after correction) cover the whole route?"""
        return set(route) <= self.checkpoints_known


class SiteTracker:
    """Fuses multi-portal reads into corrected per-object journeys."""

    def __init__(
        self,
        checkpoints: Sequence[Checkpoint],
        registry: ObjectRegistry,
        groups: Optional[Mapping[str, Sequence[str]]] = None,
        accompany_quorum: float = 0.5,
    ) -> None:
        if not checkpoints:
            raise SiteError("a site needs at least one checkpoint")
        names = [c.name for c in checkpoints]
        if len(set(names)) != len(names):
            raise SiteError(f"duplicate checkpoint names: {names}")
        self._checkpoints = list(checkpoints)
        self._registry = registry
        self._antenna_to_checkpoint: Dict[Tuple[str, str], str] = {}
        for checkpoint in checkpoints:
            for key in checkpoint.antennas:
                if key in self._antenna_to_checkpoint:
                    raise SiteError(
                        f"antenna {key} assigned to two checkpoints"
                    )
                self._antenna_to_checkpoint[key] = checkpoint.name
        constraints = ConstraintPipeline(
            routes=[RouteConstraint(names)] if len(names) >= 2 else [],
        )
        if groups:
            constraints.accompany.append(
                AccompanyConstraint(groups, quorum_fraction=accompany_quorum)
            )
        self._pipeline = constraints
        self._observations: List[Observation] = []

    @property
    def route(self) -> List[str]:
        return [c.name for c in self._checkpoints]

    def ingest(self, events: Sequence[TagReadEvent]) -> int:
        """Convert reads into object sightings; returns how many landed.

        Events from unmapped antennas or unknown EPCs are dropped (they
        belong to other systems or ambient tags).
        """
        added = 0
        for event in events:
            checkpoint = self._antenna_to_checkpoint.get(
                (event.reader_id, event.antenna_id)
            )
            if checkpoint is None:
                continue
            obj = self._registry.object_for_epc(event.epc)
            if obj is None:
                continue
            self._observations.append(
                Observation(obj.object_id, checkpoint, event.time)
            )
            added += 1
        return added

    def journeys(self) -> Dict[str, Journey]:
        """Corrected journeys for every registered object."""
        corrected, inferred = self._pipeline.correct(self._observations)
        inferred_keys = {(o.object_id, o.checkpoint, o.time) for o in inferred}
        result: Dict[str, Journey] = {
            obj.object_id: Journey(obj.object_id)
            for obj in self._registry.all_objects()
        }
        for obs in corrected:
            journey = result.get(obs.object_id)
            if journey is None:
                continue
            key = (obs.object_id, obs.checkpoint, obs.time)
            if key in inferred_keys:
                journey.inferred.append(obs)
            else:
                journey.sightings.append(obs)
        return result

    def completion_report(self) -> Tuple[int, int, int]:
        """(complete_raw, complete_corrected, total) journey counts."""
        journeys = self.journeys()
        route = self.route
        raw = sum(
            1
            for j in journeys.values()
            if set(route) <= j.checkpoints_seen
        )
        corrected = sum(1 for j in journeys.values() if j.complete(route))
        return raw, corrected, len(journeys)

    def reset(self) -> None:
        self._observations.clear()
