"""Multi-portal site model: checkpoints along a physical route.

Real deployments chain portals: receiving dock -> conveyor gate ->
shipping door. Each portal produces read events; the site layer fuses
them into per-object *journeys* and feeds the constraint pipeline
(:mod:`repro.core.constraints`) so a miss at one checkpoint can be
recovered from the others — combining the paper's physical redundancy
with the software correction of its related work.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Set, Tuple

from ..core.constraints import (
    AccompanyConstraint,
    ConstraintPipeline,
    Observation,
    RouteConstraint,
)
from ..sim.events import TagReadEvent
from .backend import ObjectRegistry


class SiteError(ValueError):
    """Raised for inconsistent site configuration."""


@dataclass(frozen=True)
class Checkpoint:
    """One portal position along the site route."""

    name: str
    #: (reader_id, antenna_id) pairs whose reads attribute here.
    antennas: Tuple[Tuple[str, str], ...]

    def __post_init__(self) -> None:
        if not self.antennas:
            raise SiteError(f"checkpoint {self.name!r} has no antennas")


@dataclass
class Journey:
    """One object's reconstructed path through the site."""

    object_id: str
    sightings: List[Observation] = field(default_factory=list)
    inferred: List[Observation] = field(default_factory=list)
    #: Checkpoints whose infrastructure was impaired while this journey
    #: was being observed. A checkpoint missing from the journey but
    #: present here is "unobserved", not "skipped".
    degraded_checkpoints: Set[str] = field(default_factory=set)

    @property
    def checkpoints_seen(self) -> Set[str]:
        return {o.checkpoint for o in self.sightings}

    @property
    def checkpoints_known(self) -> Set[str]:
        return self.checkpoints_seen | {o.checkpoint for o in self.inferred}

    @property
    def degraded(self) -> bool:
        """True when any watched checkpoint had impaired coverage."""
        return bool(self.degraded_checkpoints)

    @property
    def confidence(self) -> str:
        """``"full"`` or ``"reduced"`` — never silently the former."""
        return "reduced" if self.degraded else "full"

    def complete(self, route: Sequence[str]) -> bool:
        """Did the object (after correction) cover the whole route?"""
        return set(route) <= self.checkpoints_known

    def unobserved_gaps(self, route: Sequence[str]) -> Set[str]:
        """Route checkpoints neither seen nor inferred *while degraded*.

        These are the holes that cannot be blamed on the object: the
        site was (partly) blind there, so absence of a sighting is not
        evidence of absence.
        """
        return (set(route) - self.checkpoints_known) & self.degraded_checkpoints


class SiteTracker:
    """Fuses multi-portal reads into corrected per-object journeys."""

    def __init__(
        self,
        checkpoints: Sequence[Checkpoint],
        registry: ObjectRegistry,
        groups: Optional[Mapping[str, Sequence[str]]] = None,
        accompany_quorum: float = 0.5,
    ) -> None:
        if not checkpoints:
            raise SiteError("a site needs at least one checkpoint")
        names = [c.name for c in checkpoints]
        if len(set(names)) != len(names):
            raise SiteError(f"duplicate checkpoint names: {names}")
        self._checkpoints = list(checkpoints)
        self._registry = registry
        self._antenna_to_checkpoint: Dict[Tuple[str, str], str] = {}
        for checkpoint in checkpoints:
            for key in checkpoint.antennas:
                if key in self._antenna_to_checkpoint:
                    raise SiteError(
                        f"antenna {key} assigned to two checkpoints"
                    )
                self._antenna_to_checkpoint[key] = checkpoint.name
        constraints = ConstraintPipeline(
            routes=[RouteConstraint(names)] if len(names) >= 2 else [],
        )
        if groups:
            constraints.accompany.append(
                AccompanyConstraint(groups, quorum_fraction=accompany_quorum)
            )
        self._pipeline = constraints
        self._observations: List[Observation] = []
        self._coverage: Dict[str, float] = {}

    @property
    def route(self) -> List[str]:
        return [c.name for c in self._checkpoints]

    def ingest(self, events: Sequence[TagReadEvent]) -> int:
        """Convert reads into object sightings; returns how many landed.

        Events from unmapped antennas or unknown EPCs are dropped (they
        belong to other systems or ambient tags).
        """
        added = 0
        for event in events:
            checkpoint = self._antenna_to_checkpoint.get(
                (event.reader_id, event.antenna_id)
            )
            if checkpoint is None:
                continue
            obj = self._registry.object_for_epc(event.epc)
            if obj is None:
                continue
            self._observations.append(
                Observation(obj.object_id, checkpoint, event.time)
            )
            added += 1
        return added

    def note_coverage(self, checkpoint: str, live_fraction: float) -> None:
        """Record how much of the campaign a checkpoint actually watched.

        Supervisors and faulted passes report reduced coverage here
        (e.g. ``pass_result.coverage.live_fraction`` or a failover
        group's ``live_fraction``); journeys through a checkpoint with
        ``live_fraction < 1`` are annotated as degraded. Repeated notes
        for one checkpoint keep the *worst* figure.
        """
        if checkpoint not in {c.name for c in self._checkpoints}:
            raise SiteError(f"unknown checkpoint {checkpoint!r}")
        if not 0.0 <= live_fraction <= 1.0:
            raise SiteError(
                f"live fraction must be in [0, 1], got {live_fraction!r}"
            )
        previous = self._coverage.get(checkpoint, 1.0)
        self._coverage[checkpoint] = min(previous, live_fraction)

    def checkpoint_coverage(self, checkpoint: str) -> float:
        """The recorded live fraction for a checkpoint (default 1.0)."""
        if checkpoint not in {c.name for c in self._checkpoints}:
            raise SiteError(f"unknown checkpoint {checkpoint!r}")
        return self._coverage.get(checkpoint, 1.0)

    def journeys(self) -> Dict[str, Journey]:
        """Corrected journeys for every registered object."""
        corrected, inferred = self._pipeline.correct(self._observations)
        inferred_keys = {(o.object_id, o.checkpoint, o.time) for o in inferred}
        degraded = {
            name for name, fraction in self._coverage.items() if fraction < 1.0
        }
        result: Dict[str, Journey] = {
            obj.object_id: Journey(
                obj.object_id, degraded_checkpoints=set(degraded)
            )
            for obj in self._registry.all_objects()
        }
        for obs in corrected:
            journey = result.get(obs.object_id)
            if journey is None:
                continue
            key = (obs.object_id, obs.checkpoint, obs.time)
            if key in inferred_keys:
                journey.inferred.append(obs)
            else:
                journey.sightings.append(obs)
        return result

    def completion_report(self) -> Tuple[int, int, int]:
        """(complete_raw, complete_corrected, total) journey counts."""
        journeys = self.journeys()
        route = self.route
        raw = sum(
            1
            for j in journeys.values()
            if set(route) <= j.checkpoints_seen
        )
        corrected = sum(1 for j in journeys.values() if j.complete(route))
        return raw, corrected, len(journeys)

    def reset(self) -> None:
        self._observations.clear()
        self._coverage.clear()
