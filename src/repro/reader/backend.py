"""Back-end: object registry, tag-to-object resolution, tracking decisions.

"The back-end system implements the logic and actions for when a tag
is identified." Here that means: a registry mapping EPCs to objects
(an object may carry several tags — the premise of tag-level
redundancy), an event store, and the tracking decision of Section 2.1:
an object is *tracked* through a zone when any of its tags is read
there.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import (
    TYPE_CHECKING,
    Callable,
    Dict,
    FrozenSet,
    List,
    Mapping,
    Optional,
    Sequence,
    Set,
)

from ..sim.events import TagReadEvent

if TYPE_CHECKING:  # pragma: no cover - annotation-only, avoids a cycle
    from ..faults.plan import CoverageReport


class RegistryError(ValueError):
    """Raised on inconsistent registry operations."""


@dataclass(frozen=True)
class TrackedObject:
    """An object (box, person, pallet) and its attached tag EPCs."""

    object_id: str
    epcs: FrozenSet[str]
    kind: str = "object"

    def __post_init__(self) -> None:
        if not self.epcs:
            raise RegistryError(
                f"object {self.object_id!r} must carry at least one tag"
            )


class ObjectRegistry:
    """EPC -> object resolution with uniqueness enforcement."""

    def __init__(self) -> None:
        self._objects: Dict[str, TrackedObject] = {}
        self._epc_to_object: Dict[str, str] = {}

    def register(self, obj: TrackedObject) -> None:
        if obj.object_id in self._objects:
            raise RegistryError(f"duplicate object id {obj.object_id!r}")
        for epc in obj.epcs:
            if epc in self._epc_to_object:
                raise RegistryError(
                    f"EPC {epc} already attached to "
                    f"{self._epc_to_object[epc]!r}"
                )
        self._objects[obj.object_id] = obj
        for epc in obj.epcs:
            self._epc_to_object[epc] = obj.object_id

    def object_for_epc(self, epc: str) -> Optional[TrackedObject]:
        object_id = self._epc_to_object.get(epc)
        return self._objects.get(object_id) if object_id else None

    def get(self, object_id: str) -> TrackedObject:
        try:
            return self._objects[object_id]
        except KeyError:
            raise RegistryError(f"unknown object {object_id!r}") from None

    def all_objects(self) -> List[TrackedObject]:
        return list(self._objects.values())

    def __len__(self) -> int:
        return len(self._objects)


@dataclass(frozen=True)
class TrackingDecision:
    """The back-end's verdict for one object during one observation window."""

    object_id: str
    detected: bool
    first_seen: Optional[float]
    tags_seen: FrozenSet[str]
    total_tags: int
    #: Fraction of the observation window the infrastructure was live
    #: (1.0 = every antenna watched the whole window).
    coverage: float = 1.0
    #: True when the window was observed with impaired infrastructure —
    #: a "not detected" under degraded coverage means "possibly missed
    #: because we were blind", never "confidently absent".
    degraded: bool = False

    @property
    def redundancy_used(self) -> bool:
        """True when the object was saved by a non-first tag."""
        return self.detected and len(self.tags_seen) < self.total_tags

    @property
    def verdict(self) -> str:
        """Human-readable outcome honouring coverage.

        ``"present"`` when detected; ``"absent"`` only when not detected
        under *full* coverage; ``"unobserved"`` when not detected but the
        infrastructure was partially blind — the dependable answer to
        "was the object there?" is then "we cannot say", not "no".
        """
        if self.detected:
            return "present"
        return "unobserved" if self.degraded else "absent"


#: Action hook invoked for each detection (open a door, update a DB...).
ActionFn = Callable[[TrackingDecision], None]


class TrackingBackend:
    """Consumes clean read events and renders per-object decisions."""

    def __init__(
        self,
        registry: ObjectRegistry,
        on_detect: Optional[ActionFn] = None,
    ) -> None:
        self._registry = registry
        self._on_detect = on_detect
        self._events: List[TagReadEvent] = []

    def ingest(self, events: Sequence[TagReadEvent]) -> None:
        """Append a batch of (already middleware-cleaned) events."""
        self._events.extend(events)

    @property
    def event_count(self) -> int:
        return len(self._events)

    def decide(
        self, coverage: Optional["CoverageReport"] = None
    ) -> Dict[str, TrackingDecision]:
        """Tracking decision for every registered object over all events.

        ``coverage`` (from a faulted pass's
        :attr:`~repro.world.simulation.PassResult.coverage`) stamps each
        decision with how much of the window the infrastructure actually
        watched, so a miss under a downed antenna is reported as
        *unobserved* rather than confidently absent.
        """
        live_fraction = 1.0 if coverage is None else coverage.live_fraction
        degraded = False if coverage is None else coverage.degraded
        seen_by_object: Dict[str, Set[str]] = {}
        first_time: Dict[str, float] = {}
        for event in self._events:
            obj = self._registry.object_for_epc(event.epc)
            if obj is None:
                continue
            seen_by_object.setdefault(obj.object_id, set()).add(event.epc)
            if obj.object_id not in first_time:
                first_time[obj.object_id] = event.time
        decisions: Dict[str, TrackingDecision] = {}
        for obj in self._registry.all_objects():
            seen = frozenset(seen_by_object.get(obj.object_id, set()))
            decision = TrackingDecision(
                object_id=obj.object_id,
                detected=bool(seen),
                first_seen=first_time.get(obj.object_id),
                tags_seen=seen,
                total_tags=len(obj.epcs),
                coverage=live_fraction,
                degraded=degraded,
            )
            decisions[obj.object_id] = decision
            if decision.detected and self._on_detect is not None:
                self._on_detect(decision)
        return decisions

    def missed_objects(self) -> List[str]:
        """Objects present in the registry but never seen — false negatives."""
        decisions = self.decide()
        return sorted(
            object_id
            for object_id, decision in decisions.items()
            if not decision.detected
        )

    def reset(self) -> None:
        self._events.clear()
