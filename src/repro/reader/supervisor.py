"""Supervised reader operations: retry, health monitoring, failover.

The paper gets its reliability from *redundancy* — multiple tags,
antennas, readers. This module adds the dependability machinery that
makes reader-level redundancy work when components actually fail
rather than merely fade:

* :class:`SupervisedReader` — wraps a poll transport with bounded
  retry + exponential backoff, classifies the reader as healthy,
  degraded, or down from consecutive poll outcomes, and records every
  health transition so faults are *observable*, never silent;
* :class:`ReaderFailoverGroup` — a primary plus standbys; every
  non-down member is polled each cycle (session-level redundancy in
  the spirit of Jacobsen et al.'s independent reader sessions) and the
  *active* role — the reader that would receive commands — is promoted
  away from a member that goes down.

All time is the caller's simulation clock: a retry "waits" by polling
at ``now + backoff``, which against a buffered reader is exactly what
a blocking sleep would have produced on real hardware.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from ..sim.events import TagReadEvent
from .wire import PollOrderError, TransportError, WireFormatError, parse_tag_list


class SupervisorError(ValueError):
    """Raised for inconsistent supervisor configuration."""


class ReaderHealth(enum.Enum):
    """Coarse liveness classification of one reader."""

    HEALTHY = "healthy"
    DEGRADED = "degraded"
    DOWN = "down"


@dataclass(frozen=True)
class RetryPolicy:
    """Knobs for one reader's supervision loop."""

    #: Attempts per poll (first try + retries).
    max_attempts: int = 3
    #: Backoff before the first retry; doubles (by default) per retry.
    base_backoff_s: float = 0.05
    backoff_multiplier: float = 2.0
    #: Consecutive failed polls before the reader counts as degraded...
    degraded_after: int = 1
    #: ...and before it counts as down.
    down_after: int = 3

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise SupervisorError(
                f"max_attempts must be >= 1, got {self.max_attempts!r}"
            )
        if self.base_backoff_s < 0.0:
            raise SupervisorError(
                f"base backoff must be >= 0, got {self.base_backoff_s!r}"
            )
        if self.backoff_multiplier < 1.0:
            raise SupervisorError(
                "backoff multiplier must be >= 1, got "
                f"{self.backoff_multiplier!r}"
            )
        if not 1 <= self.degraded_after <= self.down_after:
            raise SupervisorError(
                "need 1 <= degraded_after <= down_after, got "
                f"{self.degraded_after!r} / {self.down_after!r}"
            )

    def backoff_before_attempt(self, attempt: int) -> float:
        """Delay inserted before attempt ``attempt`` (0-based)."""
        if attempt == 0:
            return 0.0
        return self.base_backoff_s * self.backoff_multiplier ** (attempt - 1)


@dataclass(frozen=True)
class HealthTransition:
    """One observable state change of one reader's health."""

    time: float
    reader_id: str
    old: ReaderHealth
    new: ReaderHealth
    reason: str


@dataclass
class PollStats:
    """Counters the supervisor keeps per reader."""

    polls: int = 0
    attempts: int = 0
    retries: int = 0
    failed_polls: int = 0
    malformed_documents: int = 0
    events_delivered: int = 0


class SupervisedReader:
    """Retry/backoff/health wrapper around one reader's poll transport.

    ``transport`` is anything with ``poll(now) -> str`` returning a
    tag-list XML document — a bare
    :class:`~repro.reader.wire.PolledInterface` or a fault-injecting
    :class:`~repro.faults.injectors.FaultyTransport`. Transport errors
    and malformed documents both count as failed attempts; a poll that
    exhausts its attempts returns ``[]`` and advances the health state
    machine instead of raising, because a supervisor's job is to keep
    the application running.
    """

    def __init__(
        self,
        reader_id: str,
        transport,
        policy: Optional[RetryPolicy] = None,
        on_transition: Optional[Callable[[HealthTransition], None]] = None,
    ) -> None:
        if not reader_id:
            raise SupervisorError("reader_id must be non-empty")
        self.reader_id = reader_id
        self._transport = transport
        self.policy = policy if policy is not None else RetryPolicy()
        self._health = ReaderHealth.HEALTHY
        self._consecutive_failures = 0
        self._clock = float("-inf")
        self.transitions: List[HealthTransition] = []
        self.stats = PollStats()
        #: Observability callback fired on every health transition (in
        #: addition to the :attr:`transitions` log). ``None`` costs one
        #: identity test per transition — nothing on the poll path.
        self.on_transition = on_transition

    @property
    def health(self) -> ReaderHealth:
        return self._health

    def poll(self, now: float) -> List[TagReadEvent]:
        """One supervised poll: retries inside, parsed events out.

        Retries poll at ``now + backoff`` — simulated time advances
        with each attempt, so a buffered reader that recovers during
        the backoff window is caught by the retry, exactly as it would
        be on hardware.
        """
        self.stats.polls += 1
        virtual = max(now, self._clock)
        last_error: Optional[BaseException] = None
        for attempt in range(self.policy.max_attempts):
            virtual += self.policy.backoff_before_attempt(attempt)
            self._clock = virtual
            self.stats.attempts += 1
            if attempt:
                self.stats.retries += 1
            try:
                events = parse_tag_list(self._transport.poll(virtual))
            except WireFormatError as exc:
                self.stats.malformed_documents += 1
                last_error = exc
            except (TransportError, PollOrderError) as exc:
                last_error = exc
            else:
                self._note_success(virtual)
                self.stats.events_delivered += len(events)
                return events
        self.stats.failed_polls += 1
        self._note_failure(virtual, last_error)
        return []

    # -- health state machine ---------------------------------------------

    def _note_success(self, time: float) -> None:
        self._consecutive_failures = 0
        if self._health is not ReaderHealth.HEALTHY:
            self._transition(time, ReaderHealth.HEALTHY, "poll succeeded")

    def _note_failure(
        self, time: float, error: Optional[BaseException]
    ) -> None:
        self._consecutive_failures += 1
        reason = (
            f"{type(error).__name__}: {error}" if error else "poll failed"
        )
        if self._consecutive_failures >= self.policy.down_after:
            target = ReaderHealth.DOWN
        elif self._consecutive_failures >= self.policy.degraded_after:
            target = ReaderHealth.DEGRADED
        else:
            target = self._health
        if target is not self._health:
            self._transition(time, target, reason)

    def _transition(
        self, time: float, new: ReaderHealth, reason: str
    ) -> None:
        transition = HealthTransition(
            time=time,
            reader_id=self.reader_id,
            old=self._health,
            new=new,
            reason=reason,
        )
        self.transitions.append(transition)
        self._health = new
        if self.on_transition is not None:
            self.on_transition(transition)


@dataclass(frozen=True)
class Promotion:
    """A failover: the active role moved from one reader to another."""

    time: float
    from_reader: str
    to_reader: str


class ReaderFailoverGroup:
    """A redundant set of supervised readers watching the same zone.

    Every member that is not down is polled each cycle and the events
    are unioned — redundant sessions observe independently, so the
    group's view is at least as complete as its best member's. The
    *active* reader (the one that would receive configuration commands
    and single-read requests) starts as the first member and is
    promoted to the next live member when it goes down; promotions are
    recorded, never silent. A recovered ex-primary stays standby — no
    failback flapping.
    """

    def __init__(
        self,
        readers: Sequence[SupervisedReader],
        on_promotion: Optional[Callable[[Promotion], None]] = None,
    ) -> None:
        if not readers:
            raise SupervisorError("a failover group needs >= 1 reader")
        ids = [r.reader_id for r in readers]
        if len(set(ids)) != len(ids):
            raise SupervisorError(f"duplicate reader ids in group: {ids}")
        self._readers = list(readers)
        self._active = ids[0]
        self.promotions: List[Promotion] = []
        #: Observability callback fired on every failover promotion (in
        #: addition to the :attr:`promotions` log).
        self.on_promotion = on_promotion

    @property
    def active_reader_id(self) -> str:
        return self._active

    @property
    def readers(self) -> List[SupervisedReader]:
        return list(self._readers)

    def health(self) -> Dict[str, ReaderHealth]:
        return {r.reader_id: r.health for r in self._readers}

    @property
    def degraded(self) -> bool:
        """True when any member is not fully healthy."""
        return any(
            r.health is not ReaderHealth.HEALTHY for r in self._readers
        )

    @property
    def live_fraction(self) -> float:
        """Fraction of members currently not down."""
        live = sum(
            1 for r in self._readers if r.health is not ReaderHealth.DOWN
        )
        return live / len(self._readers)

    def transitions(self) -> List[HealthTransition]:
        """All members' health transitions, in time order."""
        merged = [t for r in self._readers for t in r.transitions]
        return sorted(merged, key=lambda t: (t.time, t.reader_id))

    def poll(self, now: float) -> List[TagReadEvent]:
        """Poll every member, union the events, run failover checks."""
        events: List[TagReadEvent] = []
        for reader in self._readers:
            events.extend(reader.poll(now))
        self._maybe_promote(now)
        events.sort(key=lambda e: (e.time, e.epc))
        return events

    def _maybe_promote(self, now: float) -> None:
        active = self._reader(self._active)
        if active.health is not ReaderHealth.DOWN:
            return
        for reader in self._readers:
            if reader.health is not ReaderHealth.DOWN:
                promotion = Promotion(
                    time=now,
                    from_reader=self._active,
                    to_reader=reader.reader_id,
                )
                self.promotions.append(promotion)
                self._active = reader.reader_id
                if self.on_promotion is not None:
                    self.on_promotion(promotion)
                return
        # Everyone is down; keep the stale assignment (nothing to do).

    def _reader(self, reader_id: str) -> SupervisedReader:
        for reader in self._readers:
            if reader.reader_id == reader_id:
                return reader
        raise SupervisorError(f"unknown reader {reader_id!r}")
