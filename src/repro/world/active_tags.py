"""Active (battery-powered) tags — the paper's stated future work.

"Future extensions of this work involve experimenting with active
tags" (Section 5). Active tags change the physics completely: the tag
*transmits* its own beacon instead of backscattering, so

* there is no forward-link activation threshold — the dominant passive
  failure mode disappears;
* the link closes one way (tag -> reader) with transmit power in the
  0 to +10 dBm range, giving tens of metres of range through exactly
  the obstructions that kill passive tags;
* the cost is a battery: beacon rate trades tracking latency against
  lifetime.

This module models beaconing active tags against the same portal
geometry and occlusion world as the passive simulator, so the two
technologies are compared on identical workloads
(``benchmarks/test_extension_active_tags.py``).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..rf.antenna import PatchAntenna
from ..rf.geometry import Vec3
from ..rf.link import LinkEnvironment
from ..rf.units import linear_to_db
from ..sim.events import TagReadEvent
from ..sim.rng import SeedSequence
from ..sim.trace import ReadTrace
from .simulation import CarrierGroup, PassResult, PortalPassSimulator
from .tags import Tag


@dataclass(frozen=True)
class ActiveTagModel:
    """Radio and battery characteristics of an active tag.

    Defaults follow 2006-era 433 MHz/915 MHz active RFID (e.g. the
    LANDMARC hardware of the paper's reference [11]).
    """

    tx_power_dbm: float = 0.0
    beacon_interval_s: float = 0.5
    antenna_gain_dbi: float = 0.0
    battery_mah: float = 500.0
    #: Charge per beacon (transmit burst + wakeup), in microamp-hours.
    charge_per_beacon_uah: float = 0.01
    #: Standby current between beacons.
    standby_current_ua: float = 5.0

    def __post_init__(self) -> None:
        if self.beacon_interval_s <= 0.0:
            raise ValueError(
                f"beacon interval must be positive, got {self.beacon_interval_s!r}"
            )
        if self.battery_mah <= 0.0:
            raise ValueError("battery capacity must be positive")
        if self.charge_per_beacon_uah < 0 or self.standby_current_ua < 0:
            raise ValueError("charge figures must be non-negative")

    @property
    def beacons_per_day(self) -> float:
        return 86400.0 / self.beacon_interval_s

    def battery_life_days(self) -> float:
        """Expected lifetime under continuous beaconing.

        Daily draw = beacons/day * charge/beacon + 24 h of standby.
        """
        daily_beacon_uah = self.beacons_per_day * self.charge_per_beacon_uah
        daily_standby_uah = self.standby_current_ua * 24.0
        daily_uah = daily_beacon_uah + daily_standby_uah
        return (self.battery_mah * 1000.0) / daily_uah


class ActiveTagSimulator:
    """Beacon-based pass simulation over the passive world model.

    Reuses the passive simulator's geometry, occlusion, and static-fade
    machinery (obstruction chords, clutter), but replaces the two-way
    backscatter budget with a one-way beacon budget evaluated at each
    beacon instant.
    """

    def __init__(
        self,
        passive: PortalPassSimulator,
        model: Optional[ActiveTagModel] = None,
    ) -> None:
        self._sim = passive
        self.model = model or ActiveTagModel()
        #: Active receivers listen on a quiet channel; sensitivity is
        #: thermal-limited rather than carrier-leak limited.
        self.receiver_sensitivity_dbm = -95.0

    def run_pass(
        self,
        carriers: Sequence[CarrierGroup],
        seeds: SeedSequence,
        trial: int,
    ) -> PassResult:
        """Simulate one pass with every tag beaconing on its interval."""
        all_tags: List[Tuple[CarrierGroup, Tag]] = [
            (carrier, tag) for carrier in carriers for tag in carrier.tags
        ]
        if not all_tags:
            raise ValueError("no tags in any carrier group")
        duration = max(c.motion.duration_s for c in carriers)
        env = self._sim.env
        params = self._sim.params

        # Static fades: same structure as the passive simulator.
        clutter: Dict[str, float] = {}
        for carrier, tag in all_tags:
            stream = seeds.trial_stream(f"active-clutter:{tag.epc}", trial)
            clutter[tag.epc] = (
                stream.gauss(0.0, carrier.clutter_sigma_db)
                if carrier.clutter_sigma_db > 0.0
                else 0.0
            )

        events: List[TagReadEvent] = []
        for reader in self._sim.portal.readers:
            for antenna in reader.antennas:
                for carrier, tag in all_tags:
                    shadow_stream = seeds.trial_stream(
                        f"active-shadow:{tag.epc}:{antenna.antenna_id}", trial
                    )
                    static_db = (
                        env.channel.shadowing.sample_db(shadow_stream)
                        + clutter[tag.epc]
                    )
                    # Beacon phase: tags are unsynchronised.
                    phase_stream = seeds.trial_stream(
                        f"active-phase:{tag.epc}", trial
                    )
                    t = phase_stream.uniform(
                        0.0, self.model.beacon_interval_s
                    )
                    while t < duration:
                        if self._beacon_heard(
                            carriers, carrier, tag, antenna, t,
                            static_db, seeds, trial,
                        ):
                            events.append(
                                TagReadEvent(
                                    time=t,
                                    epc=tag.epc,
                                    reader_id=reader.reader_id,
                                    antenna_id=antenna.antenna_id,
                                    rssi_dbm=self._rx_power_dbm(
                                        carriers, carrier, tag, antenna, t,
                                        static_db, seeds, trial,
                                    ),
                                )
                            )
                        t += self.model.beacon_interval_s

        trace = ReadTrace()
        for event in sorted(events, key=lambda e: e.time):
            trace.record(event)
        return PassResult(trace=trace, duration_s=duration, rounds=0)

    # -- internals --------------------------------------------------------

    def _rx_power_dbm(
        self, carriers, carrier, tag, antenna, t, static_db, seeds, trial
    ) -> float:
        tag_pos = carrier.tag_world_position(tag, t)
        obstruction_db, _ = self._sim._obstruction_db(
            carriers, antenna.position, tag_pos, t
        )
        direction = (tag_pos - antenna.position).normalized()
        reader_gain = self._sim.env.reader_antenna.gain_dbi(
            direction, antenna.boresight
        )
        distance = antenna.position.distance_to(tag_pos)
        path_gain = self._sim.env.channel.large_scale_gain_db(
            distance,
            tx_height_m=tag_pos.y,
            rx_height_m=antenna.position.y,
            shadowing_db=static_db,
        )
        cell = self._sim.params.fading_coherence_m
        bin_key = (
            int(tag_pos.x // cell),
            int(tag_pos.y // cell),
            int(tag_pos.z // cell),
        )
        fading_rng = seeds.trial_stream(
            f"active-fade:{tag.epc}:{antenna.antenna_id}:"
            f"{bin_key[0]}:{bin_key[1]}:{bin_key[2]}",
            trial,
        )
        fading_db = linear_to_db(
            max(
                self._sim.env.channel.fading.sample_power_gain(fading_rng),
                1e-12,
            )
        )
        return (
            self.model.tx_power_dbm
            + self.model.antenna_gain_dbi
            + reader_gain
            + path_gain
            - obstruction_db
            + fading_db
        )

    def _beacon_heard(
        self, carriers, carrier, tag, antenna, t, static_db, seeds, trial
    ) -> bool:
        rx = self._rx_power_dbm(
            carriers, carrier, tag, antenna, t, static_db, seeds, trial
        )
        return rx >= self.receiver_sensitivity_dbm
