"""Portals: antennas, their placement, and reader assignments.

A *portal* is the fixed infrastructure a tagged carrier passes: one or
more area antennas wired to one or more readers watching a designated
zone. The paper's configurations:

* one antenna, one reader (baseline);
* two antennas 2 m apart "connected to the same reader" (antenna-level
  redundancy, TDMA-multiplexed);
* two readers with one antenna each (reader-level redundancy — the one
  that backfired without dense-reader mode).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence

from ..rf.geometry import Vec3

#: Antenna mounting height used throughout the paper's experiments
#: (tags at waist height, "tags and antennas should be at the same
#: height" per the paper's own best-practice finding).
ANTENNA_HEIGHT_M = 1.0

#: Separation between the two portal antennas in the paper's
#: antenna-redundancy experiments.
PAPER_ANTENNA_SPACING_M = 2.0


@dataclass(frozen=True)
class AntennaInstallation:
    """One mounted area antenna."""

    antenna_id: str
    position: Vec3
    boresight: Vec3

    def __post_init__(self) -> None:
        if self.boresight.norm() < 1e-9:
            raise ValueError("boresight must be a non-zero vector")


@dataclass(frozen=True)
class ReaderAssignment:
    """A reader and the antennas it multiplexes.

    ``backup_antennas`` are antennas owned by *another* reader that
    this reader can also drive through the portal's RF multiplexer.
    Antennas are passive: an external mux can route any port to any
    reader, as long as only one radio drives a port at a time. While
    the owning reader is healthy the backup list is inert; when the
    owner dies, the mux hands its ports to this reader (after the
    supervisor's detection latency) and the portal keeps its geometry.
    """

    reader_id: str
    antennas: Sequence[AntennaInstallation]
    dense_reader_mode: bool = False
    tx_power_dbm: float = 30.0
    backup_antennas: Sequence[AntennaInstallation] = ()

    def __post_init__(self) -> None:
        if not self.antennas:
            raise ValueError(f"reader {self.reader_id!r} needs >= 1 antenna")
        if not 10.0 <= self.tx_power_dbm <= 36.0:
            raise ValueError(
                "tx power out of plausible range (10-36 dBm): "
                f"{self.tx_power_dbm!r}"
            )
        own = {a.antenna_id for a in self.antennas}
        overlap = own & {a.antenna_id for a in self.backup_antennas}
        if overlap:
            raise ValueError(
                f"reader {self.reader_id!r} lists its own antennas as "
                f"backups: {sorted(overlap)}"
            )


@dataclass(frozen=True)
class Portal:
    """The full fixed installation watching one zone."""

    readers: Sequence[ReaderAssignment]

    def __post_init__(self) -> None:
        if not self.readers:
            raise ValueError("a portal needs at least one reader")
        ids = [r.reader_id for r in self.readers]
        if len(set(ids)) != len(ids):
            raise ValueError(f"duplicate reader ids in portal: {ids}")
        antenna_ids = [a.antenna_id for r in self.readers for a in r.antennas]
        if len(set(antenna_ids)) != len(antenna_ids):
            raise ValueError(f"duplicate antenna ids in portal: {antenna_ids}")
        owned = set(antenna_ids)
        for reader in self.readers:
            for backup in reader.backup_antennas:
                if backup.antenna_id not in owned:
                    raise ValueError(
                        f"reader {reader.reader_id!r} backs up antenna "
                        f"{backup.antenna_id!r}, which no reader owns"
                    )

    @property
    def all_antennas(self) -> List[AntennaInstallation]:
        return [a for r in self.readers for a in r.antennas]

    @property
    def antenna_count(self) -> int:
        return len(self.all_antennas)

    @property
    def reader_count(self) -> int:
        return len(self.readers)


def single_antenna_portal(
    lane_distance_m: float = 0.0,
    height_m: float = ANTENNA_HEIGHT_M,
    tx_power_dbm: float = 30.0,
) -> Portal:
    """The baseline: one reader, one antenna at x=0 looking into the lane (+z)."""
    antenna = AntennaInstallation(
        antenna_id="ant-0",
        position=Vec3(0.0, height_m, lane_distance_m),
        boresight=Vec3.unit_z(),
    )
    return Portal(
        readers=(
            ReaderAssignment("reader-0", (antenna,), tx_power_dbm=tx_power_dbm),
        )
    )


def dual_antenna_portal(
    spacing_m: float = PAPER_ANTENNA_SPACING_M,
    height_m: float = ANTENNA_HEIGHT_M,
    tx_power_dbm: float = 30.0,
) -> Portal:
    """Two antennas ``spacing_m`` apart along the lane, one reader (paper Sec. 4).

    The reader TDMA-multiplexes them, so each antenna gets half the
    airtime — the cost side of antenna redundancy.
    """
    if spacing_m <= 0.0:
        raise ValueError(f"spacing must be positive, got {spacing_m!r}")
    half = spacing_m / 2.0
    antennas = (
        AntennaInstallation(
            "ant-0", Vec3(-half, height_m, 0.0), Vec3.unit_z()
        ),
        AntennaInstallation(
            "ant-1", Vec3(half, height_m, 0.0), Vec3.unit_z()
        ),
    )
    return Portal(
        readers=(
            ReaderAssignment("reader-0", antennas, tx_power_dbm=tx_power_dbm),
        )
    )


def failover_portal(
    spacing_m: float = PAPER_ANTENNA_SPACING_M,
    height_m: float = ANTENNA_HEIGHT_M,
    dense_reader_mode: bool = True,
    tx_power_dbm: float = 30.0,
) -> Portal:
    """The supervised hot-standby build: dual-DRM wiring plus an RF mux.

    The radio layout is exactly the dual-reader configuration the paper
    proved out (one antenna each at +/- spacing/2, dense-reader mode on
    so the carriers do not jam each other — the Section 4 lesson), with
    one addition from hot-standby practice: the antennas hang off an RF
    multiplexer, so when a reader dies the survivor inherits the orphaned
    port and keeps the full portal geometry. Co-locating spare antennas
    instead would not work — two carriers a few decimetres apart couple
    tens of dB above the backscatter floor, more than even dense-reader
    mode's spectral isolation can absorb — but a mux shares the passive
    antennas without ever powering two radios into one zone.
    """
    if spacing_m <= 0.0:
        raise ValueError(f"spacing must be positive, got {spacing_m!r}")
    half = spacing_m / 2.0
    left = AntennaInstallation(
        "ant-0", Vec3(-half, height_m, 0.0), Vec3.unit_z()
    )
    right = AntennaInstallation(
        "ant-1", Vec3(half, height_m, 0.0), Vec3.unit_z()
    )
    return Portal(
        readers=(
            ReaderAssignment(
                "reader-0",
                (left,),
                dense_reader_mode=dense_reader_mode,
                tx_power_dbm=tx_power_dbm,
                backup_antennas=(right,),
            ),
            ReaderAssignment(
                "reader-1",
                (right,),
                dense_reader_mode=dense_reader_mode,
                tx_power_dbm=tx_power_dbm,
                backup_antennas=(left,),
            ),
        )
    )


def dual_reader_portal(
    spacing_m: float = PAPER_ANTENNA_SPACING_M,
    height_m: float = ANTENNA_HEIGHT_M,
    dense_reader_mode: bool = False,
    tx_power_dbm: float = 30.0,
) -> Portal:
    """Two readers with one antenna each (the paper's reader redundancy).

    Without ``dense_reader_mode`` both carriers run simultaneously and
    interfere — the configuration whose reliability the paper found
    "severely reduced".
    """
    if spacing_m <= 0.0:
        raise ValueError(f"spacing must be positive, got {spacing_m!r}")
    half = spacing_m / 2.0
    return Portal(
        readers=(
            ReaderAssignment(
                "reader-0",
                (
                    AntennaInstallation(
                        "ant-0", Vec3(-half, height_m, 0.0), Vec3.unit_z()
                    ),
                ),
                dense_reader_mode=dense_reader_mode,
                tx_power_dbm=tx_power_dbm,
            ),
            ReaderAssignment(
                "reader-1",
                (
                    AntennaInstallation(
                        "ant-1", Vec3(half, height_m, 0.0), Vec3.unit_z()
                    ),
                ),
                dense_reader_mode=dense_reader_mode,
                tx_power_dbm=tx_power_dbm,
            ),
        )
    )
