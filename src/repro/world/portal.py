"""Portals: antennas, their placement, and reader assignments.

A *portal* is the fixed infrastructure a tagged carrier passes: one or
more area antennas wired to one or more readers watching a designated
zone. The paper's configurations:

* one antenna, one reader (baseline);
* two antennas 2 m apart "connected to the same reader" (antenna-level
  redundancy, TDMA-multiplexed);
* two readers with one antenna each (reader-level redundancy — the one
  that backfired without dense-reader mode).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence

from ..rf.geometry import Vec3

#: Antenna mounting height used throughout the paper's experiments
#: (tags at waist height, "tags and antennas should be at the same
#: height" per the paper's own best-practice finding).
ANTENNA_HEIGHT_M = 1.0

#: Separation between the two portal antennas in the paper's
#: antenna-redundancy experiments.
PAPER_ANTENNA_SPACING_M = 2.0


@dataclass(frozen=True)
class AntennaInstallation:
    """One mounted area antenna."""

    antenna_id: str
    position: Vec3
    boresight: Vec3

    def __post_init__(self) -> None:
        if self.boresight.norm() < 1e-9:
            raise ValueError("boresight must be a non-zero vector")


@dataclass(frozen=True)
class ReaderAssignment:
    """A reader and the antennas it multiplexes."""

    reader_id: str
    antennas: Sequence[AntennaInstallation]
    dense_reader_mode: bool = False
    tx_power_dbm: float = 30.0

    def __post_init__(self) -> None:
        if not self.antennas:
            raise ValueError(f"reader {self.reader_id!r} needs >= 1 antenna")
        if not 10.0 <= self.tx_power_dbm <= 36.0:
            raise ValueError(
                "tx power out of plausible range (10-36 dBm): "
                f"{self.tx_power_dbm!r}"
            )


@dataclass(frozen=True)
class Portal:
    """The full fixed installation watching one zone."""

    readers: Sequence[ReaderAssignment]

    def __post_init__(self) -> None:
        if not self.readers:
            raise ValueError("a portal needs at least one reader")
        ids = [r.reader_id for r in self.readers]
        if len(set(ids)) != len(ids):
            raise ValueError(f"duplicate reader ids in portal: {ids}")
        antenna_ids = [a.antenna_id for r in self.readers for a in r.antennas]
        if len(set(antenna_ids)) != len(antenna_ids):
            raise ValueError(f"duplicate antenna ids in portal: {antenna_ids}")

    @property
    def all_antennas(self) -> List[AntennaInstallation]:
        return [a for r in self.readers for a in r.antennas]

    @property
    def antenna_count(self) -> int:
        return len(self.all_antennas)

    @property
    def reader_count(self) -> int:
        return len(self.readers)


def single_antenna_portal(
    lane_distance_m: float = 0.0,
    height_m: float = ANTENNA_HEIGHT_M,
    tx_power_dbm: float = 30.0,
) -> Portal:
    """The baseline: one reader, one antenna at x=0 looking into the lane (+z)."""
    antenna = AntennaInstallation(
        antenna_id="ant-0",
        position=Vec3(0.0, height_m, lane_distance_m),
        boresight=Vec3.unit_z(),
    )
    return Portal(
        readers=(
            ReaderAssignment("reader-0", (antenna,), tx_power_dbm=tx_power_dbm),
        )
    )


def dual_antenna_portal(
    spacing_m: float = PAPER_ANTENNA_SPACING_M,
    height_m: float = ANTENNA_HEIGHT_M,
    tx_power_dbm: float = 30.0,
) -> Portal:
    """Two antennas ``spacing_m`` apart along the lane, one reader (paper Sec. 4).

    The reader TDMA-multiplexes them, so each antenna gets half the
    airtime — the cost side of antenna redundancy.
    """
    if spacing_m <= 0.0:
        raise ValueError(f"spacing must be positive, got {spacing_m!r}")
    half = spacing_m / 2.0
    antennas = (
        AntennaInstallation(
            "ant-0", Vec3(-half, height_m, 0.0), Vec3.unit_z()
        ),
        AntennaInstallation(
            "ant-1", Vec3(half, height_m, 0.0), Vec3.unit_z()
        ),
    )
    return Portal(
        readers=(
            ReaderAssignment("reader-0", antennas, tx_power_dbm=tx_power_dbm),
        )
    )


def dual_reader_portal(
    spacing_m: float = PAPER_ANTENNA_SPACING_M,
    height_m: float = ANTENNA_HEIGHT_M,
    dense_reader_mode: bool = False,
    tx_power_dbm: float = 30.0,
) -> Portal:
    """Two readers with one antenna each (the paper's reader redundancy).

    Without ``dense_reader_mode`` both carriers run simultaneously and
    interfere — the configuration whose reliability the paper found
    "severely reduced".
    """
    if spacing_m <= 0.0:
        raise ValueError(f"spacing must be positive, got {spacing_m!r}")
    half = spacing_m / 2.0
    return Portal(
        readers=(
            ReaderAssignment(
                "reader-0",
                (
                    AntennaInstallation(
                        "ant-0", Vec3(-half, height_m, 0.0), Vec3.unit_z()
                    ),
                ),
                dense_reader_mode=dense_reader_mode,
                tx_power_dbm=tx_power_dbm,
            ),
            ReaderAssignment(
                "reader-1",
                (
                    AntennaInstallation(
                        "ant-1", Vec3(half, height_m, 0.0), Vec3.unit_z()
                    ),
                ),
                dense_reader_mode=dense_reader_mode,
                tx_power_dbm=tx_power_dbm,
            ),
        )
    )
