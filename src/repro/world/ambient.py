"""Ambient tag populations and false-positive reads.

The paper focuses on false negatives but notes the dual failure: "RFID
tags might be read from outside the region normally associated with the
antenna, leading to a misbelief that the object is near the antenna",
and prescribes the physical remedies — increase the distance between
antennas and/or decrease reader power.

This module populates the *neighbourhood* of a portal with stray tags
(the next lane's pallets, a staging area) so deployments can quantify
false-positive rates and validate the paper's remedies plus the
software-side one (Select filtering, location filtering).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Set, Tuple

from ..protocol.epc import EpcFactory
from ..rf.geometry import Vec3
from ..sim.trace import ReadTrace
from .motion import StationaryPlacement
from .simulation import CarrierGroup
from .tags import Tag, TagOrientation


@dataclass(frozen=True)
class AmbientZone:
    """A rectangular staging area holding stray tagged items."""

    name: str
    centre: Vec3
    extent_x_m: float
    extent_z_m: float
    tag_count: int
    height_m: float = 1.0

    def __post_init__(self) -> None:
        if self.tag_count < 0:
            raise ValueError(f"tag count must be >= 0, got {self.tag_count!r}")
        if self.extent_x_m <= 0 or self.extent_z_m <= 0:
            raise ValueError("zone extents must be positive")


def build_ambient_carrier(
    zone: AmbientZone,
    epc_factory: EpcFactory,
    duration_s: float,
    orientation: TagOrientation = TagOrientation.CASE_2_HORIZONTAL_FACING,
) -> Tuple[CarrierGroup, List[str]]:
    """A stationary carrier of stray tags spread over the zone.

    Tags are laid out on a deterministic grid (a staging area's pallets
    are regular); returns the carrier plus its EPC list so callers can
    classify reads as in-zone or stray.
    """
    tags: List[Tag] = []
    if zone.tag_count > 0:
        columns = max(1, int(round(zone.tag_count ** 0.5)))
        rows = (zone.tag_count + columns - 1) // columns
        index = 0
        for r in range(rows):
            for c in range(columns):
                if index >= zone.tag_count:
                    break
                fx = (c + 0.5) / columns - 0.5
                fz = (r + 0.5) / rows - 0.5
                tags.append(
                    Tag(
                        epc=epc_factory.next_epc().to_hex(),
                        local_position=Vec3(
                            fx * zone.extent_x_m,
                            zone.height_m,
                            fz * zone.extent_z_m,
                        ),
                        orientation=orientation,
                        label=f"{zone.name}-{index}",
                    )
                )
                index += 1
    carrier = CarrierGroup(
        motion=StationaryPlacement(position=zone.centre, duration_s=duration_s),
        tags=tags,
    )
    return carrier, [t.epc for t in tags]


@dataclass(frozen=True)
class FalsePositiveReport:
    """Classification of a trace against the intended population."""

    intended_reads: int
    stray_reads: int
    stray_epcs: Tuple[str, ...]

    @property
    def false_positive_rate(self) -> float:
        """Fraction of *distinct tags read* that were strays."""
        total = self.intended_reads + self.stray_reads
        if total == 0:
            return 0.0
        return self.stray_reads / total


def classify_reads(
    trace: ReadTrace, intended_epcs: Sequence[str]
) -> FalsePositiveReport:
    """Split a trace's distinct tags into intended vs stray."""
    intended: Set[str] = set(intended_epcs)
    seen = trace.epcs_seen()
    stray = tuple(sorted(seen - intended))
    return FalsePositiveReport(
        intended_reads=len(seen & intended),
        stray_reads=len(stray),
        stray_epcs=stray,
    )
